// E1/E2 — the running example (paper Fig. 1, Fig. 2, Table 1).
//
// Regenerates: the optimal schedule length of each alternative path (the
// table beside Fig. 2), the global schedule table (Table 1) and the worst
// case delay. Paper reference values: the six path lengths are
// {39, 39, 38, 32, 31, 31} and delta_max = 39 for the original (not fully
// published) edge set; our reconstruction is validated structurally and
// lands within a few ticks (see EXPERIMENTS.md).
#include <iostream>

#include "io/table_render.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"

int main() {
  using namespace cps;
  const Cpg g = build_fig1_cpg();
  const CoSynthesisResult r = schedule_cpg(g);

  std::cout << "=== E1/E2: conditional process graph of Fig. 1 ===\n\n";
  std::cout << "alternative paths and optimal schedule lengths (Fig. 2):\n";
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    std::cout << "  " << g.conditions().render(r.paths[i].label) << ": "
              << r.delays.path_optimal[i]
              << "   (delay under the merged table: "
              << r.delays.path_actual[i] << ")\n";
  }

  std::cout << "\nschedule table (Table 1):\n";
  render_schedule_table(std::cout, r.table);

  std::cout << "\ndelta_M   = " << r.delays.delta_m
            << "   (paper: 39)\n"
            << "delta_max = " << r.delays.delta_max
            << "   (paper: 39; increase over delta_M: "
            << r.delays.increase_percent << "%)\n";
  std::cout << "merge stats: " << r.merge_stats.backsteps << " back-steps, "
            << r.merge_stats.locks << " rule-3 locks, "
            << r.merge_stats.conflicts << " conflicts, "
            << r.merge_stats.conflict_moves << " theorem-2 moves, "
            << r.merge_stats.unresolved_conflicts << " unresolved\n";
  return 0;
}
