// Microbenchmarks (google-benchmark) of the hot primitives: cube algebra,
// DNF cover checks, guard evaluation, per-path list scheduling and the
// full merge on the Fig. 1 model and generated graphs.
#include <benchmark/benchmark.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"

namespace {

using namespace cps;

void BM_CubeConjoin(benchmark::State& state) {
  const Cube a({Literal{0, true}, Literal{2, false}, Literal{5, true}});
  const Cube b({Literal{1, true}, Literal{2, false}, Literal{7, false}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.conjoin(b));
  }
}
BENCHMARK(BM_CubeConjoin);

void BM_CubeCompatible(benchmark::State& state) {
  const Cube a({Literal{0, true}, Literal{2, false}, Literal{5, true}});
  const Cube b({Literal{2, true}, Literal{5, true}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compatible(b));
  }
}
BENCHMARK(BM_CubeCompatible);

void BM_CubeImplies(benchmark::State& state) {
  const Cube a({Literal{0, true}, Literal{2, false}, Literal{5, true},
                Literal{9, false}});
  const Cube b({Literal{2, false}, Literal{5, true}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.implies(b));
  }
}
BENCHMARK(BM_CubeImplies);

void BM_CubeHash(benchmark::State& state) {
  const Cube a({Literal{0, true}, Literal{2, false}, Literal{5, true},
                Literal{9, false}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hash());
  }
}
BENCHMARK(BM_CubeHash);

// Slow-path reference: the same conjoin with every condition shifted past
// Cube::kPackedBits, exercising the sorted-vector representation the
// packed fast path is equivalence-tested against.
void BM_CubeConjoinWide(benchmark::State& state) {
  const CondId w = Cube::kPackedBits;
  const Cube a({Literal{static_cast<CondId>(w + 0), true},
                Literal{static_cast<CondId>(w + 2), false},
                Literal{static_cast<CondId>(w + 5), true}});
  const Cube b({Literal{static_cast<CondId>(w + 1), true},
                Literal{static_cast<CondId>(w + 2), false},
                Literal{static_cast<CondId>(w + 7), false}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.conjoin(b));
  }
}
BENCHMARK(BM_CubeConjoinWide);

void BM_DnfOrCubeNormalize(benchmark::State& state) {
  // Subsumption + complementary-merge workload of guard construction.
  const Dnf base = Dnf(Cube({Literal{0, true}, Literal{1, true}}))
                       .or_cube(Cube({Literal{0, true}, Literal{2, false}}));
  const Cube extra({Literal{0, true}, Literal{1, false}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.or_cube(extra));
  }
}
BENCHMARK(BM_DnfOrCubeNormalize);

void BM_DnfAndDnf(benchmark::State& state) {
  const Dnf a = Dnf(Cube({Literal{0, true}, Literal{1, true}}))
                    .or_cube(Cube({Literal{0, false}, Literal{2, true}}));
  const Dnf b = Dnf(Cube(Literal{1, true})).or_cube(Cube(Literal{3, false}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.and_dnf(b));
  }
}
BENCHMARK(BM_DnfAndDnf);

void BM_CoverCacheLookup(benchmark::State& state) {
  const Dnf guard = Dnf(Cube({Literal{0, true}, Literal{1, true}}))
                        .or_cube(Cube({Literal{0, true}, Literal{1, false}}))
                        .or_cube(Cube(Literal{0, false}));
  const Cube context({Literal{0, true}, Literal{3, false}});
  CoverCache cache;
  cache.covered(guard, context);  // warm: the loop measures pure hits
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.covered(guard, context));
  }
}
BENCHMARK(BM_CoverCacheLookup);

void BM_DnfCoveredByContext(benchmark::State& state) {
  // The X_P17-style tautology check.
  const Dnf guard = Dnf(Cube({Literal{0, true}, Literal{1, true}}))
                        .or_cube(Cube({Literal{0, true}, Literal{1, false}}))
                        .or_cube(Cube(Literal{0, false}));
  const Cube context(Literal{2, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.covered_by_context(context));
  }
}
BENCHMARK(BM_DnfCoveredByContext);

void BM_EnumeratePathsFig1(benchmark::State& state) {
  const Cpg g = build_fig1_cpg();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_paths(g));
  }
}
BENCHMARK(BM_EnumeratePathsFig1);

void BM_SchedulePathFig1(benchmark::State& state) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_path(fg, paths.front()));
  }
}
BENCHMARK(BM_SchedulePathFig1);

void BM_MergeFig1(benchmark::State& state) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  std::vector<PathSchedule> schedules;
  for (const AltPath& p : paths) schedules.push_back(schedule_path(fg, p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge_schedules(fg, paths, schedules));
  }
}
BENCHMARK(BM_MergeFig1);

void BM_FullFlowRandom(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = nodes;
  params.path_count = 10;
  const Cpg g = generate_random_cpg(arch, params, rng);
  CoSynthesisOptions options;
  options.validate = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_cpg(g, options));
  }
  state.SetComplexityN(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_FullFlowRandom)->Arg(30)->Arg(60)->Arg(120)->Complexity();

}  // namespace

BENCHMARK_MAIN();
