// A1 — ablation of the merge path-selection rule (paper §5.1 rule 1):
// "priority is given to the path, among those which are still reachable,
// that produces the largest delay". We compare longest-first (the paper's
// choice) against shortest-first and random selection on the Fig. 5
// workload and report the average delta_max increase of each policy.
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  CliParser cli("merge path-selection ablation");
  cli.add_flag("graphs", "24", "graphs per path-count cell");
  cli.add_flag("nodes", "80", "graph size");
  cli.add_flag("seed", "7", "base random seed");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));

  const std::size_t path_counts[] = {10, 18, 32};
  const PathSelection policies[] = {PathSelection::kLongestFirst,
                                    PathSelection::kShortestFirst,
                                    PathSelection::kRandom};

  AsciiTable table(
      "A1 — average increase of delta_max over delta_M (%) by selection "
      "policy (" + std::to_string(nodes) + "-node graphs)");
  std::vector<std::string> head{"policy"};
  for (std::size_t p : path_counts) {
    head.push_back(std::to_string(p) + " paths");
  }
  head.push_back("wins/ties vs longest");
  table.header(head);

  // Pre-generate the population once so all policies see the same graphs.
  struct Case {
    Cpg graph;
  };
  std::vector<std::vector<Cpg>> population;
  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t paths : path_counts) {
    std::vector<Cpg> cell;
    cell.reserve(graphs);
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng(++seed);
      const Architecture arch = generate_random_architecture(rng);
      RandomCpgParams params;
      params.process_count = nodes;
      params.path_count = paths;
      params.distribution = i % 2 == 0 ? TimeDistribution::kUniform
                                       : TimeDistribution::kExponential;
      cell.push_back(generate_random_cpg(arch, params, rng));
    }
    population.push_back(std::move(cell));
  }

  std::vector<std::vector<double>> longest_increase(path_counts[2] + 1);
  std::vector<std::vector<std::vector<double>>> results;  // policy x cell
  for (const PathSelection policy : policies) {
    std::vector<std::vector<double>> per_cell;
    for (const auto& cell : population) {
      std::vector<double> increases;
      for (const Cpg& g : cell) {
        CoSynthesisOptions options;
        options.validate = false;
        options.merge.selection = policy;
        options.merge.random_seed = 99;
        const CoSynthesisResult r = schedule_cpg(g, options);
        increases.push_back(r.delays.increase_percent);
      }
      per_cell.push_back(std::move(increases));
    }
    results.push_back(std::move(per_cell));
  }

  for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
    std::vector<std::string> row{to_string(policies[pi])};
    for (std::size_t ci = 0; ci < std::size(path_counts); ++ci) {
      StatAccumulator acc;
      acc.add_all(results[pi][ci]);
      row.push_back(format_double(acc.mean(), 2));
    }
    std::size_t wins_or_ties = 0;
    std::size_t total = 0;
    for (std::size_t ci = 0; ci < std::size(path_counts); ++ci) {
      for (std::size_t i = 0; i < results[pi][ci].size(); ++i) {
        if (results[pi][ci][i] <= results[0][ci][i]) ++wins_or_ties;
        ++total;
      }
    }
    row.push_back(std::to_string(wins_or_ties) + "/" +
                  std::to_string(total));
    table.add_row(row);
  }
  std::cout << "=== A1: merge path-selection ablation ===\n\n";
  table.render(std::cout);
  std::cout << "\nexpected: longest-first (the paper's rule) dominates — "
               "it guarantees the longest\npath is never perturbed, so its "
               "increase stays the smallest.\n";
  return 0;
}
