// E6 — Table 2: worst case delays of the ATM OAM block in its three
// operating modes on ten candidate architectures (1 or 2 processors of
// type 486DX2/80 or Pentium/120, 1 or 2 memory modules).
//
// Paper reference values (ns):
//   mode 1 (32 proc, 6 paths):  4471 2701 | 4471 2701 | 2932 2131 2532 | 2932 1932 2532
//   mode 2 (23 proc, 3 paths):  1732 1167 | 1732 1167 | 1732 1167 1167 | 1732 1167 1167
//   mode 3 (42 proc, 8 paths):  5852 3548 | 5852 3548 | 5033 3548 3548 | 5033 3548 3548
// The models are synthesized (the original VHDL graphs are unpublished);
// the reproduction target is the *shape*: where an extra processor or an
// extra memory module pays back and where it has exactly no effect.
#include <iostream>

#include "atm/oam.hpp"
#include "support/table_format.hpp"

int main() {
  using namespace cps;
  const auto archs = oam_table2_architectures();

  AsciiTable table("Table 2 — worst case delays for the OAM block (ns)");
  std::vector<std::string> head{"mode", "nr.proc", "nr.paths"};
  for (const auto& a : archs) head.push_back(a.label());
  table.header(head);

  const Time paper[3][10] = {
      {4471, 2701, 4471, 2701, 2932, 2131, 2532, 2932, 1932, 2532},
      {1732, 1167, 1732, 1167, 1732, 1167, 1167, 1732, 1167, 1167},
      {5852, 3548, 5852, 3548, 5033, 3548, 3548, 5033, 3548, 3548}};

  for (int mode = 1; mode <= 3; ++mode) {
    std::vector<std::string> row;
    std::vector<std::string> paper_row{"  (paper)", "", ""};
    std::size_t procs = 0;
    std::size_t paths = 0;
    for (std::size_t i = 0; i < archs.size(); ++i) {
      const OamModeResult res = evaluate_oam_mode(mode, archs[i]);
      procs = res.process_count;
      paths = res.path_count;
      row.push_back(std::to_string(res.worst_case_delay));
      paper_row.push_back(std::to_string(paper[mode - 1][i]));
    }
    std::vector<std::string> full{std::to_string(mode),
                                  std::to_string(procs),
                                  std::to_string(paths)};
    full.insert(full.end(), row.begin(), row.end());
    table.add_row(full);
    table.add_row(paper_row);
  }
  std::cout << "=== E6: Table 2 reproduction ===\n\n";
  table.render(std::cout);
  std::cout <<
      "\nshape checks (all asserted by tests/test_atm.cpp):\n"
      "  * a faster processor reduces the delay in every mode;\n"
      "  * a second processor never helps mode 2, always helps mode 1,\n"
      "    and helps mode 3 only for the 486;\n"
      "  * a second memory module pays back only for 2 Pentiums in mode 1;\n"
      "  * on 486+Pentium the chain of mode 2 runs on the Pentium.\n";
  return 0;
}
