// S2 — batch co-synthesis throughput: graphs/second of the parallel batch
// driver as the worker-thread count grows, on a fixed deterministic
// workload. The scaling-substrate benchmark for the ROADMAP's
// "thousands of scenarios" north star: per-task seeding makes the result
// set identical at every thread count, so the sweep isolates pure
// parallel-efficiency effects.
//
// `--json FILE` dumps the final batch (machine-readable) to FILE
// ("-" = stdout).
#include <unistd.h>

#include <iostream>
#include <memory>
#include <thread>

#include "sched/batch_driver.hpp"
#include "sched/schedule_cache.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) try {
  using namespace cps;
  CliParser cli("parallel batch co-synthesis throughput");
  cli.add_flag("graphs", "64", "graphs per batch");
  cli.add_flag("nodes", "60", "processes per graph");
  cli.add_flag("paths", "10", "alternative paths per graph");
  cli.add_flag("seed", "1", "base random seed");
  cli.add_flag("max-threads", "0",
               "largest worker count of the sweep (0 = hardware)");
  cli.add_flag("ready", "heap", "engine: heap | linear");
  cli.add_flag("deadline-ms", "0",
               "per-item wall-clock deadline in ms (0 = none); timed-out "
               "items are isolated, not fatal");
  cli.add_flag("retries", "2",
               "retry attempts for transient injected faults per item");
  cli.add_flag("json", "", "dump the last batch as JSON to FILE (- = stdout)");
  cli.add_flag("json-out", "",
               "write the throughput sweep (stable schema: threads, wall "
               "ms, graphs/s, speedup) as JSON to FILE (- = stdout)");
  cli.add_flag("threads", "",
               "run only this worker count instead of the power-of-two "
               "sweep");
  cli.add_bool("no-timing",
               "omit wall-clock fields from --json so output is "
               "byte-identical across runs and thread counts");
  cli.add_bool("server",
               "route the same workload through an in-process co-synthesis "
               "service (closed-loop client per worker) instead of "
               "run_batch — measures the service overhead on top of the "
               "batch substrate");
  cli.add_flag("cache-dir", "",
               "content-addressed schedule cache backed by this directory "
               "(persists across runs; a second identical run replays "
               "every item from the store)");
  if (!cli.parse(argc, argv)) return 0;

  BatchConfig config;
  config.count = cli.get_count("graphs", 0);
  config.base_seed = static_cast<std::uint64_t>(cli.get_count("seed", 0));
  config.cpg.process_count = cli.get_count("nodes", 1);
  config.cpg.path_count = cli.get_count("paths", 1);
  config.deadline_ms = static_cast<double>(cli.get_count("deadline-ms", 0));
  config.max_retries = cli.get_count("retries", 0);
  // Each graph is this sweep's unit of parallelism: per-item speculative
  // merges would additionally fan out onto the process-wide shared pool,
  // oversubscribing the cores and polluting the parallel-efficiency
  // columns (the produced tables are identical either way).
  config.synthesis.merge.execution = MergeExecution::kSerial;
  const std::string ready = cli.get_string("ready");
  if (ready == "linear") {
    config.synthesis.merge.ready = ReadySelection::kLinearScan;
  } else if (ready == "heap") {
    config.synthesis.merge.ready = ReadySelection::kHeap;
  } else {
    std::cerr << "unknown --ready value: " << ready << '\n';
    return 1;
  }

  // One cache across the whole sweep: the 1-thread point warms it and
  // wider points replay (results are byte-identical either way). With
  // --cache-dir the exact tier persists across bench invocations too.
  std::unique_ptr<ScheduleCache> cache;
  if (!cli.get_string("cache-dir").empty()) {
    ScheduleCacheOptions cache_options;
    cache_options.store_dir = cli.get_string("cache-dir");
    cache = std::make_unique<ScheduleCache>(cache_options);
    config.cache = cache.get();
  }

  std::size_t max_threads = cli.get_count("max-threads", 0);
  if (max_threads == 0) {
    max_threads = std::thread::hardware_concurrency();
    if (max_threads == 0) max_threads = 1;
  }

  AsciiTable table("S2 — batch throughput (" + std::to_string(config.count) +
                   " graphs, " + std::to_string(config.cpg.process_count) +
                   " nodes, " + std::to_string(config.cpg.path_count) +
                   " paths, " + ready + " engine)");
  table.header({"threads", "wall ms", "graphs/s", "speedup", "efficiency %",
                "ok", "timeouts", "retries"});

  // Sweep powers of two, always ending exactly at max_threads — unless
  // --threads pins a single worker count (determinism checks in CI).
  std::vector<std::size_t> sweep;
  if (!cli.get_string("threads").empty()) {
    sweep.push_back(cli.get_count("threads", 1));
  } else {
    for (std::size_t threads = 1; threads < max_threads; threads *= 2) {
      sweep.push_back(threads);
    }
    sweep.push_back(max_threads);
  }

  const bool serve_mode = cli.get_bool("server");
  if (serve_mode && !cli.get_string("json").empty()) {
    std::cerr << "error: --json (per-item dump) is a run_batch feature; "
                 "--server responses live in the service protocol — use "
                 "bench_serve_load --verify for per-item comparisons\n";
    return 1;
  }

  std::string last_json;
  double base_wall = 0.0;
  bool failed = false;
  struct SweepPoint {
    std::size_t threads = 0;
    double wall_ms = 0.0;
    double graphs_per_second = 0.0;
    double speedup = 0.0;
    std::size_t timeouts = 0;
    std::size_t retries = 0;
  };
  std::vector<SweepPoint> points;
  for (std::size_t threads : sweep) {
    config.threads = threads;
    SweepPoint point;
    point.threads = threads;
    std::size_t ok_count = 0;
    if (serve_mode) {
      // Same workload definition, routed through the service: an
      // in-process Server with `threads` workers, a closed-loop client
      // per worker. The delta against the plain sweep is the service
      // overhead (framing, admission, completion hand-off).
      ServerOptions options;
      options.socket_path =
          "/tmp/condsched_s2_" + std::to_string(::getpid()) + ".sock";
      options.threads = threads;
      // The whole batch is offered deliberately; admission must not shed.
      options.max_queue_depth = std::max<std::size_t>(config.count, 1);
      options.workload = config;
      Server server(std::move(options));
      std::thread runner([&server] { server.run(); });
      LoadGenConfig load;
      load.socket_path = server.socket_path();
      load.requests = config.count;
      load.connections = threads;
      const LoadGenResult r = run_loadgen(load);
      server.request_drain();
      runner.join();
      // The workload's own --deadline-ms applies inside run_batch_item,
      // so timeouts surface as deadline-coded item responses here too.
      if (r.ok + r.timed_out != config.count) failed = true;
      ok_count = r.ok;
      point.wall_ms = r.wall_ms;
      point.graphs_per_second =
          r.wall_ms > 0.0
              ? 1000.0 * static_cast<double>(r.responses) / r.wall_ms
              : 0.0;
      point.timeouts = r.timed_out;
    } else {
      const BatchResult result = run_batch(config);
      const BatchSummary& s = result.summary;
      // A timed-out item is an expected outcome under --deadline-ms, not
      // a benchmark failure; anything else failing still fails the run.
      if (s.ok_count + s.timeouts != s.count) failed = true;
      ok_count = s.ok_count;
      point.wall_ms = s.wall_ms;
      point.graphs_per_second = s.graphs_per_second;
      point.timeouts = s.timeouts;
      point.retries = s.retries;
      if (!cli.get_string("json").empty()) {
        BatchJsonOptions json_options;
        json_options.include_timing = !cli.get_bool("no-timing");
        last_json = batch_result_to_json(result, json_options);
      }
    }
    if (threads == 1) base_wall = point.wall_ms;
    point.speedup = point.wall_ms > 0.0 ? base_wall / point.wall_ms : 0.0;
    points.push_back(point);
    table.cell(static_cast<std::int64_t>(threads))
        .cell(point.wall_ms, 1)
        .cell(point.graphs_per_second, 1)
        .cell(point.speedup, 2)
        .cell(100.0 * point.speedup / static_cast<double>(threads), 1)
        .cell(static_cast<std::int64_t>(ok_count))
        .cell(static_cast<std::int64_t>(point.timeouts))
        .cell(static_cast<std::int64_t>(point.retries));
    table.end_row();
  }

  const std::string json_path = cli.get_string("json");
  const std::string perf_path = cli.get_string("json-out");
  if (json_path == "-" && perf_path == "-") {
    std::cerr << "error: --json - and --json-out - would interleave two "
                 "JSON documents on stdout; write one of them to a file\n";
    return 1;
  }
  // With --json(-out) - the JSON owns stdout; the human table moves to
  // stderr.
  std::ostream& human =
      json_path == "-" || perf_path == "-" ? std::cerr : std::cout;
  human << "=== S2: batch co-synthesis throughput ===\n\n";
  table.render(human);
  if (!json_path.empty()) {
    if (!JsonWriter::write_output(json_path, last_json)) return 1;
  }
  if (!perf_path.empty()) {
    JsonWriter w(2);
    w.begin_object();
    w.field("schema_version", 1);
    w.field("bench", "bench_batch_throughput");
    w.field("mode", serve_mode ? "server" : "batch");
    w.key("config").begin_object();
    w.field("graphs", config.count);
    w.field("nodes", config.cpg.process_count);
    w.field("paths", config.cpg.path_count);
    w.field("seed", config.base_seed);
    w.field("ready", ready);
    w.field("deadline_ms", config.deadline_ms);
    w.field("retries", config.max_retries);
    w.end_object();
    w.key("sweep").begin_array();
    for (const SweepPoint& p : points) {
      w.begin_object();
      w.field("threads", p.threads);
      w.field("wall_ms", p.wall_ms);
      w.field("graphs_per_second", p.graphs_per_second);
      w.field("timeouts", p.timeouts);
      w.field("retries", p.retries);
      if (base_wall > 0.0) {
        w.field("speedup", p.speedup);
      } else {
        // No 1-thread point in the sweep (--threads N): there is no
        // baseline to speak of, and a fabricated 0x would mislead
        // machine consumers.
        w.key("speedup").null();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!JsonWriter::write_output(perf_path, w.str() + "\n")) return 1;
  }
  return failed ? 1 : 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
}
