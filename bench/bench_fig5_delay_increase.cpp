// E4 — Fig. 5: percentage increase of the worst case delay delta_max over
// the longest-path bound delta_M, as a function of the number of merged
// schedules (10, 12, 18, 24, 32) for graphs of 60, 80 and 120 nodes.
//
// The paper uses 1080 graphs (360 per node count, i.e. 72 per cell),
// uniform and exponential execution times, and architectures of one ASIC,
// 1..11 processors and 1..8 buses. The full population takes a few
// minutes; the default here is a representative subsample. Run with
// --graphs 72 to regenerate the paper-sized experiment.
//
// Paper reference: average increase between 0.1% and 7.63%, growing with
// the number of merged schedules and nearly independent of the node
// count; zero increase for 90/82/57/46/33 percent of the graphs with
// 10/12/18/24/32 alternative paths.
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"

namespace {

using namespace cps;

constexpr std::size_t kNodeCounts[] = {60, 80, 120};
constexpr std::size_t kPathCounts[] = {10, 12, 18, 24, 32};

void run_population(std::size_t graphs_per_cell, std::uint64_t seed,
                    PriorityPolicy path_priority, const char* title_suffix) {
  AsciiTable increase(
      std::string("Fig. 5 — average increase of delta_max over delta_M "
                  "(%) ") + title_suffix);
  AsciiTable zero(std::string("Fraction of graphs with zero increase (%) ") +
                  title_suffix + " [paper: 90/82/57/46/33 by path count]");
  std::vector<std::string> head{"nodes \\ merged schedules"};
  for (std::size_t p : kPathCounts) head.push_back(std::to_string(p));
  increase.header(head);
  zero.header(head);

  for (std::size_t nodes : kNodeCounts) {
    std::vector<std::string> inc_row{std::to_string(nodes)};
    std::vector<std::string> zero_row{std::to_string(nodes)};
    for (std::size_t paths : kPathCounts) {
      StatAccumulator acc;
      for (std::size_t i = 0; i < graphs_per_cell; ++i) {
        Rng rng(++seed);
        const Architecture arch = generate_random_architecture(rng);
        RandomCpgParams params;
        params.process_count = nodes;
        params.path_count = paths;
        // Half the population uses exponential execution times (paper §6).
        params.distribution = i % 2 == 0 ? TimeDistribution::kUniform
                                         : TimeDistribution::kExponential;
        const Cpg g = generate_random_cpg(arch, params, rng);
        CoSynthesisOptions options;
        options.validate = false;  // validated exhaustively in the tests
        options.path_priority = path_priority;
        const CoSynthesisResult r = schedule_cpg(g, options);
        acc.add(r.delays.increase_percent);
      }
      inc_row.push_back(format_double(acc.mean(), 2));
      zero_row.push_back(format_double(
          100.0 * acc.fraction([](double x) { return x == 0.0; }), 0));
    }
    increase.add_row(inc_row);
    zero.add_row(zero_row);
  }
  increase.render(std::cout);
  std::cout << '\n';
  zero.render(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Fig. 5: increase of delta_max over delta_M");
  cli.add_flag("graphs", "16", "graphs per (nodes, paths) cell (paper: 72)");
  cli.add_flag("seed", "1", "base random seed");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs_per_cell =
      static_cast<std::size_t>(cli.get_int("graphs"));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "=== E4: Fig. 5 reproduction (" << graphs_per_cell
            << " graphs per cell) ===\n\n";
  run_population(graphs_per_cell, base_seed, PriorityPolicy::kCriticalPath,
                 "[critical-path per-path schedules]");
  std::cout <<
      "With uniform critical-path list scheduling the per-path schedules "
      "are mutually\nconsistent and the merge almost never perturbs any "
      "path (increase ~0, stronger\nthan the paper's 0.1%..7.63%). The "
      "paper's per-path optimizer produces more\ndivergent schedules; the "
      "variant below emulates that by scheduling each path\nwith "
      "independent random priorities, exposing the same trend as Fig. 5 "
      "(increase\ngrows with the number of merged schedules, roughly "
      "independent of node count):\n\n";
  run_population(graphs_per_cell, base_seed + 7777,
                 PriorityPolicy::kRandom,
                 "[divergent per-path schedules]");
  return 0;
}
