// S1 — component scaling: wall-clock cost of every pipeline stage
// (expansion, path enumeration, per-path scheduling, merging, validation)
// as the graph grows. Complements Fig. 6 with a per-stage breakdown.
//
// Built on the parallel batch driver: each size row is one batch of
// deterministically seeded random CPGs. `--compare` additionally runs the
// pre-heap linear-scan reference engine and reports the speedup of the
// heap engine per size; `--json FILE` dumps the machine-readable batch
// results (use "-" for stdout).
#include <iostream>

#include "sched/batch_driver.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"

namespace {

using namespace cps;

BatchResult run_size(std::size_t nodes, std::size_t graphs,
                     std::size_t paths, std::uint64_t seed,
                     std::size_t threads, ReadySelection ready) {
  BatchConfig config;
  config.count = graphs;
  config.base_seed = seed;
  config.threads = threads;
  config.cpg.process_count = nodes;
  config.cpg.path_count = paths;
  config.synthesis.merge.ready = ready;
  // The batch already parallelizes across graphs; keep per-item merges
  // serial so the engine-comparison timings are not skewed by the shared
  // speculation pool (identical tables either way).
  config.synthesis.merge.execution = MergeExecution::kSerial;
  return run_batch(config);
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("pipeline stage scaling");
  cli.add_flag("graphs", "6", "graphs per size");
  cli.add_flag("paths", "12", "alternative paths per graph");
  cli.add_flag("seed", "5", "base random seed");
  cli.add_flag("sizes", "40,80,160,320", "comma-separated node counts");
  cli.add_flag("threads", "1", "worker threads per batch (0 = hardware)");
  cli.add_flag("json", "", "dump batch results as JSON to FILE (- = stdout)");
  cli.add_bool("compare", "also run the linear-scan reference engine and "
                          "report the heap speedup");
  if (!cli.parse(argc, argv)) return 0;
  const std::size_t graphs = cli.get_count("graphs", 1);
  const std::size_t paths = cli.get_count("paths", 1);
  const std::size_t threads = cli.get_count("threads", 0);
  const auto seed = static_cast<std::uint64_t>(cli.get_count("seed", 0));
  const std::vector<std::size_t> sizes = cli.get_count_list("sizes");
  const bool compare = cli.get_bool("compare");

  AsciiTable table("S1 — pipeline stage cost (ms, averaged over " +
                   std::to_string(graphs) + " graphs, " +
                   std::to_string(paths) + " paths, heap engine)");
  std::vector<std::string> cols = {"nodes", "expand", "enumerate",
                                   "schedule paths", "merge", "validate",
                                   "tasks", "table cells"};
  if (compare) {
    cols.push_back("linear sched");
    cols.push_back("linear merge");
    cols.push_back("speedup");
  }
  table.header(cols);

  std::vector<std::string> json_batches;
  bool failed = false;
  const auto note_failures = [&failed](const BatchResult& result,
                                       const char* engine) {
    if (result.summary.ok_count == result.summary.count) return;
    for (const BatchItem& item : result.items) {
      if (!item.ok) {
        std::cerr << engine << " graph seed " << item.seed
                  << " failed: " << item.error << '\n';
      }
    }
    failed = true;
  };
  for (std::size_t nodes : sizes) {
    const BatchResult heap = run_size(nodes, graphs, paths, seed, threads,
                                      ReadySelection::kHeap);
    const BatchSummary& s = heap.summary;
    note_failures(heap, "heap");
    table.cell(static_cast<std::int64_t>(nodes))
        .cell(s.expand_ms.mean(), 3)
        .cell(s.enumerate_ms.mean(), 3)
        .cell(s.schedule_ms.mean(), 3)
        .cell(s.merge_ms.mean(), 3)
        .cell(s.validate_ms.mean(), 3)
        .cell(s.tasks.mean(), 0)
        .cell(s.table_entries.mean(), 0);
    if (compare) {
      const BatchResult linear = run_size(nodes, graphs, paths, seed,
                                          threads,
                                          ReadySelection::kLinearScan);
      note_failures(linear, "linear-scan");
      const double heap_core =
          s.schedule_ms.mean() + s.merge_ms.mean();
      const double linear_core = linear.summary.schedule_ms.mean() +
                                 linear.summary.merge_ms.mean();
      table.cell(linear.summary.schedule_ms.mean(), 3)
          .cell(linear.summary.merge_ms.mean(), 3)
          .cell(heap_core > 0.0 ? linear_core / heap_core : 0.0, 2);
      if (!cli.get_string("json").empty()) {
        // The dump carries both engines; config.ready_selection tells
        // them apart.
        json_batches.push_back(batch_result_to_json(linear));
      }
    }
    table.end_row();
    if (!cli.get_string("json").empty()) {
      json_batches.push_back(batch_result_to_json(heap));
    }
  }

  const std::string json_path = cli.get_string("json");
  // With --json - the JSON owns stdout; the human table moves to stderr.
  std::ostream& human = json_path == "-" ? std::cerr : std::cout;
  human << "=== S1: pipeline scaling ===\n\n";
  table.render(human);
  if (!json_path.empty()) {
    // One JSON array with one batch object per size (each
    // batch_result_to_json string is a complete object).
    std::string json_out = "[\n";
    for (std::size_t i = 0; i < json_batches.size(); ++i) {
      std::string batch = json_batches[i];
      while (!batch.empty() && batch.back() == '\n') batch.pop_back();
      json_out += batch;
      json_out += (i + 1 < json_batches.size()) ? ",\n" : "\n";
    }
    json_out += "]\n";
    if (!JsonWriter::write_output(json_path, json_out)) return 1;
  }
  return failed ? 1 : 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
}
