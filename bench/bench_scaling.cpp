// S1 — component scaling: wall-clock cost of every pipeline stage
// (expansion, path enumeration, per-path scheduling, merging, validation)
// as the graph grows. Complements Fig. 6 with a per-stage breakdown.
#include <chrono>
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  using clock = std::chrono::steady_clock;
  CliParser cli("pipeline stage scaling");
  cli.add_flag("graphs", "6", "graphs per size");
  cli.add_flag("paths", "12", "alternative paths per graph");
  cli.add_flag("seed", "5", "base random seed");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));
  const auto paths = static_cast<std::size_t>(cli.get_int("paths"));

  const std::size_t sizes[] = {40, 80, 160, 320};

  AsciiTable table("S1 — pipeline stage cost (ms, averaged over " +
                   std::to_string(graphs) + " graphs, " +
                   std::to_string(paths) + " paths)");
  table.header({"nodes", "expand", "enumerate", "schedule paths", "merge",
                "validate", "tasks", "table cells"});

  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t nodes : sizes) {
    StatAccumulator expand_ms, enum_ms, sched_ms, merge_ms, val_ms;
    StatAccumulator tasks, cells;
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng(++seed);
      const Architecture arch = generate_random_architecture(rng);
      RandomCpgParams params;
      params.process_count = nodes;
      params.path_count = paths;
      const Cpg g = generate_random_cpg(arch, params, rng);

      auto t0 = clock::now();
      const FlatGraph fg = FlatGraph::expand(g);
      auto t1 = clock::now();
      const auto alt = enumerate_paths(g);
      auto t2 = clock::now();
      std::vector<PathSchedule> schedules;
      for (const AltPath& p : alt) schedules.push_back(schedule_path(fg, p));
      auto t3 = clock::now();
      const MergeResult merged = merge_schedules(fg, alt, schedules);
      auto t4 = clock::now();
      const TableValidation v = validate_table(fg, merged.table, alt);
      auto t5 = clock::now();
      if (!v.ok) {
        std::cerr << "validation failed: " << v.violations.front() << '\n';
        return 1;
      }
      auto ms = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
      };
      expand_ms.add(ms(t0, t1));
      enum_ms.add(ms(t1, t2));
      sched_ms.add(ms(t2, t3));
      merge_ms.add(ms(t3, t4));
      val_ms.add(ms(t4, t5));
      tasks.add(static_cast<double>(fg.task_count()));
      cells.add(static_cast<double>(merged.table.entry_count()));
    }
    table.cell(static_cast<std::int64_t>(nodes))
        .cell(expand_ms.mean(), 3)
        .cell(enum_ms.mean(), 3)
        .cell(sched_ms.mean(), 3)
        .cell(merge_ms.mean(), 3)
        .cell(val_ms.mean(), 3)
        .cell(tasks.mean(), 0)
        .cell(cells.mean(), 0);
    table.end_row();
  }
  std::cout << "=== S1: pipeline scaling ===\n\n";
  table.render(std::cout);
  return 0;
}
