// S1 — component scaling: wall-clock cost of every pipeline stage
// (expansion, path enumeration, per-path scheduling, merging, validation)
// as the graph grows. Complements Fig. 6 with a per-stage breakdown.
//
// Built on the parallel batch driver: each size row is one batch of
// deterministically seeded random CPGs. `--compare` additionally runs the
// pre-heap linear-scan reference engine and reports the speedup of the
// heap engine per size; `--json FILE` dumps the machine-readable batch
// results (use "-" for stdout).
//
// `--compare-tree` switches to the guard-trie equivalence/speedup mode:
// each seeded CPG is co-synthesized with the retained path-list reference
// (PathScheduling::kList) and with the guard-trie walk
// (PathScheduling::kTree) at every --tree-threads count; any
// schedule-table mismatch exits non-zero (the CI gate), and the report
// quotes the schedule-stage speedup plus the prefix-reuse counters. Deep
// condition nests (high --paths) are the regime where the trie wins.
#include <iostream>

#include "cpg/builder.hpp"
#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/batch_driver.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"

namespace {

using namespace cps;

BatchResult run_size(std::size_t nodes, std::size_t graphs,
                     std::size_t paths, std::uint64_t seed,
                     std::size_t threads, ReadySelection ready) {
  BatchConfig config;
  config.count = graphs;
  config.base_seed = seed;
  config.threads = threads;
  config.cpg.process_count = nodes;
  config.cpg.path_count = paths;
  config.synthesis.merge.ready = ready;
  // The batch already parallelizes across graphs; keep per-item merges
  // serial so the engine-comparison timings are not skewed by the shared
  // speculation pool (identical tables either way).
  config.synthesis.merge.execution = MergeExecution::kSerial;
  return run_batch(config);
}

bool tables_equal(const CoSynthesisResult& a, const CoSynthesisResult& b) {
  return a.table == b.table && a.delays.delta_m == b.delays.delta_m &&
         a.delays.delta_max == b.delays.delta_max;
}

/// Deep condition nest: balanced two-arm conditional regions in series on
/// one processor, arm chains sized so the process count lands near
/// `nodes` and the leaf count near `paths`. Both arms of a region share
/// their (randomly drawn) durations, so the shared prefix's critical-path
/// priorities are identical across sibling paths — the regime where
/// checkpointed prefix reuse pays (heterogeneous arms shift priorities at
/// t=0 and the engine adaptively falls back to plain from-scratch runs).
Cpg deep_nest_cpg(std::size_t nodes, std::size_t paths, Rng& rng) {
  std::size_t regions = 1;
  while ((std::size_t{1} << regions) < paths && regions < 12) ++regions;
  // Two processors + a broadcast bus: regions alternate PEs, so condition
  // values cross resources through broadcast tasks and the engine's
  // per-step work (bus contention, knowledge checks) is realistic.
  Architecture arch;
  arch.add_processor("cpu0");
  arch.add_processor("cpu1");
  arch.add_bus("bus");
  arch.set_cond_broadcast_time(1);
  CpgBuilder b(arch);
  const std::size_t per_arm = std::max<std::size_t>(
      1, (nodes > 2 * regions ? nodes - 2 * regions : regions) /
             (2 * regions));
  std::optional<ProcessId> prev;
  for (std::size_t i = 0; i < regions; ++i) {
    const std::string n = std::to_string(i);
    const PeId pe = static_cast<PeId>(i % 2);
    const CondId c = b.add_condition("C" + n);
    const ProcessId d =
        b.add_process("D" + n, pe, static_cast<Time>(1 + rng.index(6)));
    if (prev) b.add_edge(*prev, d, /*comm_time=*/2);
    std::vector<Time> durations(per_arm);
    for (Time& t : durations) t = static_cast<Time>(1 + rng.index(9));
    const ProcessId join = b.add_process("J" + n, pe, 1);
    for (bool arm : {true, false}) {
      ProcessId head = d;
      for (std::size_t k = 0; k < per_arm; ++k) {
        const ProcessId p =
            b.add_process((arm ? "T" : "F") + n + "_" + std::to_string(k),
                          pe, durations[k]);
        if (k == 0) {
          b.add_cond_edge(head, p, Literal{c, arm});
        } else {
          b.add_edge(head, p);
        }
        head = p;
      }
      b.add_edge(head, join);
    }
    b.mark_conjunction(join);
    prev = join;
  }
  return b.build();
}

/// Guard-trie equivalence + speedup mode (--compare-tree). Returns the
/// process exit code: non-zero on any tree-vs-list table mismatch.
int run_compare_tree(const CliParser& cli) {
  const std::size_t graphs = cli.get_count("graphs", 1);
  const std::size_t paths = cli.get_count("paths", 1);
  const auto seed = static_cast<std::uint64_t>(cli.get_count("seed", 0));
  const std::vector<std::size_t> sizes = cli.get_count_list("sizes");
  const std::vector<std::size_t> thread_counts =
      cli.get_count_list("tree-threads");

  bool all_identical = true;
  std::size_t nest_resumes = 0;
  double nest_list_ms = 0.0;
  double nest_tree_ms = 0.0;
  std::uint64_t next_seed = seed;

  // One row per (workload, size): random CPGs stress equivalence on
  // adversarial shapes, the deep nest demonstrates the prefix-reuse win.
  const auto run_rows = [&](AsciiTable& table, bool nest) {
    for (std::size_t nodes : sizes) {
      double list_ms = 0.0;
      double tree_ms = 0.0;
      std::size_t resumes = 0;
      std::size_t steps = 0;
      bool identical = true;
      for (std::size_t i = 0; i < graphs; ++i) {
        Rng rng(++next_seed);
        Cpg g = [&] {
          if (nest) return deep_nest_cpg(nodes, paths, rng);
          const Architecture arch = generate_random_architecture(rng);
          RandomCpgParams params;
          params.process_count = nodes;
          params.path_count = paths;
          return generate_random_cpg(arch, params, rng);
        }();

        CoSynthesisOptions list;
        list.path_scheduling = PathScheduling::kList;
        const CoSynthesisResult reference = schedule_cpg(g, list);
        list_ms += reference.timings.schedule_ms;

        for (std::size_t threads : thread_counts) {
          CoSynthesisOptions tree;
          tree.path_scheduling = PathScheduling::kTree;
          tree.schedule_threads = threads;
          const CoSynthesisResult result = schedule_cpg(g, tree);
          if (threads == thread_counts.front()) {
            tree_ms += result.timings.schedule_ms;
            resumes += result.tree.prefix_resumes;
            steps += result.tree.resumed_steps;
          }
          if (!tables_equal(result, reference)) {
            identical = false;
            std::cerr << "ERROR: tree scheduling diverged from the "
                         "path-list reference ("
                      << (nest ? "nest" : "random") << " nodes=" << nodes
                      << " paths=" << paths << " seed=" << next_seed
                      << " threads=" << threads << ")\n";
          }
        }
      }
      all_identical = all_identical && identical;
      if (nest) {
        nest_list_ms += list_ms;
        nest_tree_ms += tree_ms;
        nest_resumes += resumes;
      }
      table.cell(static_cast<std::int64_t>(nodes))
          .cell(list_ms, 3)
          .cell(tree_ms, 3)
          .cell(tree_ms > 0.0 ? list_ms / tree_ms : 0.0, 2)
          .cell(static_cast<std::int64_t>(resumes))
          .cell(static_cast<std::int64_t>(steps))
          .cell(identical ? "identical" : "DIVERGED")
          .end_row();
    }
  };

  const std::vector<std::string> head = {
      "nodes", "list sched ms", "tree sched ms", "speedup",
      "prefix resumes", "steps skipped", "tables"};
  AsciiTable random_table("Random CPGs (" + std::to_string(graphs) +
                          " graphs per size, " + std::to_string(paths) +
                          " paths)");
  random_table.header(head);
  run_rows(random_table, /*nest=*/false);
  AsciiTable nest_table("Deep condition nest (balanced arms, " +
                        std::to_string(paths) + " leaves)");
  nest_table.header(head);
  run_rows(nest_table, /*nest=*/true);

  std::cout << "=== S1: guard-trie scheduling vs path-list reference ===\n\n";
  random_table.render(std::cout);
  std::cout << '\n';
  nest_table.render(std::cout);
  std::cout << "\ndeep-nest per-path scheduling: list "
            << format_double(nest_list_ms, 1) << " ms, tree ("
            << std::to_string(thread_counts.front()) << " thread"
            << (thread_counts.front() == 1 ? "" : "s") << ") "
            << format_double(nest_tree_ms, 1) << " ms, speedup "
            << format_double(nest_list_ms / std::max(nest_tree_ms, 1e-9), 2)
            << "x, " << nest_resumes << " prefix resumes\n";
  std::cout << (all_identical
                    ? "tables: byte-identical across scheduling modes and "
                      "thread counts\n"
                    : "tables: DIVERGED — see errors above\n");
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("pipeline stage scaling");
  cli.add_flag("graphs", "6", "graphs per size");
  cli.add_flag("paths", "12", "alternative paths per graph");
  cli.add_flag("seed", "5", "base random seed");
  cli.add_flag("sizes", "40,80,160,320", "comma-separated node counts");
  cli.add_flag("threads", "1", "worker threads per batch (0 = hardware)");
  cli.add_flag("json", "", "dump batch results as JSON to FILE (- = stdout)");
  cli.add_bool("compare", "also run the linear-scan reference engine and "
                          "report the heap speedup");
  cli.add_bool("compare-tree",
               "guard-trie mode: verify tree-vs-list schedule-table "
               "identity at every --tree-threads count and report the "
               "schedule-stage speedup (exits non-zero on any mismatch)");
  cli.add_flag("tree-threads", "1,2,4,8",
               "comma-separated tree-mode thread counts for --compare-tree");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get_bool("compare-tree")) return run_compare_tree(cli);
  const std::size_t graphs = cli.get_count("graphs", 1);
  const std::size_t paths = cli.get_count("paths", 1);
  const std::size_t threads = cli.get_count("threads", 0);
  const auto seed = static_cast<std::uint64_t>(cli.get_count("seed", 0));
  const std::vector<std::size_t> sizes = cli.get_count_list("sizes");
  const bool compare = cli.get_bool("compare");

  AsciiTable table("S1 — pipeline stage cost (ms, averaged over " +
                   std::to_string(graphs) + " graphs, " +
                   std::to_string(paths) + " paths, heap engine)");
  std::vector<std::string> cols = {"nodes", "expand", "enumerate",
                                   "schedule paths", "merge", "validate",
                                   "tasks", "table cells"};
  if (compare) {
    cols.push_back("linear sched");
    cols.push_back("linear merge");
    cols.push_back("speedup");
  }
  table.header(cols);

  std::vector<std::string> json_batches;
  bool failed = false;
  const auto note_failures = [&failed](const BatchResult& result,
                                       const char* engine) {
    if (result.summary.ok_count == result.summary.count) return;
    for (const BatchItem& item : result.items) {
      if (!item.ok) {
        std::cerr << engine << " graph seed " << item.seed
                  << " failed: " << item.error << '\n';
      }
    }
    failed = true;
  };
  for (std::size_t nodes : sizes) {
    const BatchResult heap = run_size(nodes, graphs, paths, seed, threads,
                                      ReadySelection::kHeap);
    const BatchSummary& s = heap.summary;
    note_failures(heap, "heap");
    table.cell(static_cast<std::int64_t>(nodes))
        .cell(s.expand_ms.mean(), 3)
        .cell(s.enumerate_ms.mean(), 3)
        .cell(s.schedule_ms.mean(), 3)
        .cell(s.merge_ms.mean(), 3)
        .cell(s.validate_ms.mean(), 3)
        .cell(s.tasks.mean(), 0)
        .cell(s.table_entries.mean(), 0);
    if (compare) {
      const BatchResult linear = run_size(nodes, graphs, paths, seed,
                                          threads,
                                          ReadySelection::kLinearScan);
      note_failures(linear, "linear-scan");
      const double heap_core =
          s.schedule_ms.mean() + s.merge_ms.mean();
      const double linear_core = linear.summary.schedule_ms.mean() +
                                 linear.summary.merge_ms.mean();
      table.cell(linear.summary.schedule_ms.mean(), 3)
          .cell(linear.summary.merge_ms.mean(), 3)
          .cell(heap_core > 0.0 ? linear_core / heap_core : 0.0, 2);
      if (!cli.get_string("json").empty()) {
        // The dump carries both engines; config.ready_selection tells
        // them apart.
        json_batches.push_back(batch_result_to_json(linear));
      }
    }
    table.end_row();
    if (!cli.get_string("json").empty()) {
      json_batches.push_back(batch_result_to_json(heap));
    }
  }

  const std::string json_path = cli.get_string("json");
  // With --json - the JSON owns stdout; the human table moves to stderr.
  std::ostream& human = json_path == "-" ? std::cerr : std::cout;
  human << "=== S1: pipeline scaling ===\n\n";
  table.render(human);
  if (!json_path.empty()) {
    // One JSON array with one batch object per size (each
    // batch_result_to_json string is a complete object).
    std::string json_out = "[\n";
    for (std::size_t i = 0; i < json_batches.size(); ++i) {
      std::string batch = json_batches[i];
      while (!batch.empty() && batch.back() == '\n') batch.pop_back();
      json_out += batch;
      json_out += (i + 1 < json_batches.size()) ? ",\n" : "\n";
    }
    json_out += "]\n";
    if (!JsonWriter::write_output(json_path, json_out)) return 1;
  }
  return failed ? 1 : 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
}
