// A2 — ablation of the per-path list-scheduling priority function (the
// companion report [5] uses critical-path priorities). We compare the
// delta_M obtained with critical-path, static task-order and random
// priorities on the Fig. 5 workload: worse per-path schedules inflate the
// bound every merge result is measured against.
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  CliParser cli("list-scheduler priority ablation");
  cli.add_flag("graphs", "32", "number of random graphs");
  cli.add_flag("nodes", "80", "graph size");
  cli.add_flag("paths", "12", "alternative paths per graph");
  cli.add_flag("seed", "3", "base random seed");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));

  const PriorityPolicy policies[] = {PriorityPolicy::kCriticalPath,
                                     PriorityPolicy::kTaskOrder,
                                     PriorityPolicy::kRandom};

  // delta_M per policy, averaged over the population; critical-path is
  // the reference (ratio 1.0).
  std::vector<StatAccumulator> delta(std::size(policies));
  std::vector<StatAccumulator> ratio(std::size(policies));

  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t i = 0; i < graphs; ++i) {
    Rng rng(++seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = static_cast<std::size_t>(cli.get_int("nodes"));
    params.path_count = static_cast<std::size_t>(cli.get_int("paths"));
    const Cpg g = generate_random_cpg(arch, params, rng);
    const FlatGraph fg = FlatGraph::expand(g);
    const auto alt = enumerate_paths(g);

    std::vector<Time> dm(std::size(policies), 0);
    for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
      Rng prio_rng(1234);
      for (const AltPath& path : alt) {
        const PathSchedule s =
            schedule_path(fg, path, policies[pi], &prio_rng);
        dm[pi] = std::max(dm[pi], s.delay(fg));
      }
      delta[pi].add(static_cast<double>(dm[pi]));
    }
    for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
      ratio[pi].add(static_cast<double>(dm[pi]) /
                    static_cast<double>(dm[0]));
    }
  }

  AsciiTable table("A2 — per-path scheduling priority ablation (" +
                   std::to_string(graphs) + " graphs)");
  table.header({"priority policy", "avg delta_M", "avg ratio vs critical",
                "worst ratio"});
  for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
    table.cell(to_string(policies[pi]))
        .cell(delta[pi].mean(), 1)
        .cell(ratio[pi].mean(), 3)
        .cell(ratio[pi].max(), 3);
    table.end_row();
  }
  std::cout << "=== A2: list-scheduler priority ablation ===\n\n";
  table.render(std::cout);
  std::cout << "\nexpected: critical-path priorities give the shortest "
               "per-path schedules; the\nuninformed policies trail by a "
               "visible margin.\n";
  return 0;
}
