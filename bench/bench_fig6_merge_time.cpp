// E5 — Fig. 6: execution time of the schedule-merging algorithm as a
// function of the number of merged schedules, for 60/80/120-node graphs.
//
// Paper reference (SPARCstation 20, 1998): 0.05s .. 0.25s, growing with
// the number of merged schedules and only weakly with the node count.
// Absolute times on a modern machine are far smaller; the *shape* is the
// reproduction target. The per-path list scheduling itself is also timed
// (paper: < 0.003 s for 120-node graphs).
//
// --compare additionally times the speculative parallel merger
// (MergeExecution::kSpeculative, --threads workers) against the serial
// reference on identical inputs, verifies the tables are byte-identical,
// and reports the wall-clock speedup per cell.
#include <chrono>
#include <iostream>
#include <memory>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cps;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("Fig. 6: execution time of schedule merging");
  cli.add_flag("graphs", "8", "graphs per (nodes, paths) cell");
  cli.add_flag("seed", "42", "base random seed");
  cli.add_flag("nodes", "60,80,120", "comma-separated node counts");
  cli.add_flag("paths", "10,12,18,24,32",
               "comma-separated merged-schedule counts");
  cli.add_flag("threads", "0",
               "speculative merge worker threads (0 = hardware)");
  cli.add_bool("compare",
               "run the speculative parallel merger against the serial "
               "reference, verify identical tables, report speedups");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs_per_cell = cli.get_count("graphs", 1);
  const auto threads = cli.get_count("threads", 0);
  const bool compare = cli.get_bool("compare");
  const std::vector<std::size_t> node_counts = cli.get_count_list("nodes");
  const std::vector<std::size_t> path_counts = cli.get_count_list("paths");

  AsciiTable merge_time("Fig. 6 — serial schedule merging time "
                        "(milliseconds)");
  AsciiTable sched_time(
      "Per-path list scheduling time, all paths together (milliseconds)");
  AsciiTable speedup_table("Speculative merge: serial ms / parallel ms = "
                           "speedup (mean conditions per graph)");
  std::vector<std::string> head{"nodes \\ merged schedules"};
  for (std::size_t p : path_counts) head.push_back(std::to_string(p));
  merge_time.header(head);
  sched_time.header(head);
  speedup_table.header(head);

  double total_serial_ms = 0.0;
  double total_parallel_ms = 0.0;
  bool all_identical = true;

  // One pool for the whole run: worker spawn/join stays out of the timed
  // merge regions.
  std::unique_ptr<ThreadPool> pool;
  if (compare) pool = std::make_unique<ThreadPool>(threads);

  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t nodes : node_counts) {
    std::vector<std::string> mrow{std::to_string(nodes)};
    std::vector<std::string> srow{std::to_string(nodes)};
    std::vector<std::string> prow{std::to_string(nodes)};
    for (std::size_t paths : path_counts) {
      StatAccumulator merge_ms;
      StatAccumulator sched_ms;
      StatAccumulator parallel_ms;
      StatAccumulator conditions;
      for (std::size_t i = 0; i < graphs_per_cell; ++i) {
        Rng rng(++seed);
        const Architecture arch = generate_random_architecture(rng);
        RandomCpgParams params;
        params.process_count = nodes;
        params.path_count = paths;
        const Cpg g = generate_random_cpg(arch, params, rng);
        const FlatGraph fg = FlatGraph::expand(g);
        conditions.add(static_cast<double>(g.conditions().size()));

        // Enumeration streams, but its cost is excluded from the
        // list-scheduling figure (the paper quotes them separately).
        std::vector<AltPath> alt;
        std::vector<PathSchedule> schedules;
        CoverCache cache;
        PathEnumerator en(g);
        double cell_sched_ms = 0.0;
        while (auto path = en.next()) {
          alt.push_back(std::move(*path));
          const auto t_sched = clock_type::now();
          schedules.push_back(schedule_path(fg, alt.back(),
                                            PriorityPolicy::kCriticalPath,
                                            nullptr, ReadySelection::kHeap,
                                            &cache));
          cell_sched_ms += ms_since(t_sched);
        }
        sched_ms.add(cell_sched_ms);

        MergeOptions serial;
        serial.execution = MergeExecution::kSerial;
        auto t0 = clock_type::now();
        const MergeResult serial_result =
            merge_schedules(fg, alt, schedules, serial);
        merge_ms.add(ms_since(t0));

        if (compare) {
          MergeOptions parallel;
          parallel.execution = MergeExecution::kSpeculative;
          parallel.pool = pool.get();
          t0 = clock_type::now();
          const MergeResult parallel_result =
              merge_schedules(fg, alt, schedules, parallel);
          parallel_ms.add(ms_since(t0));
          if (serial_result.table != parallel_result.table) {
            all_identical = false;
            std::cerr << "ERROR: speculative merge diverged from the "
                         "serial reference (nodes="
                      << nodes << " paths=" << paths << " seed=" << seed
                      << ")\n";
          }
        }
      }
      mrow.push_back(format_double(merge_ms.mean(), 3));
      srow.push_back(format_double(sched_ms.mean(), 3));
      if (compare) {
        const double s = merge_ms.mean() * graphs_per_cell;
        const double p = parallel_ms.mean() * graphs_per_cell;
        total_serial_ms += s;
        total_parallel_ms += p;
        prow.push_back(format_double(merge_ms.mean(), 3) + " / " +
                       format_double(parallel_ms.mean(), 3) + " = " +
                       format_double(merge_ms.mean() /
                                         std::max(parallel_ms.mean(), 1e-9),
                                     2) +
                       "x (" + format_double(conditions.mean(), 1) + ")");
      }
    }
    merge_time.add_row(mrow);
    sched_time.add_row(srow);
    if (compare) speedup_table.add_row(prow);
  }

  std::cout << "=== E5: Fig. 6 reproduction (" << graphs_per_cell
            << " graphs per cell) ===\n\n";
  merge_time.render(std::cout);
  std::cout << '\n';
  sched_time.render(std::cout);
  if (compare) {
    std::cout << '\n';
    speedup_table.render(std::cout);
    std::cout << "\ntotal merge wall clock: serial "
              << format_double(total_serial_ms, 1) << " ms, speculative ("
              << (threads == 0 ? std::string("hardware")
                               : std::to_string(threads))
              << " threads) " << format_double(total_parallel_ms, 1)
              << " ms, speedup "
              << format_double(total_serial_ms /
                                   std::max(total_parallel_ms, 1e-9),
                               2)
              << "x\n";
    std::cout << (all_identical
                      ? "tables: byte-identical across execution modes\n"
                      : "tables: DIVERGED — see errors above\n");
    if (!all_identical) return 1;
  }
  std::cout << "\npaper shape: merge time grows with the number of merged "
               "schedules (0.05s..0.25s\non a 1998 SPARCstation 20) and "
               "depends only weakly on the node count.\n";
  return 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
}
