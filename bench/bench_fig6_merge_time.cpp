// E5 — Fig. 6: execution time of the schedule-merging algorithm as a
// function of the number of merged schedules, for 60/80/120-node graphs.
//
// Paper reference (SPARCstation 20, 1998): 0.05s .. 0.25s, growing with
// the number of merged schedules and only weakly with the node count.
// Absolute times on a modern machine are far smaller; the *shape* is the
// reproduction target. The per-path list scheduling itself is also timed
// (paper: < 0.003 s for 120-node graphs).
#include <chrono>
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  using clock = std::chrono::steady_clock;
  CliParser cli("Fig. 6: execution time of schedule merging");
  cli.add_flag("graphs", "8", "graphs per (nodes, paths) cell");
  cli.add_flag("seed", "42", "base random seed");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs_per_cell =
      static_cast<std::size_t>(cli.get_int("graphs"));

  const std::size_t node_counts[] = {60, 80, 120};
  const std::size_t path_counts[] = {10, 12, 18, 24, 32};

  AsciiTable merge_time("Fig. 6 — schedule merging time (milliseconds)");
  AsciiTable sched_time(
      "Per-path list scheduling time, all paths together (milliseconds)");
  std::vector<std::string> head{"nodes \\ merged schedules"};
  for (std::size_t p : path_counts) head.push_back(std::to_string(p));
  merge_time.header(head);
  sched_time.header(head);

  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t nodes : node_counts) {
    std::vector<std::string> mrow{std::to_string(nodes)};
    std::vector<std::string> srow{std::to_string(nodes)};
    for (std::size_t paths : path_counts) {
      StatAccumulator merge_ms;
      StatAccumulator sched_ms;
      for (std::size_t i = 0; i < graphs_per_cell; ++i) {
        Rng rng(++seed);
        const Architecture arch = generate_random_architecture(rng);
        RandomCpgParams params;
        params.process_count = nodes;
        params.path_count = paths;
        const Cpg g = generate_random_cpg(arch, params, rng);
        const FlatGraph fg = FlatGraph::expand(g);
        const auto alt = enumerate_paths(g);

        auto t0 = clock::now();
        std::vector<PathSchedule> schedules;
        schedules.reserve(alt.size());
        for (const AltPath& path : alt) {
          schedules.push_back(schedule_path(fg, path));
        }
        auto t1 = clock::now();
        const MergeResult merged = merge_schedules(fg, alt, schedules);
        auto t2 = clock::now();
        (void)merged;

        sched_ms.add(std::chrono::duration<double, std::milli>(t1 - t0)
                         .count());
        merge_ms.add(std::chrono::duration<double, std::milli>(t2 - t1)
                         .count());
      }
      mrow.push_back(format_double(merge_ms.mean(), 3));
      srow.push_back(format_double(sched_ms.mean(), 3));
    }
    merge_time.add_row(mrow);
    sched_time.add_row(srow);
  }

  std::cout << "=== E5: Fig. 6 reproduction (" << graphs_per_cell
            << " graphs per cell) ===\n\n";
  merge_time.render(std::cout);
  std::cout << '\n';
  sched_time.render(std::cout);
  std::cout << "\npaper shape: merge time grows with the number of merged "
               "schedules (0.05s..0.25s\non a 1998 SPARCstation 20) and "
               "depends only weakly on the node count.\n";
  return 0;
}
