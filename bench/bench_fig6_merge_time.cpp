// E5 — Fig. 6: execution time of the schedule-merging algorithm as a
// function of the number of merged schedules, for 60/80/120-node graphs.
//
// Paper reference (SPARCstation 20, 1998): 0.05s .. 0.25s, growing with
// the number of merged schedules and only weakly with the node count.
// Absolute times on a modern machine are far smaller; the *shape* is the
// reproduction target. The per-path list scheduling itself is also timed
// (paper: < 0.003 s for 120-node graphs).
//
// --compare additionally times the speculative parallel merger
// (MergeExecution::kSpeculative, --threads workers) against the serial
// reference on identical inputs, verifies the tables are byte-identical,
// and reports the wall-clock speedup per cell.
//
// --compare-resume does the same for the incremental-rescheduling knob:
// it re-merges every graph serially with EngineResume::kFromScratch (the
// retained reference) and verifies the table is byte-identical to the
// --resume mode under test; any mismatch exits non-zero (CI equivalence
// gate). --resume scratch|checkpoint selects the engine-resume mode of
// the timed merges (default: checkpoint, the production default).
//
// --json-out FILE writes the measurements in a stable machine-readable
// schema (see write_json below); --baseline FILE reads a previous
// --json-out dump (e.g. the committed BENCH_baseline.json) and reports the
// schedule+merge speedup of this run against it. The baseline comparison
// is informational only — it never fails the run, so CI stays robust to
// host-speed differences.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cps;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

/// One (nodes, paths) cell of the measurement grid.
struct CellResult {
  std::size_t nodes = 0;
  std::size_t paths = 0;
  double merge_serial_ms = 0.0;  // mean over the cell's graphs
  double sched_ms = 0.0;
  double merge_parallel_ms = 0.0;  // --compare only
  double merge_scratch_ms = 0.0;   // --compare-resume only
  double conditions_mean = 0.0;
};

/// Machine-readable dump (schema_version 2): config, per-cell means, and
/// run totals. The config block names the engine (heap/linear), the
/// per-path scheduling walk (tree/list) and the resume mode, so committed
/// trajectory points (BENCH_baseline.json, BENCH_pr4.json, ...) are
/// self-describing instead of requiring CHANGES.md archaeology.
std::string cells_to_json(const CliParser& cli, bool compare,
                          bool compare_resume, std::size_t graphs_per_cell,
                          const std::vector<CellResult>& cells,
                          double total_serial_ms, double total_parallel_ms,
                          double total_scratch_ms, double total_sched_ms) {
  JsonWriter w(2);
  w.begin_object();
  w.field("schema_version", 2);
  w.field("bench", "bench_fig6_merge_time");
  w.key("config").begin_object();
  w.field("graphs_per_cell", graphs_per_cell);
  w.field("seed", cli.get_int("seed"));
  w.field("nodes", cli.get_string("nodes"));
  w.field("paths", cli.get_string("paths"));
  w.field("threads", cli.get_count("threads", 0));
  w.field("compare", compare);
  w.field("engine", cli.get_string("engine"));
  w.field("sched", cli.get_string("sched"));
  w.field("resume", cli.get_string("resume"));
  w.field("compare_resume", compare_resume);
  w.end_object();
  w.key("cells").begin_array();
  for (const CellResult& cell : cells) {
    w.begin_object();
    w.field("nodes", cell.nodes);
    w.field("paths", cell.paths);
    w.field("conditions_mean", cell.conditions_mean);
    w.field("sched_ms", cell.sched_ms);
    w.field("merge_serial_ms", cell.merge_serial_ms);
    if (compare) {
      w.field("merge_parallel_ms", cell.merge_parallel_ms);
      w.field("speedup", cell.merge_serial_ms /
                             std::max(cell.merge_parallel_ms, 1e-9));
    }
    if (compare_resume) {
      w.field("merge_scratch_ms", cell.merge_scratch_ms);
      w.field("resume_speedup", cell.merge_scratch_ms /
                                    std::max(cell.merge_serial_ms, 1e-9));
    }
    w.end_object();
  }
  w.end_array();
  w.key("totals").begin_object();
  w.field("sched_ms", total_sched_ms);
  w.field("merge_serial_ms", total_serial_ms);
  w.field("sched_plus_merge_ms", total_sched_ms + total_serial_ms);
  if (compare) {
    w.field("merge_parallel_ms", total_parallel_ms);
    w.field("parallel_speedup",
            total_serial_ms / std::max(total_parallel_ms, 1e-9));
  }
  if (compare_resume) {
    w.field("merge_scratch_ms", total_scratch_ms);
    w.field("resume_speedup",
            total_scratch_ms / std::max(total_serial_ms, 1e-9));
  }
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

/// Report this run against a committed --json-out dump. Informational:
/// prints the ratio (baseline slower => ratio > 1) and never fails. Only
/// runs with the baseline's exact workload are compared — a ratio across
/// different graph counts or sizes would be meaningless.
void report_against_baseline(std::ostream& os, const std::string& path,
                             const CliParser& cli,
                             std::size_t graphs_per_cell, double sched_ms,
                             double serial_ms) {
  JsonValue baseline;
  try {
    baseline = JsonValue::parse_file(path);
  } catch (const ParseError& e) {
    os << "baseline " << path << " not usable (" << e.what()
              << ") — skipping comparison\n";
    return;
  }
  try {
    const JsonValue& config = baseline.at("config");
    const bool same_workload =
        config.at("graphs_per_cell").as_int() ==
            static_cast<std::int64_t>(graphs_per_cell) &&
        config.at("seed").as_int() == cli.get_int("seed") &&
        config.at("nodes").as_string() == cli.get_string("nodes") &&
        config.at("paths").as_string() == cli.get_string("paths");
    if (!same_workload) {
      os << "baseline " << path
         << " measures a different workload (graphs="
         << config.at("graphs_per_cell").as_int() << " seed="
         << config.at("seed").as_int() << " nodes="
         << config.at("nodes").as_string() << " paths="
         << config.at("paths").as_string() << ") — skipping comparison\n";
      return;
    }
    const double base =
        baseline.at("totals").at("sched_plus_merge_ms").as_number();
    const double ours = sched_ms + serial_ms;
    os << "baseline " << path << ": schedule+merge " << format_double(base, 1)
       << " ms -> " << format_double(ours, 1) << " ms, speedup "
       << format_double(base / std::max(ours, 1e-9), 2) << "x\n";
  } catch (const ParseError& e) {
    os << "baseline " << path << " has an unexpected schema (" << e.what()
       << ") — skipping comparison\n";
  }
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("Fig. 6: execution time of schedule merging");
  cli.add_flag("graphs", "8", "graphs per (nodes, paths) cell");
  cli.add_flag("seed", "42", "base random seed");
  cli.add_flag("nodes", "60,80,120", "comma-separated node counts");
  cli.add_flag("paths", "10,12,18,24,32",
               "comma-separated merged-schedule counts");
  cli.add_flag("threads", "0",
               "speculative merge worker threads (0 = hardware)");
  cli.add_bool("compare",
               "run the speculative parallel merger against the serial "
               "reference, verify identical tables, report speedups");
  cli.add_flag("engine", "heap",
               "ready-list engine for scheduling and merging: 'heap' "
               "(production) or 'linear' (pre-heap reference)");
  cli.add_flag("sched", "tree",
               "per-path scheduling walk: 'tree' (guard-trie chain with "
               "checkpointed shared-prefix reuse, production default) or "
               "'list' (independent from-scratch runs)");
  cli.add_flag("resume", "checkpoint",
               "engine resume mode of the timed merges: 'checkpoint' "
               "(incremental prefix rescheduling, production default) or "
               "'scratch' (reference)");
  cli.add_bool("compare-resume",
               "re-merge serially with EngineResume::kFromScratch, verify "
               "the tables are byte-identical to the --resume mode, report "
               "the speedup (exits non-zero on any mismatch)");
  cli.add_flag("json-out", "",
               "write the measurements (stable schema) as JSON to FILE "
               "(- = stdout)");
  cli.add_flag("baseline", "BENCH_baseline.json",
               "previous --json-out dump to report a speedup against "
               "(skipped silently when the file does not exist; empty = "
               "off)");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs_per_cell = cli.get_count("graphs", 1);
  const auto threads = cli.get_count("threads", 0);
  const bool compare = cli.get_bool("compare");
  const bool compare_resume = cli.get_bool("compare-resume");
  const std::string resume_name = cli.get_string("resume");
  if (resume_name != "checkpoint" && resume_name != "scratch") {
    throw cps::ParseError("--resume must be 'checkpoint' or 'scratch', got '" +
                          resume_name + "'");
  }
  const EngineResume resume = resume_name == "scratch"
                                  ? EngineResume::kFromScratch
                                  : EngineResume::kCheckpoint;
  const std::string engine_name = cli.get_string("engine");
  if (engine_name != "heap" && engine_name != "linear") {
    throw cps::ParseError("--engine must be 'heap' or 'linear', got '" +
                          engine_name + "'");
  }
  const ReadySelection engine = engine_name == "linear"
                                    ? ReadySelection::kLinearScan
                                    : ReadySelection::kHeap;
  const std::string sched_name = cli.get_string("sched");
  if (sched_name != "tree" && sched_name != "list") {
    throw cps::ParseError("--sched must be 'tree' or 'list', got '" +
                          sched_name + "'");
  }
  const bool tree_sched = sched_name == "tree";
  const std::vector<std::size_t> node_counts = cli.get_count_list("nodes");
  const std::vector<std::size_t> path_counts = cli.get_count_list("paths");

  AsciiTable merge_time("Fig. 6 — serial schedule merging time "
                        "(milliseconds)");
  AsciiTable sched_time(
      "Per-path list scheduling time, all paths together (milliseconds)");
  AsciiTable speedup_table("Speculative merge: serial ms / parallel ms = "
                           "speedup (mean conditions per graph)");
  std::vector<std::string> head{"nodes \\ merged schedules"};
  for (std::size_t p : path_counts) head.push_back(std::to_string(p));
  merge_time.header(head);
  sched_time.header(head);
  speedup_table.header(head);

  double total_serial_ms = 0.0;
  double total_parallel_ms = 0.0;
  double total_scratch_ms = 0.0;
  double total_sched_ms = 0.0;
  std::vector<CellResult> cells;
  bool all_identical = true;
  WorkspaceStats merge_workspace;
  std::size_t sched_resumes = 0;
  std::size_t sched_resumed_steps = 0;

  // One pool for the whole run: worker spawn/join stays out of the timed
  // merge regions. Likewise one engine workspace for all per-path
  // scheduling, so buffer allocations stay out of the timed regions too.
  std::unique_ptr<ThreadPool> pool;
  if (compare) pool = std::make_unique<ThreadPool>(threads);
  EngineWorkspace sched_ws;

  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t nodes : node_counts) {
    std::vector<std::string> mrow{std::to_string(nodes)};
    std::vector<std::string> srow{std::to_string(nodes)};
    std::vector<std::string> prow{std::to_string(nodes)};
    for (std::size_t paths : path_counts) {
      StatAccumulator merge_ms;
      StatAccumulator sched_ms;
      StatAccumulator parallel_ms;
      StatAccumulator scratch_ms;
      StatAccumulator conditions;
      for (std::size_t i = 0; i < graphs_per_cell; ++i) {
        Rng rng(++seed);
        const Architecture arch = generate_random_architecture(rng);
        RandomCpgParams params;
        params.process_count = nodes;
        params.path_count = paths;
        const Cpg g = generate_random_cpg(arch, params, rng);
        const FlatGraph fg = FlatGraph::expand(g);
        conditions.add(static_cast<double>(g.conditions().size()));

        // Enumeration streams, but its cost is excluded from the
        // list-scheduling figure (the paper quotes them separately).
        // --sched tree chains one EngineHistory across the leaves (the
        // driver's guard-trie serial walk); --sched list runs each path
        // from scratch.
        std::vector<AltPath> alt;
        std::vector<PathSchedule> schedules;
        CoverCache cache;
        EngineHistory sched_chain;
        PathEnumerator en(g);
        double cell_sched_ms = 0.0;
        while (auto path = en.next()) {
          alt.push_back(std::move(*path));
          const auto t_sched = clock_type::now();
          EngineRequest req = make_path_request(
              fg, alt.back(), PriorityPolicy::kCriticalPath, nullptr,
              engine, &cache);
          if (tree_sched) {
            req.resume = EngineResume::kCheckpoint;
            req.history = &sched_chain;
          }
          EngineResult res = run_list_scheduler(fg, req, sched_ws);
          if (!res.feasible) {
            std::cerr << "ERROR: path unschedulable: " << res.reason << '\n';
            return 1;
          }
          sched_resumes += res.resumed ? 1 : 0;
          sched_resumed_steps += res.resumed_steps;
          schedules.push_back(std::move(res.schedule));
          cell_sched_ms += ms_since(t_sched);
        }
        sched_ms.add(cell_sched_ms);

        MergeOptions serial;
        serial.ready = engine;
        serial.execution = MergeExecution::kSerial;
        serial.resume = resume;
        auto t0 = clock_type::now();
        const MergeResult serial_result =
            merge_schedules(fg, alt, schedules, serial);
        merge_ms.add(ms_since(t0));
        merge_workspace += serial_result.workspace;
        if (!serial_result.ok) {
          all_identical = false;
          std::cerr << "ERROR: serial merge infeasible (nodes=" << nodes
                    << " paths=" << paths << " seed=" << seed
                    << "): " << serial_result.error << "\n";
        }

        if (compare) {
          MergeOptions parallel;
          parallel.ready = engine;
          parallel.execution = MergeExecution::kSpeculative;
          parallel.resume = resume;
          parallel.pool = pool.get();
          t0 = clock_type::now();
          const MergeResult parallel_result =
              merge_schedules(fg, alt, schedules, parallel);
          parallel_ms.add(ms_since(t0));
          if (!parallel_result.ok) {
            all_identical = false;
            std::cerr << "ERROR: speculative merge infeasible (nodes="
                      << nodes << " paths=" << paths << " seed=" << seed
                      << "): " << parallel_result.error << "\n";
          }
          if (serial_result.table != parallel_result.table) {
            all_identical = false;
            std::cerr << "ERROR: speculative merge diverged from the "
                         "serial reference (nodes="
                      << nodes << " paths=" << paths << " seed=" << seed
                      << ")\n";
          }
        }
        if (compare_resume) {
          MergeOptions scratch;
          scratch.ready = engine;
          scratch.execution = MergeExecution::kSerial;
          scratch.resume = EngineResume::kFromScratch;
          t0 = clock_type::now();
          const MergeResult scratch_result =
              merge_schedules(fg, alt, schedules, scratch);
          scratch_ms.add(ms_since(t0));
          if (!scratch_result.ok) {
            all_identical = false;
            std::cerr << "ERROR: from-scratch merge infeasible (nodes="
                      << nodes << " paths=" << paths << " seed=" << seed
                      << "): " << scratch_result.error << "\n";
          }
          if (serial_result.table != scratch_result.table) {
            all_identical = false;
            std::cerr << "ERROR: " << resume_name
                      << "-resume merge diverged from the from-scratch "
                         "reference (nodes="
                      << nodes << " paths=" << paths << " seed=" << seed
                      << ")\n";
          }
        }
      }
      mrow.push_back(format_double(merge_ms.mean(), 3));
      srow.push_back(format_double(sched_ms.mean(), 3));
      CellResult cell;
      cell.nodes = nodes;
      cell.paths = paths;
      cell.merge_serial_ms = merge_ms.mean();
      cell.sched_ms = sched_ms.mean();
      if (compare) cell.merge_parallel_ms = parallel_ms.mean();
      if (compare_resume) cell.merge_scratch_ms = scratch_ms.mean();
      cell.conditions_mean = conditions.mean();
      cells.push_back(cell);
      total_serial_ms += merge_ms.mean() * graphs_per_cell;
      if (compare_resume) {
        total_scratch_ms += scratch_ms.mean() * graphs_per_cell;
      }
      total_sched_ms += sched_ms.mean() * graphs_per_cell;
      if (compare) {
        total_parallel_ms += parallel_ms.mean() * graphs_per_cell;
        prow.push_back(format_double(merge_ms.mean(), 3) + " / " +
                       format_double(parallel_ms.mean(), 3) + " = " +
                       format_double(merge_ms.mean() /
                                         std::max(parallel_ms.mean(), 1e-9),
                                     2) +
                       "x (" + format_double(conditions.mean(), 1) + ")");
      }
    }
    merge_time.add_row(mrow);
    sched_time.add_row(srow);
    if (compare) speedup_table.add_row(prow);
  }

  // With --json-out - the JSON owns stdout; the human report moves to
  // stderr (same convention as bench_batch_throughput).
  std::ostream& human =
      cli.get_string("json-out") == "-" ? std::cerr : std::cout;
  human << "=== E5: Fig. 6 reproduction (" << graphs_per_cell
        << " graphs per cell) ===\n\n";
  merge_time.render(human);
  human << '\n';
  sched_time.render(human);
  if (compare) {
    human << '\n';
    speedup_table.render(human);
    human << "\ntotal merge wall clock: serial "
          << format_double(total_serial_ms, 1) << " ms, speculative ("
          << (threads == 0 ? std::string("hardware")
                           : std::to_string(threads))
          << " threads) " << format_double(total_parallel_ms, 1)
          << " ms, speedup "
          << format_double(total_serial_ms /
                               std::max(total_parallel_ms, 1e-9),
                           2)
          << "x\n";
    human << (all_identical
                  ? "tables: byte-identical across execution modes\n"
                  : "tables: DIVERGED — see errors above\n");
  }
  if (compare_resume) {
    human << "\nresume modes: serial merge " << resume_name << " "
          << format_double(total_serial_ms, 1) << " ms vs from-scratch "
          << format_double(total_scratch_ms, 1) << " ms, speedup "
          << format_double(total_scratch_ms /
                               std::max(total_serial_ms, 1e-9),
                           2)
          << "x\n";
    human << (all_identical
                  ? "tables: byte-identical across resume modes\n"
                  : "tables: DIVERGED — see errors above\n");
  }
  human << "\nengine workspace (serial merges): " << merge_workspace.runs
        << " runs, " << merge_workspace.reuse_hits << " buffer reuses, "
        << merge_workspace.resumes << " checkpoint resumes ("
        << merge_workspace.resumed_steps << " steps skipped), "
        << merge_workspace.full_reuses << " full reuses\n";
  if (tree_sched) {
    human << "per-path scheduling (guard-trie chain): " << sched_resumes
          << " prefix resumes (" << sched_resumed_steps
          << " steps skipped)\n";
  }

  const std::string json_path = cli.get_string("json-out");
  if (!json_path.empty()) {
    const std::string json =
        cells_to_json(cli, compare, compare_resume, graphs_per_cell, cells,
                      total_serial_ms, total_parallel_ms, total_scratch_ms,
                      total_sched_ms);
    if (!JsonWriter::write_output(json_path, json)) return 1;
  }
  const std::string baseline_path = cli.get_string("baseline");
  if (!baseline_path.empty() && std::ifstream(baseline_path).good()) {
    human << '\n';
    report_against_baseline(human, baseline_path, cli, graphs_per_cell,
                            total_sched_ms, total_serial_ms);
  }

  if ((compare || compare_resume) && !all_identical) return 1;
  human << "\npaper shape: merge time grows with the number of merged "
           "schedules (0.05s..0.25s\non a 1998 SPARCstation 20) and "
           "depends only weakly on the node count.\n";
  return 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
}
