// A3 — condition-oblivious baseline: schedule the whole graph as plain
// data flow (every branch always executes, conjunctions wait for all
// inputs, no condition broadcasts), the classical view of [2,6] in the
// paper. Compared against the CPG-aware schedule table on the Fig. 5
// workload: the oblivious delay is what a designer would have to budget
// without control-flow awareness.
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/baseline.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  CliParser cli("condition-oblivious baseline comparison");
  cli.add_flag("graphs", "24", "graphs per path-count cell");
  cli.add_flag("nodes", "80", "graph size");
  cli.add_flag("seed", "11", "base random seed");
  if (!cli.parse(argc, argv)) return 0;
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes"));

  const std::size_t path_counts[] = {2, 6, 12, 24};

  AsciiTable table("A3 — condition-oblivious vs CPG-aware worst case (" +
                   std::to_string(nodes) + "-node graphs)");
  table.header({"paths", "avg delta_max (aware)", "avg delay (oblivious)",
                "avg oblivious/aware", "oblivious worse (%)"});

  std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::size_t paths : path_counts) {
    StatAccumulator aware;
    StatAccumulator oblivious;
    StatAccumulator ratio;
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng(++seed);
      const Architecture arch = generate_random_architecture(rng);
      RandomCpgParams params;
      params.process_count = nodes;
      params.path_count = paths;
      const Cpg g = generate_random_cpg(arch, params, rng);
      CoSynthesisOptions options;
      options.validate = false;
      const CoSynthesisResult r = schedule_cpg(g, options);
      const ObliviousResult o = oblivious_schedule(r.flat_graph());
      aware.add(static_cast<double>(r.delays.delta_max));
      oblivious.add(static_cast<double>(o.delay));
      ratio.add(static_cast<double>(o.delay) /
                static_cast<double>(r.delays.delta_max));
    }
    table.cell(static_cast<std::int64_t>(paths))
        .cell(aware.mean(), 1)
        .cell(oblivious.mean(), 1)
        .cell(ratio.mean(), 3)
        .cell(100.0 * ratio.fraction([](double x) { return x > 1.0; }), 0);
    table.end_row();
  }
  std::cout << "=== A3: condition-oblivious baseline ===\n\n";
  table.render(std::cout);
  std::cout << "\nexpected: the more control flow a graph has (more "
               "alternative paths), the more\nthe oblivious schedule "
               "over-provisions relative to the condition-aware table.\n";
  return 0;
}
