// S3 — service load: drive the co-synthesis daemon with a closed- or
// open-loop load generator and report latency percentiles (p50/p99/p999)
// plus the typed-response tally (ok / shed / deadline_exceeded).
//
// Two modes:
//  - `--socket PATH`: load an externally started condsched_served (the
//    CI smoke job runs it this way, with a mid-stream SIGTERM).
//  - no --socket: spawn an in-process Server on a private socket, drive
//    it, drain it, and exit — a self-contained benchmark.
//
// `--verify` retains every response and checks the determinism contract:
// each response that carries an item body must be byte-identical to
// make_item_response(id, run_batch_item(workload, id)) — the offline
// oracle. Shed/expired responses are timing-dependent *selections* (the
// text is typed, but which request drew it depends on load), so they are
// tallied, not compared.
#include <unistd.h>

#include <algorithm>
#include <iostream>
#include <thread>

#include "sched/batch_driver.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table_format.hpp"

namespace {

/// The daemon's schedule-cache counters, fetched via the "stats" op.
/// `available` stays false when the server cannot be reached or predates
/// the op — the bench then just omits the cache block.
struct CacheStatsSnapshot {
  bool available = false;
  bool enabled = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_errors = 0;
  std::uint64_t prefix_hits = 0;
  std::uint64_t prefix_misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

CacheStatsSnapshot fetch_cache_stats(const std::string& socket_path) {
  using namespace cps;
  CacheStatsSnapshot snap;
  try {
    ServeClient client(socket_path, 5.0);
    JsonWriter w(0);
    w.begin_object();
    w.field("id", std::uint64_t{0});
    w.field("op", "stats");
    w.end_object();
    if (!client.send(w.str())) return snap;
    const std::optional<std::string> response = client.recv();
    if (!response.has_value()) return snap;
    const JsonValue doc = JsonValue::parse(*response);
    const JsonValue* cache = doc.find("cache");
    if (cache == nullptr || !cache->is_object()) return snap;
    const auto u64 = [&](const char* key) -> std::uint64_t {
      const JsonValue* v = cache->find(key);
      if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) return 0;
      return static_cast<std::uint64_t>(v->as_number());
    };
    snap.hits = u64("hits");
    snap.misses = u64("misses");
    snap.store_hits = u64("store_hits");
    snap.store_errors = u64("store_errors");
    snap.prefix_hits = u64("prefix_hits");
    snap.prefix_misses = u64("prefix_misses");
    snap.insertions = u64("insertions");
    snap.evictions = u64("evictions");
    if (const JsonValue* enabled = doc.find("cache_enabled")) {
      snap.enabled = enabled->kind() == JsonValue::Kind::kBool &&
                     enabled->as_bool();
    }
    snap.available = true;
  } catch (const std::exception&) {
    // Unreachable daemon (already drained): no cache block, not an error.
  }
  return snap;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cps;
  CliParser cli("co-synthesis service load generator");
  cli.add_flag("socket", "",
               "AF_UNIX socket of a running daemon (empty = spawn an "
               "in-process server)");
  cli.add_flag("requests", "64", "total run requests");
  cli.add_flag("connections", "2", "concurrent client connections");
  cli.add_bool("open-loop", "fire on a fixed schedule instead of waiting "
                            "for responses (drives overload)");
  cli.add_flag("rate", "200", "open-loop offered load, requests/second");
  cli.add_flag("deadline-ms", "0", "client-supplied per-request deadline");
  cli.add_flag("first-id", "0", "first request id (ids pick workload items)");
  cli.add_flag("recv-timeout-s", "120", "client receive timeout");
  cli.add_bool("tolerate-drain", "treat dropped connections as expected "
                                 "(mid-stream SIGTERM smoke)");
  cli.add_bool("verify", "compare every item-bearing response against the "
                         "run_batch_item oracle, byte for byte");
  cli.add_flag("json-out", "", "write results as JSON to FILE (- = stdout)");
  cli.add_flag("repeat-frac", "0",
               "fraction of requests re-issuing an earlier index (zipf-ish "
               "reuse; exercises the daemon schedule cache)");
  cli.add_flag("repeat-seed", "1", "seed of the deterministic repeat plan");
  // In-process server knobs (ignored with --socket).
  cli.add_flag("threads", "0", "server workers (0 = hardware)");
  cli.add_flag("max-queue-depth", "64", "server admission bound");
  cli.add_flag("max-inflight-bytes", "4194304", "server byte watermark");
  cli.add_flag("overload", "shed-oldest",
               "server policy: shed-oldest | reject-newest");
  cli.add_bool("no-cache", "disable the in-process server's schedule cache");
  cli.add_flag("cache-dir", "",
               "persistent schedule-cache directory of the in-process "
               "server (empty = memory only)");
  // Workload definition (must match the daemon's when --socket is used;
  // --verify builds its oracle from these flags).
  cli.add_flag("nodes", "60", "processes per generated graph");
  cli.add_flag("paths", "10", "alternative paths per generated graph");
  cli.add_flag("seed", "1", "base random seed");
  if (!cli.parse(argc, argv)) return 0;

  BatchConfig workload;
  workload.base_seed = static_cast<std::uint64_t>(cli.get_count("seed", 0));
  workload.cpg.process_count = cli.get_count("nodes", 1);
  workload.cpg.path_count = cli.get_count("paths", 1);
  workload.synthesis.merge.execution = MergeExecution::kSerial;

  LoadGenConfig load;
  load.socket_path = cli.get_string("socket");
  load.requests = cli.get_count("requests", 1);
  load.connections = cli.get_count("connections", 1);
  load.open_loop = cli.get_bool("open-loop");
  load.rate_per_sec = cli.get_double("rate");
  load.deadline_ms = static_cast<double>(cli.get_count("deadline-ms", 0));
  load.first_id = static_cast<std::uint64_t>(cli.get_count("first-id", 0));
  load.recv_timeout_s = static_cast<double>(cli.get_count("recv-timeout-s", 1));
  load.tolerate_disconnect = cli.get_bool("tolerate-drain");
  load.keep_payloads = cli.get_bool("verify");
  load.repeat_frac = cli.get_double("repeat-frac");
  load.repeat_seed = static_cast<std::uint64_t>(cli.get_count("repeat-seed", 0));

  // No external daemon: run one in-process on a private socket and drain
  // it after the load completes.
  std::unique_ptr<Server> server;
  std::thread server_thread;
  if (load.socket_path.empty()) {
    ServerOptions options;
    options.socket_path =
        "/tmp/condsched_bench_" + std::to_string(::getpid()) + ".sock";
    options.threads = cli.get_count("threads", 0);
    options.max_queue_depth = cli.get_count("max-queue-depth", 1);
    options.max_inflight_bytes = cli.get_count("max-inflight-bytes", 1);
    const std::string overload = cli.get_string("overload");
    if (overload == "shed-oldest") {
      options.overload = OverloadPolicy::kShedOldest;
    } else if (overload == "reject-newest") {
      options.overload = OverloadPolicy::kRejectNewest;
    } else {
      std::cerr << "unknown --overload value: " << overload << '\n';
      return 1;
    }
    options.workload = workload;
    options.enable_cache = !cli.get_bool("no-cache");
    options.cache.store_dir = cli.get_string("cache-dir");
    server = std::make_unique<Server>(std::move(options));
    load.socket_path = server->socket_path();
    server_thread = std::thread([&server] { server->run(); });
  }

  const LoadGenResult result = run_loadgen(load);

  // Snapshot the daemon's cache counters before draining it (the load's
  // exact hits and misses are all recorded by now).
  const CacheStatsSnapshot cache = fetch_cache_stats(load.socket_path);

  if (server != nullptr) {
    server->request_drain();
    server_thread.join();
  }

  // Oracle comparison: every response carrying an item body must match
  // the offline computation for its id exactly.
  std::size_t verified = 0;
  std::size_t mismatches = 0;
  if (cli.get_bool("verify")) {
    // Repeat plans decouple the workload index from the request id; the
    // oracle must follow the same deterministic id -> index mapping.
    const std::vector<std::uint64_t> plan = loadgen_plan_indices(load);
    auto payloads = result.payloads;
    std::sort(payloads.begin(), payloads.end());
    for (const auto& [id, payload] : payloads) {
      if (payload.find("\"item\": ") == std::string::npos) continue;
      const std::uint64_t ordinal = id - load.first_id;
      const std::uint64_t index =
          ordinal < plan.size() ? plan[ordinal] : id;
      const BatchItem item =
          run_batch_item(workload, static_cast<std::size_t>(index), nullptr);
      const std::string expected = make_item_response(id, item, nullptr);
      if (payload == expected) {
        ++verified;
      } else {
        ++mismatches;
        std::cerr << "ORACLE MISMATCH id " << id << ":\n  served:  " << payload
                  << "\n  oracle:  " << expected << '\n';
      }
    }
  }

  AsciiTable table("S3 — service load (" + std::to_string(load.requests) +
                   " requests, " + std::to_string(load.connections) +
                   " connections, " +
                   (load.open_loop ? "open" : "closed") + " loop)");
  table.header({"sent", "ok", "shed", "timeout", "failed", "lost", "wall ms",
                "req/s", "p50 ms", "p99 ms", "p999 ms"});
  const double rps =
      result.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(result.responses) / result.wall_ms
          : 0.0;
  table.cell(static_cast<std::int64_t>(result.sent))
      .cell(static_cast<std::int64_t>(result.ok))
      .cell(static_cast<std::int64_t>(result.shed))
      .cell(static_cast<std::int64_t>(result.timed_out))
      .cell(static_cast<std::int64_t>(result.other_failed +
                                      result.parse_failed))
      .cell(static_cast<std::int64_t>(result.disconnected +
                                      result.recv_timeouts))
      .cell(result.wall_ms, 1)
      .cell(rps, 1)
      .cell(result.p50_ms, 2)
      .cell(result.p99_ms, 2)
      .cell(result.p999_ms, 2);
  table.end_row();

  const std::string perf_path = cli.get_string("json-out");
  std::ostream& human = perf_path == "-" ? std::cerr : std::cout;
  human << "=== S3: service load ===\n\n";
  table.render(human);
  if (cli.get_bool("verify")) {
    human << "oracle: " << verified << " verified, " << mismatches
          << " mismatches\n";
  }
  if (load.repeat_frac > 0.0) {
    human << "repeat mode: " << result.unique_indices << " unique / "
          << result.repeats_planned << " repeats; cold p50 "
          << result.cold_p50_ms << " ms p99 " << result.cold_p99_ms
          << " ms; repeat p50 " << result.repeat_p50_ms << " ms p99 "
          << result.repeat_p99_ms << " ms\n";
  }
  if (cache.available) {
    const std::uint64_t lookups = cache.hits + cache.misses;
    human << "daemon cache: " << (cache.enabled ? "enabled" : "disabled")
          << "; exact " << cache.hits << "/" << lookups << " hits";
    if (lookups > 0) {
      human << " (" << 100.0 * static_cast<double>(cache.hits) /
                           static_cast<double>(lookups)
            << "% hit rate)";
    }
    human << ", store hits " << cache.store_hits << ", prefix hits "
          << cache.prefix_hits << "\n";
  }

  if (!perf_path.empty()) {
    JsonWriter w(2);
    w.begin_object();
    w.field("schema_version", 1);
    w.field("bench", "bench_serve_load");
    w.key("config").begin_object();
    w.field("requests", load.requests);
    w.field("connections", load.connections);
    w.field("open_loop", load.open_loop);
    w.field("rate_per_sec", load.rate_per_sec);
    w.field("deadline_ms", load.deadline_ms);
    w.field("nodes", workload.cpg.process_count);
    w.field("paths", workload.cpg.path_count);
    w.field("seed", workload.base_seed);
    w.field("repeat_frac", load.repeat_frac);
    w.field("repeat_seed", load.repeat_seed);
    w.end_object();
    w.key("result").begin_object();
    w.field("sent", result.sent);
    w.field("responses", result.responses);
    w.field("ok", result.ok);
    w.field("shed", result.shed);
    w.field("timed_out", result.timed_out);
    w.field("other_failed", result.other_failed);
    w.field("parse_failed", result.parse_failed);
    w.field("disconnected", result.disconnected);
    w.field("recv_timeouts", result.recv_timeouts);
    w.field("wall_ms", result.wall_ms);
    w.field("responses_per_second", rps);
    w.field("p50_ms", result.p50_ms);
    w.field("p99_ms", result.p99_ms);
    w.field("p999_ms", result.p999_ms);
    if (load.repeat_frac > 0.0) {
      w.field("unique_indices", result.unique_indices);
      w.field("repeats_planned", result.repeats_planned);
      w.field("cold_p50_ms", result.cold_p50_ms);
      w.field("cold_p99_ms", result.cold_p99_ms);
      w.field("repeat_p50_ms", result.repeat_p50_ms);
      w.field("repeat_p99_ms", result.repeat_p99_ms);
    }
    if (cli.get_bool("verify")) {
      w.field("oracle_verified", verified);
      w.field("oracle_mismatches", mismatches);
    }
    w.end_object();
    if (cache.available) {
      w.key("cache").begin_object();
      w.field("enabled", cache.enabled);
      w.field("hits", cache.hits);
      w.field("misses", cache.misses);
      const std::uint64_t lookups = cache.hits + cache.misses;
      w.field("hit_rate",
              lookups > 0 ? static_cast<double>(cache.hits) /
                                static_cast<double>(lookups)
                          : 0.0);
      w.field("store_hits", cache.store_hits);
      w.field("store_errors", cache.store_errors);
      w.field("prefix_hits", cache.prefix_hits);
      w.field("prefix_misses", cache.prefix_misses);
      w.field("insertions", cache.insertions);
      w.field("evictions", cache.evictions);
      w.end_object();
    }
    w.end_object();
    if (!JsonWriter::write_output(perf_path, w.str() + "\n")) return 1;
  }

  // Lost requests fail the bench unless a drain was expected; an oracle
  // mismatch always does.
  if (mismatches > 0) return 1;
  if (!load.tolerate_disconnect &&
      (result.disconnected > 0 || result.recv_timeouts > 0 ||
       result.parse_failed > 0)) {
    return 1;
  }
  return 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
}
