// Generate a random conditional process graph, schedule it, and inspect
// the outcome — the per-graph building block of the Fig. 5/6 experiments.
//
//   ./build/examples/random_explore --nodes 60 --paths 12 --seed 7
//   ./build/examples/random_explore --nodes 80 --paths 18 --dist exp --dot g.dot
#include <fstream>
#include <iostream>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "graph/dot.hpp"
#include "io/cpg_format.hpp"
#include "io/table_render.hpp"
#include "sched/baseline.hpp"
#include "sched/driver.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  CliParser cli("random CPG exploration");
  cli.add_flag("nodes", "60", "number of ordinary processes");
  cli.add_flag("paths", "10", "number of alternative paths");
  cli.add_flag("seed", "1", "random seed");
  cli.add_flag("dist", "uniform", "execution time distribution: uniform|exp");
  cli.add_flag("dot", "", "write the graph in DOT format to this file");
  cli.add_flag("cpg", "", "write the graph in .cpg format to this file");
  cli.add_bool("table", "print the full schedule table");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Architecture arch = generate_random_architecture(rng);

  RandomCpgParams params;
  params.process_count = static_cast<std::size_t>(cli.get_int("nodes"));
  params.path_count = static_cast<std::size_t>(cli.get_int("paths"));
  params.distribution = cli.get_string("dist") == "exp"
                            ? TimeDistribution::kExponential
                            : TimeDistribution::kUniform;
  const Cpg g = generate_random_cpg(arch, params, rng);

  std::cout << "architecture: " << arch.processors().size()
            << " processors, " << arch.of_kind(PeKind::kHardware).size()
            << " ASIC(s), " << arch.buses().size() << " bus(es)\n";
  std::cout << "graph: " << g.ordinary_process_count() << " processes, "
            << g.edge_count() << " edges, " << g.conditions().size()
            << " conditions\n";

  const CoSynthesisResult r = schedule_cpg(g);
  std::cout << "alternative paths: " << r.paths.size() << '\n'
            << "delta_M   = " << r.delays.delta_m << '\n'
            << "delta_max = " << r.delays.delta_max << " (+"
            << r.delays.increase_percent << "%)\n";

  const ObliviousResult oblivious = oblivious_schedule(r.flat_graph());
  std::cout << "condition-oblivious baseline delay = " << oblivious.delay
            << '\n';
  std::cout << "schedule table: " << r.table.entry_count() << " cells in "
            << r.table.columns().size() << " columns\n";

  if (cli.get_bool("table")) {
    render_schedule_table(std::cout, r.table);
  }
  if (const std::string path = cli.get_string("dot"); !path.empty()) {
    std::ofstream os(path);
    DotStyle style;
    style.node_label = [&g](NodeId n) { return g.process(n).name; };
    style.node_attrs = [&g](NodeId n) {
      return g.process(n).is_disjunction() ? std::string("shape=diamond")
             : g.process(n).conjunction    ? std::string("shape=doublecircle")
                                           : std::string();
    };
    style.edge_label = [&g](EdgeId e) {
      const auto& edge = g.edge(e);
      return edge.literal ? g.conditions().render(*edge.literal)
                          : std::string();
    };
    write_dot(os, g.graph(), style);
    std::cout << "wrote " << path << '\n';
  }
  if (const std::string path = cli.get_string("cpg"); !path.empty()) {
    std::ofstream os(path);
    write_cpg(os, g);
    std::cout << "wrote " << path << '\n';
  }
  return 0;
}
