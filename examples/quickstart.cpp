// Quickstart: build a small conditional process graph, generate its
// schedule table, and inspect the result.
//
// The system: a sensor process P1 classifies its input (condition C).
// On C the heavy filter P2 runs on the DSP; otherwise the cheap fallback
// P3 runs on the CPU. P4 merges whichever result arrives and P5 logs it.
//
//   cpu:  P1 --C---> (P2 on dsp) ---.
//   cpu:  P1 --!C--> P3 ------------+--> P4 --> P5
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "cpg/builder.hpp"
#include "io/table_render.hpp"
#include "sched/driver.hpp"

int main() {
  using namespace cps;

  // 1. Describe the architecture: one CPU, one DSP (hardware), one bus.
  Architecture arch;
  const PeId cpu = arch.add_processor("cpu");
  const PeId dsp = arch.add_hardware("dsp");
  arch.add_bus("bus");
  arch.set_cond_broadcast_time(1);

  // 2. Describe the application as a conditional process graph.
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", cpu, 4);   // classify
  const ProcessId p2 = b.add_process("P2", dsp, 9);   // heavy filter
  const ProcessId p3 = b.add_process("P3", cpu, 3);   // cheap fallback
  const ProcessId p4 = b.add_process("P4", cpu, 2);   // merge
  const ProcessId p5 = b.add_process("P5", cpu, 1);   // log
  b.add_cond_edge(p1, p2, Literal{c, true}, /*comm=*/2);
  b.add_cond_edge(p1, p3, Literal{c, false});
  b.add_edge(p2, p4, /*comm=*/2);
  b.add_edge(p3, p4);
  b.add_edge(p4, p5);
  b.mark_conjunction(p4);  // P4 waits for *one* of its alternatives
  const Cpg g = b.build();

  // 3. Run the full flow of the paper: enumerate the alternative paths,
  //    schedule each, merge into a schedule table.
  const CoSynthesisResult result = schedule_cpg(g);

  std::cout << "alternative paths: " << result.paths.size() << '\n';
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    std::cout << "  path " << g.conditions().render(result.paths[i].label)
              << ": optimal delay " << result.delays.path_optimal[i]
              << ", delay under the table " << result.delays.path_actual[i]
              << '\n';
  }
  std::cout << "delta_M (longest individual path) = "
            << result.delays.delta_m << '\n'
            << "delta_max (guaranteed worst case) = "
            << result.delays.delta_max << '\n';

  std::cout << "\nschedule table:\n";
  render_schedule_table(std::cout, result.table);

  // 4. The guard of every process was derived automatically:
  std::cout << "\nguards:\n";
  for (const Process& p : g.processes()) {
    if (p.is_dummy()) continue;
    std::cout << "  X(" << p.name
              << ") = " << g.conditions().render(p.guard) << '\n';
  }
  return 0;
}
