// Load a conditional process graph from a `.cpg` text file (or use the
// built-in sample), schedule it and print the result — demonstrates the
// text I/O round trip.
//
//   ./build/examples/file_demo                # built-in sample
//   ./build/examples/file_demo my_model.cpg
#include <iostream>

#include "io/cpg_format.hpp"
#include "io/table_render.hpp"
#include "sched/driver.hpp"

namespace {

// A two-branch pipeline: conditions decide the codec (C) and whether a
// checksum pass runs (K, only evaluated on !C).
constexpr const char* kSample = R"(# sample model
@arch
processor cpu1
processor cpu2
hardware acc
bus b1
tau0 1
@conditions
C K
@processes
Read   cpu1 4
Detect cpu1 3
FastD  acc  6
SlowD  cpu2 9
Check  cpu2 4
Skip   cpu2 1
Merge  cpu2 3
Emit   cpu2 2
@conjunctions
Merge
@edges
Read Detect 1
Detect FastD C 2
Detect SlowD !C 2
SlowD Check K 1
SlowD Skip !K 1
FastD Merge 2
Check Merge 0
Skip Merge 0
Merge Emit 0
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cps;
  try {
    const Cpg g = argc > 1 ? parse_cpg_file(argv[1])
                           : parse_cpg_string(kSample);
    std::cout << "loaded: " << g.ordinary_process_count() << " processes, "
              << g.conditions().size() << " conditions\n";

    const CoSynthesisResult r = schedule_cpg(g);
    std::cout << "paths: " << r.paths.size()
              << ", delta_M = " << r.delays.delta_m
              << ", delta_max = " << r.delays.delta_max << '\n';
    render_schedule_table(std::cout, r.table);

    std::cout << "\nround-trip serialization:\n" << write_cpg_string(g);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
