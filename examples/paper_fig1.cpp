// Reproduction of the paper's running example (Fig. 1 / Fig. 2 / Fig. 4 /
// Table 1): the 17-process conditional process graph on two processors,
// one ASIC and one bus, with conditions C, D and K.
//
// Prints:
//   * the guards of the interesting processes (paper §2);
//   * the optimal schedule length of each alternative path (Fig. 2);
//   * Gantt charts of selected per-path schedules (Fig. 4 a/b);
//   * the generated schedule table (Table 1);
//   * delta_M, delta_max and the merge statistics.
#include <iostream>

#include "io/gantt.hpp"
#include "io/table_render.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"

int main() {
  using namespace cps;
  const Cpg g = build_fig1_cpg();

  std::cout << "== guards (paper section 2) ==\n";
  for (const char* name : {"P3", "P5", "P14", "P17"}) {
    const Process& p = g.process(g.process_by_name(name));
    std::cout << "  X(" << name << ") = " << g.conditions().render(p.guard)
              << '\n';
  }

  const CoSynthesisResult r = schedule_cpg(g);

  std::cout << "\n== optimal schedule length per alternative path (Fig. 2) "
               "==\n";
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    std::cout << "  " << g.conditions().render(r.paths[i].label) << ": "
              << r.delays.path_optimal[i] << '\n';
  }

  std::cout << "\n== per-path schedules (Fig. 4 view) ==\n";
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    GanttOptions opt;
    opt.title = "path " + g.conditions().render(r.paths[i].label) +
                " (optimal, delay " +
                std::to_string(r.delays.path_optimal[i]) + ")";
    render_gantt(std::cout, r.flat_graph(), r.path_schedules[i], opt);
    std::cout << '\n';
  }

  std::cout << "== schedule table (Table 1) ==\n";
  render_schedule_table(std::cout, r.table);

  std::cout << "\n== result ==\n"
            << "delta_M   = " << r.delays.delta_m << '\n'
            << "delta_max = " << r.delays.delta_max << '\n'
            << "increase  = " << r.delays.increase_percent << "%\n"
            << "merge: " << r.merge_stats.backsteps << " back-steps, "
            << r.merge_stats.locks << " locks, " << r.merge_stats.conflicts
            << " conflicts (" << r.merge_stats.conflict_moves
            << " resolved by moves)\n";
  return 0;
}
