// ATM switch OAM block experiment (paper §6, Table 2): worst-case delays
// of the three OAM operating modes on ten candidate architectures.
//
//   ./build/examples/atm_oam [--mode N]
#include <iostream>

#include "atm/oam.hpp"
#include "support/cli.hpp"
#include "support/table_format.hpp"

int main(int argc, char** argv) {
  using namespace cps;
  CliParser cli("ATM OAM block worst-case delay exploration (Table 2)");
  cli.add_flag("mode", "0", "evaluate a single mode (1..3); 0 = all");
  if (!cli.parse(argc, argv)) return 0;
  const auto only_mode = cli.get_int("mode");

  const auto archs = oam_table2_architectures();
  AsciiTable table("Worst case delays for the OAM block (ns)");
  std::vector<std::string> header{"mode", "nr.proc", "nr.paths"};
  for (const auto& a : archs) header.push_back(a.label());
  table.header(header);

  for (int mode = 1; mode <= 3; ++mode) {
    if (only_mode != 0 && mode != only_mode) continue;
    std::vector<std::string> row;
    std::size_t procs = 0;
    std::size_t paths = 0;
    std::vector<Time> delays;
    for (const auto& arch : archs) {
      const OamModeResult res = evaluate_oam_mode(mode, arch);
      procs = res.process_count;
      paths = res.path_count;
      delays.push_back(res.worst_case_delay);
    }
    row.push_back(std::to_string(mode));
    row.push_back(std::to_string(procs));
    row.push_back(std::to_string(paths));
    for (Time d : delays) row.push_back(std::to_string(d));
    table.add_row(row);
  }
  table.render(std::cout);
  std::cout << "\n(paper Table 2 for comparison, mode rows: 486 / Pentium "
               "columns follow the same architecture order)\n";
  return 0;
}
