// Stress coverage for the work-stealing runtime: nesting (tasks that
// submit and help-run child tasks), exceptions crossing steal boundaries,
// worker_index() stability under help-running, strict priority ordering,
// and the scheduler counters. These are the scenarios the unified
// batch/merge/trie parallelism relies on; the file also anchors the
// ThreadSanitizer CI job, so prefer many small concurrent interactions
// over big single-threaded assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cps;

/// Blocks the worker that picks it up until release(); start_future lets
/// the test wait until the task is actually running (not merely queued),
/// which makes single-worker ordering tests deterministic.
class Gate {
 public:
  std::function<void()> task() {
    return [this] {
      started_.set_value();
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    };
  }
  void wait_started() { started_.get_future().wait(); }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  std::promise<void> started_;
};

void spawn_tree(ThreadPool& pool, std::atomic<int>& count, int depth) {
  if (depth == 0) return;
  TaskGroup group(pool);
  for (int i = 0; i < 3; ++i) {
    group.submit([&pool, &count, depth] {
      count.fetch_add(1, std::memory_order_relaxed);
      spawn_tree(pool, count, depth - 1);
    });
  }
  group.wait();
}

TEST(PoolStress, NestedSubmitsCompleteAtEveryPoolSize) {
  // 3 + 9 + 27 + 81 tasks over four nesting levels; every level waits on
  // the next, so any lost task or nesting deadlock hangs or undercounts.
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> count{0};
    spawn_tree(pool, count, 4);
    EXPECT_EQ(count.load(), 120) << "pool size " << threads;
  }
}

TEST(PoolStress, NestedParallelForSaturatesWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(
      16,
      [&](std::size_t) {
        pool.parallel_for(64, [&](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      },
      TaskPriority::kLow);
  EXPECT_EQ(total.load(), 16 * 64);
  const PoolStats stats = pool.stats();
  EXPECT_GT(stats.submitted, 16u);
  EXPECT_GT(stats.local_hits + stats.steals + stats.help_runs, 0u);
}

TEST(PoolStress, FirstExceptionBySubmissionOrderWinsAcrossStealBoundaries) {
  // Which thread runs which task is a race; the *reported* error is not:
  // wait() rethrows the first thrower by submission order, so task 3 wins
  // every round no matter how late it is scheduled or where it runs.
  ThreadPool pool(3);
  for (int round = 0; round < 25; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.submit([i] {
        if (i % 4 == 3) throw std::runtime_error(std::to_string(i));
      });
    }
    try {
      group.wait();
      FAIL() << "expected wait() to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3");
    }
  }
}

TEST(PoolStress, ParallelForPropagatesBodyErrorAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(32,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::logic_error("boom");
                                 }),
               std::logic_error);
  // The pool outlives the failure: subsequent work runs normally.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  pool.wait_idle();
}

TEST(PoolStress, WorkerIndexIsStableUnderHelpRunning) {
  // worker_index() must identify the *executing thread*, not the task's
  // origin: a help-run child observes the waiter's index. Recording every
  // (thread, index) pair over a nested workload, each thread must see
  // exactly one index — anything else would corrupt WorkerLocal slots.
  ThreadPool pool(2);
  std::mutex mutex;
  std::map<std::thread::id, std::set<std::size_t>> seen;
  const auto record = [&] {
    std::lock_guard<std::mutex> lock(mutex);
    seen[std::this_thread::get_id()].insert(pool.worker_index());
  };
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.submit([&] {
      record();
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) inner.submit(record);
      inner.wait();  // help-runs children on this worker
      record();
    });
  }
  outer.wait();  // help-runs tasks on the external caller too
  record();
  for (const auto& entry : seen) {
    EXPECT_EQ(entry.second.size(), 1u);
    const std::size_t index = *entry.second.begin();
    EXPECT_TRUE(index == ThreadPool::kNotAWorker ||
                index < pool.thread_count());
  }
  // The external caller is never a worker, even while help-running.
  const auto it = seen.find(std::this_thread::get_id());
  ASSERT_NE(it, seen.end());
  EXPECT_EQ(*it->second.begin(), ThreadPool::kNotAWorker);
}

TEST(PoolStress, PrioritiesDrainHighBeforeNormalBeforeLow) {
  // One worker, held at the gate while the backlog builds up, then
  // released: the drain order must follow priority levels, not FIFO.
  ThreadPool pool(1);
  Gate gate;
  pool.submit(gate.task());
  gate.wait_started();
  std::mutex mutex;
  std::vector<int> order;
  const auto tag = [&](int value) {
    return [&mutex, &order, value] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(value);
    };
  };
  pool.submit(tag(2), TaskPriority::kLow);
  pool.submit(tag(2), TaskPriority::kLow);
  pool.submit(tag(1), TaskPriority::kNormal);
  pool.submit(tag(0), TaskPriority::kHigh);
  gate.release();
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 2}));
}

TEST(PoolStress, WaiterHelpRunsTheGroupWhenAllWorkersAreBusy) {
  // The single worker is pinned at the gate, so every group task must be
  // help-run by the waiting (external) thread — nesting never waits on a
  // worker becoming free.
  ThreadPool pool(1);
  const PoolStats before = pool.stats();
  Gate gate;
  pool.submit(gate.task());
  gate.wait_started();
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.submit([&] { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 8);
  const PoolStats delta = pool.stats().delta_since(before);
  EXPECT_EQ(delta.help_runs, 8u);
  EXPECT_GE(delta.max_help_depth, 1u);
  gate.release();
  pool.wait_idle();
}

TEST(PoolStress, CountersBalanceOnceIdle) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 64u);
  EXPECT_EQ(stats.executed, 64u);
  // The drained pool must report a *balanced* snapshot: nothing pending,
  // nothing unaccounted. (PR 6 left stats() racy against in-flight
  // submissions; pending makes the ledger explicit.)
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.dropped_errors, 0u);
  // External submissions arrive through the injection queue; every pop
  // is attributed to exactly one source.
  EXPECT_EQ(stats.local_hits + stats.steals + stats.injected, 64u);
  EXPECT_GT(stats.injected, 0u);
}

TEST(PoolStress, CountersBalanceUnderConcurrentNestedChurn) {
  // Hammer the ledger from many directions at once — external submits,
  // nested groups, priorities — then drain and require exact balance:
  // submitted == executed and pending == 0 after wait_idle(), at every
  // pool size. This is the invariant stats() readers (batch JSON) rely on.
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    pool.parallel_for(
        16,
        [&](std::size_t) {
          TaskGroup inner(pool);
          for (int j = 0; j < 8; ++j) {
            inner.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); },
                         TaskPriority::kHigh);
          }
          inner.wait();
        },
        TaskPriority::kLow);
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 16 * 8) << "pool size " << threads;
    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.submitted, stats.executed) << "pool size " << threads;
    EXPECT_EQ(stats.pending, 0u) << "pool size " << threads;
    EXPECT_EQ(stats.cancelled_tasks, 0u);
    EXPECT_EQ(stats.dropped_errors, 0u);
  }
}

TEST(PoolStress, SpeculativeMergeQuiescesItsTasksBeforeReturning) {
  // A speculative merge claims committed jobs and leaves the queued
  // wrappers as no-ops; before this PR those wrappers could still be
  // pending when merge returned, so an immediate stats() snapshot read
  // executed < submitted. The merge now waits for its own task group:
  // the ledger must balance the moment schedule_cpg returns — no
  // wait_idle() allowed here, that is the point.
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (std::uint64_t seed : {11u, 23u, 47u}) {
      Rng rng(seed);
      const Architecture arch =
          generate_random_architecture(rng, RandomArchParams{});
      RandomCpgParams params;
      params.process_count = 20;
      params.path_count = 6;
      const Cpg g = generate_random_cpg(arch, params, rng);
      CoSynthesisOptions options;
      options.merge.execution = MergeExecution::kSpeculative;
      options.merge.pool = &pool;
      const CoSynthesisResult result = schedule_cpg(g, options);
      EXPECT_EQ(result.status, ErrorCode::kOk);
      const PoolStats stats = pool.stats();
      EXPECT_EQ(stats.submitted, stats.executed)
          << "pool size " << threads << ", seed " << seed;
      EXPECT_EQ(stats.pending, 0u)
          << "pool size " << threads << ", seed " << seed;
    }
  }
}

}  // namespace
