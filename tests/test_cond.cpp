#include <gtest/gtest.h>

#include "cond/assignment.hpp"
#include "cond/condition_set.hpp"
#include "cond/cover_cache.hpp"
#include "cond/cube.hpp"
#include "cond/dnf.hpp"
#include "support/error.hpp"
#include "support/random.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::random_cube;

Literal pos(CondId c) { return Literal{c, true}; }
Literal neg(CondId c) { return Literal{c, false}; }

Dnf random_dnf(Rng& rng, std::size_t universe) {
  Dnf d;
  const std::size_t cubes = rng.index(4);
  for (std::size_t i = 0; i < cubes; ++i) {
    d = d.or_cube(random_cube(rng, universe));
  }
  return d;
}

// ----------------------------------------------------------- Cube -----

TEST(Cube, TopIsTrue) {
  EXPECT_TRUE(Cube::top().is_true());
  EXPECT_EQ(Cube::top().size(), 0u);
}

TEST(Cube, ConstructorSortsAndDeduplicates) {
  Cube c({pos(3), pos(1), pos(3)});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.literals()[0].cond, 1);
  EXPECT_EQ(c.literals()[1].cond, 3);
}

TEST(Cube, ConstructorRejectsContradiction) {
  EXPECT_THROW(Cube({pos(1), neg(1)}), InvalidArgument);
}

TEST(Cube, ConjoinLiteral) {
  Cube c(pos(1));
  auto d = c.conjoin(pos(2));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), 2u);
  EXPECT_FALSE(c.conjoin(neg(1)).has_value());
  EXPECT_EQ(*c.conjoin(pos(1)), c);
}

TEST(Cube, ConjoinCube) {
  Cube a({pos(1), neg(2)});
  Cube b({neg(2), pos(3)});
  auto ab = a.conjoin(b);
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(ab->size(), 3u);
  Cube contra({pos(2)});
  EXPECT_FALSE(a.conjoin(contra).has_value());
}

TEST(Cube, CompatibleIffNoOppositeLiteral) {
  Cube a({pos(1), pos(2)});
  Cube b({pos(2), pos(3)});
  Cube c({neg(2)});
  EXPECT_TRUE(a.compatible(b));
  EXPECT_FALSE(a.compatible(c));
  EXPECT_TRUE(Cube::top().compatible(a));
}

TEST(Cube, ImpliesIsSubsetOrder) {
  Cube a({pos(1), pos(2)});
  Cube b(pos(1));
  EXPECT_TRUE(a.implies(b));
  EXPECT_FALSE(b.implies(a));
  EXPECT_TRUE(a.implies(Cube::top()));
  EXPECT_TRUE(a.implies(a));
}

TEST(Cube, ValueOfAndMentions) {
  Cube a({pos(1), neg(4)});
  EXPECT_EQ(a.value_of(1), true);
  EXPECT_EQ(a.value_of(4), false);
  EXPECT_FALSE(a.value_of(2).has_value());
  EXPECT_TRUE(a.mentions(4));
  EXPECT_FALSE(a.mentions(0));
}

TEST(Cube, WithoutRemovesOneCondition) {
  Cube a({pos(1), neg(4)});
  EXPECT_EQ(a.without(1), Cube(neg(4)));
  EXPECT_EQ(a.without(9), a);
}

TEST(Cube, ConditionsSubsetOf) {
  Cube a(pos(1));
  Cube b({neg(1), pos(2)});
  EXPECT_TRUE(a.conditions_subset_of(b));
  EXPECT_FALSE(b.conditions_subset_of(a));
}

TEST(Cube, ToString) {
  EXPECT_EQ(Cube::top().to_string(), "true");
  EXPECT_EQ(Cube({pos(0), neg(2)}).to_string(), "c0 & !c2");
}

TEST(Cube, FromMasksRoundTrips) {
  const Cube c = Cube::from_masks(0b101, 0b010);
  EXPECT_EQ(c, Cube({pos(0), neg(1), pos(2)}));
  EXPECT_EQ(c.pos_bits(), 0b101u);
  EXPECT_EQ(c.neg_bits(), 0b010u);
  EXPECT_TRUE(c.narrow());
  EXPECT_TRUE(Cube::from_masks(0, 0).is_true());
}

TEST(Cube, WideLiteralsTakeTheSlowPath) {
  const CondId w = Cube::kPackedBits;
  const Cube c({pos(3), neg(static_cast<CondId>(w + 5))});
  EXPECT_FALSE(c.narrow());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.mention_bits(), std::uint64_t{1} << 3);  // packed part only
  EXPECT_EQ(c.value_of(static_cast<CondId>(w + 5)), false);
  EXPECT_EQ(c.to_string(), "c3 & !c" + std::to_string(w + 5));
}

TEST(Cube, HashAgreesWithEquality) {
  const Cube a({pos(1), neg(4)});
  const Cube b({neg(4), pos(1)});
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(Cube(pos(1)).hash(), Cube(neg(1)).hash());
}

// ---- packed vs. slow-path equivalence --------------------------------
//
// Shifting every condition id past kPackedBits forces the sorted-vector
// slow path; every operation must agree with the packed fast path modulo
// the shift.

Literal shifted(Literal l) {
  return Literal{static_cast<CondId>(l.cond + Cube::kPackedBits), l.value};
}

Cube shifted(const Cube& c) {
  std::vector<Literal> lits;
  c.for_each([&lits](Literal l) { lits.push_back(shifted(l)); });
  return Cube(lits);
}

class CubeRepresentationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CubeRepresentationTest, PackedAndWideAgree) {
  Rng rng(GetParam());
  constexpr std::size_t kUniverse = 6;
  for (int round = 0; round < 50; ++round) {
    const Cube a = random_cube(rng, kUniverse);
    const Cube b = random_cube(rng, kUniverse);
    const Cube wa = shifted(a);
    const Cube wb = shifted(b);

    EXPECT_EQ(a == b, wa == wb);
    EXPECT_EQ(a < b, wa < wb) << a.to_string() << " vs " << b.to_string();
    EXPECT_EQ(a.compatible(b), wa.compatible(wb));
    EXPECT_EQ(a.implies(b), wa.implies(wb));
    EXPECT_EQ(a.conditions_subset_of(b), wa.conditions_subset_of(wb));

    const auto ab = a.conjoin(b);
    const auto wab = wa.conjoin(wb);
    ASSERT_EQ(ab.has_value(), wab.has_value());
    if (ab) {
      EXPECT_EQ(shifted(*ab), *wab);
    }

    const CondId probe = static_cast<CondId>(rng.index(kUniverse));
    EXPECT_EQ(a.value_of(probe), wa.value_of(shifted(pos(probe)).cond));
    EXPECT_EQ(shifted(a.without(probe)),
              wa.without(shifted(pos(probe)).cond));

    // Mixed narrow+wide cubes behave like their all-wide counterparts.
    if (const auto mixed = a.conjoin(wb)) {
      EXPECT_EQ(mixed->size(), a.size() + wb.size());
      EXPECT_TRUE(mixed->implies(a));
      EXPECT_TRUE(mixed->implies(wb));
      EXPECT_FALSE(mixed->narrow());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeRepresentationTest,
                         ::testing::Values(11, 12, 13, 14));

// The packed operator< must reproduce the historical order exactly:
// lexicographic comparison of the literal vectors sorted by (cond, value).
TEST(Cube, OrderingMatchesLexicographicLiteralOrder) {
  Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    const Cube a = random_cube(rng, 8);
    const Cube b = random_cube(rng, 8);
    const auto la = a.literals();
    const auto lb = b.literals();
    EXPECT_EQ(a < b, la < lb) << a.to_string() << " vs " << b.to_string();
  }
  // Boundary: condition 63 is the top packed bit.
  const Cube hi(pos(63));
  const Cube lo(neg(63));
  EXPECT_TRUE(lo < hi);
  EXPECT_FALSE(hi < lo);
  EXPECT_TRUE(Cube::top() < hi);
}

// ----------------------------------------------------------- Dnf ------

TEST(Dnf, Constants) {
  EXPECT_TRUE(Dnf::false_().is_false());
  EXPECT_TRUE(Dnf::true_().is_true());
  EXPECT_FALSE(Dnf::true_().is_false());
}

TEST(Dnf, AbsorptionDropsSubsumedCubes) {
  Dnf d = Dnf(Cube(pos(1))).or_cube(Cube({pos(1), pos(2)}));
  ASSERT_EQ(d.cubes().size(), 1u);
  EXPECT_EQ(d.cubes()[0], Cube(pos(1)));
}

TEST(Dnf, ComplementaryMergeSimplifies) {
  // (X & C) | (X & !C) == X.
  Dnf d = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube({pos(0), neg(1)}));
  ASSERT_EQ(d.cubes().size(), 1u);
  EXPECT_EQ(d.cubes()[0], Cube(pos(0)));
}

TEST(Dnf, FullCoverCollapsesToTrue) {
  // (D&K) | (D&!K) | !D == true — the X_P17 example of the paper.
  Dnf d = Dnf(Cube({pos(0), pos(1)}))
              .or_cube(Cube({pos(0), neg(1)}))
              .or_cube(Cube(neg(0)));
  EXPECT_TRUE(d.is_true());
}

TEST(Dnf, AndDistributesAndDropsContradictions) {
  Dnf d = Dnf(Cube(pos(0))).or_cube(Cube(neg(1)));
  Dnf e = d.and_cube(Cube(pos(1)));
  // (c0 | !c1) & c1 == c0 & c1.
  ASSERT_EQ(e.cubes().size(), 1u);
  EXPECT_EQ(e.cubes()[0], Cube({pos(0), pos(1)}));
}

TEST(Dnf, EvaluateMatchesSemantics) {
  Dnf d = Dnf(Cube({pos(0), neg(1)})).or_cube(Cube(pos(2)));
  auto val = [](bool a, bool b, bool c) {
    return [=](CondId id) { return id == 0 ? a : id == 1 ? b : c; };
  };
  EXPECT_TRUE(d.evaluate(val(true, false, false)));
  EXPECT_TRUE(d.evaluate(val(false, true, true)));
  EXPECT_FALSE(d.evaluate(val(false, false, false)));
  EXPECT_FALSE(d.evaluate(val(true, true, false)));
}

TEST(Dnf, CoveredByContext) {
  // D covers (D&K)|(D&!K).
  Dnf d = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube({pos(0), neg(1)}));
  EXPECT_TRUE(d.covered_by_context(Cube(pos(0))));
  EXPECT_FALSE(d.covered_by_context(Cube(neg(0))));
  EXPECT_FALSE(d.covered_by_context(Cube::top()));
  EXPECT_TRUE(Dnf::true_().covered_by_context(Cube::top()));
  EXPECT_FALSE(Dnf::false_().covered_by_context(Cube::top()));
}

TEST(Dnf, ImpliesAndEquivalent) {
  Dnf a(Cube({pos(0), pos(1)}));
  Dnf b(Cube(pos(0)));
  EXPECT_TRUE(a.implies(b));
  EXPECT_FALSE(b.implies(a));
  Dnf c = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube({pos(0), neg(1)}));
  EXPECT_TRUE(c.equivalent(b));
}

TEST(Dnf, MentionedConditions) {
  Dnf d = Dnf(Cube({pos(0), neg(3)})).or_cube(Cube(pos(5)));
  EXPECT_EQ(d.mentioned_conditions(), (std::vector<CondId>{0, 3, 5}));
}

TEST(Dnf, ToString) {
  EXPECT_EQ(Dnf::false_().to_string(), "false");
  EXPECT_EQ(Dnf::true_().to_string(), "true");
  Dnf d = Dnf(Cube(pos(0))).or_cube(Cube(neg(1)));
  EXPECT_EQ(d.to_string(), "c0 | !c1");
}

// ---- normalization edge cases ----------------------------------------

TEST(Dnf, ComplementaryMergeCascades) {
  // (A&B&C) | (A&B&!C) -> A&B, which must then absorb/merge further:
  // adding (A&!B) turns the whole thing into A.
  Dnf d = Dnf(Cube({pos(0), pos(1), pos(2)}))
              .or_cube(Cube({pos(0), pos(1), neg(2)}));
  ASSERT_EQ(d.cubes().size(), 1u);
  EXPECT_EQ(d.cubes()[0], Cube({pos(0), pos(1)}));
  d = d.or_cube(Cube({pos(0), neg(1)}));
  ASSERT_EQ(d.cubes().size(), 1u);
  EXPECT_EQ(d.cubes()[0], Cube(pos(0)));
}

TEST(Dnf, CascadeCollapsesFullCoverOfThreeConditions) {
  // All eight minterms over three conditions, added one at a time, must
  // cascade (merge -> merge -> merge) down to `true`.
  Dnf d;
  for (int bits = 0; bits < 8; ++bits) {
    d = d.or_cube(Cube({Literal{0, (bits & 1) != 0},
                        Literal{1, (bits & 2) != 0},
                        Literal{2, (bits & 4) != 0}}));
  }
  EXPECT_TRUE(d.is_true());
  ASSERT_EQ(d.cubes().size(), 1u);
}

TEST(Dnf, TopCubeSubsumesEverything) {
  // Adding top() absorbs every other cube, in either order.
  Dnf d = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube(neg(2)));
  EXPECT_TRUE(d.or_cube(Cube::top()).is_true());
  EXPECT_TRUE(Dnf::true_().or_dnf(d).is_true());
  EXPECT_TRUE(d.or_dnf(Dnf::true_()).is_true());
}

TEST(Dnf, OrAndAreIdempotentOnNormalizedInputs) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    const Dnf d = random_dnf(rng, 4);
    // x | x == x, exactly (the normal form is canonical under or).
    EXPECT_EQ(d.or_dnf(d), d) << d.to_string();
    // x & x is semantically x (the normal form may differ, e.g. cube
    // products can keep a redundant non-prime cube).
    EXPECT_TRUE(d.and_dnf(d).equivalent(d)) << d.to_string();
    // Re-normalizing a normal form must not change it.
    Dnf rebuilt;
    for (const Cube& c : d.cubes()) rebuilt = rebuilt.or_cube(c);
    EXPECT_EQ(rebuilt, d) << d.to_string();
  }
}

// Property test: DNF algebra agrees with brute-force truth-table
// evaluation on random formulas.
class DnfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DnfPropertyTest, OperationsMatchTruthTables) {
  Rng rng(GetParam());
  constexpr std::size_t kUniverse = 4;
  const auto assignments = Assignment::enumerate(kUniverse);

  for (int round = 0; round < 20; ++round) {
    const Dnf a = random_dnf(rng, kUniverse);
    const Dnf b = random_dnf(rng, kUniverse);
    const Cube ctx = random_cube(rng, kUniverse);

    auto eval = [](const Dnf& d, const Assignment& asg) {
      return d.evaluate([&asg](CondId c) { return asg.value(c); });
    };

    // OR / AND agree point-wise.
    const Dnf a_or_b = a.or_dnf(b);
    const Dnf a_and_b = a.and_dnf(b);
    for (const Assignment& asg : assignments) {
      EXPECT_EQ(eval(a_or_b, asg), eval(a, asg) || eval(b, asg));
      EXPECT_EQ(eval(a_and_b, asg), eval(a, asg) && eval(b, asg));
    }

    // covered_by_context == "true under every completion of ctx".
    bool expected_cover = true;
    for (const Assignment& asg : assignments) {
      if (asg.satisfies(ctx) && !eval(a, asg)) expected_cover = false;
    }
    EXPECT_EQ(a.covered_by_context(ctx), expected_cover)
        << a.to_string() << " under " << ctx.to_string();

    // implies == point-wise order.
    bool expected_implies = true;
    for (const Assignment& asg : assignments) {
      if (eval(a, asg) && !eval(b, asg)) expected_implies = false;
    }
    EXPECT_EQ(a.implies(b), expected_implies)
        << a.to_string() << " => " << b.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------- CoverCache ---

TEST(CoverCache, CountsHitsAndMisses) {
  CoverCache cache;
  const Dnf guard = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube(neg(0)));
  const Cube ctx(pos(1));
  EXPECT_EQ(cache.covered(guard, ctx), guard.covered_by_context(ctx));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.covered(guard, ctx), guard.covered_by_context(ctx));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.disjoint(guard, ctx), guard.and_cube(ctx).is_false());
  EXPECT_EQ(cache.misses(), 2u);
  const CoverCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resets, 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CoverCache, SizeCapResetsDeterministically) {
  CoverCache cache(/*max_entries=*/4);
  const Dnf guard = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube({pos(2)}));
  const auto fill = [&cache, &guard] {
    for (CondId c = 0; c < 6; ++c) {
      cache.covered(guard, Cube(Literal{c, true}));
    }
  };
  fill();
  // 6 distinct contexts against a cap of 4: the map was wiped on the way.
  EXPECT_GE(cache.resets(), 1u);
  EXPECT_LE(cache.size(), 4u);
  EXPECT_EQ(cache.hits() + cache.misses(), 6u);
  // Identical query sequence on a fresh cache: identical counters (the
  // reset policy depends only on the sequence, never on timing).
  CoverCache again(/*max_entries=*/4);
  const Dnf guard2 = Dnf(Cube({pos(0), pos(1)})).or_cube(Cube({pos(2)}));
  for (CondId c = 0; c < 6; ++c) {
    again.covered(guard2, Cube(Literal{c, true}));
  }
  EXPECT_EQ(again.resets(), cache.resets());
  EXPECT_EQ(again.hits(), cache.hits());
  EXPECT_EQ(again.misses(), cache.misses());
  EXPECT_EQ(again.size(), cache.size());
  // Correctness is unaffected by evictions.
  for (CondId c = 0; c < 6; ++c) {
    const Cube ctx(Literal{c, true});
    EXPECT_EQ(cache.covered(guard, ctx), guard.covered_by_context(ctx));
  }
}

// ------------------------------------------------------- Assignment ---

TEST(Assignment, FromCubeSetsMentionedConditions) {
  const Assignment a = Assignment::from_cube(Cube({pos(1), neg(2)}), 4);
  EXPECT_FALSE(a.value(0));
  EXPECT_TRUE(a.value(1));
  EXPECT_FALSE(a.value(2));
  EXPECT_TRUE(a.satisfies(Cube({pos(1)})));
  EXPECT_FALSE(a.satisfies(Cube({pos(2)})));
}

TEST(Assignment, EnumerateProducesAllDistinct) {
  const auto all = Assignment::enumerate(3);
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
}

TEST(Assignment, ToCubeRoundTrips) {
  Assignment a(3);
  a.set(1, true);
  const Cube c = a.to_cube();
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.value_of(1), true);
  EXPECT_EQ(c.value_of(2), false);
}

TEST(Assignment, OutOfUniverseThrows) {
  Assignment a(2);
  EXPECT_THROW(a.value(2), InvalidArgument);
  EXPECT_THROW(Assignment::from_cube(Cube(pos(5)), 2), InvalidArgument);
}

// ------------------------------------------------------ ConditionSet --

TEST(ConditionSet, RegistersAndRenders) {
  ConditionSet cs;
  const CondId c = cs.add("C");
  const CondId d = cs.add("D");
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs.id_of("D"), d);
  EXPECT_EQ(cs.render(Cube({Literal{c, true}, Literal{d, false}})),
            "C & !D");
  EXPECT_EQ(cs.render(Literal{d, false}), "!D");
}

TEST(ConditionSet, RejectsDuplicatesAndUnknown) {
  ConditionSet cs;
  cs.add("C");
  EXPECT_THROW(cs.add("C"), InvalidArgument);
  EXPECT_THROW(cs.id_of("Z"), InvalidArgument);
  EXPECT_THROW(cs.add(""), InvalidArgument);
}

}  // namespace
}  // namespace cps
