#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "io/table_render.hpp"
#include "sched/schedule_table.hpp"
#include "support/random.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

class ScheduleTableTest : public ::testing::Test {
 protected:
  ScheduleTableTest() {
    CpgBuilder b(small_arch());
    c_ = b.add_condition("C");
    p1_ = b.add_process("P1", 0, 2);
    p2_ = b.add_process("P2", 0, 3);
    b.add_cond_edge(p1_, p2_, Literal{c_, true});
    g_ = b.build();
    fg_ = FlatGraph::expand(*g_);
  }

  std::optional<Cpg> g_;
  std::optional<FlatGraph> fg_;
  CondId c_{};
  ProcessId p1_{}, p2_{};

  Cube cube_c(bool v) const { return Cube(Literal{c_, v}); }
};

// Work around optional members in the fixture.
#define G (*g_)
#define FG (*fg_)

TEST_F(ScheduleTableTest, AddAndLookup) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  EXPECT_EQ(t.add_entry(t2, cube_c(true), 5, 0), AddEntryResult::kAdded);
  EXPECT_EQ(t.add_entry(t2, cube_c(true), 5, 0),
            AddEntryResult::kDuplicate);
  EXPECT_EQ(t.add_entry(t2, cube_c(true), 9, 0), AddEntryResult::kClash);
  ASSERT_EQ(t.row(t2).size(), 1u);
  EXPECT_EQ(t.row(t2)[0].start, 5);
}

TEST_F(ScheduleTableTest, ConflictingEntries) {
  ScheduleTable t(FG);
  const TaskId t1 = FG.task_of_process(p1_);
  t.add_entry(t1, Cube::top(), 0, 0);
  // Compatible column, different time -> conflict.
  const auto conflicts = t.conflicting_entries(t1, cube_c(true), 4, 0);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].start, 0);
  // Same decision -> no conflict.
  EXPECT_TRUE(t.conflicting_entries(t1, cube_c(true), 0, 0).empty());
}

TEST_F(ScheduleTableTest, IncompatibleColumnsDoNotConflict) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  t.add_entry(t2, cube_c(true), 5, 0);
  EXPECT_TRUE(t.conflicting_entries(t2, cube_c(false), 9, 0).empty());
}

TEST_F(ScheduleTableTest, ActivationSelectsByLabel) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  t.add_entry(t2, cube_c(true), 7, 0);
  const auto on = t.activation(t2, cube_c(true));
  ASSERT_TRUE(on.has_value());
  EXPECT_EQ(on->start, 7);
  EXPECT_FALSE(t.activation(t2, cube_c(false)).has_value());
}

TEST_F(ScheduleTableTest, AmbiguousActivationIsInternalError) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  // Two compatible columns with different times (a requirement-2
  // violation built by hand).
  t.add_entry(t2, cube_c(true), 7, 0);
  t.add_entry(t2, Cube::top(), 9, 0);
  EXPECT_THROW(t.activation(t2, cube_c(true)), InternalError);
}

TEST_F(ScheduleTableTest, ColumnsSortedBySizeThenValue) {
  ScheduleTable t(FG);
  const TaskId t1 = FG.task_of_process(p1_);
  const TaskId t2 = FG.task_of_process(p2_);
  t.add_entry(t2, cube_c(true), 5, 0);
  t.add_entry(t1, Cube::top(), 0, 0);
  const auto cols = t.columns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_TRUE(cols[0].is_true());
  EXPECT_EQ(cols[1], cube_c(true));
  EXPECT_EQ(t.entry_count(), 2u);
}

// ---- indexed vs. scan equivalence ------------------------------------
//
// The table answers add_entry/matching/conflicting_entries through a
// per-row hash index and packed-mask prefilters; these tests re-derive
// every answer with the plain linear scans the pre-index implementation
// used and require identical results (values *and* order).

using testing::random_cube;

std::vector<TableEntry> matching_scan(const ScheduleTable& t, TaskId task,
                                      const Cube& label) {
  std::vector<TableEntry> out;
  for (const TableEntry& e : t.row(task)) {
    if (label.implies(e.column)) out.push_back(e);
  }
  return out;
}

std::vector<TableEntry> conflicting_scan(const ScheduleTable& t, TaskId task,
                                         const Cube& column, Time start,
                                         PeId resource) {
  std::vector<TableEntry> out;
  for (const TableEntry& e : t.row(task)) {
    if (!e.column.compatible(column)) continue;
    if (e.start == start && e.resource == resource) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TableEntry& a, const TableEntry& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.resource < b.resource;
            });
  return out;
}

AddEntryResult add_entry_scan_verdict(const ScheduleTable& t, TaskId task,
                                      const Cube& column, Time start,
                                      PeId resource) {
  for (const TableEntry& e : t.row(task)) {
    if (e.column == column) {
      return e.start == start && e.resource == resource
                 ? AddEntryResult::kDuplicate
                 : AddEntryResult::kClash;
    }
  }
  return AddEntryResult::kAdded;
}

TEST_F(ScheduleTableTest, IndexedQueriesMatchLinearScans) {
  // `shift` 0 exercises the packed prefilter path; Cube::kPackedBits
  // forces wide columns through the exact fallback.
  for (const CondId shift : {CondId{0}, Cube::kPackedBits}) {
    SCOPED_TRACE("shift=" + std::to_string(shift));
    Rng rng(2024 + shift);
    ScheduleTable t(FG);
    const TaskId task = FG.task_of_process(p1_);
    for (int round = 0; round < 400; ++round) {
      const Cube column = random_cube(rng, 5, shift);
      const Time start = static_cast<Time>(rng.index(6));
      const PeId res = static_cast<PeId>(rng.index(2));
      const AddEntryResult expected =
          add_entry_scan_verdict(t, task, column, start, res);
      EXPECT_EQ(t.add_entry(task, column, start, res), expected);

      const Cube probe = random_cube(rng, 5, shift);
      EXPECT_EQ(t.matching(task, probe), matching_scan(t, task, probe));
      EXPECT_EQ(t.conflicting_entries(task, probe, start, res),
                conflicting_scan(t, task, probe, start, res));
    }
    // Rows answered through the prefilter even when the probe decides
    // nothing the row mentions.
    EXPECT_EQ(t.matching(task, Cube::top()),
              matching_scan(t, task, Cube::top()));
  }
}

TEST_F(ScheduleTableTest, RenderShowsRowsAndColumns) {
  ScheduleTable t(FG);
  t.add_entry(FG.task_of_process(p1_), Cube::top(), 0, 0);
  t.add_entry(FG.task_of_process(p2_), cube_c(true), 4, 0);
  std::ostringstream os;
  render_schedule_table(os, t);
  const std::string s = os.str();
  EXPECT_NE(s.find("P1"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("C"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
}

#undef G
#undef FG

}  // namespace
}  // namespace cps
