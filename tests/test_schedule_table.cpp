#include <gtest/gtest.h>

#include <sstream>

#include "io/table_render.hpp"
#include "sched/schedule_table.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

class ScheduleTableTest : public ::testing::Test {
 protected:
  ScheduleTableTest() {
    CpgBuilder b(small_arch());
    c_ = b.add_condition("C");
    p1_ = b.add_process("P1", 0, 2);
    p2_ = b.add_process("P2", 0, 3);
    b.add_cond_edge(p1_, p2_, Literal{c_, true});
    g_ = b.build();
    fg_ = FlatGraph::expand(*g_);
  }

  std::optional<Cpg> g_;
  std::optional<FlatGraph> fg_;
  CondId c_{};
  ProcessId p1_{}, p2_{};

  Cube cube_c(bool v) const { return Cube(Literal{c_, v}); }
};

// Work around optional members in the fixture.
#define G (*g_)
#define FG (*fg_)

TEST_F(ScheduleTableTest, AddAndLookup) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  EXPECT_EQ(t.add_entry(t2, cube_c(true), 5, 0), AddEntryResult::kAdded);
  EXPECT_EQ(t.add_entry(t2, cube_c(true), 5, 0),
            AddEntryResult::kDuplicate);
  EXPECT_EQ(t.add_entry(t2, cube_c(true), 9, 0), AddEntryResult::kClash);
  ASSERT_EQ(t.row(t2).size(), 1u);
  EXPECT_EQ(t.row(t2)[0].start, 5);
}

TEST_F(ScheduleTableTest, ConflictingEntries) {
  ScheduleTable t(FG);
  const TaskId t1 = FG.task_of_process(p1_);
  t.add_entry(t1, Cube::top(), 0, 0);
  // Compatible column, different time -> conflict.
  const auto conflicts = t.conflicting_entries(t1, cube_c(true), 4, 0);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].start, 0);
  // Same decision -> no conflict.
  EXPECT_TRUE(t.conflicting_entries(t1, cube_c(true), 0, 0).empty());
}

TEST_F(ScheduleTableTest, IncompatibleColumnsDoNotConflict) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  t.add_entry(t2, cube_c(true), 5, 0);
  EXPECT_TRUE(t.conflicting_entries(t2, cube_c(false), 9, 0).empty());
}

TEST_F(ScheduleTableTest, ActivationSelectsByLabel) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  t.add_entry(t2, cube_c(true), 7, 0);
  const auto on = t.activation(t2, cube_c(true));
  ASSERT_TRUE(on.has_value());
  EXPECT_EQ(on->start, 7);
  EXPECT_FALSE(t.activation(t2, cube_c(false)).has_value());
}

TEST_F(ScheduleTableTest, AmbiguousActivationIsInternalError) {
  ScheduleTable t(FG);
  const TaskId t2 = FG.task_of_process(p2_);
  // Two compatible columns with different times (a requirement-2
  // violation built by hand).
  t.add_entry(t2, cube_c(true), 7, 0);
  t.add_entry(t2, Cube::top(), 9, 0);
  EXPECT_THROW(t.activation(t2, cube_c(true)), InternalError);
}

TEST_F(ScheduleTableTest, ColumnsSortedBySizeThenValue) {
  ScheduleTable t(FG);
  const TaskId t1 = FG.task_of_process(p1_);
  const TaskId t2 = FG.task_of_process(p2_);
  t.add_entry(t2, cube_c(true), 5, 0);
  t.add_entry(t1, Cube::top(), 0, 0);
  const auto cols = t.columns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_TRUE(cols[0].is_true());
  EXPECT_EQ(cols[1], cube_c(true));
  EXPECT_EQ(t.entry_count(), 2u);
}

TEST_F(ScheduleTableTest, RenderShowsRowsAndColumns) {
  ScheduleTable t(FG);
  t.add_entry(FG.task_of_process(p1_), Cube::top(), 0, 0);
  t.add_entry(FG.task_of_process(p2_), cube_c(true), 4, 0);
  std::ostringstream os;
  render_schedule_table(os, t);
  const std::string s = os.str();
  EXPECT_NE(s.find("P1"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("C"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
}

#undef G
#undef FG

}  // namespace
}  // namespace cps
