#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::expect_schedule_invariants;
using testing::small_arch;

TEST(ListScheduler, SequentialChainOnOneProcessor) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 3);
  const ProcessId p2 = b.add_process("P2", 0, 4);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 1u);
  const PathSchedule s = schedule_path(fg, paths[0]);
  EXPECT_EQ(s.slot(fg.task_of_process(p1)).start, 0);
  EXPECT_EQ(s.slot(fg.task_of_process(p2)).start, 3);
  EXPECT_EQ(s.delay(fg), 7);
}

TEST(ListScheduler, ProcessorSerializesHardwareDoesNot) {
  // Two independent processes: on a processor they serialize, on an ASIC
  // they overlap.
  for (const bool hardware : {false, true}) {
    Architecture arch;
    PeId pe;
    if (hardware) {
      pe = arch.add_hardware("hw");
    } else {
      pe = arch.add_processor("p");
    }
    CpgBuilder b(arch);
    b.add_process("A", pe, 5);
    b.add_process("B", pe, 5);
    const Cpg g = b.build();
    const FlatGraph fg = FlatGraph::expand(g);
    const auto paths = enumerate_paths(g);
    const PathSchedule s = schedule_path(fg, paths[0]);
    EXPECT_EQ(s.delay(fg), hardware ? 5 : 10);
  }
}

TEST(ListScheduler, CommunicationOccupiesBus) {
  // Two transfers over one bus serialize.
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  const ProcessId a = b.add_process("A", 0, 2);
  const ProcessId b1 = b.add_process("B1", 1, 1);
  const ProcessId b2 = b.add_process("B2", 1, 1);
  b.add_edge(a, b1, 4);
  b.add_edge(a, b2, 4);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  const PathSchedule s = schedule_path(fg, paths[0]);
  // A ends at 2; the two comms run 2-6 and 6-10; B's run 1 each.
  EXPECT_EQ(s.delay(fg), 11);
  expect_schedule_invariants(fg, s, fg.active_tasks(paths[0].label));
}

TEST(ListScheduler, CriticalPathPriorityPrefersUrgentTask) {
  // Two ready tasks on one processor: A (short, no successors) and B
  // (feeds a long chain). Critical-path priority must start B first.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId ta = b.add_process("A", 0, 5);
  const ProcessId tb = b.add_process("B", 0, 2);
  const ProcessId tc = b.add_process("C", 0, 10);
  b.add_edge(tb, tc);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  const PathSchedule s = schedule_path(fg, paths[0]);
  // B (urgency 12) precedes A (urgency 5); C follows B; A runs last.
  EXPECT_EQ(s.slot(fg.task_of_process(tb)).start, 0);
  EXPECT_EQ(s.slot(fg.task_of_process(tc)).start, 2);
  EXPECT_EQ(s.slot(fg.task_of_process(ta)).start, 12);
  EXPECT_EQ(s.delay(fg), 17);
}

TEST(ListScheduler, KnowledgeRuleDelaysGuardedProcessOnRemotePe) {
  // P1 on cpu1 computes C at t=2; P2 (guard C) runs on cpu2 and needs the
  // broadcast: start >= end(P1) + tau0 and after the comm of its input.
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 1, 3);
  b.add_cond_edge(p1, p2, Literal{c, true}, /*comm=*/1);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const AltPath& path : enumerate_paths(g)) {
    const PathSchedule s = schedule_path(fg, path);
    expect_schedule_invariants(fg, s, fg.active_tasks(path.label));
    if (path.label.value_of(c) == true) {
      const Slot& p2s = s.slot(fg.task_of_process(p2));
      const auto bcast = fg.broadcast_task(c);
      ASSERT_TRUE(bcast.has_value());
      ASSERT_TRUE(s.scheduled(*bcast));
      // P2 cannot start before the broadcast has delivered C to cpu2.
      EXPECT_GE(p2s.start, s.slot(*bcast).end);
    }
  }
}

TEST(ListScheduler, GuardTrueProcessNeedsNoKnowledge) {
  // A process with guard true on a remote PE may start before any
  // broadcast arrives.
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 5);
  const ProcessId p2 = b.add_process("P2", 0, 5);
  const ProcessId p3 = b.add_process("P3", 1, 1);  // independent, guard true
  b.add_cond_edge(p1, p2, Literal{c, true});
  (void)p3;
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  for (const AltPath& path : paths) {
    const PathSchedule s = schedule_path(fg, path);
    EXPECT_EQ(s.slot(fg.task_of_process(p3)).start, 0);
  }
}

TEST(ListScheduler, BroadcastUsesFirstAvailableBus) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const AltPath& path : enumerate_paths(g)) {
    const PathSchedule s = schedule_path(fg, path);
    const auto active = fg.active_tasks(path.label);
    expect_schedule_invariants(fg, s, active);
    for (CondId c = 0; c < 3; ++c) {
      const auto bt = fg.broadcast_task(c);
      if (!active[*bt]) continue;
      const Slot& bs = s.slot(*bt);
      EXPECT_TRUE(fg.arch().pe(bs.resource).is_bus());
      // Broadcast never precedes its disjunction.
      EXPECT_GE(bs.start, s.slot(fg.disjunction_task(c)).end);
    }
  }
}

TEST(ListScheduler, LockedTaskStartsExactlyAtReservation) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  const TaskId t2 = fg.task_of_process(p2);
  req.locks[t2] = TaskLock{10, 0};
  const EngineResult res = run_list_scheduler(fg, req);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.slot(t2).start, 10);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(p1)).start, 0);
}

TEST(ListScheduler, InfeasibleLockIsReported) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 5);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  const TaskId t2 = fg.task_of_process(p2);
  req.locks[t2] = TaskLock{2, 0};  // before P1 can finish
  const EngineResult res = run_list_scheduler(fg, req);
  EXPECT_FALSE(res.feasible);
  ASSERT_TRUE(res.offending_lock.has_value());
  EXPECT_EQ(*res.offending_lock, t2);
}

TEST(ListScheduler, UnlockedTasksFlowAroundReservations) {
  // One processor; a lock reserves [0, 4) for B; A (ready at 0, duration
  // 3) must wait until 4 — it cannot overlap the reservation.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId pa = b.add_process("A", 0, 3);
  const ProcessId pb = b.add_process("B", 0, 4);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  req.locks[fg.task_of_process(pb)] = TaskLock{0, 0};
  const EngineResult res = run_list_scheduler(fg, req);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pb)).start, 0);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pa)).start, 4);
}

TEST(ListScheduler, GapFillingBeforeReservation) {
  // Reservation at [5, 9); a 3-unit task fits in front of it.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId pa = b.add_process("A", 0, 3);
  const ProcessId pb = b.add_process("B", 0, 4);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  req.locks[fg.task_of_process(pb)] = TaskLock{5, 0};
  const EngineResult res = run_list_scheduler(fg, req);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pa)).start, 0);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pb)).start, 5);
}

// --------------------------------------------------------------------------
// Workspace reuse + checkpoint resume (EngineResume::kCheckpoint).

/// Both runs must be byte-identical: feasibility, every slot, and (when
/// infeasible) the offending lock.
void expect_engine_equal(const FlatGraph& fg, const EngineResult& a,
                         const EngineResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  if (!a.feasible) {
    EXPECT_EQ(a.offending_lock, b.offending_lock);
    return;
  }
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    ASSERT_EQ(a.schedule.scheduled(t), b.schedule.scheduled(t))
        << "task " << t;
    if (!a.schedule.scheduled(t)) continue;
    EXPECT_EQ(a.schedule.slot(t).start, b.schedule.slot(t).start)
        << "task " << t;
    EXPECT_EQ(a.schedule.slot(t).end, b.schedule.slot(t).end)
        << "task " << t;
    EXPECT_EQ(a.schedule.slot(t).resource, b.schedule.slot(t).resource)
        << "task " << t;
  }
}

TEST(ListScheduler, WorkspaceReuseKeepsRunsIdentical) {
  // The same request run twice on one workspace (warm buffers, warm
  // private cover cache) must reproduce the cold run exactly.
  Rng rng(11);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = 30;
  params.path_count = 6;
  const Cpg g = generate_random_cpg(arch, params, rng);
  const FlatGraph fg = FlatGraph::expand(g);
  EngineWorkspace ws;
  for (const AltPath& path : enumerate_paths(g)) {
    EngineRequest req;
    req.label = path.label;
    req.active = fg.active_tasks(path.label);
    req.priority = compute_priorities(fg, req.active,
                                      PriorityPolicy::kCriticalPath);
    const EngineResult cold = run_list_scheduler(fg, req);
    const EngineResult warm = run_list_scheduler(fg, req, ws);
    expect_engine_equal(fg, cold, warm);
  }
  EXPECT_EQ(ws.stats.runs, enumerate_paths(g).size());
  EXPECT_EQ(ws.stats.reuse_hits, ws.stats.runs - 1);
}

TEST(ListScheduler, CheckpointFullReuseReturnsRecordedResult) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  req.locks[fg.task_of_process(p2)] = TaskLock{10, 0};
  req.resume = EngineResume::kCheckpoint;
  EngineHistory history;
  req.history = &history;

  EngineWorkspace ws;
  const EngineResult first = run_list_scheduler(fg, req, ws);
  ASSERT_TRUE(first.feasible);
  EXPECT_FALSE(first.full_reuse);
  EXPECT_TRUE(history.valid);

  const EngineResult second = run_list_scheduler(fg, req, ws);
  EXPECT_TRUE(second.full_reuse);
  EXPECT_EQ(ws.stats.full_reuses, 1u);
  expect_engine_equal(fg, first, second);
}

TEST(ListScheduler, DeadlockIsReportedNotThrown) {
  // An active guarded task whose disjunction is (artificially) inactive
  // can never learn its condition: the engine must report the deadlock
  // through the result — with no offending lock, since no lock caused it
  // — instead of aborting. This is the condition the merge propagates as
  // MergeResult::ok == false.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_cond_edge(p1, p2, Literal{c, true});
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  const AltPath* with_c = nullptr;
  for (const AltPath& path : paths) {
    if (path.label.value_of(c) == true) with_c = &path;
  }
  ASSERT_NE(with_c, nullptr);

  EngineRequest req;
  req.label = with_c->label;
  req.active = fg.active_tasks(with_c->label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.active[fg.task_of_process(p1)] = false;  // corrupt: P2 starves
  const EngineResult res = run_list_scheduler(fg, req);
  EXPECT_FALSE(res.feasible);
  EXPECT_FALSE(res.offending_lock.has_value());
  EXPECT_NE(res.reason.find("deadlock"), std::string::npos);
}

// Randomized checkpoint-vs-scratch equivalence: evolving rule-3-style
// lock sets on the paths of seeded CPGs, every run compared against a
// fresh from-scratch engine. This is the engine-level pillar under the
// merge-level equivalence suite in test_merge_parallel.cpp.
TEST(ListScheduler, CheckpointResumeMatchesScratchOnEvolvingLockSets) {
  std::size_t incremental = 0;  // resumes + full reuses observed
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 20 + (seed % 3) * 10;
    params.path_count = 4 + (seed % 3) * 2;
    const Cpg g = generate_random_cpg(arch, params, rng);
    const FlatGraph fg = FlatGraph::expand(g);
    EngineWorkspace ckpt_ws;
    EngineWorkspace scratch_ws;
    Rng lock_rng(seed * 977);
    for (const AltPath& path : enumerate_paths(g)) {
      EngineRequest base;
      base.label = path.label;
      base.active = fg.active_tasks(path.label);
      base.priority = compute_priorities(fg, base.active,
                                         PriorityPolicy::kCriticalPath);
      base.locks.assign(fg.task_count(), std::nullopt);
      const EngineResult unlocked = run_list_scheduler(fg, base, scratch_ws);
      ASSERT_TRUE(unlocked.feasible);

      EngineHistory history;
      for (int round = 0; round < 6; ++round) {
        // Lock a random subset of tasks at their unlocked-schedule slots
        // (like rule 3 does), occasionally nudging one reservation to a
        // later time — which may make the request infeasible; both
        // engines must then agree on the offending lock too.
        EngineRequest ckpt = base;
        ckpt.resume = EngineResume::kCheckpoint;
        ckpt.history = &history;
        for (TaskId t = 0; t < fg.task_count(); ++t) {
          if (!base.active[t] || !unlocked.schedule.scheduled(t)) continue;
          if (lock_rng.index(4) != 0) continue;
          const Slot& slot = unlocked.schedule.slot(t);
          Time start = slot.start;
          if (lock_rng.index(8) == 0) {
            start += static_cast<Time>(1 + lock_rng.index(3));
          }
          ckpt.locks[t] = TaskLock{start, slot.resource};
        }
        EngineRequest scratch = ckpt;
        scratch.resume = EngineResume::kFromScratch;
        scratch.history = nullptr;

        const EngineResult a = run_list_scheduler(fg, ckpt, ckpt_ws);
        const EngineResult b = run_list_scheduler(fg, scratch, scratch_ws);
        expect_engine_equal(fg, a, b);
        if (a.resumed || a.full_reuse) ++incremental;
      }
    }
  }
  // The sweep must actually exercise the incremental machinery, not just
  // fall back to from-scratch runs.
  EXPECT_GT(incremental, 0u);
}

// Randomized guard-divergence equivalence: one EngineHistory chained
// across every alternative path of seeded CPGs in enumeration order (the
// tree driver's usage pattern — consecutive leaves share the longest
// guard prefix), every chained run compared against a fresh from-scratch
// engine. This is the engine-level pillar under the driver-level
// tree-vs-list suite in test_path_tree.cpp.
TEST(ListScheduler, GuardResumeMatchesScratchAcrossChainedLeaves) {
  std::size_t resumed = 0;
  std::size_t resumed_steps = 0;
  for (std::uint64_t seed = 41; seed <= 70; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 20 + (seed % 3) * 10;
    params.path_count = 6 + (seed % 4) * 6;
    const Cpg g = generate_random_cpg(arch, params, rng);
    const FlatGraph fg = FlatGraph::expand(g);
    EngineWorkspace chain_ws;
    EngineWorkspace scratch_ws;
    EngineHistory chain;
    chain.eager = true;
    for (const AltPath& path : enumerate_paths(g)) {
      EngineRequest req;
      req.label = path.label;
      req.active = fg.active_tasks(path.label);
      req.priority = compute_priorities(fg, req.active,
                                        PriorityPolicy::kCriticalPath);
      EngineRequest scratch = req;
      req.resume = EngineResume::kCheckpoint;
      req.history = &chain;
      const EngineResult a = run_list_scheduler(fg, req, chain_ws);
      const EngineResult b = run_list_scheduler(fg, scratch, scratch_ws);
      expect_engine_equal(fg, a, b);
      ASSERT_TRUE(a.feasible);
      EXPECT_FALSE(a.full_reuse);  // labels of distinct leaves differ
      if (a.resumed) {
        ++resumed;
        resumed_steps += a.resumed_steps;
      }
    }
    if (::testing::Test::HasFailure()) break;
  }
  // The chain must actually reuse shared prefixes, not degrade to
  // from-scratch runs.
  EXPECT_GT(resumed, 0u);
  EXPECT_GT(resumed_steps, 0u);
}

// Property sweep: schedules of random CPGs satisfy all physical
// invariants on every path and with every priority policy.
struct SweepParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t paths;
};

class ScheduleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScheduleSweep, InvariantsHoldOnAllPaths) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = param.nodes;
  params.path_count = param.paths;
  const Cpg g = generate_random_cpg(arch, params, rng);
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  EXPECT_EQ(paths.size(), param.paths);

  for (const PriorityPolicy policy :
       {PriorityPolicy::kCriticalPath, PriorityPolicy::kTaskOrder,
        PriorityPolicy::kRandom}) {
    Rng prio_rng(7);
    for (const AltPath& path : paths) {
      const PathSchedule s = schedule_path(fg, path, policy, &prio_rng);
      expect_schedule_invariants(fg, s, fg.active_tasks(path.label));
      EXPECT_GT(s.delay(fg), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ScheduleSweep,
    ::testing::Values(SweepParam{1, 20, 4}, SweepParam{2, 30, 6},
                      SweepParam{3, 40, 10}, SweepParam{4, 25, 12},
                      SweepParam{5, 50, 8}, SweepParam{6, 35, 5},
                      SweepParam{7, 45, 16}, SweepParam{8, 60, 10}));

}  // namespace
}  // namespace cps
