#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/list_scheduler.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::expect_schedule_invariants;
using testing::small_arch;

TEST(ListScheduler, SequentialChainOnOneProcessor) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 3);
  const ProcessId p2 = b.add_process("P2", 0, 4);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 1u);
  const PathSchedule s = schedule_path(fg, paths[0]);
  EXPECT_EQ(s.slot(fg.task_of_process(p1)).start, 0);
  EXPECT_EQ(s.slot(fg.task_of_process(p2)).start, 3);
  EXPECT_EQ(s.delay(fg), 7);
}

TEST(ListScheduler, ProcessorSerializesHardwareDoesNot) {
  // Two independent processes: on a processor they serialize, on an ASIC
  // they overlap.
  for (const bool hardware : {false, true}) {
    Architecture arch;
    PeId pe;
    if (hardware) {
      pe = arch.add_hardware("hw");
    } else {
      pe = arch.add_processor("p");
    }
    CpgBuilder b(arch);
    b.add_process("A", pe, 5);
    b.add_process("B", pe, 5);
    const Cpg g = b.build();
    const FlatGraph fg = FlatGraph::expand(g);
    const auto paths = enumerate_paths(g);
    const PathSchedule s = schedule_path(fg, paths[0]);
    EXPECT_EQ(s.delay(fg), hardware ? 5 : 10);
  }
}

TEST(ListScheduler, CommunicationOccupiesBus) {
  // Two transfers over one bus serialize.
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  const ProcessId a = b.add_process("A", 0, 2);
  const ProcessId b1 = b.add_process("B1", 1, 1);
  const ProcessId b2 = b.add_process("B2", 1, 1);
  b.add_edge(a, b1, 4);
  b.add_edge(a, b2, 4);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  const PathSchedule s = schedule_path(fg, paths[0]);
  // A ends at 2; the two comms run 2-6 and 6-10; B's run 1 each.
  EXPECT_EQ(s.delay(fg), 11);
  expect_schedule_invariants(fg, s, fg.active_tasks(paths[0].label));
}

TEST(ListScheduler, CriticalPathPriorityPrefersUrgentTask) {
  // Two ready tasks on one processor: A (short, no successors) and B
  // (feeds a long chain). Critical-path priority must start B first.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId ta = b.add_process("A", 0, 5);
  const ProcessId tb = b.add_process("B", 0, 2);
  const ProcessId tc = b.add_process("C", 0, 10);
  b.add_edge(tb, tc);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  const PathSchedule s = schedule_path(fg, paths[0]);
  // B (urgency 12) precedes A (urgency 5); C follows B; A runs last.
  EXPECT_EQ(s.slot(fg.task_of_process(tb)).start, 0);
  EXPECT_EQ(s.slot(fg.task_of_process(tc)).start, 2);
  EXPECT_EQ(s.slot(fg.task_of_process(ta)).start, 12);
  EXPECT_EQ(s.delay(fg), 17);
}

TEST(ListScheduler, KnowledgeRuleDelaysGuardedProcessOnRemotePe) {
  // P1 on cpu1 computes C at t=2; P2 (guard C) runs on cpu2 and needs the
  // broadcast: start >= end(P1) + tau0 and after the comm of its input.
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 1, 3);
  b.add_cond_edge(p1, p2, Literal{c, true}, /*comm=*/1);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const AltPath& path : enumerate_paths(g)) {
    const PathSchedule s = schedule_path(fg, path);
    expect_schedule_invariants(fg, s, fg.active_tasks(path.label));
    if (path.label.value_of(c) == true) {
      const Slot& p2s = s.slot(fg.task_of_process(p2));
      const auto bcast = fg.broadcast_task(c);
      ASSERT_TRUE(bcast.has_value());
      ASSERT_TRUE(s.scheduled(*bcast));
      // P2 cannot start before the broadcast has delivered C to cpu2.
      EXPECT_GE(p2s.start, s.slot(*bcast).end);
    }
  }
}

TEST(ListScheduler, GuardTrueProcessNeedsNoKnowledge) {
  // A process with guard true on a remote PE may start before any
  // broadcast arrives.
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 5);
  const ProcessId p2 = b.add_process("P2", 0, 5);
  const ProcessId p3 = b.add_process("P3", 1, 1);  // independent, guard true
  b.add_cond_edge(p1, p2, Literal{c, true});
  (void)p3;
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  for (const AltPath& path : paths) {
    const PathSchedule s = schedule_path(fg, path);
    EXPECT_EQ(s.slot(fg.task_of_process(p3)).start, 0);
  }
}

TEST(ListScheduler, BroadcastUsesFirstAvailableBus) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const AltPath& path : enumerate_paths(g)) {
    const PathSchedule s = schedule_path(fg, path);
    const auto active = fg.active_tasks(path.label);
    expect_schedule_invariants(fg, s, active);
    for (CondId c = 0; c < 3; ++c) {
      const auto bt = fg.broadcast_task(c);
      if (!active[*bt]) continue;
      const Slot& bs = s.slot(*bt);
      EXPECT_TRUE(fg.arch().pe(bs.resource).is_bus());
      // Broadcast never precedes its disjunction.
      EXPECT_GE(bs.start, s.slot(fg.disjunction_task(c)).end);
    }
  }
}

TEST(ListScheduler, LockedTaskStartsExactlyAtReservation) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  const TaskId t2 = fg.task_of_process(p2);
  req.locks[t2] = TaskLock{10, 0};
  const EngineResult res = run_list_scheduler(fg, req);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.slot(t2).start, 10);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(p1)).start, 0);
}

TEST(ListScheduler, InfeasibleLockIsReported) {
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 5);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  const TaskId t2 = fg.task_of_process(p2);
  req.locks[t2] = TaskLock{2, 0};  // before P1 can finish
  const EngineResult res = run_list_scheduler(fg, req);
  EXPECT_FALSE(res.feasible);
  ASSERT_TRUE(res.offending_lock.has_value());
  EXPECT_EQ(*res.offending_lock, t2);
}

TEST(ListScheduler, UnlockedTasksFlowAroundReservations) {
  // One processor; a lock reserves [0, 4) for B; A (ready at 0, duration
  // 3) must wait until 4 — it cannot overlap the reservation.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId pa = b.add_process("A", 0, 3);
  const ProcessId pb = b.add_process("B", 0, 4);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  req.locks[fg.task_of_process(pb)] = TaskLock{0, 0};
  const EngineResult res = run_list_scheduler(fg, req);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pb)).start, 0);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pa)).start, 4);
}

TEST(ListScheduler, GapFillingBeforeReservation) {
  // Reservation at [5, 9); a 3-unit task fits in front of it.
  Architecture arch;
  arch.add_processor("p");
  CpgBuilder b(arch);
  const ProcessId pa = b.add_process("A", 0, 3);
  const ProcessId pb = b.add_process("B", 0, 4);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  EngineRequest req;
  req.label = paths[0].label;
  req.active = fg.active_tasks(paths[0].label);
  req.priority = compute_priorities(fg, req.active,
                                    PriorityPolicy::kCriticalPath);
  req.locks.assign(fg.task_count(), std::nullopt);
  req.locks[fg.task_of_process(pb)] = TaskLock{5, 0};
  const EngineResult res = run_list_scheduler(fg, req);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pa)).start, 0);
  EXPECT_EQ(res.schedule.slot(fg.task_of_process(pb)).start, 5);
}

// Property sweep: schedules of random CPGs satisfy all physical
// invariants on every path and with every priority policy.
struct SweepParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t paths;
};

class ScheduleSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScheduleSweep, InvariantsHoldOnAllPaths) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = param.nodes;
  params.path_count = param.paths;
  const Cpg g = generate_random_cpg(arch, params, rng);
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);
  EXPECT_EQ(paths.size(), param.paths);

  for (const PriorityPolicy policy :
       {PriorityPolicy::kCriticalPath, PriorityPolicy::kTaskOrder,
        PriorityPolicy::kRandom}) {
    Rng prio_rng(7);
    for (const AltPath& path : paths) {
      const PathSchedule s = schedule_path(fg, path, policy, &prio_rng);
      expect_schedule_invariants(fg, s, fg.active_tasks(path.label));
      EXPECT_GT(s.delay(fg), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ScheduleSweep,
    ::testing::Values(SweepParam{1, 20, 4}, SweepParam{2, 30, 6},
                      SweepParam{3, 40, 10}, SweepParam{4, 25, 12},
                      SweepParam{5, 50, 8}, SweepParam{6, 35, 5},
                      SweepParam{7, 45, 16}, SweepParam{8, 60, 10}));

}  // namespace
}  // namespace cps
