#include <gtest/gtest.h>

#include <sstream>

#include "graph/dag_algo.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "support/error.hpp"

namespace cps {
namespace {

Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, AddNodesAndEdges) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
}

TEST(Digraph, RejectsSelfLoopsAndBadIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 5), InvalidArgument);
  EXPECT_THROW(g.edge(0), InvalidArgument);
}

TEST(Digraph, ResizeCannotShrink) {
  Digraph g(3);
  EXPECT_THROW(g.resize(1), InvalidArgument);
  g.resize(5);
  EXPECT_EQ(g.node_count(), 5u);
}

TEST(DagAlgo, TopologicalOrderOnDag) {
  const Digraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[0], position[2]);
  EXPECT_LT(position[1], position[3]);
  EXPECT_LT(position[2], position[3]);
}

TEST(DagAlgo, CycleDetected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_acyclic(g));
}

TEST(DagAlgo, LongestPathInto) {
  const Digraph g = diamond();
  const std::vector<std::int64_t> nw{1, 5, 2, 1};
  const auto dist = longest_path_into(g, nw, {});
  EXPECT_EQ(dist[0], 1);
  EXPECT_EQ(dist[1], 6);
  EXPECT_EQ(dist[2], 3);
  EXPECT_EQ(dist[3], 7);
}

TEST(DagAlgo, LongestPathFromWithEdgeWeights) {
  Digraph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  std::vector<std::int64_t> nw{1, 1, 1};
  std::vector<std::int64_t> ew(g.edge_count(), 0);
  ew[e01] = 10;
  ew[e12] = 1;
  const auto dist = longest_path_from(g, nw, ew);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[1], 3);
  EXPECT_EQ(dist[0], 14);
}

TEST(DagAlgo, LongestPathRequiresDag) {
  Digraph g(2);
  g.add_edge(0, 1);
  Digraph cyc(2);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW(longest_path_into(cyc, {1, 1}, {}), InvalidArgument);
}

TEST(DagAlgo, Reachability) {
  const Digraph g = diamond();
  const auto fwd = reachable_from(g, 1);
  EXPECT_TRUE(fwd[1]);
  EXPECT_TRUE(fwd[3]);
  EXPECT_FALSE(fwd[0]);
  EXPECT_FALSE(fwd[2]);
  const auto bwd = reaching(g, 1);
  EXPECT_TRUE(bwd[0]);
  EXPECT_TRUE(bwd[1]);
  EXPECT_FALSE(bwd[2]);
}

TEST(DagAlgo, PolarCheck) {
  EXPECT_TRUE(is_polar(diamond(), 0, 3));
  EXPECT_FALSE(is_polar(diamond(), 0, 1));  // node 1 has out-edges
  Digraph g(3);
  g.add_edge(0, 2);
  EXPECT_FALSE(is_polar(g, 0, 2));  // node 1 disconnected
}

TEST(Dot, RendersNodesEdgesAndLabels) {
  const Digraph g = diamond();
  DotStyle style;
  style.node_label = [](NodeId n) { return "N" + std::to_string(n); };
  style.edge_label = [](EdgeId e) { return e == 0 ? "C" : ""; };
  std::ostringstream os;
  write_dot(os, g, style);
  const std::string s = os.str();
  EXPECT_NE(s.find("digraph g {"), std::string::npos);
  EXPECT_NE(s.find("n0 [label=\"N0\"]"), std::string::npos);
  EXPECT_NE(s.find("n0 -> n1 [label=\"C\"]"), std::string::npos);
  EXPECT_NE(s.find("n2 -> n3;"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  Digraph g(1);
  DotStyle style;
  style.node_label = [](NodeId) { return "a\"b"; };
  std::ostringstream os;
  write_dot(os, g, style);
  EXPECT_NE(os.str().find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace cps
