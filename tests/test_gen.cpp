#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

TEST(ArchGen, StaysWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Architecture arch = generate_random_architecture(rng);
    const auto procs = arch.processors().size();
    const auto buses = arch.buses().size();
    EXPECT_GE(procs, 1u);
    EXPECT_LE(procs, 11u);
    EXPECT_GE(buses, 1u);
    EXPECT_LE(buses, 8u);
    EXPECT_EQ(arch.of_kind(PeKind::kHardware).size(), 1u);
    EXPECT_FALSE(arch.broadcast_buses().empty());
  }
}

TEST(ArchGen, CoversTheRanges) {
  Rng rng(2);
  std::size_t min_p = 99, max_p = 0, min_b = 99, max_b = 0;
  for (int i = 0; i < 200; ++i) {
    const Architecture arch = generate_random_architecture(rng);
    min_p = std::min(min_p, arch.processors().size());
    max_p = std::max(max_p, arch.processors().size());
    min_b = std::min(min_b, arch.buses().size());
    max_b = std::max(max_b, arch.buses().size());
  }
  EXPECT_EQ(min_p, 1u);
  EXPECT_EQ(max_p, 11u);
  EXPECT_EQ(min_b, 1u);
  EXPECT_EQ(max_b, 8u);
}

TEST(ArchGen, ExampleArchitecture) {
  const Architecture arch = example_architecture();
  EXPECT_EQ(arch.pe_count(), 4u);
  EXPECT_EQ(arch.processors().size(), 2u);
}

struct GenParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t paths;
  TimeDistribution dist;
};

class GeneratorSweep : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorSweep, HitsExactPathAndNodeTargets) {
  const GenParam p = GetParam();
  Rng rng(p.seed);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = p.nodes;
  params.path_count = p.paths;
  params.distribution = p.dist;
  const Cpg g = generate_random_cpg(arch, params, rng);  // validates

  EXPECT_GE(g.ordinary_process_count(), p.nodes);
  // Padding never overshoots by more than the skeleton size.
  EXPECT_LE(g.ordinary_process_count(), p.nodes + 4 * p.paths);
  EXPECT_EQ(enumerate_paths(g).size(), p.paths);

  // Execution times respect the configured bounds for the uniform case.
  if (p.dist == TimeDistribution::kUniform) {
    for (const Process& proc : g.processes()) {
      if (proc.is_dummy()) continue;
      EXPECT_GE(proc.exec_time, params.exec_min);
      EXPECT_LE(proc.exec_time, params.exec_max);
    }
  }
  // Communication times never undercut tau0.
  for (const CpgEdge& e : g.edges()) {
    if (e.bus) {
      EXPECT_GE(e.comm_time, g.arch().cond_broadcast_time());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkload, GeneratorSweep,
    ::testing::Values(GenParam{1, 60, 10, TimeDistribution::kUniform},
                      GenParam{2, 60, 12, TimeDistribution::kExponential},
                      GenParam{3, 80, 18, TimeDistribution::kUniform},
                      GenParam{4, 80, 24, TimeDistribution::kExponential},
                      GenParam{5, 120, 32, TimeDistribution::kUniform},
                      GenParam{6, 120, 10, TimeDistribution::kExponential},
                      GenParam{7, 60, 32, TimeDistribution::kUniform},
                      GenParam{8, 120, 24, TimeDistribution::kUniform}));

TEST(Generator, DeterministicForSameSeed) {
  RandomCpgParams params;
  params.process_count = 40;
  params.path_count = 8;
  Rng rng1(9), rng2(9);
  const Architecture a1 = generate_random_architecture(rng1);
  const Architecture a2 = generate_random_architecture(rng2);
  const Cpg g1 = generate_random_cpg(a1, params, rng1);
  const Cpg g2 = generate_random_cpg(a2, params, rng2);
  ASSERT_EQ(g1.process_count(), g2.process_count());
  ASSERT_EQ(g1.edge_count(), g2.edge_count());
  for (ProcessId p = 0; p < g1.process_count(); ++p) {
    EXPECT_EQ(g1.process(p).exec_time, g2.process(p).exec_time);
    EXPECT_EQ(g1.process(p).mapping, g2.process(p).mapping);
  }
}

TEST(Generator, SinglePathProducesNoConditions) {
  Rng rng(3);
  const Architecture arch = example_architecture();
  RandomCpgParams params;
  params.process_count = 10;
  params.path_count = 1;
  const Cpg g = generate_random_cpg(arch, params, rng);
  EXPECT_EQ(g.conditions().size(), 0u);
  EXPECT_EQ(enumerate_paths(g).size(), 1u);
}

TEST(Generator, RejectsZeroPaths) {
  Rng rng(1);
  const Architecture arch = example_architecture();
  RandomCpgParams params;
  params.path_count = 0;
  EXPECT_THROW(generate_random_cpg(arch, params, rng), InvalidArgument);
}

TEST(Generator, ExponentialTimesHavePlausibleSpread) {
  Rng rng(4);
  const Architecture arch = example_architecture();
  RandomCpgParams params;
  params.process_count = 200;
  params.path_count = 4;
  params.distribution = TimeDistribution::kExponential;
  params.exec_mean = 10.0;
  const Cpg g = generate_random_cpg(arch, params, rng);
  StatAccumulator acc;
  for (const Process& p : g.processes()) {
    if (!p.is_dummy()) acc.add(static_cast<double>(p.exec_time));
  }
  EXPECT_NEAR(acc.mean(), 10.0, 3.0);
  EXPECT_GT(acc.max(), 2 * acc.mean());  // heavy tail present
}

}  // namespace
}  // namespace cps
