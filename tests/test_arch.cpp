#include <gtest/gtest.h>

#include "arch/architecture.hpp"
#include "support/error.hpp"

namespace cps {
namespace {

TEST(Architecture, AddAndQueryKinds) {
  Architecture a;
  const PeId p1 = a.add_processor("p1", 2.0);
  const PeId hw = a.add_hardware("hw");
  const PeId bus = a.add_bus("bus");
  const PeId mem = a.add_memory("mem");
  EXPECT_EQ(a.pe_count(), 4u);
  EXPECT_EQ(a.pe(p1).kind, PeKind::kProcessor);
  EXPECT_DOUBLE_EQ(a.pe(p1).speed, 2.0);
  EXPECT_EQ(a.pe(hw).kind, PeKind::kHardware);
  EXPECT_EQ(a.pe(bus).kind, PeKind::kBus);
  EXPECT_EQ(a.pe(mem).kind, PeKind::kMemory);
  EXPECT_EQ(a.processors(), std::vector<PeId>{p1});
  EXPECT_EQ(a.buses(), std::vector<PeId>{bus});
}

TEST(Architecture, SequentialityRules) {
  Architecture a;
  const PeId p = a.add_processor("p");
  const PeId hw = a.add_hardware("hw");
  const PeId bus = a.add_bus("b");
  const PeId mem = a.add_memory("m");
  EXPECT_TRUE(a.pe(p).sequential());
  EXPECT_FALSE(a.pe(hw).sequential());
  EXPECT_TRUE(a.pe(bus).sequential());
  EXPECT_TRUE(a.pe(mem).sequential());
  EXPECT_TRUE(a.pe(p).is_computation());
  EXPECT_TRUE(a.pe(hw).is_computation());
  EXPECT_FALSE(a.pe(bus).is_computation());
}

TEST(Architecture, BroadcastBuses) {
  Architecture a;
  a.add_processor("p");
  a.add_bus("b1", /*connects_all=*/true);
  a.add_bus("b2", /*connects_all=*/false);
  EXPECT_EQ(a.broadcast_buses().size(), 1u);
  EXPECT_EQ(a.pe(a.broadcast_buses()[0]).name, "b1");
}

TEST(Architecture, NameLookupAndDuplicates) {
  Architecture a;
  a.add_processor("p1");
  EXPECT_EQ(a.id_of("p1"), 0);
  EXPECT_THROW(a.id_of("nope"), InvalidArgument);
  EXPECT_THROW(a.add_bus("p1"), InvalidArgument);
  EXPECT_THROW(a.add_processor(""), InvalidArgument);
  EXPECT_THROW(a.add_processor("neg", -1.0), InvalidArgument);
}

TEST(Architecture, BroadcastTimeValidation) {
  Architecture a;
  a.add_processor("p");
  a.set_cond_broadcast_time(5);
  EXPECT_EQ(a.cond_broadcast_time(), 5);
  EXPECT_THROW(a.set_cond_broadcast_time(0), InvalidArgument);
}

TEST(Architecture, ValidateRules) {
  Architecture empty;
  EXPECT_THROW(empty.validate(false), InvalidArgument);

  Architecture no_compute;
  no_compute.add_bus("b");
  EXPECT_THROW(no_compute.validate(false), ValidationError);

  Architecture no_bcast;
  no_bcast.add_processor("p1");
  no_bcast.add_processor("p2");
  EXPECT_NO_THROW(no_bcast.validate(false));
  EXPECT_THROW(no_bcast.validate(true), ValidationError);
  no_bcast.add_bus("b");
  EXPECT_NO_THROW(no_bcast.validate(true));
}

}  // namespace
}  // namespace cps
