#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "graph/dag_algo.hpp"
#include "models/fig1.hpp"
#include "sched/baseline.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

TEST(Baseline, ObliviousScheduleCoversAllNonBroadcastTasks) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  const ObliviousResult r = oblivious_schedule(fg);
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    EXPECT_EQ(r.schedule.scheduled(t), !fg.task(t).is_broadcast())
        << fg.task(t).name;
  }
  EXPECT_GT(r.delay, 0);
}

TEST(Baseline, ObliviousRespectsCriticalPathLowerBound) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  const ObliviousResult r = oblivious_schedule(fg);

  // Critical path over the full task graph is a lower bound.
  std::vector<std::int64_t> durations;
  durations.reserve(fg.task_count());
  for (const Task& t : fg.tasks()) {
    durations.push_back(t.is_broadcast() ? 0 : t.duration);
  }
  const auto cp = longest_path_from(fg.deps(), durations, {});
  EXPECT_GE(r.delay, cp[fg.source_task()]);
}

TEST(Baseline, ObliviousIsInTheRightBallparkOnFig1) {
  // The oblivious baseline schedules both branches of every condition but
  // pays no broadcast latency, so it lands close to (and in the
  // aggregate above) the condition-aware worst case. On Fig. 1 the two
  // are within a broadcast-dominated margin of each other.
  const Cpg g = build_fig1_cpg();
  const CoSynthesisResult aware = schedule_cpg(g);
  const ObliviousResult oblivious = oblivious_schedule(aware.flat_graph());
  EXPECT_GE(oblivious.delay, aware.delays.delta_m / 2);
  EXPECT_GE(oblivious.delay, aware.delays.path_optimal.front() / 2);
}

TEST(Baseline, ObliviousBoundsOnRandomGraphs) {
  // The oblivious schedule runs every branch but pays no broadcast
  // latency, so it is bounded below by the full-graph critical path and
  // lands near the condition-aware worst case (bench_baseline_oblivious
  // quantifies the relationship).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 30;
    params.path_count = 8;
    const Cpg g = generate_random_cpg(arch, params, rng);
    const FlatGraph fg = FlatGraph::expand(g);
    const ObliviousResult oblivious = oblivious_schedule(fg);

    std::vector<std::int64_t> durations;
    durations.reserve(fg.task_count());
    for (const Task& t : fg.tasks()) {
      durations.push_back(t.is_broadcast() ? 0 : t.duration);
    }
    const auto cp = longest_path_from(fg.deps(), durations, {});
    EXPECT_GE(oblivious.delay, cp[fg.source_task()]) << "seed " << seed;
    // It also cannot beat the longest task chain of any single path.
    const CoSynthesisResult aware = schedule_cpg(g);
    EXPECT_GT(oblivious.delay, 0);
    EXPECT_GE(static_cast<double>(oblivious.delay),
              0.5 * static_cast<double>(aware.delays.delta_max))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace cps
