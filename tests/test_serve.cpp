// Co-synthesis service: determinism contract (responses are a pure
// function of the request index — byte-identical to the run_batch
// oracle regardless of thread count, connection count, or arrival
// order), admission control and typed overload shedding, deadline and
// step-budget edges, graceful drain (shutdown request and SIGTERM), and
// the serve.* fault-injection sweep.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "io/table_csv.hpp"
#include "sched/batch_driver.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/signals.hpp"

namespace {

using namespace cps;

BatchConfig tiny_workload() {
  BatchConfig config;
  config.base_seed = 42;
  config.cpg.process_count = 16;
  config.cpg.path_count = 4;
  config.synthesis.merge.execution = MergeExecution::kSerial;
  return config;
}

std::string test_socket(const char* tag) {
  return "/tmp/condsched_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

ServerOptions tiny_options(const char* tag) {
  ServerOptions options;
  options.socket_path = test_socket(tag);
  options.threads = 2;
  options.workload = tiny_workload();
  return options;
}

/// The offline oracle: the exact bytes the service must answer for a
/// "run" request with this id (index defaults to id).
std::string oracle_payload(const BatchConfig& workload, std::uint64_t id) {
  const BatchItem item = run_batch_item(workload, id, nullptr);
  return make_item_response(id, item, nullptr);
}

std::string status_of(const std::string& payload) {
  return JsonValue::parse(payload).at("status").as_string();
}

/// Server on its own thread; drained and joined at scope exit.
class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options)
      : server_(std::move(options)), thread_([this] { server_.run(); }) {}
  ~ServerHarness() { drain(); }

  /// Idempotent: triggers a drain (no-op if already draining) and joins.
  void drain() {
    if (joined_) return;
    server_.request_drain();
    thread_.join();
    joined_ = true;
  }

  Server& server() { return server_; }

 private:
  Server server_;
  std::thread thread_;
  bool joined_ = false;
};

// ------------------------------------------------------------ determinism

// The PR's acceptance gate: the sorted-by-id response set is
// byte-identical across thread counts and connection counts, and equal
// to the offline oracle.
TEST(Serve, ResponsesByteIdenticalAcrossThreadsAndConnections) {
  const BatchConfig workload = tiny_workload();
  constexpr std::size_t kRequests = 12;
  std::vector<std::string> oracle;
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    oracle.push_back(oracle_payload(workload, id));
  }

  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t connections : {1u, 3u}) {
      ServerOptions options = tiny_options("det");
      options.threads = threads;
      ServerHarness harness(std::move(options));

      LoadGenConfig load;
      load.socket_path = harness.server().socket_path();
      load.requests = kRequests;
      load.connections = connections;
      load.keep_payloads = true;
      LoadGenResult r = run_loadgen(load);
      ASSERT_EQ(r.responses, kRequests)
          << threads << " threads, " << connections << " connections";
      ASSERT_EQ(r.ok, kRequests);

      std::sort(r.payloads.begin(), r.payloads.end());
      for (std::size_t i = 0; i < kRequests; ++i) {
        EXPECT_EQ(r.payloads[i].second, oracle[i])
            << "id " << i << " at " << threads << " threads, " << connections
            << " connections";
      }
    }
  }
}

// Arrival order must not matter either: pipeline requests in shuffled
// order on one connection and match every (out-of-order) completion
// against the oracle by id.
TEST(Serve, ShuffledPipelinedArrivalMatchesOracle) {
  const BatchConfig workload = tiny_workload();
  ServerHarness harness(tiny_options("shuffle"));
  ServeClient client(harness.server().socket_path());

  const std::vector<std::uint64_t> order = {5, 0, 3, 1, 4, 2};
  for (std::uint64_t id : order) {
    ASSERT_TRUE(client.send_run(id));
  }
  std::map<std::uint64_t, std::string> by_id;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::optional<std::string> response = client.recv();
    ASSERT_TRUE(response.has_value());
    const JsonValue doc = JsonValue::parse(*response);
    by_id[static_cast<std::uint64_t>(doc.at("id").as_number())] = *response;
  }
  ASSERT_EQ(by_id.size(), order.size());
  for (std::uint64_t id : order) {
    EXPECT_EQ(by_id[id], oracle_payload(workload, id)) << "id " << id;
  }
}

// Reconnecting and re-sending the same id is idempotent: same bytes.
TEST(Serve, ReconnectAndResendIsIdempotent) {
  ServerHarness harness(tiny_options("reconnect"));
  const std::string path = harness.server().socket_path();

  std::string first;
  {
    ServeClient client(path);
    ASSERT_TRUE(client.send_run(9));
    const std::optional<std::string> response = client.recv();
    ASSERT_TRUE(response.has_value());
    first = *response;
  }
  ServeClient again(path);
  ASSERT_TRUE(again.send_run(9));
  const std::optional<std::string> response = again.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, first);
  EXPECT_EQ(first, oracle_payload(tiny_workload(), 9));
}

// `csv: true` attaches the schedule table rendered by the same writer
// the offline CSV path uses.
TEST(Serve, CsvRequestAttachesScheduleTable) {
  ServerHarness harness(tiny_options("csv"));
  ServeClient client(harness.server().socket_path());
  ASSERT_TRUE(client.send("{\"id\": 4, \"op\": \"run\", \"csv\": true}"));
  const std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());

  const BatchConfig workload = tiny_workload();
  std::string csv;
  const BatchItem item = run_batch_item(
      workload, 4, nullptr,
      [&](const CoSynthesisResult& r) { csv = table_csv_string(r.table); });
  ASSERT_TRUE(item.ok) << item.error;
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(*response, make_item_response(4, item, &csv));
  EXPECT_EQ(JsonValue::parse(*response).at("table_csv").as_string(), csv);
}

// --------------------------------------------------- protocol odds & ends

TEST(Serve, PingPongAndParseFailureKeepTheConnection) {
  ServerHarness harness(tiny_options("ping"));
  ServeClient client(harness.server().socket_path());

  // Garbage gets a typed parse_failed with a null id...
  ASSERT_TRUE(client.send("{this is not json"));
  std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(status_of(*response), "parse_failed");
  EXPECT_EQ(JsonValue::parse(*response).at("id").kind(),
            JsonValue::Kind::kNull);

  // ...and the connection survives to serve a ping on the same socket.
  ASSERT_TRUE(client.send("{\"id\": 1, \"op\": \"ping\"}"));
  response = client.recv();
  ASSERT_TRUE(response.has_value());
  const JsonValue doc = JsonValue::parse(*response);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  EXPECT_TRUE(doc.at("pong").as_bool());
  EXPECT_FALSE(doc.at("draining").as_bool());
}

// ------------------------------------------------------ overload shedding

// Open-loop load far above a 1-worker server's capacity: every request
// still gets exactly one typed response — ok or rejected_overload, no
// silent drops — and the queue stays within its bound.
TEST(Serve, OverloadShedsTypedResponsesShedOldest) {
  ServerOptions options = tiny_options("shed");
  options.threads = 1;
  options.max_queue_depth = 3;
  options.overload = OverloadPolicy::kShedOldest;
  ServerHarness harness(std::move(options));

  LoadGenConfig load;
  load.socket_path = harness.server().socket_path();
  load.requests = 80;
  load.connections = 2;
  load.open_loop = true;
  load.rate_per_sec = 4000.0;
  const LoadGenResult r = run_loadgen(load);

  EXPECT_EQ(r.sent, 80u);
  EXPECT_EQ(r.responses, r.sent) << "every request answered, none dropped";
  EXPECT_GT(r.shed, 0u) << "2x+ capacity must shed";
  EXPECT_GT(r.ok, 0u) << "shedding must not starve admitted work";
  EXPECT_EQ(r.ok + r.shed + r.timed_out, r.responses);
  EXPECT_EQ(r.parse_failed, 0u);
  EXPECT_EQ(r.disconnected, 0u);
  EXPECT_EQ(r.recv_timeouts, 0u);

  harness.drain();
  const ServerCounters c = harness.server().stats();
  EXPECT_GT(c.shed_overload, 0u);
  EXPECT_LE(c.peak_queue_depth, 3u) << "admission bound held";
  EXPECT_EQ(c.completed_ok, r.ok);
}

TEST(Serve, OverloadRejectNewestAnswersEveryRequest) {
  ServerOptions options = tiny_options("reject");
  options.threads = 1;
  options.max_queue_depth = 3;
  options.overload = OverloadPolicy::kRejectNewest;
  ServerHarness harness(std::move(options));

  LoadGenConfig load;
  load.socket_path = harness.server().socket_path();
  load.requests = 80;
  load.connections = 2;
  load.open_loop = true;
  load.rate_per_sec = 4000.0;
  const LoadGenResult r = run_loadgen(load);

  EXPECT_EQ(r.responses, r.sent);
  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.ok, 0u);
  EXPECT_EQ(r.parse_failed + r.disconnected + r.recv_timeouts, 0u);
}

// The in-flight-bytes watermark is its own admission axis: a watermark
// smaller than any frame refuses everything — typed, never silent.
TEST(Serve, ByteWatermarkRejectsWithTypedResponses) {
  ServerOptions options = tiny_options("bytes");
  options.max_inflight_bytes = 1;
  ServerHarness harness(std::move(options));

  LoadGenConfig load;
  load.socket_path = harness.server().socket_path();
  load.requests = 6;
  load.connections = 2;
  const LoadGenResult r = run_loadgen(load);
  EXPECT_EQ(r.responses, 6u);
  EXPECT_EQ(r.shed, 6u);
  EXPECT_EQ(r.ok, 0u);
}

// ------------------------------------------------------------------ drain

// A "shutdown" request acks, refuses later runs with a typed response,
// finishes the in-flight work, flushes, and run() returns.
TEST(Serve, ShutdownRequestDrainsGracefully) {
  ServerHarness harness(tiny_options("shutdown"));
  const std::string path = harness.server().socket_path();
  ServeClient client(path);

  ASSERT_TRUE(client.send_run(0));
  ASSERT_TRUE(client.send("{\"id\": 1, \"op\": \"shutdown\"}"));
  // A run pipelined behind the shutdown is refused, typed.
  ASSERT_TRUE(client.send_run(2));

  std::map<std::uint64_t, std::string> by_id;
  for (int i = 0; i < 3; ++i) {
    const std::optional<std::string> response = client.recv();
    ASSERT_TRUE(response.has_value()) << "response " << i;
    const JsonValue doc = JsonValue::parse(*response);
    by_id[static_cast<std::uint64_t>(doc.at("id").as_number())] = *response;
  }
  EXPECT_EQ(by_id[0], oracle_payload(tiny_workload(), 0));
  EXPECT_TRUE(JsonValue::parse(by_id[1]).at("draining").as_bool());
  EXPECT_EQ(status_of(by_id[2]), "rejected_overload");

  // The daemon exits on its own — no request_drain() needed; after the
  // flush it closes the connection.
  EXPECT_FALSE(client.recv().has_value());
  harness.drain();
  EXPECT_EQ(harness.server().stats().rejected_draining, 1u);
}

// SIGTERM through a SignalDrain fd takes the same path: in-flight work
// is answered (ok or typed refusal), everything flushes, run() returns.
TEST(Serve, SigtermDrainsAndFlushesInFlightWork) {
  SignalDrain drain{SIGTERM};
  ServerOptions options = tiny_options("sigterm");
  options.signal_fd = drain.fd();
  ServerHarness harness(std::move(options));
  ServeClient client(harness.server().socket_path());

  for (std::uint64_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(client.send_run(id));
  }
  std::raise(SIGTERM);

  // Every pipelined request is answered before the server exits; whether
  // a given one ran or was refused depends on the race with the signal,
  // but none may vanish.
  std::size_t answered = 0;
  for (std::uint64_t id = 0; id < 3; ++id) {
    const std::optional<std::string> response = client.recv();
    if (!response.has_value()) break;
    const std::string status = status_of(*response);
    EXPECT_TRUE(status == "ok" || status == "rejected_overload") << status;
    ++answered;
  }
  EXPECT_EQ(answered, 3u);
  harness.drain();
}

// ------------------------------------------------- budget edges (ISSUE 9)

TEST(Serve, AlreadyExpiredDeadlineIsRefusedAtAdmission) {
  ServerHarness harness(tiny_options("expired"));
  ServeClient client(harness.server().socket_path());
  ASSERT_TRUE(
      client.send("{\"id\": 1, \"op\": \"run\", \"deadline_ms\": -5.0}"));
  const std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(status_of(*response), "deadline_exceeded");

  // The server keeps serving afterwards.
  ASSERT_TRUE(client.send_run(2));
  const std::optional<std::string> ok = client.recv();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(status_of(*ok), "ok");
}

TEST(Serve, ZeroStepBudgetIsATypedRefusal) {
  ServerHarness harness(tiny_options("zerosteps"));
  ServeClient client(harness.server().socket_path());
  ASSERT_TRUE(client.send("{\"id\": 1, \"op\": \"run\", \"max_steps\": 0}"));
  const std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(status_of(*response), "step_budget_exceeded");
}

// A tiny deadline behind a queue of slower work fires while queued (or
// at dispatch, or inside the run — whichever the race picks, the answer
// is typed and the server never hangs).
TEST(Serve, TinyDeadlineBehindQueuedWorkExpiresTyped) {
  ServerOptions options = tiny_options("queued");
  options.threads = 1;
  ServerHarness harness(std::move(options));
  ServeClient client(harness.server().socket_path());

  for (std::uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(client.send_run(id));
  }
  ASSERT_TRUE(client.send(
      "{\"id\": 99, \"op\": \"run\", \"deadline_ms\": 0.0001}"));

  bool saw_expired = false;
  for (int i = 0; i < 5; ++i) {
    const std::optional<std::string> response = client.recv();
    ASSERT_TRUE(response.has_value());
    const JsonValue doc = JsonValue::parse(*response);
    if (static_cast<std::uint64_t>(doc.at("id").as_number()) == 99) {
      EXPECT_EQ(doc.at("status").as_string(), "deadline_exceeded");
      saw_expired = true;
    }
  }
  EXPECT_TRUE(saw_expired);

  // Still serving.
  ASSERT_TRUE(client.send_run(7));
  const std::optional<std::string> after = client.recv();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, oracle_payload(tiny_workload(), 7));
}

// max_paths bounds coverage instead of failing: the envelope stays ok,
// the item reports path_budget_exceeded with partial coverage.
TEST(Serve, PathBudgetYieldsBoundedCoverageResponse) {
  ServerHarness harness(tiny_options("paths"));
  ServeClient client(harness.server().socket_path());
  ASSERT_TRUE(client.send("{\"id\": 3, \"op\": \"run\", \"max_paths\": 1}"));
  const std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());
  const JsonValue doc = JsonValue::parse(*response);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  const JsonValue& item = doc.at("item");
  EXPECT_EQ(item.at("status").as_string(), "path_budget_exceeded");
  EXPECT_LT(item.at("coverage").as_number(), 1.0);
  EXPECT_GT(item.at("coverage").as_number(), 0.0);
}

// ------------------------------------------------ fault injection (serve.*)

// One request absorbs the injected fault as a typed response; its
// neighbors are untouched (byte-identical to the oracle) and the daemon
// keeps serving. Swept over every serve.* site that maps to a request.
TEST(Serve, FaultSweepRequestSitesFailExactlyOneRequestTyped) {
  if (!fault::enabled()) {
    GTEST_SKIP() << "built without CPS_FAULT_INJECT";
  }
  const BatchConfig workload = tiny_workload();
  for (const char* site : {"serve.read", "serve.dispatch", "serve.write"}) {
    SCOPED_TRACE(site);
    fault::disarm_all();
    ServerHarness harness(tiny_options("fault"));
    ServeClient client(harness.server().socket_path());

    fault::FaultSpec spec;
    spec.fire_at = 2;  // ids 0,1,2 arrive in order: id 1 draws the fault
    fault::arm(site, spec);
    std::size_t injected = 0;
    for (std::uint64_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(client.send_run(id));
      const std::optional<std::string> response = client.recv();
      ASSERT_TRUE(response.has_value()) << "id " << id;
      if (status_of(*response) == "injected_fault") {
        ++injected;
        EXPECT_EQ(
            static_cast<std::uint64_t>(
                JsonValue::parse(*response).at("id").as_number()),
            id);
      } else {
        EXPECT_EQ(*response, oracle_payload(workload, id)) << "id " << id;
      }
    }
    EXPECT_EQ(injected, 1u);
    fault::disarm_all();

    // The daemon survived: a fresh connection still gets answers.
    ServeClient again(harness.server().socket_path());
    ASSERT_TRUE(again.send_run(5));
    const std::optional<std::string> after = again.recv();
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*after, oracle_payload(workload, 5));
    EXPECT_GE(harness.server().stats().injected_failures, 1u);
  }
}

// serve.accept drops exactly the faulted connection; the next one works.
TEST(Serve, FaultAcceptDropsOnlyTheFaultedConnection) {
  if (!fault::enabled()) {
    GTEST_SKIP() << "built without CPS_FAULT_INJECT";
  }
  fault::disarm_all();
  ServerHarness harness(tiny_options("faultaccept"));
  fault::arm("serve.accept", fault::FaultSpec{});

  ServeClient dropped(harness.server().socket_path());
  dropped.send_run(0);
  EXPECT_FALSE(dropped.recv().has_value()) << "faulted accept must close";
  fault::disarm_all();

  ServeClient survivor(harness.server().socket_path());
  ASSERT_TRUE(survivor.send_run(1));
  const std::optional<std::string> response = survivor.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, oracle_payload(tiny_workload(), 1));
}

// ------------------------------------------------------- schedule cache

std::string stats_request(std::uint64_t id) {
  JsonWriter w(0);
  w.begin_object();
  w.field("id", id);
  w.field("op", "stats");
  w.end_object();
  return w.str();
}

// The "stats" op exposes the daemon's cache, per-session workspace-pool,
// and runtime counters in one typed response.
TEST(Serve, StatsOpReportsCacheAndPoolCounters) {
  ServerHarness harness(tiny_options("stats"));
  ServeClient client(harness.server().socket_path());

  // Same index twice: the second run is an exact daemon-cache hit.
  ASSERT_TRUE(client.send_run(0));
  ASSERT_TRUE(client.recv().has_value());
  ASSERT_TRUE(client.send_run(7, std::uint64_t{0}));
  const std::optional<std::string> repeat = client.recv();
  ASSERT_TRUE(repeat.has_value());

  ASSERT_TRUE(client.send(stats_request(99)));
  const std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());
  const JsonValue doc = JsonValue::parse(*response);
  EXPECT_EQ(doc.at("id").as_number(), 99.0);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  EXPECT_TRUE(doc.at("cache_enabled").as_bool());
  EXPECT_EQ(doc.at("cache").at("hits").as_number(), 1.0);
  EXPECT_EQ(doc.at("cache").at("misses").as_number(), 1.0);
  EXPECT_EQ(doc.at("cache").at("insertions").as_number(), 1.0);
  EXPECT_GE(doc.at("server").at("admitted").as_number(), 2.0);
  EXPECT_GE(doc.at("workspace_pool").at("leases").as_number(), 1.0);
  EXPECT_GE(doc.at("runtime").at("executed").as_number(), 0.0);
}

// A replayed response is the same bytes as the computed one — the cache
// is invisible in the payload (the determinism contract's cache clause).
TEST(Serve, CacheReplayIsByteIdenticalIncludingCsv) {
  ServerHarness harness(tiny_options("cachebytes"));
  ServeClient client(harness.server().socket_path());

  const std::string csv_request = [&] {
    JsonWriter w(0);
    w.begin_object();
    w.field("id", std::uint64_t{3});
    w.field("op", "run");
    w.field("csv", true);
    w.end_object();
    return w.str();
  }();
  ASSERT_TRUE(client.send(csv_request));
  const std::optional<std::string> cold = client.recv();
  ASSERT_TRUE(cold.has_value());
  EXPECT_NE(cold->find("table_csv"), std::string::npos);

  // Second client, same request: exact hit (the cache is per-daemon, not
  // per-connection), byte-identical bytes, CSV replayed from the record.
  ServeClient again(harness.server().socket_path());
  ASSERT_TRUE(again.send(csv_request));
  const std::optional<std::string> warm = again.recv();
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(*warm, *cold);

  ASSERT_TRUE(again.send(stats_request(4)));
  const std::optional<std::string> stats = again.recv();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(JsonValue::parse(*stats).at("cache").at("hits").as_number(),
            1.0);
}

// With --no-cache semantics (enable_cache = false) the daemon still
// answers identically — the cache only ever changes latency.
TEST(Serve, DisabledCacheAnswersIdenticallyAndReportsDisabled) {
  const BatchConfig workload = tiny_workload();
  ServerOptions options = tiny_options("nocache");
  options.enable_cache = false;
  ServerHarness harness(std::move(options));
  ServeClient client(harness.server().socket_path());

  ASSERT_TRUE(client.send_run(2));
  const std::optional<std::string> response = client.recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, oracle_payload(workload, 2));

  ASSERT_TRUE(client.send(stats_request(1)));
  const std::optional<std::string> stats = client.recv();
  ASSERT_TRUE(stats.has_value());
  const JsonValue doc = JsonValue::parse(*stats);
  EXPECT_FALSE(doc.at("cache_enabled").as_bool());
  EXPECT_EQ(doc.at("cache").at("hits").as_number(), 0.0);
}

// Restarting the daemon over a warm persistent store serves every
// repeated request as an exact (store) hit with identical bytes.
TEST(Serve, RestartOverWarmStoreReplaysExactHits) {
  namespace fs = std::filesystem;
  const fs::path store =
      fs::temp_directory_path() /
      ("cps_serve_store_" + std::to_string(::getpid()));
  fs::remove_all(store);
  constexpr std::uint64_t kRequests = 4;

  std::vector<std::string> first_run;
  {
    ServerOptions options = tiny_options("warmstore1");
    options.cache.store_dir = store.string();
    ServerHarness harness(std::move(options));
    ServeClient client(harness.server().socket_path());
    for (std::uint64_t id = 0; id < kRequests; ++id) {
      ASSERT_TRUE(client.send_run(id));
      const std::optional<std::string> response = client.recv();
      ASSERT_TRUE(response.has_value());
      first_run.push_back(*response);
    }
  }  // daemon drains; its in-memory tiers die with it

  ServerOptions options = tiny_options("warmstore2");
  options.cache.store_dir = store.string();
  ServerHarness harness(std::move(options));
  ServeClient client(harness.server().socket_path());
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    ASSERT_TRUE(client.send_run(id));
    const std::optional<std::string> response = client.recv();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, first_run[id]) << "id " << id;
  }
  ASSERT_TRUE(client.send(stats_request(77)));
  const std::optional<std::string> stats = client.recv();
  ASSERT_TRUE(stats.has_value());
  const JsonValue doc = JsonValue::parse(*stats);
  EXPECT_EQ(doc.at("cache").at("hits").as_number(),
            static_cast<double>(kRequests));
  EXPECT_EQ(doc.at("cache").at("store_hits").as_number(),
            static_cast<double>(kRequests));
  harness.drain();
  std::error_code ec;
  fs::remove_all(store, ec);
}

}  // namespace
