// Equivalence of the heap ready-list engine with the original linear-scan
// selection: across 200 seeded random CPGs, both engines must produce
// byte-identical per-path schedules, and the full co-synthesis flow must
// produce identical schedule tables and delay reports.
#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace {

using namespace cps;

void expect_identical_schedules(const FlatGraph& fg, const PathSchedule& a,
                                const PathSchedule& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    EXPECT_EQ(a.scheduled(t), b.scheduled(t)) << fg.task(t).name;
    if (!a.scheduled(t) || !b.scheduled(t)) continue;
    EXPECT_EQ(a.slot(t).start, b.slot(t).start) << fg.task(t).name;
    EXPECT_EQ(a.slot(t).end, b.slot(t).end) << fg.task(t).name;
    EXPECT_EQ(a.slot(t).resource, b.slot(t).resource) << fg.task(t).name;
  }
}

TEST(HeapEquivalence, Fig1AllPaths) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const AltPath& path : enumerate_paths(g)) {
    const PathSchedule heap = schedule_path(
        fg, path, PriorityPolicy::kCriticalPath, nullptr,
        ReadySelection::kHeap);
    const PathSchedule linear = schedule_path(
        fg, path, PriorityPolicy::kCriticalPath, nullptr,
        ReadySelection::kLinearScan);
    expect_identical_schedules(fg, heap, linear);
    cps::testing::expect_schedule_invariants(fg, heap,
                                             fg.active_tasks(path.label));
  }
}

// The headline equivalence sweep: 200 random CPGs over random
// architectures, varying size, path count and priority policy.
TEST(HeapEquivalence, RandomCpgs200) {
  const std::size_t path_counts[] = {2, 4, 8, 12};
  const PriorityPolicy policies[] = {PriorityPolicy::kCriticalPath,
                                     PriorityPolicy::kTaskOrder};
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 20 + (seed % 4) * 10;
    params.path_count = path_counts[seed % 4];
    const Cpg g = generate_random_cpg(arch, params, rng);
    const FlatGraph fg = FlatGraph::expand(g);
    const auto paths = enumerate_paths(g);
    const PriorityPolicy policy = policies[seed % 2];
    CoverCache cache;
    for (const AltPath& path : paths) {
      const PathSchedule heap = schedule_path(fg, path, policy, nullptr,
                                              ReadySelection::kHeap, &cache);
      const PathSchedule linear = schedule_path(
          fg, path, policy, nullptr, ReadySelection::kLinearScan);
      expect_identical_schedules(fg, heap, linear);
    }
    if (::testing::Test::HasFailure()) break;
  }
}

// Full-flow equivalence: identical schedule tables (entry-for-entry) and
// identical delay reports on a smaller sample (the merge exercises the
// engine with locks, where the heap must respect reservation windows).
TEST(HeapEquivalence, FullFlowTablesMatch) {
  for (std::uint64_t seed = 301; seed <= 330; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 30;
    params.path_count = 8;
    const Cpg g = generate_random_cpg(arch, params, rng);

    CoSynthesisOptions heap_options;
    heap_options.merge.ready = ReadySelection::kHeap;
    CoSynthesisOptions linear_options;
    linear_options.merge.ready = ReadySelection::kLinearScan;
    const CoSynthesisResult a = schedule_cpg(g, heap_options);
    const CoSynthesisResult b = schedule_cpg(g, linear_options);

    EXPECT_EQ(a.delays.delta_m, b.delays.delta_m);
    EXPECT_EQ(a.delays.delta_max, b.delays.delta_max);
    EXPECT_EQ(a.table.entry_count(), b.table.entry_count());
    ASSERT_EQ(a.flat->task_count(), b.flat->task_count());
    for (TaskId t = 0; t < a.flat->task_count(); ++t) {
      const auto& ra = a.table.row(t);
      const auto& rb = b.table.row(t);
      ASSERT_EQ(ra.size(), rb.size()) << a.flat->task(t).name;
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].column, rb[i].column) << a.flat->task(t).name;
        EXPECT_EQ(ra[i].start, rb[i].start) << a.flat->task(t).name;
        EXPECT_EQ(ra[i].resource, rb[i].resource) << a.flat->task(t).name;
      }
    }
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
