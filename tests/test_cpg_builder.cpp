#include <gtest/gtest.h>

#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

TEST(CpgBuilder, AttachesDummySourceAndSink) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  b.add_edge(p1, p2);
  const Cpg g = b.build();

  EXPECT_EQ(g.ordinary_process_count(), 2u);
  EXPECT_EQ(g.process_count(), 4u);  // + source + sink
  EXPECT_EQ(g.process(g.source()).kind, ProcessKind::kSource);
  EXPECT_EQ(g.process(g.sink()).kind, ProcessKind::kSink);
  EXPECT_EQ(g.process(g.source()).exec_time, 0);
  // Polar: P1 fed by source, P2 feeds sink.
  EXPECT_TRUE(g.graph().has_edge(g.source(), p1));
  EXPECT_TRUE(g.graph().has_edge(p2, g.sink()));
  EXPECT_FALSE(g.graph().has_edge(g.source(), p2));
}

TEST(CpgBuilder, GuardPropagation) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 3);
  const ProcessId p3 = b.add_process("P3", 1, 3);
  const ProcessId p4 = b.add_process("P4", 1, 1);
  b.add_cond_edge(p1, p2, Literal{c, true});
  b.add_cond_edge(p1, p3, Literal{c, false}, 2);
  b.add_edge(p2, p4, 2);
  b.add_edge(p3, p4, 0);
  b.mark_conjunction(p4);
  const Cpg g = b.build();

  EXPECT_TRUE(g.process(p1).guard.is_true());
  EXPECT_EQ(g.process(p2).guard, Dnf(Cube(Literal{c, true})));
  EXPECT_EQ(g.process(p3).guard, Dnf(Cube(Literal{c, false})));
  EXPECT_TRUE(g.process(p4).guard.is_true());  // conjunction of C and !C
  EXPECT_TRUE(g.process(g.sink()).guard.is_true());
  EXPECT_TRUE(g.process(p1).is_disjunction());
  EXPECT_EQ(g.disjunction_of(c), p1);
}

TEST(CpgBuilder, NestedGuards) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const CondId k = b.add_condition("K");
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);  // guard C
  const ProcessId p3 = b.add_process("P3", 0, 1);  // guard C & K
  b.add_cond_edge(p1, p2, Literal{c, true});
  b.add_cond_edge(p2, p3, Literal{k, true});
  const Cpg g = b.build();
  EXPECT_EQ(g.process(p3).guard,
            Dnf(Cube({Literal{c, true}, Literal{k, true}})));
}

TEST(CpgBuilder, AndSemanticsForOrdinaryJoin) {
  // Non-conjunction node fed by a conditional and an unconditional input:
  // guard is the conjunction (it waits for both).
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 1, 1);
  const ProcessId p3 = b.add_process("P3", 0, 1);
  b.add_cond_edge(p1, p3, Literal{c, true});
  b.add_edge(p2, p3, 1);
  const Cpg g = b.build();
  EXPECT_EQ(g.process(p3).guard, Dnf(Cube(Literal{c, true})));
}

TEST(CpgBuilder, RejectsCycle) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  b.add_edge(p1, p2);
  b.add_edge(p2, p1);
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(CpgBuilder, RejectsContradictoryInputs) {
  // P3 waits for both the C and the !C branch: it can never run.
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  const ProcessId p3 = b.add_process("P3", 0, 1);
  const ProcessId p4 = b.add_process("P4", 0, 1);
  b.add_cond_edge(p1, p2, Literal{c, true});
  b.add_cond_edge(p1, p3, Literal{c, false});
  b.add_edge(p2, p4);
  b.add_edge(p3, p4);
  // p4 not marked as conjunction -> guard C & !C == false.
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(CpgBuilder, RejectsTwoConditionsFromOneProcess) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const CondId d = b.add_condition("D");
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  const ProcessId p3 = b.add_process("P3", 0, 1);
  b.add_cond_edge(p1, p2, Literal{c, true});
  EXPECT_THROW(b.add_cond_edge(p1, p3, Literal{d, true}), InvalidArgument);
}

TEST(CpgBuilder, RejectsConditionComputedTwice) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  const ProcessId p3 = b.add_process("P3", 0, 1);
  b.add_cond_edge(p1, p3, Literal{c, true});
  b.set_computes(p2, c);  // accepted here, rejected at build()
  EXPECT_THROW(b.build(), ValidationError);
  // Different process, same condition via an edge:
  CpgBuilder b2(small_arch());
  const CondId c2 = b2.add_condition("C");
  const ProcessId q1 = b2.add_process("P1", 0, 1);
  const ProcessId q2 = b2.add_process("P2", 0, 1);
  const ProcessId q3 = b2.add_process("P3", 0, 1);
  b2.add_cond_edge(q1, q3, Literal{c2, true});
  b2.add_cond_edge(q2, q3, Literal{c2, false});
  EXPECT_THROW(b2.build(), Error);
}

TEST(CpgBuilder, RejectsUncomputedCondition) {
  CpgBuilder b(small_arch());
  b.add_condition("C");
  b.add_process("P1", 0, 1);
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(CpgBuilder, RejectsMappingToBus) {
  Architecture arch = small_arch();
  CpgBuilder b(arch);
  EXPECT_THROW(b.add_process("P1", arch.id_of("bus"), 1), InvalidArgument);
}

TEST(CpgBuilder, AllowsMappingToMemory) {
  Architecture arch = small_arch();
  arch.add_memory("mem");
  CpgBuilder b(arch);
  EXPECT_NO_THROW(b.add_process("M1", arch.id_of("mem"), 5));
}

TEST(CpgBuilder, RejectsInterPeCommWithoutBus) {
  Architecture arch;
  arch.add_processor("p1");
  arch.add_processor("p2");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 1, 1);
  b.add_edge(p1, p2, /*comm=*/3);
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(CpgBuilder, RoundRobinBusAssignment) {
  Architecture arch;
  arch.add_processor("p1");
  arch.add_processor("p2");
  arch.add_bus("b1");
  arch.add_bus("b2");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 1, 1);
  const ProcessId p3 = b.add_process("P3", 1, 1);
  const EdgeId e1 = b.add_edge(p1, p2, 2);
  const EdgeId e2 = b.add_edge(p1, p3, 2);
  const Cpg g = b.build();
  ASSERT_TRUE(g.edge(e1).bus.has_value());
  ASSERT_TRUE(g.edge(e2).bus.has_value());
  EXPECT_NE(*g.edge(e1).bus, *g.edge(e2).bus);
}

TEST(CpgBuilder, PinnedBusRespected) {
  Architecture arch;
  arch.add_processor("p1");
  arch.add_processor("p2");
  arch.add_bus("b1");
  arch.add_bus("b2");
  CpgBuilder b(arch);
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 1, 1);
  const EdgeId e = b.add_edge(p1, p2, 2);
  b.set_bus(e, arch.id_of("b2"));
  const Cpg g = b.build();
  EXPECT_EQ(*g.edge(e).bus, arch.id_of("b2"));
}

TEST(CpgBuilder, IntraPeEdgeHasNoBus) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  const EdgeId e = b.add_edge(p1, p2, 99);
  const Cpg g = b.build();
  EXPECT_FALSE(g.edge(e).bus.has_value());
}

TEST(CpgBuilder, BuilderSingleUse) {
  CpgBuilder b(small_arch());
  b.add_process("P1", 0, 1);
  (void)b.build();
  EXPECT_THROW(b.add_process("P2", 0, 1), InvalidArgument);
  EXPECT_THROW(b.build(), InvalidArgument);
}

TEST(CpgBuilder, RejectsDuplicateProcessName) {
  CpgBuilder b(small_arch());
  b.add_process("P1", 0, 1);
  EXPECT_THROW(b.add_process("P1", 0, 2), InvalidArgument);
}

TEST(Cpg, ActiveUnderAssignment) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  b.add_cond_edge(p1, p2, Literal{c, true});
  const Cpg g = b.build();
  Assignment yes(1);
  yes.set(c, true);
  Assignment no(1);
  EXPECT_TRUE(g.active_under(p2, yes));
  EXPECT_FALSE(g.active_under(p2, no));
  EXPECT_TRUE(g.active_under(p1, no));
}

TEST(Cpg, ProcessByName) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("Alpha", 0, 1);
  const Cpg g = b.build();
  EXPECT_EQ(g.process_by_name("Alpha"), p1);
  EXPECT_THROW(g.process_by_name("Beta"), InvalidArgument);
}

}  // namespace
}  // namespace cps
