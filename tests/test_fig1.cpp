#include <gtest/gtest.h>

#include <algorithm>

#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

class Fig1Test : public ::testing::Test {
 protected:
  Fig1Test() : g_(build_fig1_cpg()) {}
  Cpg g_;

  const Process& by_name(const char* name) const {
    return g_.process(g_.process_by_name(name));
  }
};

TEST_F(Fig1Test, SizesMatchThePaper) {
  EXPECT_EQ(g_.ordinary_process_count(), 17u);
  EXPECT_EQ(g_.conditions().size(), 3u);
  EXPECT_EQ(g_.arch().processors().size(), 2u);
  EXPECT_EQ(g_.arch().of_kind(PeKind::kHardware).size(), 1u);
  EXPECT_EQ(g_.arch().buses().size(), 1u);
  EXPECT_EQ(g_.arch().cond_broadcast_time(), 1);
}

TEST_F(Fig1Test, MappingMatchesThePaper) {
  const auto pe_name = [this](const char* p) {
    return g_.arch().pe(by_name(p).mapping).name;
  };
  for (const char* p : {"P1", "P2", "P4", "P6", "P9", "P10", "P13"}) {
    EXPECT_EQ(pe_name(p), "pe1") << p;
  }
  for (const char* p : {"P3", "P5", "P7", "P11", "P14", "P15", "P17"}) {
    EXPECT_EQ(pe_name(p), "pe2") << p;
  }
  for (const char* p : {"P8", "P12", "P16"}) {
    EXPECT_EQ(pe_name(p), "pe3") << p;
  }
}

TEST_F(Fig1Test, ExecutionTimesMatchThePaper) {
  const std::vector<std::pair<const char*, Time>> times = {
      {"P1", 3},  {"P2", 4},  {"P3", 12}, {"P4", 5},  {"P5", 3},
      {"P6", 5},  {"P7", 3},  {"P8", 4},  {"P9", 5},  {"P10", 5},
      {"P11", 6}, {"P12", 6}, {"P13", 8}, {"P14", 2}, {"P15", 6},
      {"P16", 4}, {"P17", 2}};
  for (const auto& [name, t] : times) {
    EXPECT_EQ(by_name(name).exec_time, t) << name;
  }
}

TEST_F(Fig1Test, GuardsMatchThePaperExamples) {
  const ConditionSet& cs = g_.conditions();
  EXPECT_EQ(cs.render(by_name("P3").guard), "true");
  EXPECT_EQ(cs.render(by_name("P5").guard), "!C");
  EXPECT_EQ(cs.render(by_name("P14").guard), "D & K");
  EXPECT_EQ(cs.render(by_name("P17").guard), "true");
  EXPECT_EQ(cs.render(by_name("P13").guard), "!D");
  EXPECT_EQ(cs.render(by_name("P15").guard), "D & !K");
}

TEST_F(Fig1Test, DisjunctionProcesses) {
  EXPECT_EQ(g_.disjunction_of(g_.conditions().id_of("C")),
            g_.process_by_name("P2"));
  EXPECT_EQ(g_.disjunction_of(g_.conditions().id_of("D")),
            g_.process_by_name("P11"));
  EXPECT_EQ(g_.disjunction_of(g_.conditions().id_of("K")),
            g_.process_by_name("P12"));
}

TEST_F(Fig1Test, EndToEndScheduleIsCoherent) {
  const CoSynthesisResult r = schedule_cpg(g_);
  EXPECT_EQ(r.paths.size(), 6u);
  EXPECT_GE(r.delays.delta_max, r.delays.delta_m);
  // The merge never perturbs the longest path (paper §6: the largest-delay
  // path executes in exactly delta_M).
  const auto longest = static_cast<std::size_t>(
      std::max_element(r.delays.path_optimal.begin(),
                       r.delays.path_optimal.end()) -
      r.delays.path_optimal.begin());
  EXPECT_EQ(r.delays.path_actual[longest], r.delays.path_optimal[longest]);
  // Table rows exist for broadcasts (the D/C/K rows of Table 1).
  for (CondId c = 0; c < 3; ++c) {
    const auto bt = r.flat_graph().broadcast_task(c);
    ASSERT_TRUE(bt.has_value());
    EXPECT_FALSE(r.table.row(*bt).empty());
  }
}

TEST_F(Fig1Test, RegressionDelays) {
  // Regression values for this reconstruction (see EXPERIMENTS.md; the
  // paper's own numbers are delta_M = delta_max = 39 for its exact — not
  // fully published — edge set).
  const CoSynthesisResult r = schedule_cpg(g_);
  std::vector<Time> optimal = r.delays.path_optimal;
  std::sort(optimal.begin(), optimal.end());
  EXPECT_EQ(r.delays.delta_m, *optimal.rbegin());
  EXPECT_EQ(r.delays.delta_max, r.delays.delta_m)
      << "merge perturbed even the longest path";
}

}  // namespace
}  // namespace cps
