// ScheduleCache (content-addressed, two-tier): cache-on runs are
// byte-identical to cache-off runs at every thread count, repeat runs
// replay from the exact tier (memory and persistent store), corrupt
// store entries degrade to recomputes, digest collisions are impossible
// to act on, and the prefix tier seeds resumes without changing results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "sched/batch_driver.hpp"
#include "sched/schedule_cache.hpp"
#include "support/json.hpp"

namespace {

using namespace cps;
namespace fs = std::filesystem;

BatchConfig small_config() {
  BatchConfig config;
  config.count = 6;
  config.base_seed = 17;
  config.cpg.process_count = 20;
  config.cpg.path_count = 4;
  return config;
}

BatchJsonOptions deterministic_json() {
  BatchJsonOptions options;
  options.include_timing = false;
  return options;
}

std::string run_json(BatchConfig config, std::size_t threads,
                     ScheduleCache* cache) {
  config.threads = threads;
  config.cache = cache;
  return batch_result_to_json(run_batch(config), deterministic_json());
}

/// Unique temp directory removed on scope exit.
struct TempDir {
  TempDir() {
    path = fs::temp_directory_path() /
           ("cps_sched_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

TEST(ScheduleCache, CacheOnIsByteIdenticalToCacheOffAtEveryThreadCount) {
  const BatchConfig config = small_config();
  const std::string oracle = run_json(config, 1, nullptr);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(run_json(config, threads, nullptr), oracle)
        << "cache-off, threads=" << threads;
    // Fresh cache (first, cold run) ...
    ScheduleCache cold;
    EXPECT_EQ(run_json(config, threads, &cold), oracle)
        << "cold cache, threads=" << threads;
    // ... and a warm cache replaying every item.
    ScheduleCache warm;
    run_json(config, 1, &warm);
    EXPECT_EQ(run_json(config, threads, &warm), oracle)
        << "warm cache, threads=" << threads;
  }
}

TEST(ScheduleCache, SecondRunReplaysEveryItemFromTheExactTier) {
  const BatchConfig config = small_config();
  ScheduleCache cache;
  const std::string first = run_json(config, 2, &cache);
  const ScheduleCacheStats after_first = cache.stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, config.count);
  EXPECT_EQ(after_first.insertions, config.count);

  const std::string second = run_json(config, 2, &cache);
  EXPECT_EQ(second, first);
  const ScheduleCacheStats after_second = cache.stats();
  EXPECT_EQ(after_second.hits, config.count);
  EXPECT_EQ(after_second.misses, config.count);  // unchanged
}

TEST(ScheduleCache, ResultAffectingOptionChangesMissTheExactTier) {
  BatchConfig config = small_config();
  ScheduleCache cache;
  run_json(config, 1, &cache);
  // Same graphs, different result-affecting option: must not replay.
  config.synthesis.merge.ready = ReadySelection::kLinearScan;
  run_json(config, 1, &cache);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().insertions, 2 * config.count);
}

TEST(ScheduleCache, WarmStoreSurvivesARestart) {
  const BatchConfig config = small_config();
  TempDir dir;
  ScheduleCacheOptions options;
  options.store_dir = dir.path.string();

  std::string first;
  {
    ScheduleCache cache(options);
    first = run_json(config, 2, &cache);
    EXPECT_EQ(cache.stats().insertions, config.count);
  }
  // "Restart": a fresh instance with empty memory over the same store.
  ScheduleCache reopened(options);
  const std::string second = run_json(config, 2, &reopened);
  EXPECT_EQ(second, first);
  const ScheduleCacheStats stats = reopened.stats();
  EXPECT_EQ(stats.hits, config.count);
  EXPECT_EQ(stats.store_hits, config.count);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ScheduleCache, CorruptStoreEntriesDegradeToRecomputes) {
  const BatchConfig config = small_config();
  TempDir dir;
  ScheduleCacheOptions options;
  options.store_dir = dir.path.string();
  std::string first;
  {
    ScheduleCache cache(options);
    first = run_json(config, 1, &cache);
  }
  // Flip one byte in every store entry.
  std::size_t mutilated = 0;
  for (const auto& shard : fs::directory_iterator(dir.path)) {
    if (!shard.is_directory()) continue;
    for (const auto& entry : fs::directory_iterator(shard.path())) {
      std::fstream f(entry.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      char c = 0;
      f.seekg(-1, std::ios::end);
      f.get(c);
      f.seekp(-1, std::ios::end);
      f.put(static_cast<char>(c ^ 0x5a));
      ++mutilated;
    }
  }
  ASSERT_EQ(mutilated, config.count);

  ScheduleCache reopened(options);
  const std::string second = run_json(config, 1, &reopened);
  EXPECT_EQ(second, first);  // recomputed, not failed
  const ScheduleCacheStats stats = reopened.stats();
  EXPECT_EQ(stats.store_errors, config.count);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, config.count);  // repaired by write-through

  // The re-inserted entries are valid again: one more restart replays.
  ScheduleCache repaired(options);
  EXPECT_EQ(run_json(config, 1, &repaired), first);
  EXPECT_EQ(repaired.stats().store_hits, config.count);
}

TEST(ScheduleCache, DigestCollisionsDegradeToMisses) {
  ScheduleCache cache;
  const std::string key_a = "key encoding A";
  const std::string key_b = "key encoding B (same digest, by fiat)";
  const Digest128 digest = digest_of(key_a);
  cache.insert(digest, key_a, "payload A");

  // A lookup with the same digest but different key bytes must MISS —
  // the full key encoding is compared, the digest is only an index.
  std::string payload;
  EXPECT_FALSE(cache.lookup(digest, key_b, &payload));
  EXPECT_TRUE(cache.lookup(digest, key_a, &payload));
  EXPECT_EQ(payload, "payload A");

  // Same story for the prefix tier.
  EngineHistory history;
  EXPECT_FALSE(cache.lookup_prefix(digest, key_b, &history));
}

TEST(ScheduleCache, CsvIsReplayedByteForByteOnExactHits) {
  const BatchConfig base = small_config();
  BatchConfig config = base;
  ScheduleCache cache;
  config.cache = &cache;

  std::string cold_csv;
  const BatchItem cold =
      run_batch_item(config, 2, nullptr, nullptr, &cold_csv);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_FALSE(cold_csv.empty());

  std::string warm_csv;
  const BatchItem warm =
      run_batch_item(config, 2, nullptr, nullptr, &warm_csv);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm_csv, cold_csv);
  EXPECT_EQ(cache.stats().hits, 1u);

  // And the cache-off CSV is the same bytes (the recorded CSV is not a
  // variant rendering).
  BatchConfig off = base;
  std::string off_csv;
  const BatchItem plain = run_batch_item(off, 2, nullptr, nullptr, &off_csv);
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(off_csv, cold_csv);
  EXPECT_EQ(warm.table_entries, plain.table_entries);
  EXPECT_EQ(warm.delta_m, plain.delta_m);
}

TEST(ScheduleCache, PrefixTierSeedsResumesWithoutChangingResults) {
  // Two requests over the SAME graph whose exact keys differ (disabling
  // validation changes the exact key, not the graph or walk shape): the
  // second run cannot replay, but the prefix tier donated by the first
  // seeds its resume chain.
  BatchConfig config = small_config();
  ScheduleCache cache;
  config.cache = &cache;
  const BatchItem first = run_batch_item(config, 3, nullptr);
  ASSERT_TRUE(first.ok) << first.error;

  config.synthesis.validate = false;
  const BatchItem second = run_batch_item(config, 3, nullptr);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().prefix_hits, 0u);

  // Validation never changes results; the seeded resume must not either.
  BatchConfig off = small_config();
  off.synthesis.validate = false;
  const BatchItem oracle = run_batch_item(off, 3, nullptr);
  EXPECT_EQ(second.delta_m, oracle.delta_m);
  EXPECT_EQ(second.delta_max, oracle.delta_max);
  EXPECT_EQ(second.table_entries, oracle.table_entries);
  EXPECT_EQ(second.merge.backsteps, oracle.merge.backsteps);
}

TEST(ScheduleCache, SharedCacheIsThreadSafeUnderConcurrentBatches) {
  // Concurrent batches over the SAME items race their donations: whether
  // a given item replays, prefix-resumes, or computes cold is a
  // legitimate race, so resume/reuse counters are excluded from the
  // comparison (the serve protocol's serialization contract) — schedule
  // results must still be byte-identical.
  BatchConfig config = small_config();
  ScheduleCache cache;
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_reuse_counters = false;
  json.include_resume_counters = false;
  const auto shared_run = [&](ScheduleCache* c) {
    BatchConfig run = config;
    run.threads = 2;
    run.cache = c;
    return batch_result_to_json(run_batch(run), json);
  };
  const std::string oracle = shared_run(nullptr);
  std::vector<std::string> outputs(4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    threads.emplace_back([&, t] { outputs[t] = shared_run(&cache); });
  }
  for (auto& t : threads) t.join();
  for (const std::string& out : outputs) EXPECT_EQ(out, oracle);
  // Every item was either computed-and-inserted or replayed; nothing
  // was lost or double-counted past the request total.
  const ScheduleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, outputs.size() * config.count);
}

TEST(ScheduleCache, InMemoryEvictionResetsTheTierDeterministically) {
  ScheduleCacheOptions options;
  options.max_entries = 2;
  ScheduleCache cache;  // default: large bound, no evictions below
  ScheduleCache bounded(options);
  for (int i = 0; i < 5; ++i) {
    const std::string key = "key " + std::to_string(i);
    bounded.insert(digest_of(key), key, "payload");
  }
  // Crossing the bound drops the whole tier (CoverCache idiom): never
  // more than max_entries resident, eviction counter advanced.
  const ScheduleCacheStats stats = bounded.stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.insertions, 5u);
}

}  // namespace
