// Batch experiment driver: deterministic per-task seeding (same seed,
// byte-identical JSON regardless of thread count), failure capture, and
// the JSON writer's formatting rules.
#include <gtest/gtest.h>

#include "sched/batch_driver.hpp"
#include "sched/workspace_pool.hpp"
#include "support/json.hpp"

namespace {

using namespace cps;

BatchConfig small_config() {
  BatchConfig config;
  config.count = 8;
  config.base_seed = 42;
  config.cpg.process_count = 20;
  config.cpg.path_count = 4;
  return config;
}

BatchJsonOptions deterministic_json() {
  BatchJsonOptions options;
  options.include_timing = false;
  return options;
}

TEST(JsonWriter, RendersNestedStructures) {
  JsonWriter w(0);
  w.begin_object();
  w.field("name", "a \"quoted\" string\n");
  w.field("int", static_cast<std::int64_t>(-3));
  w.field("real", 1.5);
  w.field("flag", true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\": \"a \\\"quoted\\\" string\\n\",\"int\": -3,"
            "\"real\": 1.500000,\"flag\": true,\"list\": [1,2],"
            "\"empty\": {}}");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  JsonWriter w(2);
  w.begin_object();
  w.field("a", 1);
  w.key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(BatchDriver, ItemsAreDeterministicPureFunctionsOfSeed) {
  const BatchConfig config = small_config();
  const BatchItem a = run_batch_item(config, 3);
  const BatchItem b = run_batch_item(config, 3);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.seed, config.base_seed + 3);
  EXPECT_EQ(a.delta_m, b.delta_m);
  EXPECT_EQ(a.delta_max, b.delta_max);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.table_entries, b.table_entries);
}

TEST(BatchDriver, SameSeedByteIdenticalJsonAcrossThreadCounts) {
  BatchConfig config = small_config();
  config.threads = 1;
  const std::string single =
      batch_result_to_json(run_batch(config), deterministic_json());
  config.threads = 4;
  const std::string pooled =
      batch_result_to_json(run_batch(config), deterministic_json());
  EXPECT_EQ(single, pooled);

  // And across repeated runs of the same configuration.
  const std::string again =
      batch_result_to_json(run_batch(config), deterministic_json());
  EXPECT_EQ(pooled, again);
}

TEST(BatchDriver, DifferentSeedsChangeResults) {
  BatchConfig config = small_config();
  const std::string a =
      batch_result_to_json(run_batch(config), deterministic_json());
  config.base_seed = 1234567;
  const std::string b =
      batch_result_to_json(run_batch(config), deterministic_json());
  EXPECT_NE(a, b);
}

TEST(BatchDriver, HeapAndLinearEnginesAgreeOnResults) {
  BatchConfig config = small_config();
  config.synthesis.merge.ready = ReadySelection::kHeap;
  const BatchResult heap = run_batch(config);
  config.synthesis.merge.ready = ReadySelection::kLinearScan;
  const BatchResult linear = run_batch(config);
  ASSERT_EQ(heap.items.size(), linear.items.size());
  for (std::size_t i = 0; i < heap.items.size(); ++i) {
    EXPECT_EQ(heap.items[i].ok, linear.items[i].ok);
    EXPECT_EQ(heap.items[i].delta_m, linear.items[i].delta_m);
    EXPECT_EQ(heap.items[i].delta_max, linear.items[i].delta_max);
    EXPECT_EQ(heap.items[i].table_entries, linear.items[i].table_entries);
  }
}

TEST(BatchDriver, TreeAndListSchedulingAgreeOnResults) {
  BatchConfig config = small_config();
  config.cpg.path_count = 12;
  // Balanced execution times keep sibling paths' critical-path priorities
  // identical across the shared prefix — the regime where the guard-trie
  // chain actually resumes (heterogeneous durations shift priorities at
  // t=0 and the engine adaptively stops recording; still byte-identical).
  config.cpg.exec_min = 4;
  config.cpg.exec_max = 4;
  config.cpg.comm_min = 2;
  config.cpg.comm_max = 2;
  config.synthesis.path_scheduling = PathScheduling::kTree;
  const BatchResult tree = run_batch(config);
  config.synthesis.path_scheduling = PathScheduling::kList;
  const BatchResult list = run_batch(config);
  ASSERT_EQ(tree.items.size(), list.items.size());
  std::size_t resumes = 0;
  for (std::size_t i = 0; i < tree.items.size(); ++i) {
    EXPECT_EQ(tree.items[i].ok, list.items[i].ok);
    EXPECT_EQ(tree.items[i].delta_m, list.items[i].delta_m);
    EXPECT_EQ(tree.items[i].delta_max, list.items[i].delta_max);
    EXPECT_EQ(tree.items[i].table_entries, list.items[i].table_entries);
    EXPECT_EQ(tree.items[i].paths, list.items[i].paths);
    // Items decompose the trie into the fixed batch frontier (inline
    // here — a serial batch has no pool); the list reference never
    // splits or resumes.
    EXPECT_GT(tree.items[i].tree.subtrees_parallel, 1u);
    EXPECT_EQ(list.items[i].tree.subtrees_parallel, 0u);
    EXPECT_EQ(list.items[i].tree.prefix_resumes, 0u);
    resumes += tree.items[i].tree.prefix_resumes;
  }
  EXPECT_GT(resumes, 0u);
}

TEST(BatchDriver, JsonCarriesPathTreeCounters) {
  const BatchConfig config = small_config();
  const std::string json =
      batch_result_to_json(run_batch(config), deterministic_json());
  EXPECT_NE(json.find("\"path_scheduling\": \"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"path_tree\""), std::string::npos);
  EXPECT_NE(json.find("\"prefix_resumes\""), std::string::npos);
  EXPECT_NE(json.find("\"subtrees_parallel\""), std::string::npos);
  // Deterministic JSON must not leak the timing-gated runtime counters.
  EXPECT_EQ(json.find("\"runtime\""), std::string::npos);
  EXPECT_EQ(json.find("\"steals\""), std::string::npos);
}

// The ISSUE-6 acceptance sweep: 40 tree-scheduled seeds, byte-identical
// JSON at every thread count. The 1-thread run has no pool at all (the
// serial reference); the others nest item-, subtree- and merge-level work
// on one runtime — none of which may leak into deterministic output.
TEST(BatchDriver, FortySeedTreeSweepIsByteIdenticalAt1248Threads) {
  BatchConfig config;
  config.count = 40;
  config.base_seed = 7;
  config.cpg.process_count = 16;
  config.cpg.path_count = 6;
  config.synthesis.path_scheduling = PathScheduling::kTree;
  config.threads = 1;
  const std::string reference =
      batch_result_to_json(run_batch(config), deterministic_json());
  for (std::size_t threads : {2u, 4u, 8u}) {
    config.threads = threads;
    const std::string pooled =
        batch_result_to_json(run_batch(config), deterministic_json());
    EXPECT_EQ(reference, pooled) << "thread count " << threads;
  }
}

// A pooled tree-mode batch must actually run inner subtree jobs on the
// runtime: the pool executes more tasks than there are items, and the
// workers find work in their own deques or by stealing (not only via the
// external injection queue the batch items arrive through).
TEST(BatchDriver, PooledBatchRunsInnerSubtreeJobsOnPoolWorkers) {
  BatchConfig config = small_config();
  config.cpg.path_count = 8;
  config.threads = 4;
  config.synthesis.path_scheduling = PathScheduling::kTree;
  const BatchResult result = run_batch(config);
  ASSERT_EQ(result.summary.ok_count, config.count);
  const PoolStats& pool = result.summary.pool;
  // The merge quiesces its speculative task group before returning, so
  // the snapshot is exactly balanced — no claimed no-op wrappers linger.
  EXPECT_EQ(pool.executed, pool.submitted);
  EXPECT_GT(pool.executed, static_cast<std::uint64_t>(config.count));
  EXPECT_GT(pool.local_hits + pool.steals, 0u);
  for (const BatchItem& item : result.items) {
    EXPECT_GT(item.tree.subtrees_parallel, 1u);
  }
}

// A shared warm-workspace pool (the service's per-session reuse) must
// not change any result: with the reuse counters excluded from the
// serialization, a pooled batch is byte-identical to a cold one.
TEST(BatchDriver, SharedWorkspacePoolKeepsResultsByteIdentical) {
  BatchConfig config = small_config();
  BatchJsonOptions json_options = deterministic_json();
  json_options.include_reuse_counters = false;
  const std::string cold =
      batch_result_to_json(run_batch(config), json_options);

  WorkspacePool pool;
  config.synthesis.workspace_pool = &pool;
  const std::string warm =
      batch_result_to_json(run_batch(config), json_options);
  EXPECT_EQ(cold, warm);

  const WorkspacePool::Stats stats = pool.stats();
  EXPECT_GT(stats.leases, 0u);
  EXPECT_GT(stats.warm_hits, 0u) << "the pool must actually reuse buffers";
  EXPECT_EQ(pool.idle(), stats.created) << "every lease returned";
}

TEST(BatchDriver, SummaryAggregatesOnlySuccessfulItems) {
  BatchConfig config = small_config();
  config.count = 5;
  const BatchResult result = run_batch(config);
  EXPECT_EQ(result.summary.count, 5u);
  EXPECT_EQ(result.summary.ok_count,
            static_cast<std::size_t>(result.summary.delta_m.count()));
  for (const BatchItem& item : result.items) {
    EXPECT_TRUE(item.ok) << item.error;
  }
  EXPECT_GT(result.summary.graphs_per_second, 0.0);
}

TEST(BatchDriver, GenerationFailureIsCapturedNotThrown) {
  BatchConfig config = small_config();
  config.count = 2;
  config.cpg.path_count = 0;  // invalid: generator must reject
  const BatchResult result = run_batch(config);
  EXPECT_EQ(result.summary.ok_count, 0u);
  for (const BatchItem& item : result.items) {
    EXPECT_FALSE(item.ok);
    EXPECT_FALSE(item.error.empty());
  }
  // Failures still serialize.
  const std::string json =
      batch_result_to_json(result, deterministic_json());
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

}  // namespace
