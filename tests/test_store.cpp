// io/store KeyStore: round-trips, atomic swap-in under concurrent
// writers, typed rejection of corrupt/truncated/version-mismatched
// entries, and deterministic bounded eviction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "io/store.hpp"
#include "support/error.hpp"

namespace {

using namespace cps;
namespace fs = std::filesystem;

/// Fresh store rooted in a unique temp directory, removed on scope exit.
struct TempStore {
  explicit TempStore(std::size_t max_entries = 4096) {
    root = fs::temp_directory_path() /
           ("cps_store_test_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(root);
    KeyStoreOptions options;
    options.root = root.string();
    options.max_entries = max_entries;
    store = std::make_unique<KeyStore>(options);
  }
  ~TempStore() {
    store.reset();
    std::error_code ec;
    fs::remove_all(root, ec);
  }
  fs::path root;
  std::unique_ptr<KeyStore> store;
};

/// Path of a key's entry file (mirrors KeyStore's sharded layout).
fs::path entry_path(const fs::path& root, const std::string& key) {
  return root / key.substr(0, 2) / (key + ".entry");
}

TEST(KeyStore, RoundTripsAndOverwrites) {
  TempStore t;
  const std::string key = "ab0123";
  EXPECT_FALSE(t.store->get(key).has_value());
  t.store->put(key, "payload one");
  ASSERT_TRUE(t.store->get(key).has_value());
  EXPECT_EQ(*t.store->get(key), "payload one");
  t.store->put(key, "payload two");  // latest write wins
  EXPECT_EQ(*t.store->get(key), "payload two");
  EXPECT_EQ(t.store->size(), 1u);

  // A second store over the same root sees the entry (persistence).
  KeyStoreOptions options;
  options.root = t.root.string();
  KeyStore reopened(options);
  ASSERT_TRUE(reopened.get(key).has_value());
  EXPECT_EQ(*reopened.get(key), "payload two");
}

TEST(KeyStore, BinaryPayloadsSurviveIntact) {
  TempStore t;
  std::string blob;
  for (int i = 0; i < 512; ++i) blob.push_back(static_cast<char>(i & 0xff));
  t.store->put("ff77", blob);
  ASSERT_TRUE(t.store->get("ff77").has_value());
  EXPECT_EQ(*t.store->get("ff77"), blob);
}

TEST(KeyStore, RejectsInvalidKeys) {
  TempStore t;
  EXPECT_THROW(t.store->put("", "x"), Error);           // too short
  EXPECT_THROW(t.store->put("a", "x"), Error);          // too short
  EXPECT_THROW(t.store->put("AB12", "x"), Error);       // uppercase
  EXPECT_THROW(t.store->put("zz..//12", "x"), Error);   // path characters
  EXPECT_THROW(t.store->get("../../etc"), Error);
}

TEST(KeyStore, TruncatedEntryIsTypedCorruption) {
  TempStore t;
  t.store->put("ab01", "some payload bytes");
  const fs::path path = entry_path(t.root, "ab01");
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);
  EXPECT_THROW(
      {
        try {
          t.store->get("ab01");
        } catch (const StoreCorruptError& e) {
          EXPECT_EQ(error_code_of(e), ErrorCode::kStoreCorrupt);
          throw;
        }
      },
      StoreCorruptError);
}

TEST(KeyStore, FlippedPayloadByteIsTypedCorruption) {
  TempStore t;
  t.store->put("cd02", "schedule table bytes");
  const fs::path path = entry_path(t.root, "cd02");
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);  // last payload byte; checksum must catch it
  char c = 0;
  f.seekg(-1, std::ios::end);
  f.get(c);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(c ^ 0x01));
  f.close();
  EXPECT_THROW(t.store->get("cd02"), StoreCorruptError);
}

TEST(KeyStore, WrongMagicOrVersionIsTypedCorruption) {
  TempStore t;
  t.store->put("ef03", "payload");
  const fs::path path = entry_path(t.root, "ef03");
  {
    // Version bump (byte 8, little-endian u32 after the 8-byte magic).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put(static_cast<char>(0x7f));
  }
  EXPECT_THROW(t.store->get("ef03"), StoreCorruptError);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }
  EXPECT_THROW(t.store->get("ef03"), StoreCorruptError);

  // erase() clears the poisoned entry; the key becomes a clean miss.
  t.store->erase("ef03");
  EXPECT_FALSE(t.store->get("ef03").has_value());
}

TEST(KeyStore, ConcurrentWritersOfOneKeyNeverTearEntries) {
  // Content-addressed discipline: every writer of a key carries the same
  // bytes, and the temp-file + rename swap-in makes either write whole.
  TempStore t;
  const std::string payload(4096, 'q');
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) t.store->put("aa55", payload);
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_TRUE(t.store->get("aa55").has_value());
  EXPECT_EQ(*t.store->get("aa55"), payload);
  EXPECT_EQ(t.store->size(), 1u);
}

TEST(KeyStore, ConcurrentWritersOfDistinctKeysAllLand) {
  TempStore t;
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&t, w] {
      for (int i = 0; i < 16; ++i) {
        char key[8];
        std::snprintf(key, sizeof(key), "%02x%02x", w, i);
        t.store->put(key, std::string("payload ") + key);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(t.store->size(), 64u);
  EXPECT_EQ(*t.store->get("0300"), "payload 0300");
}

TEST(KeyStore, EvictionKeepsLexicographicallySmallestKeys) {
  TempStore t(/*max_entries=*/4);
  std::size_t evicted = 0;
  for (const char* key : {"ee05", "aa01", "cc03", "bb02", "dd04", "ff06"}) {
    evicted += t.store->put(key, key);
  }
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(t.store->size(), 4u);
  const std::vector<std::string> kept = t.store->keys();
  EXPECT_EQ(kept,
            (std::vector<std::string>{"aa01", "bb02", "cc03", "dd04"}));
  EXPECT_FALSE(t.store->get("ee05").has_value());
  EXPECT_FALSE(t.store->get("ff06").has_value());

  // Determinism: rebuilding the same insert sequence in a fresh root
  // yields the identical surviving set.
  TempStore u(/*max_entries=*/4);
  for (const char* key : {"ee05", "aa01", "cc03", "bb02", "dd04", "ff06"}) {
    u.store->put(key, key);
  }
  EXPECT_EQ(u.store->keys(), kept);
}

}  // namespace
