#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "io/cpg_format.hpp"
#include "io/gantt.hpp"
#include "io/table_csv.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

constexpr const char* kModel = R"(
@arch
processor p1 1.0
processor p2 2.0
hardware hw
bus b
memory m
tau0 2
@conditions
C
@processes
A p1 4
B p2 6
M m 3
@conjunctions
@edges
A B C 2
A M !C 2
)";

TEST(CpgFormat, ParsesArchitecture) {
  const Cpg g = parse_cpg_string(kModel);
  const Architecture& arch = g.arch();
  EXPECT_EQ(arch.pe_count(), 5u);
  EXPECT_DOUBLE_EQ(arch.pe(arch.id_of("p2")).speed, 2.0);
  EXPECT_EQ(arch.pe(arch.id_of("hw")).kind, PeKind::kHardware);
  EXPECT_EQ(arch.pe(arch.id_of("m")).kind, PeKind::kMemory);
  EXPECT_EQ(arch.cond_broadcast_time(), 2);
}

TEST(CpgFormat, ParsesProcessesAndEdges) {
  const Cpg g = parse_cpg_string(kModel);
  EXPECT_EQ(g.ordinary_process_count(), 3u);
  const Process& a = g.process(g.process_by_name("A"));
  EXPECT_TRUE(a.is_disjunction());
  const Process& b = g.process(g.process_by_name("B"));
  EXPECT_EQ(g.conditions().render(b.guard), "C");
  const Process& m = g.process(g.process_by_name("M"));
  EXPECT_EQ(g.conditions().render(m.guard), "!C");
}

TEST(CpgFormat, CommentsAndBlankLinesIgnored) {
  const Cpg g = parse_cpg_string(
      "# leading comment\n@arch\nprocessor p  # trailing\n\n@processes\n"
      "A p 1\n");
  EXPECT_EQ(g.ordinary_process_count(), 1u);
}

TEST(CpgFormat, RoundTripPreservesTheModel) {
  const Cpg original = build_fig1_cpg();
  const std::string text = write_cpg_string(original);
  const Cpg parsed = parse_cpg_string(text);

  EXPECT_EQ(parsed.ordinary_process_count(),
            original.ordinary_process_count());
  EXPECT_EQ(parsed.conditions().size(), original.conditions().size());
  EXPECT_EQ(parsed.arch().pe_count(), original.arch().pe_count());
  // Guards survive the round trip.
  for (const Process& p : original.processes()) {
    if (p.is_dummy()) continue;
    const Process& q = parsed.process(parsed.process_by_name(p.name));
    EXPECT_TRUE(p.guard.equivalent(q.guard)) << p.name;
    EXPECT_EQ(p.exec_time, q.exec_time);
  }
  // And the schedule of the round-tripped model is identical.
  const CoSynthesisResult a = schedule_cpg(original);
  const CoSynthesisResult b = schedule_cpg(parsed);
  EXPECT_EQ(a.delays.delta_max, b.delays.delta_max);
  EXPECT_EQ(a.delays.delta_m, b.delays.delta_m);
}

TEST(CpgFormat, ErrorsAreReportedWithLineNumbers) {
  EXPECT_THROW(parse_cpg_string("processor p\n"), ParseError);  // no section
  EXPECT_THROW(parse_cpg_string("@arch\nrocket p\n"), ParseError);
  EXPECT_THROW(parse_cpg_string("@arch\nprocessor p\n@processes\nA p -3\n"),
               ParseError);
  EXPECT_THROW(parse_cpg_string("@arch\nprocessor p\n@processes\nA p 1\n"
                                "@edges\nA Zed 1\n"),
               ParseError);
  EXPECT_THROW(parse_cpg_string("@bogus\n"), ParseError);
  EXPECT_THROW(parse_cpg_string("@arch\nprocessor p\n@processes\nA p 1\n"
                                "A p 2\n"),
               ParseError);
  EXPECT_THROW(parse_cpg_file("/nonexistent/file.cpg"), ParseError);
}

TEST(CpgFormat, UnknownConditionInEdge) {
  EXPECT_THROW(
      parse_cpg_string("@arch\nprocessor p\n@processes\nA p 1\nB p 1\n"
                       "@edges\nA B X 1\n"),
      ParseError);
}

TEST(Gantt, RendersResourceRows) {
  const Cpg g = build_fig1_cpg();
  const CoSynthesisResult r = schedule_cpg(g);
  std::ostringstream os;
  GanttOptions opt;
  opt.title = "demo";
  render_gantt(os, r.flat_graph(), r.path_schedules.front(), opt);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("pe1"), std::string::npos);
  EXPECT_NE(s.find("pe2"), std::string::npos);
  EXPECT_NE(s.find("pe4"), std::string::npos);  // the bus carries comms
  EXPECT_NE(s.find("P1"), std::string::npos);
}


TEST(TableCsv, ExportsCellsAndDelays) {
  const Cpg g = build_fig1_cpg();
  const CoSynthesisResult r = schedule_cpg(g);

  std::ostringstream table_os;
  write_table_csv(table_os, r.table);
  const std::string t = table_os.str();
  EXPECT_NE(t.find("task,kind,resource,column,start"), std::string::npos);
  EXPECT_NE(t.find("P1,process,pe1,true,0"), std::string::npos);
  EXPECT_NE(t.find("D,broadcast,pe4,true,6"), std::string::npos);
  // One CSV row per table cell plus the header.
  const auto lines = static_cast<std::size_t>(
      std::count(t.begin(), t.end(), '\n'));
  EXPECT_EQ(lines, r.table.entry_count() + 1);

  std::ostringstream delay_os;
  write_delay_csv(delay_os, r.flat_graph(), r.paths, r.delays);
  const std::string d = delay_os.str();
  EXPECT_NE(d.find("path,optimal_delay,table_delay"), std::string::npos);
  EXPECT_NE(d.find("C & D & K,39,39"), std::string::npos);
}

TEST(TableCsv, QuotesTaskAndConditionNamesPerRfc4180) {
  // Task names and rendered condition columns may contain commas and
  // quotes; cells must come out RFC-4180 quoted so the row structure
  // survives any downstream CSV reader.
  CpgBuilder b(testing::small_arch());
  const CondId c = b.add_condition("C,\"v1\"");
  const ProcessId p1 = b.add_process("prod,main", 0, 2);
  const ProcessId p2 = b.add_process("cons \"fast\"", 1, 6);
  const ProcessId p3 = b.add_process("cons,slow", 1, 2);
  const ProcessId p4 = b.add_process("join", 1, 1);
  b.add_cond_edge(p1, p2, Literal{c, true}, 2);
  b.add_cond_edge(p1, p3, Literal{c, false}, 2);
  b.add_edge(p2, p4);
  b.add_edge(p3, p4);
  b.mark_conjunction(p4);
  const Cpg g = b.build();
  const CoSynthesisResult r = schedule_cpg(g);

  std::ostringstream os;
  write_table_csv(os, r.table);
  const std::string t = os.str();
  // Comma-carrying task name: quoted verbatim.
  EXPECT_NE(t.find("\"prod,main\",process"), std::string::npos);
  // Quote-carrying task name: quotes doubled inside a quoted cell.
  EXPECT_NE(t.find("\"cons \"\"fast\"\"\",process"), std::string::npos);
  // Rendered condition column embeds the condition's comma+quote name.
  EXPECT_NE(t.find("\"C,\"\"v1\"\"\""), std::string::npos);
  // Every data row still splits into exactly 5 RFC-4180 cells.
  std::size_t line_start = t.find('\n') + 1;
  while (line_start < t.size()) {
    const std::size_t line_end = t.find('\n', line_start);
    const std::string line = t.substr(line_start, line_end - line_start);
    std::size_t cells = 1;
    bool quoted = false;
    for (char ch : line) {
      if (ch == '"') quoted = !quoted;
      if (ch == ',' && !quoted) ++cells;
    }
    EXPECT_FALSE(quoted) << line;
    EXPECT_EQ(cells, 5u) << line;
    line_start = line_end + 1;
  }

  std::ostringstream delay_os;
  write_delay_csv(delay_os, r.flat_graph(), r.paths, r.delays);
  EXPECT_NE(delay_os.str().find("\"C,\"\"v1\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace cps
