#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

TEST(Merge, SinglePathGraphReproducesItsSchedule) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("P1", 0, 3);
  const ProcessId p2 = b.add_process("P2", 1, 4);
  b.add_edge(p1, p2, 2);
  const Cpg g = b.build();
  const CoSynthesisResult r = schedule_cpg(g);
  EXPECT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.delays.delta_m, r.delays.delta_max);
  EXPECT_EQ(r.merge_stats.backsteps, 0u);
  EXPECT_EQ(r.merge_stats.conflicts, 0u);
  // Every entry sits in the unconditional column.
  for (TaskId t = 0; t < r.flat_graph().task_count(); ++t) {
    for (const TableEntry& e : r.table.row(t)) {
      EXPECT_TRUE(e.column.is_true());
    }
  }
}

TEST(Merge, TwoPathTableIsValidAndTight) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 1, 6);
  const ProcessId p3 = b.add_process("P3", 1, 2);
  const ProcessId p4 = b.add_process("P4", 1, 1);
  b.add_cond_edge(p1, p2, Literal{c, true}, 2);
  b.add_cond_edge(p1, p3, Literal{c, false}, 2);
  b.add_edge(p2, p4);
  b.add_edge(p3, p4);
  b.mark_conjunction(p4);
  const Cpg g = b.build();
  const CoSynthesisResult r = schedule_cpg(g);  // validates internally
  EXPECT_EQ(r.paths.size(), 2u);
  EXPECT_EQ(r.merge_stats.backsteps, 1u);
  EXPECT_GE(r.delays.delta_max, r.delays.delta_m);
  // The longest path must not be perturbed at all (merge rule 1).
  std::size_t longest = 0;
  for (std::size_t i = 1; i < r.paths.size(); ++i) {
    if (r.delays.path_optimal[i] > r.delays.path_optimal[longest]) {
      longest = i;
    }
  }
  EXPECT_EQ(r.delays.path_actual[longest], r.delays.path_optimal[longest]);
}

TEST(Merge, Fig1TableSatisfiesAllRequirements) {
  const Cpg g = build_fig1_cpg();
  const CoSynthesisResult r = schedule_cpg(g);  // throws if invalid
  const TableValidation v =
      validate_table(r.flat_graph(), r.table, r.paths);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations.front());
  EXPECT_EQ(r.merge_stats.backsteps, 5u);  // 6 paths -> 5 back-steps
  EXPECT_EQ(r.merge_stats.unresolved_conflicts, 0u);
  EXPECT_EQ(r.merge_stats.column_clashes, 0u);
}

TEST(Merge, LongestReachablePathKeepsItsOptimalDelay) {
  // The merging strategy guarantees the overall longest path executes in
  // exactly delta_M.
  const Cpg g = build_fig1_cpg();
  const CoSynthesisResult r = schedule_cpg(g);
  std::size_t longest = 0;
  for (std::size_t i = 1; i < r.paths.size(); ++i) {
    if (r.delays.path_optimal[i] > r.delays.path_optimal[longest]) {
      longest = i;
    }
  }
  EXPECT_EQ(r.delays.path_actual[longest], r.delays.path_optimal[longest]);
}

TEST(Merge, DeterministicAcrossRuns) {
  const Cpg g1 = build_fig1_cpg();
  const Cpg g2 = build_fig1_cpg();
  const CoSynthesisResult a = schedule_cpg(g1);
  const CoSynthesisResult b = schedule_cpg(g2);
  EXPECT_EQ(a.delays.delta_max, b.delays.delta_max);
  EXPECT_EQ(a.table.entry_count(), b.table.entry_count());
  for (TaskId t = 0; t < a.flat_graph().task_count(); ++t) {
    ASSERT_EQ(a.table.row(t).size(), b.table.row(t).size());
    for (std::size_t i = 0; i < a.table.row(t).size(); ++i) {
      EXPECT_EQ(a.table.row(t)[i].column, b.table.row(t)[i].column);
      EXPECT_EQ(a.table.row(t)[i].start, b.table.row(t)[i].start);
    }
  }
}

TEST(Merge, SelectionPolicyChangesOutcome) {
  // Shortest-first is the anti-heuristic: it must never beat
  // longest-first on delta_max (and usually loses).
  const Cpg g = build_fig1_cpg();
  CoSynthesisOptions longest;
  CoSynthesisOptions shortest;
  shortest.merge.selection = PathSelection::kShortestFirst;
  const CoSynthesisResult a = schedule_cpg(g, longest);
  const CoSynthesisResult b = schedule_cpg(g, shortest);
  EXPECT_LE(a.delays.delta_max, b.delays.delta_max);
}

TEST(Merge, CrossResourceConditionIsUnknownWithoutBroadcast) {
  // Regression test for the condition-knowledge-time rule of column_for:
  // on a multi-PE model a condition value reaches another resource only
  // through its broadcast task. When the broadcast is not scheduled the
  // value never crosses, and start times on that resource must not be
  // fixed in columns claiming the condition is known there. The buggy
  // fallback assumed instant cross-resource visibility (disjunction end
  // time), which put X's activation into column "C" even though C is
  // computed on another PE and never broadcast.
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId d = b.add_process("D", 0, 2);   // computes C on cpu1
  const ProcessId pt = b.add_process("T", 0, 1);  // true branch, cpu1
  const ProcessId pf = b.add_process("F", 0, 1);  // false branch, cpu1
  const ProcessId px = b.add_process("X", 1, 3);  // independent, cpu2
  b.add_cond_edge(d, pt, Literal{c, true});
  b.add_cond_edge(d, pf, Literal{c, false});
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  ASSERT_TRUE(fg.broadcasts_enabled());

  const TaskId task_d = fg.task_of_process(d);
  const TaskId task_t = fg.task_of_process(pt);
  const TaskId task_f = fg.task_of_process(pf);
  const TaskId task_x = fg.task_of_process(px);
  const TaskId task_src = fg.source_task();
  const TaskId task_sink = fg.sink_task();

  // Hand-built path schedules that *omit the broadcast task*: C's value
  // stays on cpu1. X starts at 5, after the disjunction's end (2), which
  // is exactly where the buggy fallback claimed C was already known on
  // cpu2.
  std::vector<AltPath> paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 2u);
  // Put the true path first for readability.
  if (paths[0].label.value_of(c) != true) std::swap(paths[0], paths[1]);
  std::vector<PathSchedule> schedules(2, PathSchedule(fg.task_count()));
  // True path (the longer one; merged first).
  schedules[0].place(task_src, 0, 0, 0);
  schedules[0].place(task_d, 0, 2, 0);
  schedules[0].place(task_t, 2, 3, 0);
  schedules[0].place(task_x, 5, 8, 1);
  schedules[0].place(task_sink, 8, 8, 0);
  // False path.
  schedules[1].place(task_src, 0, 0, 0);
  schedules[1].place(task_d, 0, 2, 0);
  schedules[1].place(task_f, 2, 3, 0);
  schedules[1].place(task_x, 3, 6, 1);
  schedules[1].place(task_sink, 6, 6, 0);

  for (const MergeExecution execution :
       {MergeExecution::kSerial, MergeExecution::kSpeculative}) {
    SCOPED_TRACE(to_string(execution));
    MergeOptions options;
    options.execution = execution;
    const MergeResult merged =
        merge_schedules(fg, paths, schedules, options);

    // X's activation from the true-path schedule must sit in the
    // unconditional column: C is not (and will never be) known on cpu2.
    bool found_unconditional = false;
    for (const TableEntry& e : merged.table.row(task_x)) {
      EXPECT_NE(e.column.value_of(c), true)
          << "column claims C is known on cpu2 at t=" << e.start
          << " without a scheduled broadcast";
      if (e.column.is_true() && e.start == 5) found_unconditional = true;
    }
    EXPECT_TRUE(found_unconditional);
    // The same-resource column is unaffected: T runs on the PE that
    // computes C, so its activation legitimately lives in column "C".
    ASSERT_EQ(merged.table.row(task_t).size(), 1u);
    EXPECT_EQ(merged.table.row(task_t)[0].column, Cube(Literal{c, true}));
  }
}

struct MergeSweepParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t paths;
  TimeDistribution dist;
};

class MergeSweep : public ::testing::TestWithParam<MergeSweepParam> {};

TEST_P(MergeSweep, TablesAreCoherentOnRandomGraphs) {
  const MergeSweepParam param = GetParam();
  Rng rng(param.seed);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = param.nodes;
  params.path_count = param.paths;
  params.distribution = param.dist;
  const Cpg g = generate_random_cpg(arch, params, rng);

  const CoSynthesisResult r = schedule_cpg(g);  // validates internally
  EXPECT_EQ(r.paths.size(), param.paths);
  EXPECT_GE(r.delays.delta_max, r.delays.delta_m);
  EXPECT_EQ(r.merge_stats.backsteps, param.paths - 1);
  EXPECT_EQ(r.merge_stats.column_clashes, 0u);
  // The longest path keeps its optimal delay.
  std::size_t longest = 0;
  for (std::size_t i = 1; i < r.paths.size(); ++i) {
    if (r.delays.path_optimal[i] > r.delays.path_optimal[longest]) {
      longest = i;
    }
  }
  EXPECT_EQ(r.delays.path_actual[longest], r.delays.path_optimal[longest]);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MergeSweep,
    ::testing::Values(
        MergeSweepParam{11, 20, 4, TimeDistribution::kUniform},
        MergeSweepParam{12, 30, 6, TimeDistribution::kUniform},
        MergeSweepParam{13, 30, 10, TimeDistribution::kExponential},
        MergeSweepParam{14, 40, 12, TimeDistribution::kUniform},
        MergeSweepParam{15, 40, 8, TimeDistribution::kExponential},
        MergeSweepParam{16, 50, 16, TimeDistribution::kUniform},
        MergeSweepParam{17, 25, 5, TimeDistribution::kExponential},
        MergeSweepParam{18, 60, 18, TimeDistribution::kUniform},
        MergeSweepParam{19, 35, 24, TimeDistribution::kUniform},
        MergeSweepParam{20, 45, 7, TimeDistribution::kExponential}));


// ---------------------------------------------------------------------
// Conflict-handling machinery (§5.2). Under the paper's own parameters
// (tau0 at most every communication time, one uniform per-path priority
// function) conflicts are rare; a stress regime — slow broadcasts plus
// divergent per-path priorities — exercises the Theorem-2 moves.
// ---------------------------------------------------------------------

namespace {

Cpg stress_graph(std::uint64_t seed, std::size_t paths_n) {
  Rng rng(seed);
  RandomArchParams ap;
  ap.cond_broadcast_time = 6;  // slow broadcasts: knowledge lags
  const Architecture arch = generate_random_architecture(rng, ap);
  RandomCpgParams params;
  params.process_count = 30;
  params.path_count = paths_n;
  params.comm_min = 6;
  params.comm_max = 20;
  return generate_random_cpg(arch, params, rng);
}

CoSynthesisResult stress_merge(const Cpg& g) {
  CoSynthesisOptions o;
  o.path_priority = PriorityPolicy::kRandom;  // divergent path schedules
  o.validate = false;  // coherence is checked by the test itself
  return schedule_cpg(g, o);
}

}  // namespace

TEST(MergeConflicts, TheoremTwoMovesProduceCoherentTables) {
  // Seeds known to trigger §5.2 conflicts that are resolved by moving the
  // process to a previously fixed activation time (Theorem 2).
  std::size_t exercised = 0;
  for (const std::uint64_t seed : {13u, 60u}) {
    SCOPED_TRACE(seed);
    const Cpg g = stress_graph(seed, 6 + (seed % 3) * 6);
    CoSynthesisOptions o;
    o.path_priority = PriorityPolicy::kRandom;
    const CoSynthesisResult r = schedule_cpg(g, o);  // validates
    if (r.merge_stats.conflict_moves > 0) ++exercised;
    EXPECT_EQ(r.merge_stats.unresolved_conflicts, 0u);
  }
  EXPECT_GT(exercised, 0u) << "expected at least one Theorem-2 move";
}

TEST(MergeConflicts, IncoherenceIsNeverSilent) {
  // On the stress regime a small fraction of merges falls outside the
  // premises of the paper's Theorem 2 (a bus has to react to contexts it
  // cannot distinguish yet). Whenever that happens the merge must have
  // reported unresolved conflicts or clashes — an incoherent table never
  // goes unnoticed — and coherent stats must mean a valid table.
  std::size_t incoherent = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE(seed);
    const Cpg g = stress_graph(seed, 6 + (seed % 3) * 6);
    const CoSynthesisResult r = stress_merge(g);
    const TableValidation v =
        validate_table(r.flat_graph(), r.table, r.paths);
    const bool reported = r.merge_stats.unresolved_conflicts > 0 ||
                          r.merge_stats.column_clashes > 0;
    EXPECT_EQ(v.ok, !reported);
    if (!v.ok) ++incoherent;
    ++total;
  }
  // The corner stays rare even under stress.
  EXPECT_LE(incoherent, total / 10);
}

TEST(MergeConflicts, PaperParametersNeverLeaveConflictsUnresolved) {
  // Under the paper's own parameter regime (tau0 = 1 <= every
  // communication time, critical-path priorities) the generated tables
  // are always coherent.
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 40;
    params.path_count = 6 + (seed % 4) * 6;
    const Cpg g = generate_random_cpg(arch, params, rng);
    const CoSynthesisResult r = schedule_cpg(g);  // validate = true
    EXPECT_EQ(r.merge_stats.unresolved_conflicts, 0u);
    EXPECT_EQ(r.merge_stats.column_clashes, 0u);
  }
}

}  // namespace
}  // namespace cps
