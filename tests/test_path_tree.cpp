// PathTree — the guard-trie view behind PathScheduling::kTree — and the
// tree-mode driver. Adversarial trie shapes (diamond reconvergence,
// maximum-depth condition chains, sibling conditions on distinct PEs, the
// max_paths budget tripping mid-trie) are cross-checked leaf-for-leaf
// against the PathEnumerator reference, and the tree driver's schedule
// tables must be byte-identical to the retained path-list reference at 1,
// 2, 4 and 8 threads.
#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"

namespace {

using namespace cps;
using cps::testing::small_arch;

// `regions` independent two-way condition regions in series: 2^regions
// alternative paths — the maximum-depth condition chain for its size.
Cpg series_of_conditions(std::size_t regions) {
  CpgBuilder b(small_arch());
  std::optional<ProcessId> prev;
  for (std::size_t i = 0; i < regions; ++i) {
    const std::string n = std::to_string(i);
    const CondId c = b.add_condition("C" + n);
    const ProcessId d = b.add_process("D" + n, 0, 1);
    const ProcessId t = b.add_process("T" + n, 0, 1);
    const ProcessId f = b.add_process("F" + n, 0, 1);
    const ProcessId j = b.add_process("J" + n, 0, 1);
    b.add_cond_edge(d, t, Literal{c, true});
    b.add_cond_edge(d, f, Literal{c, false});
    b.add_edge(t, j);
    b.add_edge(f, j);
    b.mark_conjunction(j);
    if (prev) b.add_edge(*prev, d);
    prev = j;
  }
  return b.build();
}

// Diamond reconvergence: C selects one of two arms that both feed the
// conjunction J; on C, K splits again (nested diamond). Three leaves of
// different depth.
Cpg diamond_reconvergence() {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const CondId k = b.add_condition("K");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 2);
  const ProcessId p3 = b.add_process("P3", 1, 2);
  const ProcessId p4 = b.add_process("P4", 0, 2);
  const ProcessId p5 = b.add_process("P5", 0, 2);
  b.add_cond_edge(p1, p2, Literal{c, true});
  b.add_cond_edge(p1, p5, Literal{c, false});
  b.add_cond_edge(p2, p3, Literal{k, true});
  b.add_cond_edge(p2, p4, Literal{k, false});
  b.add_edge(p3, p5, 2);
  b.add_edge(p4, p5);
  b.mark_conjunction(p5);
  return b.build();
}

// Two independent condition regions whose disjunction processes run on
// *different* processors: sibling branches of the trie whose knowledge
// becomes available on distinct resources (broadcasts required).
Cpg sibling_conditions_on_distinct_pes() {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const CondId d = b.add_condition("D");
  const ProcessId pc = b.add_process("PC", 0, 2);
  const ProcessId ct = b.add_process("CT", 0, 3);
  const ProcessId cf = b.add_process("CF", 0, 1);
  const ProcessId pd = b.add_process("PD", 1, 2);
  const ProcessId dt = b.add_process("DT", 1, 3);
  const ProcessId df = b.add_process("DF", 1, 1);
  const ProcessId join = b.add_process("J", 0, 1);
  b.add_cond_edge(pc, ct, Literal{c, true});
  b.add_cond_edge(pc, cf, Literal{c, false});
  b.add_cond_edge(pd, dt, Literal{d, true});
  b.add_cond_edge(pd, df, Literal{d, false});
  b.add_edge(ct, join);
  b.add_edge(cf, join);
  b.add_edge(dt, join, 2);
  b.add_edge(df, join, 2);
  b.mark_conjunction(join);
  return b.build();
}

void expect_same_path(const AltPath& got, const AltPath& want,
                      std::size_t index) {
  EXPECT_EQ(got.label, want.label) << "leaf " << index;
  EXPECT_EQ(got.active, want.active) << "leaf " << index;
}

// Draining the frontier's subtrees in order must reproduce the reference
// enumeration leaf-for-leaf, for every frontier granularity.
void expect_frontier_partitions_leaves(const Cpg& g) {
  const std::vector<AltPath> reference = enumerate_paths(g);
  const PathTree tree(g);
  for (std::size_t min_nodes : {1u, 2u, 3u, 5u, 8u, 64u}) {
    SCOPED_TRACE("min_nodes " + std::to_string(min_nodes));
    const std::vector<PathTree::Node> nodes = tree.frontier(min_nodes);
    ASSERT_FALSE(nodes.empty());
    // Contexts partition the trie: pairwise incompatible, DFS order.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        EXPECT_FALSE(nodes[i].context.compatible(nodes[j].context))
            << "frontier nodes " << i << " and " << j << " overlap";
      }
      EXPECT_EQ(nodes[i].leaf,
                !tree.branch_condition(nodes[i].context).has_value());
    }
    std::size_t next = 0;
    for (const PathTree::Node& node : nodes) {
      PathEnumerator en = tree.leaves(node.context);
      while (auto path = en.next()) {
        ASSERT_LT(next, reference.size());
        expect_same_path(*path, reference[next], next);
        ++next;
      }
    }
    EXPECT_EQ(next, reference.size());
  }
}

TEST(PathTree, FrontierPartitionsFig1Leaves) {
  expect_frontier_partitions_leaves(build_fig1_cpg());
}

TEST(PathTree, FrontierPartitionsDiamondReconvergence) {
  expect_frontier_partitions_leaves(diamond_reconvergence());
}

TEST(PathTree, FrontierPartitionsMaximumDepthChain) {
  expect_frontier_partitions_leaves(series_of_conditions(7));  // 128 leaves
}

TEST(PathTree, FrontierPartitionsSiblingConditionsOnDistinctPes) {
  expect_frontier_partitions_leaves(sibling_conditions_on_distinct_pes());
}

TEST(PathTree, BranchConditionMatchesEnumeratorChoice) {
  const Cpg g = diamond_reconvergence();
  const PathTree tree(g);
  // Root branches on the smallest-id active undecided condition: C.
  const auto root = tree.branch_condition(Cube::top());
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, g.conditions().id_of("C"));
  // Under !C, K's disjunction never runs: the node is a leaf.
  const Cube not_c =
      *Cube::top().conjoin(Literal{g.conditions().id_of("C"), false});
  EXPECT_FALSE(tree.branch_condition(not_c).has_value());
  // Under C, the trie branches again on K.
  const Cube with_c =
      *Cube::top().conjoin(Literal{g.conditions().id_of("C"), true});
  const auto under_c = tree.branch_condition(with_c);
  ASSERT_TRUE(under_c.has_value());
  EXPECT_EQ(*under_c, g.conditions().id_of("K"));
}

TEST(PathTree, FrontierOfHugeTrieStaysShallow) {
  // 2^20 leaves; carving out 16 subtrees must not walk the whole trie.
  const Cpg g = series_of_conditions(20);
  const PathTree tree(g);
  const auto nodes = tree.frontier(16);
  EXPECT_GE(nodes.size(), 16u);
  EXPECT_LE(nodes.size(), 32u);
  for (const auto& node : nodes) EXPECT_FALSE(node.leaf);
}

// ---------------------------------------------------------------------
// Tree-mode driver vs the retained path-list reference.
// ---------------------------------------------------------------------

void expect_identical_results(const CoSynthesisResult& a,
                              const CoSynthesisResult& b) {
  ASSERT_EQ(a.path_count, b.path_count);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].label, b.paths[i].label);
    EXPECT_EQ(a.paths[i].active, b.paths[i].active);
    ASSERT_EQ(a.path_schedules[i].task_count(),
              b.path_schedules[i].task_count());
    for (TaskId t = 0; t < a.path_schedules[i].task_count(); ++t) {
      EXPECT_EQ(a.path_schedules[i].slot(t).start,
                b.path_schedules[i].slot(t).start);
      EXPECT_EQ(a.path_schedules[i].slot(t).end,
                b.path_schedules[i].slot(t).end);
      EXPECT_EQ(a.path_schedules[i].slot(t).resource,
                b.path_schedules[i].slot(t).resource);
    }
  }
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.delays.delta_m, b.delays.delta_m);
  EXPECT_EQ(a.delays.delta_max, b.delays.delta_max);
}

TEST(PathTreeDriver, TreeMatchesListOnSeededCpgsAtEveryThreadCount) {
  const std::size_t path_counts[] = {4, 8, 12, 24};
  std::size_t total_resumes = 0;
  for (std::uint64_t seed = 501; seed <= 540; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 20 + (seed % 4) * 10;
    params.path_count = path_counts[seed % 4];
    if (seed % 2 == 0) {
      // Balanced durations keep sibling priorities identical across
      // shared prefixes — the regime where the chain actually resumes.
      // Odd seeds keep heterogeneous durations: priorities diverge, the
      // engine adaptively skips recording, and the equivalence must hold
      // all the same.
      params.exec_min = params.exec_max = 5;
      params.comm_min = params.comm_max = 2;
    }
    const Cpg g = generate_random_cpg(arch, params, rng);

    CoSynthesisOptions list;
    list.path_scheduling = PathScheduling::kList;
    const CoSynthesisResult reference = schedule_cpg(g, list);

    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      CoSynthesisOptions tree;
      tree.path_scheduling = PathScheduling::kTree;
      tree.schedule_threads = threads;
      const CoSynthesisResult result = schedule_cpg(g, tree);
      expect_identical_results(result, reference);
      EXPECT_EQ(reference.tree.prefix_resumes, 0u);
      if (threads == 1) {
        EXPECT_EQ(result.tree.subtrees_parallel, 0u);
        total_resumes += result.tree.prefix_resumes;
      } else if (result.tree.subtrees_parallel > 0) {
        EXPECT_GE(result.tree.subtrees_parallel, 2u);
      }
    }
    if (::testing::Test::HasFailure()) break;
  }
  // The whole point of the trie walk: shared prefixes actually resume.
  EXPECT_GT(total_resumes, 0u);
}

TEST(PathTreeDriver, DeepConditionNestResumesAlmostEveryLeaf) {
  const Cpg g = series_of_conditions(6);  // 64 leaves
  CoSynthesisOptions tree;
  tree.schedule_threads = 1;
  const CoSynthesisResult result = schedule_cpg(g, tree);
  EXPECT_EQ(result.path_count, 64u);
  // Every leaf after the first shares a prefix with its predecessor; on
  // this chain-shaped model the checkpoints always reach back far enough.
  EXPECT_GT(result.tree.prefix_resumes, 32u);
  EXPECT_GT(result.tree.resumed_steps, 0u);

  CoSynthesisOptions list;
  list.path_scheduling = PathScheduling::kList;
  expect_identical_results(result, schedule_cpg(g, list));
}

TEST(PathTreeDriver, AdversarialShapesMatchListEndToEnd) {
  for (const Cpg& g :
       {diamond_reconvergence(), sibling_conditions_on_distinct_pes()}) {
    CoSynthesisOptions list;
    list.path_scheduling = PathScheduling::kList;
    const CoSynthesisResult reference = schedule_cpg(g, list);
    for (std::size_t threads : {1u, 4u}) {
      CoSynthesisOptions tree;
      tree.schedule_threads = threads;
      expect_identical_results(schedule_cpg(g, tree), reference);
    }
  }
}

TEST(PathTreeDriver, ExternalPoolSizesTheWalkAndMatchesList) {
  const Cpg g = series_of_conditions(5);  // 32 leaves
  CoSynthesisOptions list;
  list.path_scheduling = PathScheduling::kList;
  const CoSynthesisResult reference = schedule_cpg(g, list);
  // An external pool replaces schedule_threads for sizing (workers + the
  // participating caller), so the default schedule_threads == 1 must not
  // silently force the serial walk.
  ThreadPool pool(3);
  CoSynthesisOptions tree;
  tree.schedule_pool = &pool;
  const CoSynthesisResult result = schedule_cpg(g, tree);
  expect_identical_results(result, reference);
  EXPECT_GE(result.tree.subtrees_parallel, 2u);
}

TEST(PathTreeDriver, RandomPriorityPolicyStaysSerialAndIdentical) {
  // The per-path priority draws consume the flow RNG in enumeration
  // order; tree mode must preserve that order (it forces the serial
  // chain) even when parallel dispatch was requested.
  const Cpg g = diamond_reconvergence();
  CoSynthesisOptions list;
  list.path_scheduling = PathScheduling::kList;
  list.path_priority = PriorityPolicy::kRandom;
  CoSynthesisOptions tree = list;
  tree.path_scheduling = PathScheduling::kTree;
  tree.schedule_threads = 8;
  const CoSynthesisResult a = schedule_cpg(g, list);
  const CoSynthesisResult b = schedule_cpg(g, tree);
  expect_identical_results(a, b);
  EXPECT_EQ(b.tree.subtrees_parallel, 0u);
}

TEST(PathTreeDriver, MaxPathsBudgetTripsMidTrie) {
  const Cpg g = series_of_conditions(12);  // 4096 leaves
  for (std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    CoSynthesisOptions options;
    options.schedule_threads = threads;
    options.max_paths = 64;
    EXPECT_THROW(schedule_cpg(g, options), BudgetExceededError);
  }
  // A graph within the budget still co-synthesizes in every mode.
  const Cpg ok = series_of_conditions(3);
  CoSynthesisOptions within;
  within.max_paths = 8;
  within.schedule_threads = 4;
  EXPECT_EQ(schedule_cpg(ok, within).path_count, 8u);
}

TEST(PathTreeDriver, KeepPathsOffDropsPayloadKeepsTable) {
  const Cpg g = diamond_reconvergence();
  CoSynthesisOptions keep;
  const CoSynthesisResult with_paths = schedule_cpg(g, keep);
  CoSynthesisOptions drop;
  drop.keep_paths = false;
  const CoSynthesisResult without = schedule_cpg(g, drop);
  EXPECT_TRUE(without.paths.empty());
  EXPECT_TRUE(without.path_schedules.empty());
  EXPECT_EQ(without.path_count, with_paths.path_count);
  EXPECT_EQ(without.table, with_paths.table);
  EXPECT_EQ(without.delays.delta_m, with_paths.delays.delta_m);
}

}  // namespace
