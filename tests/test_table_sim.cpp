#include <gtest/gtest.h>

#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "sched/table_sim.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

class TableSimTest : public ::testing::Test {
 protected:
  TableSimTest() : g_(build_fig1_cpg()), result_(schedule_cpg(g_)) {}

  Cpg g_;
  CoSynthesisResult result_;
};

TEST_F(TableSimTest, ValidTableExecutesCleanlyOnEveryPath) {
  for (const AltPath& path : result_.paths) {
    const TableExecution exec =
        execute_table(result_.flat_graph(), result_.table, path);
    EXPECT_TRUE(exec.ok) << (exec.violations.empty()
                                 ? ""
                                 : exec.violations.front());
    EXPECT_GT(exec.delay, 0);
  }
}

TEST_F(TableSimTest, DelayMatchesDelayReport) {
  for (std::size_t i = 0; i < result_.paths.size(); ++i) {
    const TableExecution exec =
        execute_table(result_.flat_graph(), result_.table, result_.paths[i]);
    EXPECT_EQ(exec.delay, result_.delays.path_actual[i]);
  }
}

TEST_F(TableSimTest, MissingActivationIsReported) {
  // Erase one row of a copy of the table: requirement 3 violation.
  ScheduleTable broken(result_.flat_graph());
  const TaskId victim =
      result_.flat_graph().task_of_process(g_.process_by_name("P1"));
  for (TaskId t = 0; t < result_.flat_graph().task_count(); ++t) {
    if (t == victim) continue;
    for (const TableEntry& e : result_.table.row(t)) {
      broken.add_entry(t, e.column, e.start, e.resource);
    }
  }
  const TableExecution exec =
      execute_table(result_.flat_graph(), broken, result_.paths.front());
  EXPECT_FALSE(exec.ok);
  bool mentions_p1 = false;
  for (const auto& v : exec.violations) {
    if (v.find("P1") != std::string::npos) mentions_p1 = true;
  }
  EXPECT_TRUE(mentions_p1);
}

TEST_F(TableSimTest, DependencyViolationIsDetected) {
  // Move a process before its predecessor finishes.
  ScheduleTable broken(result_.flat_graph());
  const TaskId p3 =
      result_.flat_graph().task_of_process(g_.process_by_name("P3"));
  for (TaskId t = 0; t < result_.flat_graph().task_count(); ++t) {
    for (const TableEntry& e : result_.table.row(t)) {
      broken.add_entry(t, e.column, t == p3 ? 0 : e.start, e.resource);
    }
  }
  const TableExecution exec =
      execute_table(result_.flat_graph(), broken, result_.paths.front());
  EXPECT_FALSE(exec.ok);
}

TEST_F(TableSimTest, ValidatorFlagsRequirementViolations) {
  // A hand-built incoherent table: same process, compatible columns,
  // different times (req. 2) and a column that does not imply the guard
  // (req. 1).
  const FlatGraph& fg = result_.flat_graph();
  ScheduleTable broken(fg);
  const CondId c = g_.conditions().id_of("C");
  const TaskId p4 = fg.task_of_process(g_.process_by_name("P4"));
  // P4's guard is C; a 'true' column violates requirement 1 and clashes
  // with a C column at another time (requirement 2).
  broken.add_entry(p4, Cube::top(), 3, 0);
  broken.add_entry(p4, Cube(Literal{c, true}), 9, 0);
  const TableValidation v = validate_table(fg, broken, result_.paths);
  EXPECT_FALSE(v.ok);
  bool req1 = false;
  bool req2 = false;
  for (const auto& msg : v.violations) {
    if (msg.find("req1") != std::string::npos) req1 = true;
    if (msg.find("req2") != std::string::npos) req2 = true;
  }
  EXPECT_TRUE(req1);
  EXPECT_TRUE(req2);
}

TEST_F(TableSimTest, ValidatorAcceptsGeneratedTable) {
  const TableValidation v =
      validate_table(result_.flat_graph(), result_.table, result_.paths);
  EXPECT_TRUE(v.ok);
  EXPECT_TRUE(v.violations.empty());
}

TEST(TableSim, KnowledgeViolationDetected) {
  // A process guarded by C on a remote PE activated before the broadcast
  // can possibly arrive.
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 4);
  const ProcessId p2 = b.add_process("P2", 1, 2);
  b.add_cond_edge(p1, p2, Literal{c, true}, 2);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  const auto paths = enumerate_paths(g);

  // Build a deliberately premature table.
  ScheduleTable premature(fg);
  const CoSynthesisResult good = schedule_cpg(g);
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    for (const TableEntry& e : good.table.row(t)) {
      const bool is_p2 = t == fg.task_of_process(p2);
      premature.add_entry(t, e.column, is_p2 ? 4 : e.start, e.resource);
    }
  }
  bool violation_found = false;
  for (const AltPath& path : paths) {
    if (path.label.value_of(c) != true) continue;
    const TableExecution exec = execute_table(fg, premature, path);
    if (!exec.ok) violation_found = true;
  }
  EXPECT_TRUE(violation_found);
}

}  // namespace
}  // namespace cps
