#include <gtest/gtest.h>

#include "models/fig1.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

TEST(FlatGraph, InsertsCommTasksOnlyForInterPeEdges) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 2);  // same PE
  const ProcessId p3 = b.add_process("P3", 1, 2);  // other PE
  b.add_edge(p1, p2, /*comm=*/5);                  // ignored (intra)
  b.add_edge(p1, p3, /*comm=*/5);                  // comm task
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);

  std::size_t comm_tasks = 0;
  for (const Task& t : fg.tasks()) {
    if (t.is_comm()) {
      ++comm_tasks;
      EXPECT_EQ(t.duration, 5);
      EXPECT_EQ(t.name, "P1->P3");
      EXPECT_TRUE(fg.arch().pe(t.resource).is_bus());
    }
  }
  EXPECT_EQ(comm_tasks, 1u);
  // Dependency chain P1 -> comm -> P3.
  const TaskId t1 = fg.task_of_process(p1);
  const TaskId t3 = fg.task_of_process(p3);
  EXPECT_FALSE(fg.deps().has_edge(t1, t3));
  bool via_comm = false;
  for (EdgeId e : fg.deps().out_edges(t1)) {
    const TaskId mid = fg.deps().edge(e).dst;
    if (fg.task(mid).is_comm() && fg.deps().has_edge(mid, t3)) {
      via_comm = true;
    }
  }
  EXPECT_TRUE(via_comm);
}

TEST(FlatGraph, CommGuardIsSourceGuardAndLiteral) {
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 1, 2);
  b.add_cond_edge(p1, p2, Literal{c, true}, /*comm=*/3);
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const Task& t : fg.tasks()) {
    if (t.is_comm()) {
      EXPECT_EQ(t.guard, Dnf(Cube(Literal{c, true})));
    }
  }
}

TEST(FlatGraph, BroadcastTasksPerCondition) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  EXPECT_TRUE(fg.broadcasts_enabled());
  for (CondId c = 0; c < 3; ++c) {
    const auto bt = fg.broadcast_task(c);
    ASSERT_TRUE(bt.has_value());
    const Task& t = fg.task(*bt);
    EXPECT_TRUE(t.is_broadcast());
    EXPECT_EQ(t.duration, g.arch().cond_broadcast_time());
    EXPECT_EQ(t.name, g.conditions().name(c));
    // Broadcast guard = guard of the disjunction process.
    EXPECT_EQ(t.guard, g.process(g.disjunction_of(c)).guard);
    // Dependency disjunction -> broadcast.
    EXPECT_TRUE(fg.deps().has_edge(fg.disjunction_task(c), *bt));
  }
}

TEST(FlatGraph, SingleResourceModelSkipsBroadcasts) {
  Architecture arch;
  arch.add_processor("only");
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 2);
  b.add_cond_edge(p1, p2, Literal{c, true});
  const Cpg g = b.build();
  const FlatGraph fg = FlatGraph::expand(g);
  EXPECT_FALSE(fg.broadcasts_enabled());
  EXPECT_FALSE(fg.broadcast_task(c).has_value());
}

TEST(FlatGraph, ConditionalModelWithoutBroadcastBusIsRejected) {
  Architecture arch;
  arch.add_processor("p1");
  arch.add_processor("p2");
  arch.add_bus("b", /*connects_all=*/false);
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 1, 2);
  b.add_cond_edge(p1, p2, Literal{c, true}, 3);
  const Cpg g = b.build();
  EXPECT_THROW(FlatGraph::expand(g), ValidationError);
}

TEST(FlatGraph, CommFasterThanTau0IsRejected) {
  Architecture arch = small_arch();
  arch.set_cond_broadcast_time(4);
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 1, 2);
  b.add_cond_edge(p1, p2, Literal{c, true}, /*comm=*/2);  // < tau0
  const Cpg g = b.build();
  EXPECT_THROW(FlatGraph::expand(g), ValidationError);
}

TEST(FlatGraph, ActiveTasksFollowLabels) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  for (const AltPath& path : enumerate_paths(g)) {
    const auto active = fg.active_tasks(path.label);
    // Process tasks match the path's process activation.
    for (ProcessId p = 0; p < g.process_count(); ++p) {
      EXPECT_EQ(active[fg.task_of_process(p)], path.active[p]);
    }
    // A comm task is active iff its transmission guard holds.
    for (const Task& t : fg.tasks()) {
      if (!t.is_comm()) continue;
      EXPECT_EQ(active[t.id], t.guard.covered_by_context(path.label));
    }
  }
}

TEST(FlatGraph, Fig1TaskInventory) {
  const Cpg g = build_fig1_cpg();
  const FlatGraph fg = FlatGraph::expand(g);
  std::size_t processes = 0;
  std::size_t comms = 0;
  std::size_t bcasts = 0;
  for (const Task& t : fg.tasks()) {
    switch (t.kind) {
      case TaskKind::kProcess: ++processes; break;
      case TaskKind::kComm: ++comms; break;
      case TaskKind::kBroadcast: ++bcasts; break;
    }
  }
  EXPECT_EQ(processes, 19u);  // 17 ordinary + source + sink
  // The 14 published communication times map to 14 communication
  // processes (paper: P18..P31).
  EXPECT_EQ(comms, 14u);
  EXPECT_EQ(bcasts, 3u);
}

}  // namespace
}  // namespace cps
