// Deterministic fault injection (support/fault) across the pipeline.
//
// Every test arms a named fault site, runs a serial batch (threads = 1,
// so hit ordinals map to items deterministically), and checks the three
// robustness guarantees end to end:
//   1. the fault surfaces as a *typed* kInjectedFault on exactly the
//      item that hit it — the batch completes, nothing leaks out;
//   2. every surviving item is untouched — identical to the same item
//      in a never-faulted reference run;
//   3. after disarming, a rerun is byte-identical to the reference
//      (no poisoned workspace, history or pool state survives).
//
// The whole file GTEST_SKIPs unless the build compiled the sites in
// (CPS_FAULT_INJECT=ON); the CI fault job runs it under ASan.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/batch_driver.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cps;

/// Sites a serial batch deterministically passes through, in pipeline
/// order. "merge.adjust" only runs on the serial-merge walk (the
/// speculative walk routes adjustments through spec jobs + commit), so
/// it gets its own sweep; "pool.group_task" is exercised at the
/// TaskGroup level (a serial batch never routes work through one).
const char* const kBatchSites[] = {
    "batch.item",  "engine.run",  "engine.step",  "trie.subtree",
    "trie.commit", "merge.spec",  "merge.commit",
};

BatchConfig sweep_config() {
  BatchConfig config;
  config.count = 4;
  config.base_seed = 11;
  config.threads = 1;  // serial: hit order == item order, no races
  config.max_retries = 0;
  return config;
}

std::string json_of(const BatchResult& result) {
  BatchJsonOptions options;
  options.include_timing = false;
  return batch_result_to_json(result, options);
}

void expect_item_untouched(const BatchItem& got, const BatchItem& want) {
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.code, want.code);
  EXPECT_EQ(got.paths, want.paths);
  EXPECT_EQ(got.table_entries, want.table_entries);
  EXPECT_EQ(got.delta_m, want.delta_m);
  EXPECT_EQ(got.delta_max, want.delta_max);
  EXPECT_EQ(got.merge.backsteps, want.merge.backsteps);
  EXPECT_EQ(got.merge.conflicts, want.merge.conflicts);
  EXPECT_EQ(got.workspace.runs, want.workspace.runs);
  EXPECT_EQ(got.tree.prefix_resumes, want.tree.prefix_resumes);
}

class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::enabled()) {
      GTEST_SKIP() << "built without CPS_FAULT_INJECT";
    }
    fault::disarm_all();
  }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultInject, UnarmedSitesNeverFire) {
  const BatchConfig config = sweep_config();
  const BatchResult result = run_batch(config);
  EXPECT_EQ(result.summary.ok_count, config.count);
  for (const char* site : kBatchSites) {
    EXPECT_EQ(fault::fires(site), 0u) << site;
    EXPECT_EQ(fault::hits(site), 0u) << site;  // unarmed sites don't count
  }
}

TEST_F(FaultInject, EverySiteFailsExactlyOneItemAndCleanRerunIsIdentical) {
  const BatchConfig config = sweep_config();
  const BatchResult reference = run_batch(config);
  ASSERT_EQ(reference.summary.ok_count, config.count);
  const std::string reference_json = json_of(reference);

  for (const char* site : kBatchSites) {
    SCOPED_TRACE(site);
    fault::FaultSpec spec;
    spec.fire_at = 1;  // first hit: lands in item 0 in a serial batch
    fault::arm(site, spec);
    const BatchResult faulted = run_batch(config);
    fault::disarm_all();

    ASSERT_EQ(fault::fires(site), 0u);  // disarm_all reset the counters
    ASSERT_EQ(faulted.items.size(), config.count);

    // Exactly one item failed, with the typed code and the site name in
    // the message; the batch itself completed.
    std::size_t failed = 0;
    for (const BatchItem& item : faulted.items) {
      if (item.ok) continue;
      ++failed;
      EXPECT_EQ(item.code, ErrorCode::kInjectedFault);
      EXPECT_NE(item.error.find(site), std::string::npos) << item.error;
      EXPECT_EQ(item.attempts, 1u);  // max_retries = 0
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_FALSE(faulted.items[0].ok) << "first hit must land in item 0";
    EXPECT_EQ(faulted.summary.ok_count, config.count - 1);

    // Isolation: the survivors match the never-faulted reference.
    for (std::size_t i = 1; i < faulted.items.size(); ++i) {
      SCOPED_TRACE("item " + std::to_string(i));
      expect_item_untouched(faulted.items[i], reference.items[i]);
    }

    // No poison: a clean rerun is byte-identical to the reference.
    EXPECT_EQ(json_of(run_batch(config)), reference_json);
  }
}

TEST_F(FaultInject, SerialMergeAdjustFaultIsIsolatedToo) {
  // The serial-merge walk is the only caller of Merger::adjust; give its
  // site the same treatment as the speculative sweep above.
  BatchConfig config = sweep_config();
  config.synthesis.merge.execution = MergeExecution::kSerial;
  const BatchResult reference = run_batch(config);
  ASSERT_EQ(reference.summary.ok_count, config.count);
  const std::string reference_json = json_of(reference);

  fault::FaultSpec spec;
  spec.fire_at = 1;
  fault::arm("merge.adjust", spec);
  const BatchResult faulted = run_batch(config);
  fault::disarm_all();

  EXPECT_FALSE(faulted.items[0].ok);
  EXPECT_EQ(faulted.items[0].code, ErrorCode::kInjectedFault);
  EXPECT_EQ(faulted.summary.ok_count, config.count - 1);
  for (std::size_t i = 1; i < faulted.items.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i));
    expect_item_untouched(faulted.items[i], reference.items[i]);
  }
  EXPECT_EQ(json_of(run_batch(config)), reference_json);
}

TEST_F(FaultInject, SurvivingItemsAreByteIdenticalAtEveryThreadCount) {
  // The same sweep through a *pooled* batch: the fault may land in any
  // item (hit order races), but whichever items survive must serialize
  // byte-identically to the reference, and the clean rerun must too.
  BatchConfig config = sweep_config();
  const std::string reference_json = json_of(run_batch(config));
  const BatchResult reference = run_batch(config);

  config.threads = 4;
  const std::string pooled_reference_json = json_of(run_batch(config));
  EXPECT_EQ(pooled_reference_json, reference_json);

  for (const char* site : {"engine.step", "merge.commit", "batch.item"}) {
    SCOPED_TRACE(site);
    fault::FaultSpec spec;
    spec.fire_at = 1;
    fault::arm(site, spec);
    const BatchResult faulted = run_batch(config);
    fault::disarm_all();
    EXPECT_GE(faulted.summary.ok_count, config.count - 1);
    for (const BatchItem& item : faulted.items) {
      if (!item.ok) {
        EXPECT_EQ(item.code, ErrorCode::kInjectedFault);
        continue;
      }
      SCOPED_TRACE("item " + std::to_string(item.index));
      expect_item_untouched(item, reference.items[item.index]);
    }
    EXPECT_EQ(json_of(run_batch(config)), reference_json);
  }
}

TEST_F(FaultInject, TransientFaultsRetryWithDeterministicBackoff) {
  BatchConfig config = sweep_config();
  config.max_retries = 2;
  const std::string reference_json = json_of(run_batch(config));

  fault::FaultSpec spec;
  spec.fire_at = 1;
  spec.count = 1;  // fail the first attempt only
  spec.transient = true;
  fault::arm("batch.item", spec);
  const BatchResult result = run_batch(config);
  fault::disarm_all();

  // Item 0 recovered on the retry; its serialized form is identical to
  // the never-faulted run (attempt counters are struct-only on purpose).
  const BatchItem& item = result.items[0];
  EXPECT_TRUE(item.ok);
  EXPECT_EQ(item.code, ErrorCode::kOk);
  EXPECT_EQ(item.attempts, 2u);
  EXPECT_EQ(item.retries, 1u);
  EXPECT_GT(item.backoff_ms, 0u);
  EXPECT_LE(item.backoff_ms, 8u);  // capped
  EXPECT_EQ(result.summary.ok_count, config.count);
  EXPECT_EQ(result.summary.retries, 1u);
  // The summary's retry counter is the one legitimate delta: it records
  // that a fault ever happened. Normalize it and demand byte-equality
  // everywhere else.
  std::string faulted = json_of(result);
  const auto pos = faulted.find("\"retries\": 1");
  ASSERT_NE(pos, std::string::npos);
  faulted.replace(pos, std::string("\"retries\": 1").size(), "\"retries\": 0");
  EXPECT_EQ(faulted, reference_json);
}

TEST_F(FaultInject, PersistentTransientFaultExhaustsRetries) {
  BatchConfig config = sweep_config();
  config.max_retries = 2;
  fault::FaultSpec spec;
  spec.fire_at = 1;
  spec.count = 100;  // every attempt fails
  spec.transient = true;
  fault::arm("batch.item", spec);
  const BatchResult result = run_batch(config);
  fault::disarm_all();
  const BatchItem& item = result.items[0];
  EXPECT_FALSE(item.ok);
  EXPECT_EQ(item.code, ErrorCode::kInjectedFault);
  EXPECT_EQ(item.attempts, 3u);  // 1 + max_retries
  EXPECT_EQ(item.retries, 2u);
}

TEST_F(FaultInject, NonTransientFaultNeverRetries) {
  BatchConfig config = sweep_config();
  config.max_retries = 5;
  fault::FaultSpec spec;
  spec.fire_at = 1;
  fault::arm("batch.item", spec);  // transient = false
  const BatchResult result = run_batch(config);
  fault::disarm_all();
  EXPECT_FALSE(result.items[0].ok);
  EXPECT_EQ(result.items[0].attempts, 1u);
  EXPECT_EQ(result.items[0].retries, 0u);
}

TEST_F(FaultInject, PoolGroupTaskFaultCrossesTheStealBoundaryTyped) {
  // The pool.group_task site sits inside the TaskGroup wrapper, so the
  // fault is thrown on whatever thread (worker or help-running waiter)
  // executes the task — wait() must still rethrow it typed, and the
  // pool must survive with its error ledger balanced.
  ThreadPool pool(2);
  const PoolStats before = pool.stats();
  fault::FaultSpec spec;
  spec.fire_at = 1;
  fault::arm("pool.group_task", spec);
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.submit([] {});
  }
  try {
    group.wait();
    FAIL() << "expected the injected fault to rethrow";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "pool.group_task");
    EXPECT_EQ(e.code(), ErrorCode::kInjectedFault);
  }
  fault::disarm_all();
  // The pool survives and the error was observed, not dropped.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
  pool.wait_idle();
  EXPECT_EQ(pool.stats().delta_since(before).dropped_errors, 0u);
}

TEST_F(FaultInject, FireAtOrdinalSelectsALaterItem) {
  // Arm the batch.item site past item 0's hit: the failure must move to
  // the matching later item — the ordinal is a deterministic cursor.
  const BatchConfig config = sweep_config();
  fault::FaultSpec spec;
  spec.fire_at = 3;  // third hit = item 2 in a serial batch
  fault::arm("batch.item", spec);
  const BatchResult result = run_batch(config);
  fault::disarm_all();
  ASSERT_EQ(result.items.size(), 4u);
  EXPECT_TRUE(result.items[0].ok);
  EXPECT_TRUE(result.items[1].ok);
  EXPECT_FALSE(result.items[2].ok);
  EXPECT_TRUE(result.items[3].ok);
}

}  // namespace
