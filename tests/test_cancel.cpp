// Cooperative cancellation, deadlines and run budgets (support/cancel)
// across the co-synthesis pipeline, plus the graceful-degradation path
// (BudgetAction::kBound bounded-coverage results).
//
// The load-bearing invariant everywhere: after ANY trip — cancel,
// deadline, step budget, path budget — every workspace stays reusable
// and a subsequent clean run produces a result identical to one that
// was never interrupted.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "sched/batch_driver.hpp"
#include "sched/driver.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace {

using namespace cps;
using cps::testing::small_arch;

// `regions` independent two-way condition regions in series: 2^regions
// alternative paths (same shape as the path-tree suite's chain).
Cpg series_of_conditions(std::size_t regions) {
  CpgBuilder b(small_arch());
  std::optional<ProcessId> prev;
  for (std::size_t i = 0; i < regions; ++i) {
    const std::string n = std::to_string(i);
    const CondId c = b.add_condition("C" + n);
    const ProcessId d = b.add_process("D" + n, 0, 1);
    const ProcessId t = b.add_process("T" + n, 0, 1);
    const ProcessId f = b.add_process("F" + n, 0, 1);
    const ProcessId j = b.add_process("J" + n, 0, 1);
    b.add_cond_edge(d, t, Literal{c, true});
    b.add_cond_edge(d, f, Literal{c, false});
    b.add_edge(t, j);
    b.add_edge(f, j);
    b.mark_conjunction(j);
    if (prev) b.add_edge(*prev, d);
    prev = j;
  }
  return b.build();
}

void expect_identical_results(const CoSynthesisResult& a,
                              const CoSynthesisResult& b) {
  ASSERT_EQ(a.path_count, b.path_count);
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.delays.delta_m, b.delays.delta_m);
  EXPECT_EQ(a.delays.delta_max, b.delays.delta_max);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.total_leaves, b.total_leaves);
  EXPECT_EQ(a.coverage, b.coverage);
}

// ------------------------------------------------- budget primitives ---

TEST(RunBudget, ChecksReportTheRightCodes) {
  CancelToken token;
  RunBudget budget;
  budget.token = &token;
  EXPECT_EQ(budget.check_cheap(), ErrorCode::kOk);
  EXPECT_EQ(budget.check_now(), ErrorCode::kOk);
  token.cancel();
  EXPECT_EQ(budget.check_cheap(), ErrorCode::kCancelled);
  token.reset();
  EXPECT_EQ(budget.check_cheap(), ErrorCode::kOk);

  budget.set_deadline_after(-1.0);  // already expired
  EXPECT_EQ(budget.check_cheap(), ErrorCode::kOk);  // cheap skips the clock
  EXPECT_EQ(budget.check_now(), ErrorCode::kDeadlineExceeded);
  // Cancellation outranks the deadline (checked first).
  token.cancel();
  EXPECT_EQ(budget.check_now(), ErrorCode::kCancelled);
}

TEST(RunBudget, ChargeStepsTripsOnceCumulativeTotalCrosses) {
  RunBudget budget;
  budget.max_steps = 10;
  EXPECT_EQ(budget.charge_steps(4), ErrorCode::kOk);
  EXPECT_EQ(budget.charge_steps(6), ErrorCode::kOk);  // exactly at budget
  EXPECT_EQ(budget.charge_steps(1), ErrorCode::kStepBudgetExceeded);
  EXPECT_EQ(budget.steps_used(), 11u);
  RunBudget unlimited;
  EXPECT_EQ(unlimited.charge_steps(1u << 20), ErrorCode::kOk);
}

TEST(BudgetPoll, ChecksTokenEveryPollAndClockEveryStride) {
  RunBudget budget;
  budget.set_deadline_after(-1.0);
  BudgetPoll poll(&budget);
  // The expired deadline is only visible on the kStride-th poll; the
  // cancel flag would be visible immediately.
  for (std::uint32_t i = 0; i + 1 < BudgetPoll::kStride; ++i) {
    EXPECT_EQ(poll.poll(), ErrorCode::kOk) << "poll " << i;
  }
  EXPECT_EQ(poll.poll(), ErrorCode::kDeadlineExceeded);
  BudgetPoll null_poll(nullptr);
  EXPECT_EQ(null_poll.poll(), ErrorCode::kOk);
}

TEST(ErrorTaxonomy, InterruptCodesMapToTypedExceptions) {
  EXPECT_TRUE(is_interrupt(ErrorCode::kCancelled));
  EXPECT_TRUE(is_interrupt(ErrorCode::kDeadlineExceeded));
  EXPECT_TRUE(is_interrupt(ErrorCode::kStepBudgetExceeded));
  EXPECT_FALSE(is_interrupt(ErrorCode::kOk));
  EXPECT_FALSE(is_interrupt(ErrorCode::kUnschedulable));
  EXPECT_FALSE(is_interrupt(ErrorCode::kInjectedFault));
  EXPECT_THROW(throw_interrupt(ErrorCode::kCancelled, "x"), CancelledError);
  EXPECT_THROW(throw_interrupt(ErrorCode::kDeadlineExceeded, "x"),
               DeadlineExceededError);
  EXPECT_THROW(throw_interrupt(ErrorCode::kStepBudgetExceeded, "x"),
               BudgetExceededError);
  try {
    throw_interrupt(ErrorCode::kDeadlineExceeded, "ctx");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(error_code_of(e), ErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(std::string(to_string(ErrorCode::kDeadlineExceeded)),
            "deadline_exceeded");
}

// ------------------------------------------- pipeline interruption -----

TEST(Cancellation, PreCancelledTokenStopsBeforeAnyWork) {
  const Cpg g = series_of_conditions(4);
  CancelToken token;
  token.cancel();
  RunBudget budget;
  budget.token = &token;
  CoSynthesisOptions options;
  options.budget = &budget;
  EXPECT_THROW(schedule_cpg(g, options), CancelledError);
  // Reset and rerun on the very same options: identical to never-cancelled.
  token.reset();
  const CoSynthesisResult clean = schedule_cpg(g, options);
  const CoSynthesisResult reference = schedule_cpg(g);
  expect_identical_results(clean, reference);
}

TEST(Cancellation, ExpiredDeadlineThrowsDeadlineExceeded) {
  const Cpg g = series_of_conditions(4);
  RunBudget budget;
  budget.set_deadline_after(-1.0);
  CoSynthesisOptions options;
  options.budget = &budget;
  EXPECT_THROW(schedule_cpg(g, options), DeadlineExceededError);
  // A fresh (unexpired) budget on the same options runs to completion.
  RunBudget fresh;
  fresh.set_deadline_after(60000.0);
  options.budget = &fresh;
  expect_identical_results(schedule_cpg(g, options), schedule_cpg(g));
}

TEST(Cancellation, StepBudgetTripsInsideTheEngineAtEveryMode) {
  // max_steps is charged by the engine main loop itself, so this
  // exercises the deepest interrupt path: engine -> check_path_result ->
  // typed throw, in list mode, serial tree mode and decomposed tree mode.
  const Cpg g = series_of_conditions(5);  // 32 leaves
  struct Mode {
    PathScheduling scheduling;
    std::size_t threads;
  };
  for (const Mode mode : {Mode{PathScheduling::kList, 1},
                          Mode{PathScheduling::kTree, 1},
                          Mode{PathScheduling::kTree, 4}}) {
    SCOPED_TRACE(std::string(to_string(mode.scheduling)) + " threads " +
                 std::to_string(mode.threads));
    RunBudget budget;
    budget.max_steps = 3;  // far less than one path needs
    CoSynthesisOptions options;
    options.path_scheduling = mode.scheduling;
    options.schedule_threads = mode.threads;
    options.budget = &budget;
    try {
      schedule_cpg(g, options);
      FAIL() << "expected a step-budget trip";
    } catch (const BudgetExceededError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kStepBudgetExceeded);
    }
    EXPECT_GT(budget.steps_used(), 0u);
    // Workspace-reuse invariant: the same options with an unlimited
    // budget produce the untouched reference result.
    RunBudget unlimited;
    options.budget = &unlimited;
    expect_identical_results(schedule_cpg(g, options), schedule_cpg(g));
  }
}

TEST(Cancellation, RunBudgetMaxPathsFoldsIntoOptionsBudget) {
  const Cpg g = series_of_conditions(6);  // 64 leaves
  RunBudget budget;
  budget.max_paths = 16;  // tighter than options.max_paths below
  CoSynthesisOptions options;
  options.max_paths = 1000;
  options.budget = &budget;
  try {
    schedule_cpg(g, options);
    FAIL() << "expected a path-budget trip";
  } catch (const BudgetExceededError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPathBudgetExceeded);
  }
}

// --------------------------------------------- graceful degradation ----

TEST(BoundedCoverage, KBoundReturnsTruncatedResultWithCoverage) {
  const Cpg g = series_of_conditions(6);  // 64 leaves
  CoSynthesisOptions options;
  options.max_paths = 16;
  options.on_budget = BudgetAction::kBound;
  const CoSynthesisResult bounded = schedule_cpg(g, options);
  EXPECT_EQ(bounded.status, ErrorCode::kPathBudgetExceeded);
  EXPECT_EQ(bounded.path_count, 16u);
  EXPECT_EQ(bounded.total_leaves, 64u);
  EXPECT_DOUBLE_EQ(bounded.coverage, 0.25);
  EXPECT_GT(bounded.table.entry_count(), 0u);

  // Complete results report full coverage.
  CoSynthesisOptions full;
  const CoSynthesisResult complete = schedule_cpg(g, full);
  EXPECT_EQ(complete.status, ErrorCode::kOk);
  EXPECT_EQ(complete.total_leaves, 64u);
  EXPECT_DOUBLE_EQ(complete.coverage, 1.0);
}

TEST(BoundedCoverage, TruncationIsIdenticalAcrossModesAndThreadCounts) {
  // The kept prefix is a pure function of the enumeration order, so the
  // bounded table must be byte-identical in list mode, serial tree mode
  // and (via the deterministic serial fallback) parallel tree mode.
  const Cpg g = series_of_conditions(6);
  CoSynthesisOptions list;
  list.max_paths = 16;
  list.on_budget = BudgetAction::kBound;
  list.path_scheduling = PathScheduling::kList;
  const CoSynthesisResult reference = schedule_cpg(g, list);
  for (std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    CoSynthesisOptions tree = list;
    tree.path_scheduling = PathScheduling::kTree;
    tree.schedule_threads = threads;
    expect_identical_results(schedule_cpg(g, tree), reference);
  }
}

// ------------------------------------------------------ batch level ----

TEST(BatchCancellation, CancelledBatchCompletesWithTypedItems) {
  BatchConfig config;
  config.count = 6;
  config.threads = 1;
  CancelToken token;
  token.cancel();
  config.cancel = &token;
  const BatchResult result = run_batch(config);
  ASSERT_EQ(result.items.size(), 6u);
  for (const BatchItem& item : result.items) {
    EXPECT_FALSE(item.ok);
    EXPECT_EQ(item.code, ErrorCode::kCancelled);
    EXPECT_EQ(item.attempts, 1u);  // cancellation never retries
    EXPECT_FALSE(item.error.empty());
  }
  EXPECT_EQ(result.summary.cancelled, 6u);
  EXPECT_EQ(result.summary.ok_count, 0u);

  // The failed items carry their typed code in the JSON.
  BatchJsonOptions json;
  json.include_timing = false;
  const std::string out = batch_result_to_json(result, json);
  EXPECT_NE(out.find("\"error_code\": \"cancelled\""), std::string::npos);

  // Un-cancelling makes the same config fully succeed: the batch state
  // is not poisoned by the cancelled run.
  token.reset();
  const BatchResult clean = run_batch(config);
  EXPECT_EQ(clean.summary.ok_count, 6u);
  EXPECT_EQ(clean.summary.cancelled, 0u);
}

TEST(BatchCancellation, PerItemDeadlineIsolatesTimedOutItems) {
  BatchConfig config;
  config.count = 4;
  config.threads = 1;
  config.deadline_ms = 1e-6;  // expires before the entry check runs
  const BatchResult result = run_batch(config);
  ASSERT_EQ(result.items.size(), 4u);
  for (const BatchItem& item : result.items) {
    EXPECT_FALSE(item.ok);
    EXPECT_EQ(item.code, ErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(result.summary.timeouts, 4u);
  // The batch completed: every item reported, nothing thrown.
  EXPECT_EQ(result.summary.count, 4u);

  // A generous deadline changes nothing about the results themselves.
  BatchConfig relaxed = config;
  relaxed.deadline_ms = 600000.0;
  BatchConfig unlimited = config;
  unlimited.deadline_ms = 0.0;
  BatchJsonOptions json;
  json.include_timing = false;
  EXPECT_EQ(batch_result_to_json(run_batch(relaxed), json),
            batch_result_to_json(run_batch(unlimited), json));
}

TEST(BatchCancellation, BoundedItemsSerializeCoverage) {
  BatchConfig config;
  config.count = 3;
  config.threads = 1;
  config.cpg.path_count = 8;
  config.synthesis.max_paths = 2;
  config.synthesis.on_budget = BudgetAction::kBound;
  const BatchResult result = run_batch(config);
  bool any_bounded = false;
  for (const BatchItem& item : result.items) {
    EXPECT_TRUE(item.ok);
    if (item.code == ErrorCode::kPathBudgetExceeded) {
      any_bounded = true;
      EXPECT_EQ(item.paths, 2u);
      EXPECT_GT(item.total_leaves, 2u);
      EXPECT_LT(item.coverage, 1.0);
      EXPECT_GT(item.coverage, 0.0);
    }
  }
  EXPECT_TRUE(any_bounded);
  BatchJsonOptions json;
  json.include_timing = false;
  const std::string out = batch_result_to_json(result, json);
  EXPECT_NE(out.find("\"status\": \"path_budget_exceeded\""),
            std::string::npos);
  EXPECT_NE(out.find("\"coverage\""), std::string::npos);
}

}  // namespace
