// Shared helpers for the condsched test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "cond/cube.hpp"
#include "cpg/builder.hpp"
#include "cpg/flat_graph.hpp"
#include "sched/schedule.hpp"
#include "support/random.hpp"

namespace cps::testing {

/// Random cube over conditions [shift, shift + universe): each condition
/// is absent / positive / negative with equal probability. `shift` >=
/// Cube::kPackedBits exercises the wide slow-path representation.
inline Cube random_cube(Rng& rng, std::size_t universe, CondId shift = 0) {
  Cube c;
  for (CondId i = 0; i < universe; ++i) {
    const auto roll = rng.index(3);
    if (roll == 0) continue;
    c = *c.conjoin(Literal{static_cast<CondId>(i + shift), roll == 1});
  }
  return c;
}

/// A small architecture: two processors, one ASIC, one bus, tau0 = 1.
inline Architecture small_arch() {
  Architecture arch;
  arch.add_processor("cpu1");
  arch.add_processor("cpu2");
  arch.add_hardware("hw");
  arch.add_bus("bus");
  arch.set_cond_broadcast_time(1);
  return arch;
}

/// Physical-realizability check for a PathSchedule: dependencies among
/// active tasks respected, sequential resources exclusive, every active
/// task scheduled exactly once.
inline void expect_schedule_invariants(const FlatGraph& fg,
                                       const PathSchedule& sched,
                                       const std::vector<bool>& active) {
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (active[t]) {
      ASSERT_TRUE(sched.scheduled(t))
          << "active task " << fg.task(t).name << " is unscheduled";
      EXPECT_EQ(sched.slot(t).end - sched.slot(t).start,
                fg.task(t).duration)
          << fg.task(t).name;
    } else {
      EXPECT_FALSE(sched.scheduled(t))
          << "inactive task " << fg.task(t).name << " is scheduled";
    }
  }
  // Dependencies.
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (!active[t]) continue;
    for (EdgeId e : fg.deps().in_edges(t)) {
      const TaskId pred = fg.deps().edge(e).src;
      if (!active[pred]) continue;
      EXPECT_LE(sched.slot(pred).end, sched.slot(t).start)
          << fg.task(pred).name << " -> " << fg.task(t).name;
    }
  }
  // Mutual exclusion.
  for (TaskId a = 0; a < fg.task_count(); ++a) {
    if (!active[a]) continue;
    for (TaskId b = a + 1; b < fg.task_count(); ++b) {
      if (!active[b]) continue;
      const Slot& sa = sched.slot(a);
      const Slot& sb = sched.slot(b);
      if (sa.resource != sb.resource) continue;
      if (!fg.arch().pe(sa.resource).sequential()) continue;
      EXPECT_FALSE(sa.start < sb.end && sb.start < sa.end)
          << fg.task(a).name << " overlaps " << fg.task(b).name << " on "
          << fg.arch().pe(sa.resource).name;
    }
  }
}

}  // namespace cps::testing
