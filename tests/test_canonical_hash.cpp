// Canonical CPG hashing (cpg/canonical): the digest is a stable content
// identity — fixed generator seeds map to fixed hex digests (golden
// values pin the encoding format), equal content hashes equal regardless
// of construction path, and any content difference separates digests.
// Collision safety rides on the *encoding*, not the digest: consumers
// compare full key encodings byte-for-byte on every digest match.
#include <gtest/gtest.h>

#include <string>

#include "cpg/canonical.hpp"
#include "cpg/flat_graph.hpp"
#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "support/random.hpp"

namespace {

using namespace cps;

// A Cpg owns its Architecture, so returning it by value is safe.
Cpg make(std::uint64_t seed, std::size_t processes = 20,
         std::size_t paths = 4) {
  Rng rng(seed);
  RandomArchParams arch_params;
  RandomCpgParams cpg_params;
  cpg_params.process_count = processes;
  cpg_params.path_count = paths;
  const Architecture arch = generate_random_architecture(rng, arch_params);
  return generate_random_cpg(arch, cpg_params, rng);
}

TEST(CanonicalHash, GoldenDigestsForFixedSeeds) {
  // Golden values: any change to the canonical encoding (new fields,
  // reordered sections, width changes) must bump the format version AND
  // these constants — silently shifting them would split every persistent
  // store from its producers.
  const Cpg a = make(42);
  EXPECT_EQ(digest_of(canonical_encoding(a)).hex(),
            "1bfdc2688d9b0eda64a9078bb55dd2ea");
  const Cpg b = make(7, 30, 6);
  EXPECT_EQ(digest_of(canonical_encoding(b)).hex(),
            "88131e68b6a5f94741a31a7374bf2e17");
}

TEST(CanonicalHash, DigestIsAPureFunctionOfContent) {
  const Cpg a1 = make(42);
  const Cpg a2 = make(42);
  EXPECT_EQ(canonical_encoding(a1), canonical_encoding(a2));
  EXPECT_EQ(digest_of(canonical_encoding(a1)),
            digest_of(canonical_encoding(a2)));
}

TEST(CanonicalHash, DifferentContentSeparatesEncodingsAndDigests) {
  const Cpg a = make(42);
  const Cpg b = make(43);
  EXPECT_NE(canonical_encoding(a), canonical_encoding(b));
  EXPECT_NE(digest_of(canonical_encoding(a)),
            digest_of(canonical_encoding(b)));
}

TEST(CanonicalHash, FlatGraphCarriesTheDigestOfItsSource) {
  const Cpg a = make(42);
  const FlatGraph f1 = FlatGraph::expand(a);
  const FlatGraph f2 = FlatGraph::expand(a);
  EXPECT_EQ(f1.canonical_digest(), digest_of(canonical_encoding(a)));
  EXPECT_EQ(f1.canonical_digest(), f2.canonical_digest());
  // uid() stays process-local and distinct — the address-keyed caches
  // (CoverCache) must never confuse two expansions of the same content.
  EXPECT_NE(f1.uid(), f2.uid());
}

TEST(CanonicalHash, HexIs32LowercaseChars) {
  const Cpg a = make(42);
  const std::string hex = digest_of(canonical_encoding(a)).hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(CanonicalHash, EncodingStartsWithVersionedMagic) {
  const Cpg a = make(42);
  const std::string enc = canonical_encoding(a);
  ASSERT_GE(enc.size(), 12u);
  EXPECT_EQ(enc.substr(0, 8), "CPSCANON");
}

}  // namespace
