#include <gtest/gtest.h>

#include "atm/oam.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

OamArchitecture arch_1p(OamCpu cpu, int mems = 1) {
  return OamArchitecture{{cpu}, mems};
}
OamArchitecture arch_2p(OamCpu a, OamCpu b, int mems = 1) {
  return OamArchitecture{{a, b}, mems};
}

TEST(AtmOam, ModeSizesMatchTable2) {
  // "nr. proc" / "nr. paths" columns of Table 2: 32/6, 23/3, 42/8.
  const OamArchitecture arch = arch_1p(OamCpu::k486);
  const OamMapping mapping{};
  const struct {
    int mode;
    std::size_t procs;
    std::size_t paths;
  } expected[] = {{1, 32, 6}, {2, 23, 3}, {3, 42, 8}};
  for (const auto& e : expected) {
    const Cpg g = build_oam_mode_cpg(e.mode, arch, mapping);
    EXPECT_EQ(g.ordinary_process_count(), e.procs) << "mode " << e.mode;
    EXPECT_EQ(enumerate_paths(g).size(), e.paths) << "mode " << e.mode;
  }
}

TEST(AtmOam, LabelFormatting) {
  EXPECT_EQ(arch_1p(OamCpu::k486).label(), "1P/1M 486");
  EXPECT_EQ(arch_1p(OamCpu::kPentium, 2).label(), "1P/2M Pent.");
  EXPECT_EQ(arch_2p(OamCpu::k486, OamCpu::k486).label(), "2P/1M 2x486");
  EXPECT_EQ(arch_2p(OamCpu::k486, OamCpu::kPentium, 2).label(),
            "2P/2M 486+Pent.");
}

TEST(AtmOam, FasterProcessorReducesDelayInEveryMode) {
  for (int mode = 1; mode <= 3; ++mode) {
    const Time d486 =
        evaluate_oam_mode(mode, arch_1p(OamCpu::k486)).worst_case_delay;
    const Time dpent =
        evaluate_oam_mode(mode, arch_1p(OamCpu::kPentium)).worst_case_delay;
    EXPECT_LT(dpent, d486) << "mode " << mode;
  }
}

TEST(AtmOam, SecondProcessorNeverHelpsMode2) {
  // Mode 2 has no parallelism (paper §6).
  for (const OamCpu cpu : {OamCpu::k486, OamCpu::kPentium}) {
    const Time one = evaluate_oam_mode(2, arch_1p(cpu)).worst_case_delay;
    const Time two =
        evaluate_oam_mode(2, arch_2p(cpu, cpu)).worst_case_delay;
    EXPECT_EQ(one, two) << to_string(cpu);
  }
}

TEST(AtmOam, SecondProcessorAlwaysHelpsMode1) {
  for (const OamCpu cpu : {OamCpu::k486, OamCpu::kPentium}) {
    const Time one = evaluate_oam_mode(1, arch_1p(cpu)).worst_case_delay;
    const Time two =
        evaluate_oam_mode(1, arch_2p(cpu, cpu)).worst_case_delay;
    EXPECT_LT(two, one) << to_string(cpu);
  }
}

TEST(AtmOam, SecondProcessorHelpsMode3OnlyFor486) {
  const Time one486 =
      evaluate_oam_mode(3, arch_1p(OamCpu::k486)).worst_case_delay;
  const Time two486 =
      evaluate_oam_mode(3, arch_2p(OamCpu::k486, OamCpu::k486))
          .worst_case_delay;
  EXPECT_LT(two486, one486);

  const Time one_p =
      evaluate_oam_mode(3, arch_1p(OamCpu::kPentium)).worst_case_delay;
  const Time two_p =
      evaluate_oam_mode(3, arch_2p(OamCpu::kPentium, OamCpu::kPentium))
          .worst_case_delay;
  EXPECT_EQ(two_p, one_p);  // offloading is eaten by communication
}

TEST(AtmOam, SecondMemoryModuleHelpsOnlyTwoPentiumsInMode1) {
  // Paper: "only for the architecture consisting of two Pentium
  // processors providing an additional memory module pays back".
  const Time p2_1m =
      evaluate_oam_mode(1, arch_2p(OamCpu::kPentium, OamCpu::kPentium, 1))
          .worst_case_delay;
  const Time p2_2m =
      evaluate_oam_mode(1, arch_2p(OamCpu::kPentium, OamCpu::kPentium, 2))
          .worst_case_delay;
  EXPECT_LT(p2_2m, p2_1m);

  const Time i486_1m =
      evaluate_oam_mode(1, arch_2p(OamCpu::k486, OamCpu::k486, 1))
          .worst_case_delay;
  const Time i486_2m =
      evaluate_oam_mode(1, arch_2p(OamCpu::k486, OamCpu::k486, 2))
          .worst_case_delay;
  EXPECT_EQ(i486_2m, i486_1m);
}

TEST(AtmOam, SecondMemoryModuleNeverHelpsSingleProcessor) {
  for (int mode = 1; mode <= 3; ++mode) {
    for (const OamCpu cpu : {OamCpu::k486, OamCpu::kPentium}) {
      const Time m1 = evaluate_oam_mode(mode, arch_1p(cpu, 1))
                          .worst_case_delay;
      const Time m2 = evaluate_oam_mode(mode, arch_1p(cpu, 2))
                          .worst_case_delay;
      EXPECT_EQ(m1, m2) << "mode " << mode << " " << to_string(cpu);
    }
  }
}

TEST(AtmOam, MixedArchitectureUsesThePentiumForTheChain) {
  // Mode 2 on 486+Pentium must match the pure-Pentium delay (the whole
  // chain goes to the faster processor).
  const Time mixed =
      evaluate_oam_mode(2, arch_2p(OamCpu::k486, OamCpu::kPentium))
          .worst_case_delay;
  const Time pent =
      evaluate_oam_mode(2, arch_1p(OamCpu::kPentium)).worst_case_delay;
  EXPECT_EQ(mixed, pent);
}

TEST(AtmOam, InvalidModeRejected) {
  EXPECT_THROW(build_oam_mode_cpg(0, arch_1p(OamCpu::k486), OamMapping{}),
               InvalidArgument);
  EXPECT_THROW(build_oam_mode_cpg(4, arch_1p(OamCpu::k486), OamMapping{}),
               InvalidArgument);
}

}  // namespace
}  // namespace cps
