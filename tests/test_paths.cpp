#include <gtest/gtest.h>

#include "models/fig1.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

Cpg two_nested_conditions() {
  // P1 computes C; on C, P2 computes K; join in P5.
  CpgBuilder b(small_arch());
  const CondId c = b.add_condition("C");
  const CondId k = b.add_condition("K");
  const ProcessId p1 = b.add_process("P1", 0, 2);
  const ProcessId p2 = b.add_process("P2", 0, 2);
  const ProcessId p3 = b.add_process("P3", 0, 2);
  const ProcessId p4 = b.add_process("P4", 0, 2);
  const ProcessId p5 = b.add_process("P5", 0, 2);
  b.add_cond_edge(p1, p2, Literal{c, true});
  b.add_cond_edge(p1, p5, Literal{c, false});
  b.add_cond_edge(p2, p3, Literal{k, true});
  b.add_cond_edge(p2, p4, Literal{k, false});
  b.add_edge(p3, p5);
  b.add_edge(p4, p5);
  b.mark_conjunction(p5);
  return b.build();
}

TEST(Paths, NoConditionsMeansOnePath) {
  CpgBuilder b(small_arch());
  const ProcessId p1 = b.add_process("P1", 0, 1);
  const ProcessId p2 = b.add_process("P2", 0, 1);
  b.add_edge(p1, p2);
  const Cpg g = b.build();
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].label.is_true());
  for (ProcessId p = 0; p < g.process_count(); ++p) {
    EXPECT_TRUE(paths[0].active[p]);
  }
}

TEST(Paths, NestedConditionsGiveThreePaths) {
  const Cpg g = two_nested_conditions();
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 3u);  // C&K, C&!K, !C
  // Labels must be pairwise incompatible.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_FALSE(paths[i].label.compatible(paths[j].label));
    }
  }
  // !C path mentions only C (K's disjunction never runs).
  bool found_notc = false;
  for (const auto& p : paths) {
    if (p.label.value_of(g.conditions().id_of("C")) == false) {
      found_notc = true;
      EXPECT_EQ(p.label.size(), 1u);
    } else {
      EXPECT_EQ(p.label.size(), 2u);
    }
  }
  EXPECT_TRUE(found_notc);
}

TEST(Paths, ActiveSetsMatchGuards) {
  const Cpg g = two_nested_conditions();
  for (const auto& path : enumerate_paths(g)) {
    const Assignment a = path.representative(g.conditions().size());
    for (ProcessId p = 0; p < g.process_count(); ++p) {
      EXPECT_EQ(path.active[p], g.active_under(p, a))
          << g.process(p).name << " on " << path.label.to_string();
    }
    // Source and sink always run.
    EXPECT_TRUE(path.active[g.source()]);
    EXPECT_TRUE(path.active[g.sink()]);
  }
}

TEST(Paths, LabelsPartitionTheAssignmentSpace) {
  const Cpg g = two_nested_conditions();
  const auto paths = enumerate_paths(g);
  for (const Assignment& a : Assignment::enumerate(g.conditions().size())) {
    std::size_t matches = 0;
    for (const auto& p : paths) {
      if (a.satisfies(p.label)) ++matches;
    }
    EXPECT_EQ(matches, 1u) << "assignment " << a.to_string();
  }
}

TEST(Paths, PathForAssignmentAgreesWithEnumeration) {
  const Cpg g = two_nested_conditions();
  const auto paths = enumerate_paths(g);
  for (const Assignment& a : Assignment::enumerate(g.conditions().size())) {
    const AltPath p = path_for_assignment(g, a);
    bool found = false;
    for (const auto& q : paths) {
      if (q.label == p.label) {
        found = true;
        EXPECT_EQ(q.active, p.active);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Paths, Fig1HasSixPaths) {
  const Cpg g = build_fig1_cpg();
  const auto paths = enumerate_paths(g);
  EXPECT_EQ(paths.size(), 6u);
  // {C,!C} x {D&K, D&!K, !D}: the !D paths never mention K.
  const CondId d = g.conditions().id_of("D");
  const CondId k = g.conditions().id_of("K");
  for (const auto& p : paths) {
    ASSERT_TRUE(p.label.mentions(d));
    EXPECT_EQ(p.label.mentions(k), p.label.value_of(d) == true);
  }
}

// ---------------------------------------------------------------------
// Streaming enumeration. The path count is exponential in the number of
// independent condition regions, so the enumerator must produce leaves
// one at a time from O(depth) state instead of materializing the set.
// ---------------------------------------------------------------------

// `regions` independent two-way condition regions in series: 2^regions
// alternative paths from 4 * regions + 2 processes.
Cpg series_of_conditions(std::size_t regions) {
  CpgBuilder b(small_arch());
  std::optional<ProcessId> prev;
  for (std::size_t i = 0; i < regions; ++i) {
    const std::string n = std::to_string(i);
    const CondId c = b.add_condition("C" + n);
    const ProcessId d = b.add_process("D" + n, 0, 1);
    const ProcessId t = b.add_process("T" + n, 0, 1);
    const ProcessId f = b.add_process("F" + n, 0, 1);
    const ProcessId j = b.add_process("J" + n, 0, 1);
    b.add_cond_edge(d, t, Literal{c, true});
    b.add_cond_edge(d, f, Literal{c, false});
    b.add_edge(t, j);
    b.add_edge(f, j);
    b.mark_conjunction(j);
    if (prev) b.add_edge(*prev, d);
    prev = j;
  }
  return b.build();
}

TEST(PathEnumerator, MatchesEnumerationOrderOnFig1) {
  const Cpg g = build_fig1_cpg();
  const auto all = enumerate_paths(g);
  PathEnumerator en(g);
  for (const AltPath& expected : all) {
    const auto produced = en.next();
    ASSERT_TRUE(produced.has_value());
    EXPECT_EQ(produced->label, expected.label);
    EXPECT_EQ(produced->active, expected.active);
  }
  EXPECT_FALSE(en.next().has_value());
  EXPECT_EQ(en.produced(), all.size());
}

TEST(PathEnumerator, StreamsFirstLeavesOfAHugePathSetInstantly) {
  // 2^20 ≈ 1M alternative paths; taking the first few must not walk (or
  // allocate) the rest of the tree.
  const Cpg g = series_of_conditions(20);
  PathEnumerator en(g);
  for (int i = 0; i < 8; ++i) {
    const auto path = en.next();
    ASSERT_TRUE(path.has_value());
    // The first leaf decides every condition (true-first DFS descends the
    // all-true branch); label size equals the region count.
    EXPECT_EQ(path->label.size(), 20u);
  }
  EXPECT_EQ(en.produced(), 8u);
}

TEST(PathEnumerator, CountPathsStopsAtTheLimit) {
  const Cpg small = series_of_conditions(6);
  EXPECT_EQ(count_paths(small), std::optional<std::size_t>(64));
  EXPECT_EQ(count_paths(small, 64), std::optional<std::size_t>(64));
  EXPECT_FALSE(count_paths(small, 63).has_value());
  // On the huge graph the limited count returns quickly.
  const Cpg huge = series_of_conditions(20);
  EXPECT_FALSE(count_paths(huge, 1000).has_value());
}

TEST(PathEnumerator, DriverPathBudgetTripsBeforeMaterializing) {
  const Cpg g = series_of_conditions(12);  // 4096 paths
  CoSynthesisOptions options;
  options.max_paths = 64;
  EXPECT_THROW(schedule_cpg(g, options), BudgetExceededError);
  // A graph within the budget still co-synthesizes.
  const Cpg ok = series_of_conditions(3);
  options.max_paths = 8;
  EXPECT_EQ(schedule_cpg(ok, options).paths.size(), 8u);
}

}  // namespace
}  // namespace cps
