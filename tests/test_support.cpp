#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"

namespace cps {
namespace {

// ----------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 400; ++i) ++seen[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRequestedMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(8.0);
  EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(17);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

// ---------------------------------------------------------- stats -----

TEST(Stats, MeanStdMinMax) {
  StatAccumulator acc;
  acc.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1);
  EXPECT_DOUBLE_EQ(acc.max(), 4);
  EXPECT_NEAR(acc.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, PercentileInterpolates) {
  StatAccumulator acc;
  acc.add_all({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(acc.percentile(0), 10);
  EXPECT_DOUBLE_EQ(acc.percentile(100), 50);
  EXPECT_DOUBLE_EQ(acc.median(), 30);
  EXPECT_DOUBLE_EQ(acc.percentile(25), 20);
}

TEST(Stats, FractionCountsPredicate) {
  StatAccumulator acc;
  acc.add_all({0, 0, 1, 2});
  EXPECT_DOUBLE_EQ(acc.fraction([](double x) { return x == 0; }), 0.5);
}

TEST(Stats, EmptyAccumulatorThrows) {
  StatAccumulator acc;
  EXPECT_THROW(acc.mean(), InvalidArgument);
  EXPECT_THROW(acc.min(), InvalidArgument);
  EXPECT_THROW(acc.percentile(50), InvalidArgument);
}

// --------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(Strings, SplitWsDropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b \n"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinConcatenates) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// ----------------------------------------------------------- csv ------

TEST(Csv, QuotesOnlyWhenNeeded) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, FluentCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.cell("a").cell(std::int64_t{7}).cell(1.5, 1).end_row();
  EXPECT_EQ(os.str(), "a,7,1.5\n");
}

// ------------------------------------------------------ ascii table ---

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t;
  t.header({"name", "value"});
  t.cell("x").cell(std::int64_t{10}).end_row();
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name | value |"), std::string::npos);
  EXPECT_NE(s.find("| x    |    10 |"), std::string::npos);
}

// ----------------------------------------------------------- cli ------

TEST(Cli, ParsesFlagsAndPositionals) {
  CliParser cli("test");
  cli.add_flag("nodes", "60", "node count");
  cli.add_bool("verbose", "chatty");
  const char* argv[] = {"prog", "--nodes", "80", "--verbose", "file.cpg"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("nodes"), 80);
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.cpg");
}

TEST(Cli, EqualsSyntaxAndDefaults) {
  CliParser cli("test");
  cli.add_flag("paths", "10", "paths");
  const char* argv[] = {"prog", "--paths=32"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("paths"), 32);

  CliParser cli2("test");
  cli2.add_flag("paths", "10", "paths");
  const char* argv2[] = {"prog"};
  ASSERT_TRUE(cli2.parse(1, argv2));
  EXPECT_EQ(cli2.get_int("paths"), 10);
}

TEST(Cli, RejectsUnknownFlagAndBadValues) {
  CliParser cli("test");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), ParseError);

  CliParser cli2("test");
  cli2.add_flag("n", "1", "n");
  const char* argv2[] = {"prog", "--n", "xyz"};
  ASSERT_TRUE(cli2.parse(3, argv2));
  EXPECT_THROW(cli2.get_int("n"), ParseError);
}

TEST(Cli, MissingValueIsAnError) {
  CliParser cli("test");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), ParseError);
}

// ---------------------------------------------------------- error -----

TEST(Error, AssertMacroThrowsInternalError) {
  EXPECT_THROW(CPS_ASSERT(false, "boom"), InternalError);
  EXPECT_NO_THROW(CPS_ASSERT(true, "fine"));
}

TEST(Error, RequireMacroThrowsInvalidArgument) {
  EXPECT_THROW(CPS_REQUIRE(false, "bad arg"), InvalidArgument);
}

}  // namespace
}  // namespace cps
