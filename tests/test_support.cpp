#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/frame.hpp"
#include "support/json.hpp"
#include "support/random.hpp"
#include "support/small_vector.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table_format.hpp"
#include "support/thread_pool.hpp"

namespace cps {
namespace {

// ----------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 400; ++i) {
    ++seen[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRequestedMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(8.0);
  EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(17);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

// ---------------------------------------------------------- stats -----

TEST(Stats, MeanStdMinMax) {
  StatAccumulator acc;
  acc.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1);
  EXPECT_DOUBLE_EQ(acc.max(), 4);
  EXPECT_NEAR(acc.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, PercentileInterpolates) {
  StatAccumulator acc;
  acc.add_all({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(acc.percentile(0), 10);
  EXPECT_DOUBLE_EQ(acc.percentile(100), 50);
  EXPECT_DOUBLE_EQ(acc.median(), 30);
  EXPECT_DOUBLE_EQ(acc.percentile(25), 20);
}

TEST(Stats, FractionCountsPredicate) {
  StatAccumulator acc;
  acc.add_all({0, 0, 1, 2});
  EXPECT_DOUBLE_EQ(acc.fraction([](double x) { return x == 0; }), 0.5);
}

TEST(Stats, EmptyAccumulatorThrows) {
  StatAccumulator acc;
  EXPECT_THROW(acc.mean(), InvalidArgument);
  EXPECT_THROW(acc.min(), InvalidArgument);
  EXPECT_THROW(acc.percentile(50), InvalidArgument);
}

// --------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(Strings, SplitWsDropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b \n"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinConcatenates) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// ----------------------------------------------------------- csv ------

TEST(Csv, QuotesOnlyWhenNeeded) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, FluentCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.cell("a").cell(std::int64_t{7}).cell(1.5, 1).end_row();
  EXPECT_EQ(os.str(), "a,7,1.5\n");
}

// ------------------------------------------------------ ascii table ---

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t;
  t.header({"name", "value"});
  t.cell("x").cell(std::int64_t{10}).end_row();
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name | value |"), std::string::npos);
  EXPECT_NE(s.find("| x    |    10 |"), std::string::npos);
}

// ----------------------------------------------------------- cli ------

TEST(Cli, ParsesFlagsAndPositionals) {
  CliParser cli("test");
  cli.add_flag("nodes", "60", "node count");
  cli.add_bool("verbose", "chatty");
  const char* argv[] = {"prog", "--nodes", "80", "--verbose", "file.cpg"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("nodes"), 80);
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.cpg");
}

TEST(Cli, EqualsSyntaxAndDefaults) {
  CliParser cli("test");
  cli.add_flag("paths", "10", "paths");
  const char* argv[] = {"prog", "--paths=32"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("paths"), 32);

  CliParser cli2("test");
  cli2.add_flag("paths", "10", "paths");
  const char* argv2[] = {"prog"};
  ASSERT_TRUE(cli2.parse(1, argv2));
  EXPECT_EQ(cli2.get_int("paths"), 10);
}

TEST(Cli, RejectsUnknownFlagAndBadValues) {
  CliParser cli("test");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), ParseError);

  CliParser cli2("test");
  cli2.add_flag("n", "1", "n");
  const char* argv2[] = {"prog", "--n", "xyz"};
  ASSERT_TRUE(cli2.parse(3, argv2));
  EXPECT_THROW(cli2.get_int("n"), ParseError);
}

TEST(Cli, MissingValueIsAnError) {
  CliParser cli("test");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), ParseError);
}

TEST(Cli, GetIntRejectsMalformedValuesWithNamedErrors) {
  // std::stoll's raw invalid_argument/out_of_range must never escape:
  // every failure is a ParseError naming the flag and the value.
  const auto parse_one = [](const char* value) {
    CliParser cli("test");
    cli.add_flag("n", "1", "n");
    const char* argv[] = {"prog", "--n", value};
    EXPECT_TRUE(cli.parse(3, argv));
    return cli;
  };
  for (const char* bad : {"", " ", "xyz", "12abc", "1.5", "--", "0x1g"}) {
    SCOPED_TRACE(std::string("value '") + bad + "'");
    try {
      parse_one(bad).get_int("n");
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
    }
  }
  // Out-of-range gets its own message (and is still a ParseError, not a
  // raw std::out_of_range).
  try {
    parse_one("99999999999999999999999").get_int("n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"),
              std::string::npos);
  }
  // Values std::stoll accepts in full remain fine.
  EXPECT_EQ(parse_one("-12").get_int("n"), -12);
  EXPECT_EQ(parse_one("+7").get_int("n"), 7);
}

TEST(Cli, GetDoubleRejectsMalformedValues) {
  const auto parse_one = [](const char* value) {
    CliParser cli("test");
    cli.add_flag("x", "1.0", "x");
    const char* argv[] = {"prog", "--x", value};
    EXPECT_TRUE(cli.parse(3, argv));
    return cli;
  };
  EXPECT_THROW(parse_one("").get_double("x"), ParseError);
  EXPECT_THROW(parse_one("abc").get_double("x"), ParseError);
  EXPECT_THROW(parse_one("1.5x").get_double("x"), ParseError);
  EXPECT_THROW(parse_one("1e999999").get_double("x"), ParseError);
  EXPECT_DOUBLE_EQ(parse_one("2.5").get_double("x"), 2.5);
}

// ----------------------------------------------------------- json -----

namespace {

/// Minimal structural JSON check: balanced containers outside strings,
/// and no bare non-finite tokens ("nan", "inf") anywhere — the failure
/// mode this guards against is printf-style "%f" rendering of NaN/inf.
void expect_valid_jsonish(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  std::string outside;  // everything not inside a string literal
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    outside += c;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(outside.find("nan"), std::string::npos);
  EXPECT_EQ(outside.find("inf"), std::string::npos);
}

}  // namespace

TEST(JsonValue, ParsesScalarsContainersAndEscapes) {
  const JsonValue v = JsonValue::parse(
      "{\"a\": 1, \"b\": [true, null, -2.5, \"x\\n\\u0041\"],"
      " \"nested\": {\"k\": \"v\"}, \"empty\": [] }");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  const auto& items = v.at("b").items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_TRUE(items[0].as_bool());
  EXPECT_TRUE(items[1].is_null());
  EXPECT_DOUBLE_EQ(items[2].as_number(), -2.5);
  EXPECT_EQ(items[3].as_string(), "x\nA");
  EXPECT_EQ(v.at("nested").at("k").as_string(), "v");
  EXPECT_TRUE(v.at("empty").items().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), ParseError);
  EXPECT_THROW(v.at("a").as_string(), ParseError);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), ParseError);
  EXPECT_THROW(JsonValue::parse("{"), ParseError);
  EXPECT_THROW(JsonValue::parse("[1,]"), ParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(JsonValue::parse("1 2"), ParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ParseError);
  EXPECT_THROW(JsonValue::parse("1.2.3"), ParseError);
  EXPECT_THROW(JsonValue::parse_file("/nonexistent/path.json"), ParseError);
  // Corrupt deeply nested input raises ParseError, not a stack overflow.
  EXPECT_THROW(JsonValue::parse(std::string(200000, '[')), ParseError);
}

TEST(JsonValue, RoundTripsTheWritersOutput) {
  JsonWriter w(2);
  w.begin_object();
  w.field("name", "quote \" and \\ backslash");
  w.field("count", std::size_t{42});
  w.key("values").begin_array().value(1.5).value(false).null().end_array();
  w.end_object();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.at("name").as_string(), "quote \" and \\ backslash");
  EXPECT_EQ(v.at("count").as_int(), 42);
  ASSERT_EQ(v.at("values").items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("values").items()[0].as_number(), 1.5);
  // Member order is preserved (the writer's emission order).
  EXPECT_EQ(v.members()[0].first, "name");
  EXPECT_EQ(v.members()[2].first, "values");
}

// ------------------------------------------------------- SmallVector --

TEST(SmallVector, PushBackOfOwnElementSurvivesGrowth) {
  // std::vector parity: v.push_back(v[0]) is safe even when it grows.
  SmallVector<std::string, 2> v{"a long enough string to heap-allocate",
                                "second"};
  v.push_back(v[0]);  // exactly full: this push triggers growth
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "a long enough string to heap-allocate");
  v.push_back(v[1]);
  EXPECT_EQ(v[3], "second");
}

TEST(SmallVector, StaysInlineThenSpills) {
  SmallVector<int, 2> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.capacity(), 2u);  // still inline
  v.push_back(3);
  EXPECT_GT(v.capacity(), 2u);  // spilled to the heap
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(SmallVector, CopyMoveAndComparison) {
  SmallVector<std::string, 2> a{"x", "y", "z"};
  SmallVector<std::string, 2> b = a;  // copy (heap)
  EXPECT_EQ(a, b);
  SmallVector<std::string, 2> c = std::move(b);
  EXPECT_EQ(a, c);
  SmallVector<std::string, 2> inline_small{"x"};
  SmallVector<std::string, 2> moved_inline = std::move(inline_small);
  EXPECT_EQ(moved_inline.size(), 1u);
  EXPECT_EQ(moved_inline[0], "x");
  EXPECT_TRUE(inline_small.empty());
  SmallVector<std::string, 2> smaller{"x", "y"};
  EXPECT_TRUE(smaller < a);
  EXPECT_NE(smaller, a);
  a = smaller;  // copy-assign shrinks
  EXPECT_EQ(a, smaller);
}

TEST(SmallVector, EraseInsertAndStdAlgorithms) {
  SmallVector<int, 2> v{5, 3, 1, 4, 2};
  std::sort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  v.erase(v.begin() + 1);  // drop 2
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[1], 3);
  v.erase(v.begin(), v.begin() + 2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 4);
  const SmallVector<int, 2> tail{7, 8};
  v.insert(v.end(), tail.begin(), tail.end());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 8);
  v.insert(v.begin() + 1, tail.begin(), tail.end());
  EXPECT_EQ(v[1], 7);
  EXPECT_EQ(v[2], 8);
  EXPECT_EQ(v[3], 5);
  // Empty-range erase anywhere is a no-op (std::vector parity).
  const SmallVector<int, 2> before = v;
  v.erase(v.begin(), v.begin());
  v.erase(v.begin() + 1, v.begin() + 1);
  v.erase(v.end(), v.end());
  EXPECT_EQ(v, before);
}

TEST(Json, NonFiniteDoublesRenderAsNull) {
  JsonWriter w(0);
  w.begin_object();
  w.field("nan", std::nan(""));
  w.field("pos_inf", std::numeric_limits<double>::infinity());
  w.field("neg_inf", -std::numeric_limits<double>::infinity());
  w.field("finite", 1.25);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"nan\": null,\"pos_inf\": null,\"neg_inf\": null,"
            "\"finite\": 1.250000}");
  expect_valid_jsonish(w.str());
}

TEST(Json, SingletonAndNonFiniteStatsStayValid) {
  // A percentage over a zero baseline is the realistic inf/NaN source
  // (increase_percent when delta_m == 0); stddev of a singleton sample is
  // defined as 0 by StatAccumulator, so both corners must serialize to
  // valid JSON.
  StatAccumulator singleton;
  singleton.add(4.0);
  JsonWriter w(2);
  w.begin_object();
  w.field("stddev", singleton.stddev());
  w.field("ratio", std::numeric_limits<double>::infinity() * 100.0);
  w.field("undefined", std::nan(""));
  w.end_object();
  expect_valid_jsonish(w.str());
  EXPECT_NE(w.str().find("\"ratio\": null"), std::string::npos);
  EXPECT_NE(w.str().find("\"undefined\": null"), std::string::npos);
}

// ----------------------------------------------------- thread pool ----

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  for (auto& h : hits) h = 0;
  pool.parallel_for(101, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForOnEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdleRunEveryJob) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A job running on the pool may itself fan out on the same pool: the
  // caller participates in its own loop, so progress never depends on a
  // free worker.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
}

TEST(ThreadPool, SharedPoolIsUsableRepeatedly) {
  std::atomic<int> ran{0};
  ThreadPool::shared().parallel_for(16, [&](std::size_t) { ++ran; });
  ThreadPool::shared().parallel_for(16, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, TaskGroupWaitsForAllSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) {
    group.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 32);
  // wait() is idempotent and the group is reusable afterwards.
  group.wait();
  group.submit([&] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 33);
}

TEST(ThreadPool, TaskGroupErrorsMustBeObservedNotSilentlyDropped) {
  // A task exception that nobody waits for is a lost failure; the group
  // no longer swallows it silently. wait_dismissing_errors() is the
  // explicit opt-out (used when the caller's own error takes precedence);
  // it observes the error, so the dropped-error counter stays at zero.
  ThreadPool pool(2);
  const PoolStats before = pool.stats();
  std::atomic<bool> ran{false};
  {
    TaskGroup group(pool);
    group.submit([&] {
      ran.store(true);
      throw std::runtime_error("dismissed explicitly");
    });
    group.wait_dismissing_errors();
    // The group is reusable after dismissal, and wait() no longer throws.
    group.submit([] {});
    group.wait();
  }
  EXPECT_TRUE(ran.load());
  pool.wait_idle();
  EXPECT_EQ(pool.stats().delta_since(before).dropped_errors, 0u);
}

TEST(ThreadPool, TaskGroupCancelSkipsQueuedTasks) {
  // cancel() is cooperative: already-running bodies finish, queued ones
  // are skipped by the wrapper (counted as cancelled_tasks) — so a
  // cancelled group drains in O(queue length) pops, not task work.
  ThreadPool pool(1);
  const PoolStats before = pool.stats();
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    group.cancel();  // cancel before submitting: every task must be skipped
    for (int i = 0; i < 64; ++i) {
      group.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
  }
  EXPECT_EQ(ran.load(), 0);
  pool.wait_idle();
  const PoolStats delta = pool.stats().delta_since(before);
  EXPECT_EQ(delta.cancelled_tasks, 64u);
  EXPECT_EQ(delta.submitted, delta.executed);
}

TEST(ThreadPool, StatsDeltaSinceIsolatesACallWindow) {
  ThreadPool pool(2);
  pool.parallel_for(8, [](std::size_t) {});
  pool.wait_idle();
  const PoolStats before = pool.stats();
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ++ran; }, TaskPriority::kHigh);
  pool.wait_idle();
  const PoolStats delta = pool.stats().delta_since(before);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_GT(delta.submitted, 0u);
  EXPECT_EQ(delta.submitted, delta.executed);
  EXPECT_LT(delta.submitted, pool.stats().submitted);
}

// ---------------------------------------------------------- error -----

TEST(Frame, RoundTripsThroughArbitrarySplitPoints) {
  // The decoder must reassemble frames no matter how the stream is cut —
  // including splits inside the 4-byte header.
  const std::vector<std::string> payloads = {"", "a", std::string(300, 'x'),
                                             "{\"id\": 1}"};
  std::string stream;
  for (const std::string& p : payloads) append_frame(stream, p);
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameDecoder decoder;
    std::vector<std::string> out;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      ASSERT_TRUE(
          decoder.feed(stream.data() + i, std::min(chunk, stream.size() - i)));
      while (auto frame = decoder.next()) out.push_back(std::move(*frame));
    }
    EXPECT_EQ(out, payloads) << "chunk size " << chunk;
    EXPECT_EQ(decoder.buffered(), 0u);
    EXPECT_FALSE(decoder.corrupt());
  }
}

TEST(Frame, OverLimitLengthPoisonsTheDecoder) {
  FrameDecoder decoder(16);
  const std::string frame = encode_frame(std::string(17, 'y'));
  EXPECT_FALSE(decoder.feed(frame.data(), frame.size()));
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_FALSE(decoder.next().has_value());
  // Permanently: even a well-formed follow-up frame is refused.
  const std::string ok = encode_frame("ok");
  EXPECT_FALSE(decoder.feed(ok.data(), ok.size()));
  EXPECT_THROW(encode_frame(std::string(17, 'y'), 16), InvalidArgument);
}

TEST(Frame, HeaderIsBigEndianAndExactlyFourBytes) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 3);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(Error, AssertMacroThrowsInternalError) {
  EXPECT_THROW(CPS_ASSERT(false, "boom"), InternalError);
  EXPECT_NO_THROW(CPS_ASSERT(true, "fine"));
}

TEST(Error, RequireMacroThrowsInvalidArgument) {
  EXPECT_THROW(CPS_REQUIRE(false, "bad arg"), InvalidArgument);
}

}  // namespace
}  // namespace cps
