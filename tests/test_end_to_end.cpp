// Integration tests of the full flow on assorted hand-written models:
// every generated table must execute deterministically on every path and
// every alternative path keeps its activity set.
#include <gtest/gtest.h>

#include "io/cpg_format.hpp"
#include "sched/table_sim.hpp"
#include "sched/driver.hpp"
#include "test_util.hpp"

namespace cps {
namespace {

using testing::small_arch;

TEST(EndToEnd, QuickstartShapedModel) {
  Architecture arch;
  const PeId cpu = arch.add_processor("cpu");
  const PeId dsp = arch.add_hardware("dsp");
  arch.add_bus("bus");
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", cpu, 4);
  const ProcessId p2 = b.add_process("P2", dsp, 9);
  const ProcessId p3 = b.add_process("P3", cpu, 3);
  const ProcessId p4 = b.add_process("P4", cpu, 2);
  const ProcessId p5 = b.add_process("P5", cpu, 1);
  b.add_cond_edge(p1, p2, Literal{c, true}, 2);
  b.add_cond_edge(p1, p3, Literal{c, false});
  b.add_edge(p2, p4, 2);
  b.add_edge(p3, p4);
  b.add_edge(p4, p5);
  b.mark_conjunction(p4);
  const Cpg g = b.build();

  const CoSynthesisResult r = schedule_cpg(g);
  ASSERT_EQ(r.paths.size(), 2u);
  // The C path: P1(0-4), broadcast C on the bus (4-5), comm P1->P2 (5-7),
  // P2 on the DSP (7-16), comm P2->P4 (16-18), P4 (18-20), P5 (20-21).
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    const bool c_true = r.paths[i].label.value_of(c) == true;
    if (c_true) {
      EXPECT_EQ(r.delays.path_optimal[i], 21);
    } else {
      EXPECT_EQ(r.delays.path_optimal[i], 10);  // 4+3+2+1
    }
  }
  EXPECT_EQ(r.delays.delta_m, 21);
  EXPECT_EQ(r.delays.delta_max, 21);  // short path perturbation only
}

TEST(EndToEnd, ChainedConditionsOnOneProcessor) {
  // Everything on one CPU: the table degenerates to per-path sequences
  // but must still satisfy every requirement.
  Architecture arch;
  const PeId cpu = arch.add_processor("cpu");
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const CondId k = b.add_condition("K");
  const ProcessId p1 = b.add_process("P1", cpu, 2);
  const ProcessId p2 = b.add_process("P2", cpu, 3);
  const ProcessId p3 = b.add_process("P3", cpu, 5);
  const ProcessId p4 = b.add_process("P4", cpu, 7);
  const ProcessId p5 = b.add_process("P5", cpu, 1);
  b.add_cond_edge(p1, p2, Literal{c, true});
  b.add_cond_edge(p1, p3, Literal{c, false});
  b.add_cond_edge(p2, p4, Literal{k, true});
  b.add_cond_edge(p2, p5, Literal{k, false});
  const Cpg g = b.build();

  const CoSynthesisResult r = schedule_cpg(g);
  EXPECT_EQ(r.paths.size(), 3u);
  EXPECT_EQ(r.delays.delta_m, 12);   // P1 P2 P4
  EXPECT_EQ(r.delays.delta_max, 12);
}

TEST(EndToEnd, HardwareParallelismExploited) {
  // Two guarded processes on the ASIC run concurrently.
  Architecture arch;
  const PeId cpu = arch.add_processor("cpu");
  const PeId hw = arch.add_hardware("hw");
  arch.add_bus("bus");
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const ProcessId p1 = b.add_process("P1", cpu, 2);
  const ProcessId a = b.add_process("A", hw, 10);
  const ProcessId bb = b.add_process("B", hw, 10);
  b.add_cond_edge(p1, a, Literal{c, true}, 1);
  b.add_cond_edge(p1, bb, Literal{c, true}, 1);
  const Cpg g = b.build();
  const CoSynthesisResult r = schedule_cpg(g);
  // On the C path: P1(2) + comms serialized on the bus (1+1) but A and B
  // overlap on the ASIC; delay far below the serialized 22.
  EXPECT_LE(r.delays.delta_max, 15);
}

TEST(EndToEnd, MemoryModuleContention) {
  // Two independent memory accesses contend on one module, flow in
  // parallel on two.
  for (const int mems : {1, 2}) {
    Architecture arch;
    const PeId cpu = arch.add_processor("cpu");
    const PeId m1 = arch.add_memory("m1");
    const PeId m2 = mems == 2 ? arch.add_memory("m2") : m1;
    arch.add_bus("bus");
    CpgBuilder b(arch);
    const ProcessId p1 = b.add_process("P1", cpu, 1);
    const ProcessId a = b.add_process("A", m1, 10);
    const ProcessId c = b.add_process("C", m2, 10);
    const ProcessId p2 = b.add_process("P2", cpu, 1);
    b.add_edge(p1, a, 1);
    b.add_edge(p1, c, 1);
    b.add_edge(a, p2, 1);
    b.add_edge(c, p2, 1);
    const Cpg g = b.build();
    const CoSynthesisResult r = schedule_cpg(g);
    if (mems == 1) {
      EXPECT_GE(r.delays.delta_max, 23);  // serialized accesses
    } else {
      EXPECT_LE(r.delays.delta_max, 16);  // parallel accesses
    }
  }
}

TEST(EndToEnd, FileModelFullFlow) {
  const char* text = R"(
@arch
processor cpu1
processor cpu2
bus b1
tau0 1
@conditions
C
@processes
A cpu1 3
B cpu2 5
C1 cpu1 4
D cpu1 1
@conjunctions
D
@edges
A B C 2
A C1 !C
B D 2
C1 D
)";
  const Cpg g = parse_cpg_string(text);
  const CoSynthesisResult r = schedule_cpg(g);
  EXPECT_EQ(r.paths.size(), 2u);
  EXPECT_GE(r.delays.delta_max, r.delays.delta_m);
  const TableValidation v = validate_table(r.flat_graph(), r.table, r.paths);
  EXPECT_TRUE(v.ok);
}


TEST(EndToEnd, DelayDependsOnlyOnThePathLabel) {
  // Exhaustive check over all 2^n condition assignments of Fig. 1-shaped
  // models: two assignments selecting the same alternative path must see
  // the identical execution (the don't-care conditions are invisible).
  Architecture arch;
  const PeId cpu1 = arch.add_processor("cpu1");
  const PeId cpu2 = arch.add_processor("cpu2");
  arch.add_bus("bus");
  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const CondId k = b.add_condition("K");
  const ProcessId p1 = b.add_process("P1", cpu1, 3);
  const ProcessId p2 = b.add_process("P2", cpu2, 4);   // iff C
  const ProcessId p3 = b.add_process("P3", cpu1, 2);   // iff !C
  const ProcessId p4 = b.add_process("P4", cpu2, 5);   // iff C & K
  const ProcessId p5 = b.add_process("P5", cpu2, 1);   // iff C & !K
  b.add_cond_edge(p1, p2, Literal{c, true}, 2);
  b.add_cond_edge(p1, p3, Literal{c, false});
  b.add_cond_edge(p2, p4, Literal{k, true});
  b.add_cond_edge(p2, p5, Literal{k, false});
  const Cpg g = b.build();
  const CoSynthesisResult r = schedule_cpg(g);

  for (const Assignment& a : Assignment::enumerate(2)) {
    const AltPath path = path_for_assignment(g, a);
    const TableExecution exec =
        execute_table(r.flat_graph(), r.table, path);
    ASSERT_TRUE(exec.ok);
    // Find the enumerated path with the same label and compare delays.
    bool matched = false;
    for (std::size_t i = 0; i < r.paths.size(); ++i) {
      if (r.paths[i].label == path.label) {
        EXPECT_EQ(exec.delay, r.delays.path_actual[i])
            << "assignment " << a.to_string();
        matched = true;
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST(EndToEnd, TwoBusArchitectureSplitsTraffic) {
  // Round-robin bus assignment spreads the communications; both tables
  // stay coherent and the two-bus variant is never slower.
  for (const int buses : {1, 2}) {
    Architecture arch;
    const PeId cpu1 = arch.add_processor("cpu1");
    const PeId cpu2 = arch.add_processor("cpu2");
    for (int i = 0; i < buses; ++i) {
      arch.add_bus("bus" + std::to_string(i + 1));
    }
    CpgBuilder b(arch);
    const ProcessId a = b.add_process("A", cpu1, 2);
    const ProcessId x = b.add_process("X", cpu2, 3);
    const ProcessId y = b.add_process("Y", cpu2, 3);
    const ProcessId z = b.add_process("Z", cpu2, 3);
    b.add_edge(a, x, 5);
    b.add_edge(a, y, 5);
    b.add_edge(a, z, 5);
    const Cpg g = b.build();
    const CoSynthesisResult r = schedule_cpg(g);
    if (buses == 1) {
      // comms 2-7 / 7-12 / 12-17; Z runs last: 17-20.
      EXPECT_EQ(r.delays.delta_max, 20);
    } else {
      // comms overlap pairwise; cpu2 serializes X, Y, Z: 7..16.
      EXPECT_EQ(r.delays.delta_max, 16);
    }
  }
}

}  // namespace
}  // namespace cps
