// Equivalence of the speculative (parallel) merge with the serial
// reference walk: byte-identical schedule tables and identical merge
// statistics over seeded random CPGs — including multi-PE architectures,
// where condition knowledge lags behind the disjunction and the
// speculative lock validation actually has work to do — at every thread
// count.
#include <gtest/gtest.h>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "models/fig1.hpp"
#include "sched/driver.hpp"

namespace cps {
namespace {

struct Inputs {
  std::unique_ptr<FlatGraph> fg;
  std::vector<AltPath> paths;
  std::vector<PathSchedule> schedules;
};

Inputs co_synthesis_inputs(const Cpg& g) {
  Inputs in;
  in.fg = std::make_unique<FlatGraph>(FlatGraph::expand(g));
  CoverCache cache;
  PathEnumerator en(g);
  while (auto path = en.next()) {
    in.paths.push_back(std::move(*path));
    in.schedules.push_back(schedule_path(*in.fg, in.paths.back(),
                                         PriorityPolicy::kCriticalPath,
                                         nullptr, ReadySelection::kHeap,
                                         &cache));
  }
  return in;
}

void expect_identical_tables(const ScheduleTable& a, const ScheduleTable& b) {
  // Granular per-entry checks for diagnosable failures ...
  ASSERT_EQ(a.row_count(), b.row_count());
  for (TaskId t = 0; t < a.row_count(); ++t) {
    ASSERT_EQ(a.row(t).size(), b.row(t).size()) << "task " << t;
    for (std::size_t i = 0; i < a.row(t).size(); ++i) {
      EXPECT_EQ(a.row(t)[i].column, b.row(t)[i].column) << "task " << t;
      EXPECT_EQ(a.row(t)[i].start, b.row(t)[i].start) << "task " << t;
      EXPECT_EQ(a.row(t)[i].resource, b.row(t)[i].resource) << "task " << t;
    }
  }
  // ... and the canonical comparison, so a future TableEntry field cannot
  // silently fall out of the equivalence guarantee.
  EXPECT_TRUE(a == b);
}

void expect_identical_stats(const MergeStats& a, const MergeStats& b) {
  EXPECT_EQ(a.backsteps, b.backsteps);
  EXPECT_EQ(a.adjustments, b.adjustments);
  EXPECT_EQ(a.locks, b.locks);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.conflict_moves, b.conflict_moves);
  EXPECT_EQ(a.unresolved_conflicts, b.unresolved_conflicts);
  EXPECT_EQ(a.relaxed_locks, b.relaxed_locks);
  EXPECT_EQ(a.column_clashes, b.column_clashes);
}

void expect_equivalence(const Cpg& g,
                        WorkspaceStats* checkpoint_stats = nullptr) {
  const Inputs in = co_synthesis_inputs(g);

  // The reference: serial walk, every adjustment rescheduled from t=0.
  MergeOptions serial;
  serial.execution = MergeExecution::kSerial;
  serial.resume = EngineResume::kFromScratch;
  const MergeResult reference =
      merge_schedules(*in.fg, in.paths, in.schedules, serial);
  EXPECT_TRUE(reference.ok);
  EXPECT_EQ(reference.stats.speculative_hits, 0u);
  EXPECT_EQ(reference.stats.speculative_misses, 0u);
  EXPECT_EQ(reference.workspace.resumes, 0u);
  EXPECT_EQ(reference.workspace.full_reuses, 0u);

  // Incremental prefix rescheduling (the production default) must leave
  // the table AND every merge statistic untouched.
  MergeOptions serial_ckpt = serial;
  serial_ckpt.resume = EngineResume::kCheckpoint;
  const MergeResult checkpoint =
      merge_schedules(*in.fg, in.paths, in.schedules, serial_ckpt);
  EXPECT_TRUE(checkpoint.ok);
  expect_identical_tables(reference.table, checkpoint.table);
  expect_identical_stats(reference.stats, checkpoint.stats);
  if (checkpoint_stats != nullptr) *checkpoint_stats += checkpoint.workspace;

  MergeStats previous_speculative;
  bool have_previous = false;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MergeOptions parallel;
    parallel.execution = MergeExecution::kSpeculative;
    parallel.resume = EngineResume::kCheckpoint;
    parallel.threads = threads;
    const MergeResult speculative =
        merge_schedules(*in.fg, in.paths, in.schedules, parallel);
    EXPECT_TRUE(speculative.ok);
    expect_identical_tables(reference.table, speculative.table);
    expect_identical_stats(reference.stats, speculative.stats);
    // Every adjustment went through the speculation machinery, and the
    // hit/miss split itself is thread-count invariant.
    EXPECT_EQ(speculative.stats.speculative_hits +
                  speculative.stats.speculative_misses,
              speculative.stats.adjustments);
    if (have_previous) {
      EXPECT_EQ(previous_speculative.speculative_hits,
                speculative.stats.speculative_hits);
      EXPECT_EQ(previous_speculative.speculative_misses,
                speculative.stats.speculative_misses);
    }
    previous_speculative = speculative.stats;
    have_previous = true;
  }
}

TEST(MergeParallel, Fig1Equivalence) { expect_equivalence(build_fig1_cpg()); }

TEST(MergeParallel, HundredSeededRandomCpgsAreEquivalent) {
  // 100 random co-syntheses over the paper's architecture distribution
  // (1-11 processors + ASIC + 1-8 buses: virtually always multi-PE, so
  // broadcast knowledge lag and cross-subtree lock discovery are
  // exercised), with varying sizes, path counts and distributions. The
  // accumulated workspace counters additionally prove the workspace layer
  // really served the walks (buffer reuse across every adjustment). On
  // these well-formed workloads each path is adjusted exactly once, so
  // serial-mode checkpoint *resumes* stay 0 by design — the incremental
  // path triggers on same-path reruns (conflict trials, lock relaxation,
  // speculative miss re-runs) and is pinned down deterministically by the
  // engine-level sweep in test_list_scheduler.cpp.
  WorkspaceStats checkpoint_stats;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const Architecture arch = generate_random_architecture(rng);
    RandomCpgParams params;
    params.process_count = 20 + (seed % 4) * 10;
    params.path_count = 4 + (seed % 5) * 3;
    params.distribution = (seed % 2) == 0 ? TimeDistribution::kUniform
                                          : TimeDistribution::kExponential;
    const Cpg g = generate_random_cpg(arch, params, rng);
    expect_equivalence(g, &checkpoint_stats);
  }
  EXPECT_GT(checkpoint_stats.runs, 0u);
  EXPECT_GT(checkpoint_stats.reuse_hits, 0u);
  EXPECT_EQ(checkpoint_stats.resumes, 0u);  // no same-path reruns here
}

TEST(MergeParallel, StressRegimeWithConflictsStaysEquivalent) {
  // Slow broadcasts make condition knowledge lag far behind the
  // disjunctions: the regime where sibling subtrees fix extra rule-3
  // locks (speculation misses) and §5.2 conflicts appear.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    RandomArchParams ap;
    ap.cond_broadcast_time = 6;
    const Architecture arch = generate_random_architecture(rng, ap);
    RandomCpgParams params;
    params.process_count = 30;
    params.path_count = 6 + (seed % 3) * 6;
    params.comm_min = 6;
    params.comm_max = 20;
    const Cpg g = generate_random_cpg(arch, params, rng);
    expect_equivalence(g);
  }
}

TEST(MergeParallel, RandomSelectionDegradesToSerialWalk) {
  // kRandom path selection draws from the walk's RNG in serial order;
  // speculative execution must transparently fall back and reproduce the
  // serial result exactly.
  Rng rng(7);
  const Architecture arch = generate_random_architecture(rng);
  RandomCpgParams params;
  params.process_count = 30;
  params.path_count = 8;
  const Cpg g = generate_random_cpg(arch, params, rng);
  const Inputs in = co_synthesis_inputs(g);

  MergeOptions serial;
  serial.execution = MergeExecution::kSerial;
  serial.selection = PathSelection::kRandom;
  serial.random_seed = 99;
  MergeOptions parallel = serial;
  parallel.execution = MergeExecution::kSpeculative;
  parallel.threads = 4;

  const MergeResult a = merge_schedules(*in.fg, in.paths, in.schedules,
                                        serial);
  const MergeResult b = merge_schedules(*in.fg, in.paths, in.schedules,
                                        parallel);
  expect_identical_tables(a.table, b.table);
  expect_identical_stats(a.stats, b.stats);
  EXPECT_EQ(b.stats.speculative_hits + b.stats.speculative_misses, 0u);
}

}  // namespace
}  // namespace cps
