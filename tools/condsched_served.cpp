// condsched_served — the long-lived co-synthesis daemon.
//
// Binds an AF_UNIX socket, serves length-prefixed JSON requests (see
// src/serve/protocol.hpp for the schema), and exits 0 after a graceful
// drain: SIGTERM/SIGINT or a "shutdown" request stops the listener,
// finishes (or deadlines out) the admitted work, flushes every response,
// and returns. The workload flags mirror bench_batch_throughput so the
// daemon, the offline oracle, and the load generator share one workload
// definition: request index i answers exactly run_batch_item(workload, i).
#include <iostream>

#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/signals.hpp"

int main(int argc, char** argv) try {
  using namespace cps;
  CliParser cli("long-lived co-synthesis service daemon");
  cli.add_flag("socket", "", "AF_UNIX socket path to bind (required)");
  cli.add_flag("threads", "0", "request workers (0 = hardware)");
  cli.add_flag("max-queue-depth", "64",
               "admission bound on queued + running requests");
  cli.add_flag("max-inflight-bytes", "4194304",
               "admission watermark on summed request-frame bytes");
  cli.add_flag("default-deadline-ms", "0",
               "deadline for requests without their own (0 = none)");
  cli.add_flag("overload", "shed-oldest",
               "overload policy: shed-oldest | reject-newest");
  cli.add_flag("no-cache", "false",
               "disable the daemon-wide schedule cache");
  cli.add_flag("cache-dir", "",
               "persistent schedule-cache directory (empty = memory only)");
  cli.add_flag("cache-entries", "4096",
               "in-memory exact-tier entry bound (whole-tier reset)");
  cli.add_flag("cache-store-entries", "4096",
               "persistent-tier entry bound (deterministic eviction)");
  // Workload definition (same knobs as bench_batch_throughput).
  cli.add_flag("nodes", "60", "processes per generated graph");
  cli.add_flag("paths", "10", "alternative paths per generated graph");
  cli.add_flag("seed", "1", "base random seed (request index offsets it)");
  cli.add_flag("ready", "heap", "engine: heap | linear");
  if (!cli.parse(argc, argv)) return 0;

  ServerOptions options;
  options.socket_path = cli.get_string("socket");
  if (options.socket_path.empty()) {
    std::cerr << "error: --socket PATH is required\n";
    return 1;
  }
  options.threads = cli.get_count("threads", 0);
  options.max_queue_depth = cli.get_count("max-queue-depth", 1);
  options.max_inflight_bytes = cli.get_count("max-inflight-bytes", 1);
  options.default_deadline_ms =
      static_cast<double>(cli.get_count("default-deadline-ms", 0));
  const std::string overload = cli.get_string("overload");
  if (overload == "shed-oldest") {
    options.overload = OverloadPolicy::kShedOldest;
  } else if (overload == "reject-newest") {
    options.overload = OverloadPolicy::kRejectNewest;
  } else {
    std::cerr << "unknown --overload value: " << overload << '\n';
    return 1;
  }

  options.enable_cache = !cli.get_bool("no-cache");
  options.cache.store_dir = cli.get_string("cache-dir");
  options.cache.max_entries = cli.get_count("cache-entries", 1);
  options.cache.store_max_entries = cli.get_count("cache-store-entries", 1);

  options.workload.base_seed =
      static_cast<std::uint64_t>(cli.get_count("seed", 0));
  options.workload.cpg.process_count = cli.get_count("nodes", 1);
  options.workload.cpg.path_count = cli.get_count("paths", 1);
  const std::string ready = cli.get_string("ready");
  if (ready == "linear") {
    options.workload.synthesis.merge.ready = ReadySelection::kLinearScan;
  } else if (ready == "heap") {
    options.workload.synthesis.merge.ready = ReadySelection::kHeap;
  } else {
    std::cerr << "unknown --ready value: " << ready << '\n';
    return 1;
  }
  // Requests are the unit of parallelism (same reasoning as the batch
  // driver's throughput sweep): serial merges keep the pool for requests.
  options.workload.synthesis.merge.execution = MergeExecution::kSerial;

  // SIGTERM/SIGINT become a readable fd the event loop polls; the drain
  // path is the same one a "shutdown" request takes.
  SignalDrain drain{SIGTERM, SIGINT};
  options.signal_fd = drain.fd();

  Server server(std::move(options));
  std::cerr << "condsched_served: listening on " << server.socket_path()
            << " (dispatch width " << server.dispatch_width() << ")\n";
  server.run();

  const ServerCounters c = server.stats();
  std::cerr << "condsched_served: drained; admitted=" << c.admitted
            << " ok=" << c.completed_ok << " failed=" << c.completed_failed
            << " shed=" << c.shed_overload
            << " expired_queued=" << c.expired_queued
            << " rejected_draining=" << c.rejected_draining
            << " orphaned=" << c.orphaned_responses << '\n';
  return 0;
} catch (const cps::ParseError& e) {
  std::cerr << e.what() << '\n';
  return 1;
} catch (const std::exception& e) {
  std::cerr << "condsched_served: fatal: " << e.what() << '\n';
  return 1;
}
