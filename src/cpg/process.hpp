// Process and edge records of a conditional process graph (paper §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "arch/architecture.hpp"
#include "cond/condition.hpp"
#include "cond/dnf.hpp"
#include "graph/digraph.hpp"

namespace cps {

/// Index of a process within a Cpg (same id space as the underlying
/// Digraph node ids).
using ProcessId = NodeId;

enum class ProcessKind : std::uint8_t {
  kSource,    ///< dummy first process (zero execution time)
  kSink,      ///< dummy last process (zero execution time)
  kOrdinary,  ///< designer-specified process
};

struct Process {
  ProcessId id = 0;
  std::string name;
  ProcessKind kind = ProcessKind::kOrdinary;
  /// Processing element executing this process (function M, paper §2).
  PeId mapping = 0;
  /// Execution time on the mapped PE.
  Time exec_time = 0;
  /// Condition computed by this process, if it is a disjunction process.
  std::optional<CondId> computes;
  /// Conjunction processes are activated as soon as the inputs of one
  /// active alternative have arrived (paper §2); marked by the designer.
  bool conjunction = false;
  /// Guard X_Pi: the necessary condition for activation. Computed by the
  /// builder from the edge structure.
  Dnf guard = Dnf::true_();

  bool is_disjunction() const { return computes.has_value(); }
  bool is_dummy() const { return kind != ProcessKind::kOrdinary; }
};

struct CpgEdge {
  EdgeId id = 0;
  ProcessId src = 0;
  ProcessId dst = 0;
  /// Set for conditional edges (thick edges of Fig. 1).
  std::optional<Literal> literal;
  /// Communication time when src and dst are mapped to different PEs
  /// (ignored for intra-PE edges, which cost nothing).
  Time comm_time = 0;
  /// Bus carrying the communication when it is inter-PE. Filled by the
  /// builder (explicitly or by the default round-robin policy).
  std::optional<PeId> bus;

  bool is_conditional() const { return literal.has_value(); }
};

}  // namespace cps
