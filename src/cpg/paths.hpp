// Alternative-path enumeration (paper §4).
//
// At every execution, the conditions select one subgraph G_k of the CPG.
// An AltPath records the label L_k (the cube of condition values actually
// encountered) and the set of processes active on the path. The number of
// AltPaths is N_alt.
#pragma once

#include <vector>

#include "cond/assignment.hpp"
#include "cpg/cpg.hpp"

namespace cps {

struct AltPath {
  /// Conjunction of the values of every condition whose disjunction
  /// process executes on this path (the label L_k).
  Cube label;
  /// Per-process activation flags (indexed by ProcessId).
  std::vector<bool> active;

  /// Any complete assignment consistent with the label (don't-care
  /// conditions are set to false).
  Assignment representative(std::size_t universe_size) const {
    return Assignment::from_cube(label, universe_size);
  }
};

/// Enumerate every alternative path through the graph, in a deterministic
/// order (depth-first over conditions in termination order, true branch
/// first). The union of the labels covers every assignment; labels are
/// pairwise incompatible.
std::vector<AltPath> enumerate_paths(const Cpg& g);

/// The alternative path selected by a complete assignment.
AltPath path_for_assignment(const Cpg& g, const Assignment& a);

}  // namespace cps
