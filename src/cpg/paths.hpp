// Alternative-path enumeration (paper §4).
//
// At every execution, the conditions select one subgraph G_k of the CPG.
// An AltPath records the label L_k (the cube of condition values actually
// encountered) and the set of processes active on the path. The number of
// AltPaths is N_alt.
//
// N_alt grows exponentially with the number of independent conditions, so
// the core enumerator is *streaming*: PathEnumerator walks the condition
// decision tree with an explicit stack (O(depth) live state) and produces
// one leaf per next() call. Nothing is materialized up front — a caller
// can count paths, take the first k, or abort at a budget without ever
// holding 2^n labels in memory. enumerate_paths() remains as the
// drain-everything convenience used when the full set is needed anyway
// (per-path scheduling + merging).
#pragma once

#include <optional>
#include <vector>

#include "cond/assignment.hpp"
#include "cpg/cpg.hpp"

namespace cps {

struct AltPath {
  /// Conjunction of the values of every condition whose disjunction
  /// process executes on this path (the label L_k).
  Cube label;
  /// Per-process activation flags (indexed by ProcessId).
  std::vector<bool> active;

  /// Any complete assignment consistent with the label (don't-care
  /// conditions are set to false).
  Assignment representative(std::size_t universe_size) const {
    return Assignment::from_cube(label, universe_size);
  }
};

/// Streaming depth-first walk of the condition decision tree. Emission
/// order is deterministic and identical to the historical recursive
/// enumeration: conditions expand smallest-id first, true branch before
/// false branch. The union of the emitted labels covers every assignment;
/// labels are pairwise incompatible. The Cpg must outlive the enumerator.
class PathEnumerator {
 public:
  explicit PathEnumerator(const Cpg& g);

  /// Walk only the subtree below `context` (guard literals already decided
  /// on the trie path from the root). Emits exactly the leaves whose label
  /// extends the context, in the same relative order as the full walk —
  /// the primitive behind PathTree's independent-subtree dispatch.
  PathEnumerator(const Cpg& g, Cube context);

  /// Next alternative path, or nullopt when the walk is exhausted. Each
  /// call does O(processes * conditions) work for the leaf it produces.
  std::optional<AltPath> next();

  /// Paths emitted so far.
  std::size_t produced() const { return produced_; }

 private:
  const Cpg* g_;
  /// Pending decision-tree contexts; the back is expanded next. Holds at
  /// most one untaken sibling per tree level, so the stack stays
  /// O(#conditions) even when the leaf count is exponential.
  std::vector<Cube> stack_;
  std::size_t produced_ = 0;
};

/// Packed per-path label masks, one (pos, neg) word pair per AltPath.
/// The merge's reachability and conflict-set walks test thousands of
/// label/context pairs; with the masks in two contiguous arrays each test
/// is two AND/CMP pairs over hot cache lines. `narrow` is false when some
/// label mentions a condition id >= Cube::kPackedBits — consumers must
/// then fall back to the exact Cube operations.
struct PathLabelMasks {
  std::vector<std::uint64_t> pos;
  std::vector<std::uint64_t> neg;
  bool narrow = true;

  std::size_t size() const { return pos.size(); }

  /// Mask test for `labels[i].compatible(context)` (valid when narrow and
  /// the context itself is narrow).
  bool compatible(std::size_t i, std::uint64_t ctx_pos,
                  std::uint64_t ctx_neg) const {
    return (pos[i] & ctx_neg) == 0 && (neg[i] & ctx_pos) == 0;
  }
};

/// Collect the packed label masks of a path set.
PathLabelMasks collect_label_masks(const std::vector<AltPath>& paths);

/// Streaming view of the *guard trie*: the condition decision tree whose
/// edges are guard literals (smallest-undecided-condition first, true
/// edge before false edge) and whose leaves are the AltPaths. Alternative
/// paths are identical up to the first condition where their guard
/// assignments diverge, so the trie represents every shared prefix once —
/// the structure behind the driver's checkpointed prefix-reuse scheduling
/// (PathScheduling::kTree) and its parallel subtree dispatch. Nothing is
/// materialized: a node is just its context cube, and subtree leaves
/// stream through PathEnumerator. The Cpg must outlive the tree.
class PathTree {
 public:
  explicit PathTree(const Cpg& g) : g_(&g) {}

  /// One frontier node of a partially expanded trie: the guard literals
  /// on the root→node path as a context cube. `leaf` is true when no
  /// active disjunction's condition is undecided under the context — the
  /// node already is a complete alternative path.
  struct Node {
    Cube context;
    bool leaf = false;
  };

  /// Condition the trie branches on at `context` (the smallest undecided
  /// condition whose disjunction process is active), or nullopt when the
  /// context is a leaf. Matches PathEnumerator's expansion choice exactly.
  std::optional<CondId> branch_condition(const Cube& context) const;

  /// Expand the trie breadth-first — level order, true child before false
  /// child — until at least `min_nodes` frontier nodes exist or every
  /// node is a leaf. The returned nodes are in depth-first order, their
  /// contexts are pairwise incompatible, and concatenating `leaves(node)`
  /// over them reproduces enumerate_paths() leaf-for-leaf: the frontier
  /// partitions the trie into independently walkable subtrees.
  std::vector<Node> frontier(std::size_t min_nodes) const;

  /// Streaming enumerator of the leaves below `context`.
  PathEnumerator leaves(const Cube& context) const {
    return PathEnumerator(*g_, context);
  }
  PathEnumerator leaves() const { return PathEnumerator(*g_); }

  const Cpg& cpg() const { return *g_; }

 private:
  const Cpg* g_;
};

/// Enumerate every alternative path of the graph by draining a
/// PathEnumerator into a vector (see the class for the order guarantee).
std::vector<AltPath> enumerate_paths(const Cpg& g);

/// Count the alternative paths without materializing them. When `limit`
/// is non-zero the count stops early and returns nullopt as soon as it
/// would exceed the limit — the cheap way to ask "is this graph's path
/// set small enough to co-synthesize?" before committing to it.
std::optional<std::size_t> count_paths(const Cpg& g, std::size_t limit = 0);

/// The alternative path selected by a complete assignment.
AltPath path_for_assignment(const Cpg& g, const Assignment& a);

}  // namespace cps
