// Guard propagation (internal; used by CpgBuilder::build).
#pragma once

#include <vector>

#include "cpg/process.hpp"

namespace cps::detail {

/// Compute Process::guard for every process from the edge structure:
/// guard(source) = true; an ordinary node needs all of its inputs, so its
/// guard is the AND over the contributions guard(src) & literal of its
/// in-edges; a conjunction node (or the sink) needs one alternative, so
/// its guard is the OR over the contributions. Requires an acyclic graph
/// in which every non-source node has at least one in-edge.
void compute_guards(const Digraph& graph, const std::vector<CpgEdge>& edges,
                    std::vector<Process>& processes, ProcessId source);

}  // namespace cps::detail
