#include "cpg/builder.hpp"

#include <limits>

#include "cpg/guards.hpp"
#include "graph/dag_algo.hpp"
#include "support/error.hpp"

namespace cps {

CpgBuilder::CpgBuilder(Architecture arch) {
  g_.arch_ = std::move(arch);
  g_.arch_.validate(/*require_broadcast_bus=*/false);
}

CondId CpgBuilder::add_condition(const std::string& name) {
  CPS_REQUIRE(!built_, "builder already consumed");
  return g_.conds_.add(name);
}

ProcessId CpgBuilder::add_process(const std::string& name, PeId mapping,
                                  Time exec_time) {
  CPS_REQUIRE(!built_, "builder already consumed");
  CPS_REQUIRE(!name.empty(), "process name must not be empty");
  CPS_REQUIRE(exec_time >= 0, "execution time must be non-negative");
  const ProcessingElement& pe = g_.arch_.pe(mapping);
  // Processes execute on processors, hardware or (for explicit
  // memory-access processes, ATM experiment) memory modules — not buses.
  CPS_REQUIRE(!pe.is_bus(),
              "process " + name + " mapped to bus " + pe.name);
  for (const auto& p : g_.processes_) {
    CPS_REQUIRE(p.name != name, "duplicate process name: " + name);
  }
  Process proc;
  proc.id = static_cast<ProcessId>(g_.processes_.size());
  proc.name = name;
  proc.mapping = mapping;
  proc.exec_time = exec_time;
  g_.processes_.push_back(std::move(proc));
  const NodeId node = g_.graph_.add_node();
  CPS_ASSERT(node == g_.processes_.back().id, "graph/process id drift");
  return g_.processes_.back().id;
}

void CpgBuilder::set_computes(ProcessId p, CondId cond) {
  CPS_REQUIRE(!built_, "builder already consumed");
  CPS_REQUIRE(p < g_.processes_.size(), "process id out of range");
  CPS_REQUIRE(cond < g_.conds_.size(), "condition id out of range");
  Process& proc = g_.processes_[p];
  CPS_REQUIRE(!proc.computes || *proc.computes == cond,
              "process " + proc.name + " already computes another condition");
  proc.computes = cond;
}

void CpgBuilder::mark_conjunction(ProcessId p) {
  CPS_REQUIRE(!built_, "builder already consumed");
  CPS_REQUIRE(p < g_.processes_.size(), "process id out of range");
  g_.processes_[p].conjunction = true;
}

EdgeId CpgBuilder::add_edge(ProcessId src, ProcessId dst, Time comm_time) {
  CPS_REQUIRE(!built_, "builder already consumed");
  CPS_REQUIRE(src < g_.processes_.size() && dst < g_.processes_.size(),
              "edge endpoint out of range");
  CPS_REQUIRE(comm_time >= 0, "communication time must be non-negative");
  CpgEdge edge;
  edge.id = static_cast<EdgeId>(g_.edges_.size());
  edge.src = src;
  edge.dst = dst;
  edge.comm_time = comm_time;
  g_.edges_.push_back(edge);
  const EdgeId graph_edge = g_.graph_.add_edge(src, dst);
  CPS_ASSERT(graph_edge == edge.id, "graph/edge id drift");
  return edge.id;
}

EdgeId CpgBuilder::add_cond_edge(ProcessId src, ProcessId dst,
                                 Literal literal, Time comm_time) {
  CPS_REQUIRE(literal.cond < g_.conds_.size(),
              "conditional edge uses unregistered condition");
  const EdgeId e = add_edge(src, dst, comm_time);
  g_.edges_[e].literal = literal;
  set_computes(src, literal.cond);
  return e;
}

void CpgBuilder::set_bus(EdgeId e, PeId bus) {
  CPS_REQUIRE(!built_, "builder already consumed");
  CPS_REQUIRE(e < g_.edges_.size(), "edge id out of range");
  CPS_REQUIRE(g_.arch_.pe(bus).is_bus(), "set_bus target is not a bus");
  g_.edges_[e].bus = bus;
}

Cpg CpgBuilder::build() {
  CPS_REQUIRE(!built_, "builder already consumed");
  built_ = true;
  validate_and_finalize(g_);
  return std::move(g_);
}

void CpgBuilder::validate_and_finalize(Cpg& g) {
  if (g.processes_.empty()) {
    throw ValidationError("conditional process graph has no processes");
  }

  // --- Attach the dummy source and sink (paper: the graph is polar). ---
  PeId dummy_pe = 0;
  for (PeId id = 0; id < g.arch_.pe_count(); ++id) {
    if (g.arch_.pe(id).is_computation()) {
      dummy_pe = id;
      break;
    }
  }
  const std::size_t ordinary_count = g.processes_.size();
  auto add_dummy = [&g, dummy_pe](const std::string& name,
                                  ProcessKind kind) {
    Process proc;
    proc.id = static_cast<ProcessId>(g.processes_.size());
    proc.name = name;
    proc.kind = kind;
    proc.mapping = dummy_pe;
    proc.exec_time = 0;
    g.processes_.push_back(std::move(proc));
    const NodeId node = g.graph_.add_node();
    CPS_ASSERT(node == g.processes_.back().id, "graph/process id drift");
    return g.processes_.back().id;
  };
  g.source_ = add_dummy("_source", ProcessKind::kSource);
  g.sink_ = add_dummy("_sink", ProcessKind::kSink);
  g.processes_[g.sink_].conjunction = true;  // activated by any alternative

  auto attach = [&g](ProcessId src, ProcessId dst) {
    CpgEdge edge;
    edge.id = static_cast<EdgeId>(g.edges_.size());
    edge.src = src;
    edge.dst = dst;
    edge.comm_time = 0;  // dummy edges carry no data
    g.edges_.push_back(edge);
    const EdgeId graph_edge = g.graph_.add_edge(src, dst);
    CPS_ASSERT(graph_edge == edge.id, "graph/edge id drift");
  };
  for (ProcessId p = 0; p < ordinary_count; ++p) {
    if (g.graph_.in_degree(p) == 0) attach(g.source_, p);
    if (g.graph_.out_degree(p) == 0) attach(p, g.sink_);
  }

  // --- Structural checks. ---
  if (!is_acyclic(g.graph_)) {
    throw ValidationError("conditional process graph contains a cycle");
  }
  CPS_ASSERT(is_polar(g.graph_, g.source_, g.sink_),
             "graph not polar after dummy attachment");

  // --- Disjunction processes. ---
  for (ProcessId p = 0; p < g.processes_.size(); ++p) {
    const Process& proc = g.processes_[p];
    for (EdgeId e : g.graph_.out_edges(p)) {
      const CpgEdge& edge = g.edges_[e];
      if (!edge.literal) continue;
      if (!proc.computes || *proc.computes != edge.literal->cond) {
        throw ValidationError(
            "process " + proc.name +
            " has conditional out-edges over more than one condition");
      }
    }
  }
  g.disjunction_of_.assign(g.conds_.size(),
                           std::numeric_limits<ProcessId>::max());
  for (const Process& proc : g.processes_) {
    if (!proc.computes) continue;
    if (g.disjunction_of_[*proc.computes] !=
        std::numeric_limits<ProcessId>::max()) {
      throw ValidationError("condition " + g.conds_.name(*proc.computes) +
                            " is computed by more than one process");
    }
    g.disjunction_of_[*proc.computes] = proc.id;
  }
  for (CondId c = 0; c < g.conds_.size(); ++c) {
    if (g.disjunction_of_[c] == std::numeric_limits<ProcessId>::max()) {
      throw ValidationError("condition " + g.conds_.name(c) +
                            " is not computed by any process");
    }
  }

  // --- Bus assignment for inter-PE communications. ---
  const std::vector<PeId> buses = g.arch_.buses();
  std::size_t next_bus = 0;
  for (CpgEdge& edge : g.edges_) {
    const bool inter_pe =
        g.processes_[edge.src].mapping != g.processes_[edge.dst].mapping;
    if (!inter_pe || edge.comm_time == 0) {
      edge.bus.reset();
      continue;
    }
    if (edge.bus) continue;  // pinned by the caller
    if (buses.empty()) {
      throw ValidationError(
          "model has inter-PE communication but the architecture has no "
          "bus");
    }
    edge.bus = buses[next_bus % buses.size()];
    ++next_bus;
  }

  // --- Guards. ---
  detail::compute_guards(g.graph_, g.edges_, g.processes_, g.source_);
  // The sink marks system completion and fires on every path, even when a
  // path "dies" at a disjunction branch with no successors (its execution
  // semantics — wait for every active task — are added by
  // FlatGraph::expand).
  g.processes_[g.sink_].guard = Dnf::true_();
  for (const Process& proc : g.processes_) {
    if (proc.guard.is_false()) {
      throw ValidationError(
          "process " + proc.name +
          " can never be activated (contradictory input conditions); the "
          "X_Pj => X_Pi edge rule of paper section 2 is violated");
    }
    // Conditions used by a guard must be computed by a disjunction process
    // that is guaranteed to have run: every cube of the guard must imply
    // the guard of the disjunction process of every condition it mentions.
    for (const Cube& cube : proc.guard.cubes()) {
      for (const Literal& lit : cube.literals()) {
        const Process& disj = g.processes_[g.disjunction_of_[lit.cond]];
        if (!disj.guard.covered_by_context(cube)) {
          throw ValidationError(
              "process " + proc.name + " depends on condition " +
              g.conds_.name(lit.cond) +
              " in a context where the disjunction process " + disj.name +
              " is not guaranteed to run");
        }
      }
    }
  }

  // A disjunction process must precede every consumer of its condition;
  // acyclicity plus the edge-literal construction guarantees it for edges,
  // but a hand-written guard dependency could still order them badly, so
  // verify: the disjunction of every condition mentioned in a guard must
  // reach the guarded process.
  for (const Process& proc : g.processes_) {
    for (CondId c : proc.guard.mentioned_conditions()) {
      const auto reach = reachable_from(g.graph_, g.disjunction_of_[c]);
      if (!reach[proc.id]) {
        throw ValidationError("process " + proc.name +
                              " is guarded by condition " + g.conds_.name(c) +
                              " but does not follow its disjunction process");
      }
    }
  }
}

}  // namespace cps
