#include "cpg/flat_graph.hpp"

#include <algorithm>
#include <atomic>

#include "cpg/canonical.hpp"
#include "support/error.hpp"

namespace cps {

FlatGraph FlatGraph::expand(const Cpg& g) {
  static std::atomic<std::uint64_t> next_uid{1};
  FlatGraph fg;
  fg.cpg_ = &g;
  fg.uid_ = next_uid.fetch_add(1);

  // One task per process, same id order.
  fg.task_of_process_.resize(g.process_count());
  for (ProcessId p = 0; p < g.process_count(); ++p) {
    const Process& proc = g.process(p);
    Task t;
    t.id = static_cast<TaskId>(fg.tasks_.size());
    t.kind = TaskKind::kProcess;
    t.name = proc.name;
    t.resource = proc.mapping;
    t.duration = proc.exec_time;
    t.guard = proc.guard;
    t.computes = proc.computes;
    t.origin_process = p;
    fg.task_of_process_[p] = t.id;
    fg.tasks_.push_back(std::move(t));
    const NodeId node = fg.deps_.add_node();
    CPS_ASSERT(node == fg.task_of_process_[p], "task id drift");
  }

  // Communication tasks for inter-PE edges with a positive communication
  // time; plain dependency edges otherwise.
  for (const CpgEdge& edge : g.edges()) {
    const TaskId src_task = fg.task_of_process_[edge.src];
    const TaskId dst_task = fg.task_of_process_[edge.dst];
    const bool inter_pe =
        g.process(edge.src).mapping != g.process(edge.dst).mapping;
    if (!inter_pe || edge.comm_time == 0) {
      fg.deps_.add_edge(src_task, dst_task);
      continue;
    }
    CPS_ASSERT(edge.bus.has_value(), "inter-PE edge without bus assignment");
    Task t;
    t.id = static_cast<TaskId>(fg.tasks_.size());
    t.kind = TaskKind::kComm;
    t.name = g.process(edge.src).name + "->" + g.process(edge.dst).name;
    t.resource = *edge.bus;
    t.duration = edge.comm_time;
    t.guard = g.process(edge.src).guard;
    if (edge.literal) t.guard = t.guard.and_literal(*edge.literal);
    t.origin_edge = edge.id;
    fg.tasks_.push_back(std::move(t));
    const NodeId node = fg.deps_.add_node();
    const TaskId comm_task = fg.tasks_.back().id;
    CPS_ASSERT(node == comm_task, "task id drift");
    fg.deps_.add_edge(src_task, comm_task);
    fg.deps_.add_edge(comm_task, dst_task);
  }

  // The sink's activation is the system delay: it must wait for *every*
  // task that executes on the current path, including communications whose
  // consumer is inactive (dangling transmissions still occupy the bus)
  // and paths that end early at a disjunction branch without successors.
  const TaskId sink_task = fg.task_of_process_[g.sink()];
  for (TaskId t = 0; t < fg.tasks_.size(); ++t) {
    if (t == sink_task) continue;
    if (!fg.deps_.has_edge(t, sink_task)) {
      fg.deps_.add_edge(t, sink_task);
    }
  }

  // Which resources actually host tasks?
  for (const Task& t : fg.tasks_) fg.used_resources_.push_back(t.resource);
  std::sort(fg.used_resources_.begin(), fg.used_resources_.end());
  fg.used_resources_.erase(
      std::unique(fg.used_resources_.begin(), fg.used_resources_.end()),
      fg.used_resources_.end());

  // Broadcast tasks: needed as soon as condition values must be visible on
  // more than one resource.
  const bool multi_resource =
      g.conditions().size() > 0 &&
      (fg.used_resources_.size() > 1 || !g.arch().buses().empty());
  if (multi_resource) {
    fg.bcast_buses_ = g.arch().broadcast_buses();
    if (fg.bcast_buses_.empty()) {
      throw ValidationError(
          "conditional model with several resources but no bus connecting "
          "all processors: condition broadcasts are impossible (paper "
          "section 3)");
    }
    // τ0 must not exceed any communication time (paper §3: "the time τ0 is
    // smaller than (at most equal to) any other communication time").
    for (const Task& t : fg.tasks_) {
      if (t.is_comm() && t.duration < g.arch().cond_broadcast_time()) {
        throw ValidationError(
            "communication " + t.name +
            " is faster than the condition broadcast time tau0, which "
            "contradicts the broadcast model of paper section 3");
      }
    }
    fg.bcast_tasks_.resize(g.conditions().size());
    for (CondId c = 0; c < g.conditions().size(); ++c) {
      const ProcessId disj = g.disjunction_of(c);
      Task t;
      t.id = static_cast<TaskId>(fg.tasks_.size());
      t.kind = TaskKind::kBroadcast;
      t.name = g.conditions().name(c);
      t.resource = fg.bcast_buses_.front();
      t.duration = g.arch().cond_broadcast_time();
      t.guard = g.process(disj).guard;
      t.broadcasts = c;
      fg.bcast_tasks_[c] = t.id;
      fg.tasks_.push_back(std::move(t));
      const NodeId node = fg.deps_.add_node();
      CPS_ASSERT(node == fg.bcast_tasks_[c], "task id drift");
      fg.deps_.add_edge(fg.task_of_process_[disj], fg.bcast_tasks_[c]);
    }
  }

  fg.compute_guard_info();

  // Content identity, computed eagerly: expansion already walks the whole
  // model, and every consumer that outlives a single run (EngineHistory,
  // the schedule cache) needs it.
  fg.digest_ = digest_of(canonical_encoding(g));

  return fg;
}

void FlatGraph::compute_guard_info() {
  masks_enabled_ = cpg_->conditions().size() <= 64;
  guard_info_.resize(tasks_.size());
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const Task& task = tasks_[t];
    TaskGuardInfo& info = guard_info_[t];
    info.trivially_true = task.guard.is_true();
    info.conjunction = task.origin_process.has_value() &&
                       cpg_->process(*task.origin_process).conjunction;
    if (masks_enabled_) {
      for (const Cube& cube : task.guard.cubes()) {
        const GuardCubeMask mask = GuardCubeMask::of_cube(cube);
        info.mention |= mask.mention();
        info.cubes.push_back(mask);
      }
    }
    if (info.conjunction) {
      for (EdgeId e : deps_.in_edges(t)) {
        const TaskId pred = deps_.edge(e).src;
        if (!tasks_[pred].guard.is_true()) info.guarded_preds.push_back(pred);
      }
    }
  }
}

const Task& FlatGraph::task(TaskId t) const {
  CPS_REQUIRE(t < tasks_.size(), "task id out of range");
  return tasks_[t];
}

TaskId FlatGraph::task_of_process(ProcessId p) const {
  CPS_REQUIRE(p < task_of_process_.size(), "process id out of range");
  return task_of_process_[p];
}

std::optional<TaskId> FlatGraph::broadcast_task(CondId c) const {
  CPS_REQUIRE(c < cpg_->conditions().size(), "condition id out of range");
  if (bcast_tasks_.empty()) return std::nullopt;
  return bcast_tasks_[c];
}

TaskId FlatGraph::disjunction_task(CondId c) const {
  return task_of_process(cpg_->disjunction_of(c));
}

const TaskGuardInfo& FlatGraph::guard_info(TaskId t) const {
  CPS_REQUIRE(t < guard_info_.size(), "task id out of range");
  return guard_info_[t];
}

std::vector<bool> FlatGraph::active_tasks(const Cube& label,
                                          CoverCache* cache) const {
  const GuardCubeMask ctx =
      masks_enabled_ ? GuardCubeMask::of_cube(label) : GuardCubeMask{};
  std::vector<bool> active(tasks_.size(), false);
  for (const Task& t : tasks_) {
    const TaskGuardInfo& info = guard_info_[t.id];
    if (info.trivially_true) {
      active[t.id] = true;
      continue;
    }
    // Fast path: a cube all of whose literals the label satisfies makes
    // the guard covered; for single-cube guards this is exact.
    if (masks_enabled_) {
      bool covered = false;
      for (const GuardCubeMask& cube : info.cubes) {
        if (cube.covered_by(ctx.pos, ctx.neg)) {
          covered = true;
          break;
        }
      }
      if (covered || info.cubes.size() <= 1) {
        active[t.id] = covered;
        continue;
      }
    }
    active[t.id] = cache ? cache->covered(t.guard, label)
                         : t.guard.covered_by_context(label);
  }
  return active;
}

}  // namespace cps
