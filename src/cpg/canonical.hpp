// Canonical CPG encoding + content digest.
//
// A cross-process, cross-restart cache needs a graph identity that is a
// pure function of the model — not of heap addresses, construction order
// or the process-local FlatGraph::uid() counter. `canonical_encoding`
// serializes everything that determines a co-synthesis result for a given
// Cpg: the architecture (PE kinds, broadcast topology, τ0), the condition
// count, every process (mapping, exec time, guard DNF, conjunction flag,
// computed condition) and every edge (endpoints, comm time, bus, literal),
// plus the source/sink poles and the condition→disjunction map. All
// integers are written little-endian at fixed width, names are excluded
// (they never affect schedules), and iteration follows id order — so the
// bytes are identical across processes, platforms and compilers.
//
// `Digest128` condenses the encoding to a 128-bit content hash used for
// store filenames and fast map lookups. The digest is NOT trusted on its
// own: cache entries retain the full encoding and every hit re-verifies it
// byte-for-byte, so a hash collision is impossible to act on (it merely
// degrades to a miss).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cps {

class Cpg;

/// 128-bit content digest (two independently seeded FNV-1a-64 lanes).
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters, hi lane first. Stable across platforms;
  /// used as the on-disk store key.
  std::string hex() const;

  friend bool operator==(const Digest128& a, const Digest128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Digest128& a, const Digest128& b) {
    return !(a == b);
  }
  friend bool operator<(const Digest128& a, const Digest128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Append the canonical byte encoding of `g` (architecture + processes +
/// edges + condition structure) to `out`.
void canonical_encode(const Cpg& g, std::string& out);

/// Convenience: the canonical encoding as a fresh string.
std::string canonical_encoding(const Cpg& g);

/// Content digest of arbitrary bytes (the canonical encoding, or a cache
/// key encoding that embeds it).
Digest128 digest_of(std::string_view bytes);

}  // namespace cps
