#include "cpg/guards.hpp"

#include "graph/dag_algo.hpp"
#include "support/error.hpp"

namespace cps::detail {

void compute_guards(const Digraph& graph, const std::vector<CpgEdge>& edges,
                    std::vector<Process>& processes, ProcessId source) {
  auto order = topological_order(graph);
  CPS_ASSERT(order.has_value(), "guard computation requires a DAG");
  for (NodeId v : *order) {
    Process& proc = processes[v];
    if (v == source) {
      proc.guard = Dnf::true_();
      continue;
    }
    CPS_ASSERT(graph.in_degree(v) > 0,
               "non-source process without inputs during guard computation");
    bool first = true;
    Dnf guard = proc.conjunction ? Dnf::false_() : Dnf::true_();
    for (EdgeId e : graph.in_edges(v)) {
      const CpgEdge& edge = edges[e];
      Dnf contribution = processes[edge.src].guard;
      if (edge.literal) {
        contribution = contribution.and_literal(*edge.literal);
      }
      if (proc.conjunction) {
        guard = guard.or_dnf(contribution);
      } else {
        guard = first ? contribution : guard.and_dnf(contribution);
      }
      first = false;
    }
    proc.guard = guard;
  }
}

}  // namespace cps::detail
