#include "cpg/canonical.hpp"

#include "cpg/cpg.hpp"

namespace cps {
namespace {

// Little-endian fixed-width writers: explicit shifts, never memcpy of
// host-order integers, so the bytes match on any platform.
void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// Optional ids encode as value+1 with 0 meaning "absent" — unambiguous
// because the widened width can always hold max_id + 1.
void put_opt_u32(std::string& out, const std::optional<CondId>& v) {
  put_u32(out, v ? static_cast<std::uint32_t>(*v) + 1 : 0);
}

void put_dnf(std::string& out, const Dnf& d) {
  // Dnf keeps its cubes sorted and normalized and Cube::for_each visits
  // literals in condition order, so the traversal is already canonical.
  put_u32(out, static_cast<std::uint32_t>(d.cubes().size()));
  for (const Cube& cube : d.cubes()) {
    put_u32(out, static_cast<std::uint32_t>(cube.size()));
    cube.for_each([&](Literal lit) {
      put_u16(out, lit.cond);
      put_u8(out, lit.value ? 1 : 0);
    });
  }
}

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x00000100000001b3ull;
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::string Digest128::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 8 * (7 - (i % 8));
    const auto byte = static_cast<unsigned>((word >> shift) & 0xff);
    s[2 * i] = kDigits[byte >> 4];
    s[2 * i + 1] = kDigits[byte & 0xf];
  }
  return s;
}

void canonical_encode(const Cpg& g, std::string& out) {
  out.append("CPSCANON");
  put_u32(out, 1);  // encoding version

  // Architecture: everything that shapes the flat expansion or the
  // schedule. PE speed is deliberately absent — execution times arrive
  // pre-divided in Process::exec_time. Names never affect results.
  const Architecture& arch = g.arch();
  put_u32(out, static_cast<std::uint32_t>(arch.pe_count()));
  for (PeId pe = 0; pe < arch.pe_count(); ++pe) {
    const ProcessingElement& e = arch.pe(pe);
    put_u8(out, static_cast<std::uint8_t>(e.kind));
    put_u8(out, e.connects_all ? 1 : 0);
  }
  put_i64(out, arch.cond_broadcast_time());

  put_u32(out, static_cast<std::uint32_t>(g.conditions().size()));

  put_u32(out, static_cast<std::uint32_t>(g.process_count()));
  for (const Process& p : g.processes()) {
    put_u8(out, static_cast<std::uint8_t>(p.kind));
    put_u16(out, p.mapping);
    put_i64(out, p.exec_time);
    put_opt_u32(out, p.computes);
    put_u8(out, p.conjunction ? 1 : 0);
    put_dnf(out, p.guard);
  }

  put_u32(out, static_cast<std::uint32_t>(g.edge_count()));
  for (const CpgEdge& e : g.edges()) {
    put_u32(out, e.src);
    put_u32(out, e.dst);
    put_i64(out, e.comm_time);
    put_u32(out, e.bus ? static_cast<std::uint32_t>(*e.bus) + 1 : 0);
    if (e.literal) {
      put_u8(out, 1);
      put_u16(out, e.literal->cond);
      put_u8(out, e.literal->value ? 1 : 0);
    } else {
      put_u8(out, 0);
    }
  }

  put_u32(out, g.source());
  put_u32(out, g.sink());
  for (CondId c = 0; c < g.conditions().size(); ++c) {
    put_u32(out, g.disjunction_of(c));
  }
}

std::string canonical_encoding(const Cpg& g) {
  std::string out;
  canonical_encode(g, out);
  return out;
}

Digest128 digest_of(std::string_view bytes) {
  // Two independently seeded FNV-1a-64 lanes. Collision resistance is a
  // performance concern only: every consumer re-verifies the full
  // encoding before trusting an entry.
  return Digest128{fnv1a(bytes, 0xcbf29ce484222325ull),
                   fnv1a(bytes, 0x9e3779b97f4a7c15ull)};
}

}  // namespace cps
