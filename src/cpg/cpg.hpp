// Cpg: a validated conditional process graph bound to an architecture.
//
// Construction goes through CpgBuilder (cpg/builder.hpp), which validates
// the model and computes guards; a Cpg is immutable afterwards. The graph
// is directed, acyclic and polar: `source()` precedes and `sink()` follows
// every other process (paper §2).
#pragma once

#include <vector>

#include "arch/architecture.hpp"
#include "cond/assignment.hpp"
#include "cond/condition_set.hpp"
#include "cpg/process.hpp"
#include "graph/digraph.hpp"

namespace cps {

class Cpg {
 public:
  const Architecture& arch() const { return arch_; }
  const ConditionSet& conditions() const { return conds_; }

  std::size_t process_count() const { return processes_.size(); }
  const Process& process(ProcessId p) const;
  const std::vector<Process>& processes() const { return processes_; }

  std::size_t edge_count() const { return edges_.size(); }
  const CpgEdge& edge(EdgeId e) const;
  const std::vector<CpgEdge>& edges() const { return edges_; }

  ProcessId source() const { return source_; }
  ProcessId sink() const { return sink_; }

  /// Underlying graph structure (node ids == process ids).
  const Digraph& graph() const { return graph_; }

  /// In-/out-edge ids of a process.
  const std::vector<EdgeId>& out_edges(ProcessId p) const {
    return graph_.out_edges(p);
  }
  const std::vector<EdgeId>& in_edges(ProcessId p) const {
    return graph_.in_edges(p);
  }

  /// The disjunction process computing `cond`.
  ProcessId disjunction_of(CondId cond) const;

  /// Number of "ordinary" (designer-specified, non-dummy) processes.
  std::size_t ordinary_process_count() const;

  /// True when the process is active (its guard holds) under a complete
  /// condition assignment.
  bool active_under(ProcessId p, const Assignment& a) const;

  /// Lookup process id by name; throws InvalidArgument if absent.
  ProcessId process_by_name(const std::string& name) const;

 private:
  friend class CpgBuilder;
  Cpg() = default;

  Architecture arch_;
  ConditionSet conds_;
  std::vector<Process> processes_;
  std::vector<CpgEdge> edges_;
  Digraph graph_;
  ProcessId source_ = 0;
  ProcessId sink_ = 0;
  std::vector<ProcessId> disjunction_of_;  // indexed by CondId
};

}  // namespace cps
