// FlatGraph: the scheduler's view of a CPG.
//
// Expanding a Cpg against its architecture yields one *task* per:
//  * process (ordinary + dummies), mapped to its processor;
//  * inter-PE communication (paper: "communication process", the black
//    dots of Fig. 1), mapped to the bus assigned to the edge, with
//    duration equal to the communication time;
//  * condition broadcast (paper §3): after a disjunction process ends, its
//    condition value is broadcast on the first available bus that connects
//    all processors, taking τ0 time units. Broadcast tasks exist when the
//    model has conditions and more than one resource hosts tasks.
//
// The dependency digraph runs over tasks: src-process -> comm -> dst-process
// for expanded edges, direct edges otherwise, and disjunction -> broadcast.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cond/cover_cache.hpp"
#include "cpg/canonical.hpp"
#include "cpg/cpg.hpp"
#include "cpg/paths.hpp"
#include "graph/digraph.hpp"
#include "support/error.hpp"

namespace cps {

using TaskId = std::uint32_t;

enum class TaskKind : std::uint8_t { kProcess, kComm, kBroadcast };

struct Task {
  TaskId id = 0;
  TaskKind kind = TaskKind::kProcess;
  std::string name;
  /// Resource executing the task. For broadcast tasks this is the
  /// *default* broadcast bus; when the architecture has several broadcast
  /// buses the scheduler may pick a different one per path.
  PeId resource = 0;
  Time duration = 0;
  /// Activation guard (process guard; for a communication, guard of the
  /// transmission = guard(src) & edge literal; for a broadcast, guard of
  /// the disjunction process).
  Dnf guard = Dnf::true_();
  /// Condition computed on completion (disjunction processes only).
  std::optional<CondId> computes;
  /// Condition broadcast by this task (broadcast tasks only).
  std::optional<CondId> broadcasts;
  /// Originating process (kProcess) or edge (kComm).
  std::optional<ProcessId> origin_process;
  std::optional<EdgeId> origin_edge;

  bool is_process() const { return kind == TaskKind::kProcess; }
  bool is_comm() const { return kind == TaskKind::kComm; }
  bool is_broadcast() const { return kind == TaskKind::kBroadcast; }
};

/// Bitmask view of one cube of a guard (valid when every condition id the
/// model uses is < Cube::kPackedBits = 64, which holds for all paper-scale
/// workloads). Cubes carry this representation inline, so the view is a
/// plain copy of their packed words.
struct GuardCubeMask {
  std::uint64_t pos = 0;  ///< conditions required true
  std::uint64_t neg = 0;  ///< conditions required false

  /// Bitmask encoding of a cube. The cube must be narrow (condition ids
  /// < 64); callers gate on FlatGraph::masks_enabled().
  static GuardCubeMask of_cube(const Cube& cube) {
    CPS_ASSERT(cube.narrow(),
               "guard masks require condition ids < 64 (Cube::kPackedBits); "
               "models beyond that take the masks_enabled()==false slow "
               "path");
    return GuardCubeMask{cube.pos_bits(), cube.neg_bits()};
  }

  std::uint64_t mention() const { return pos | neg; }

  /// Every literal of this cube holds under the known values: the cube is
  /// satisfied, so it covers the whole guard.
  bool covered_by(std::uint64_t known_pos, std::uint64_t known_neg) const {
    return (pos & ~known_pos) == 0 && (neg & ~known_neg) == 0;
  }

  /// Some literal of this cube contradicts a known value: conjoining the
  /// cube with the known context is unsatisfiable.
  bool conflicts(std::uint64_t known_pos, std::uint64_t known_neg) const {
    return (pos & known_neg) != 0 || (neg & known_pos) != 0;
  }
};

/// Precomputed per-task activation info: lets the scheduler decide guard
/// coverage with bit operations instead of re-running DNF Shannon
/// expansions at every scheduling step.
struct TaskGuardInfo {
  /// Guard is syntactically true (no knowledge needed unless conjunction).
  bool trivially_true = false;
  /// Originating process is a conjunction node (or the sink): starting it
  /// additionally requires the known conditions to *decide* the activity
  /// of every predecessor (paper §5.2, premise of Theorem 1).
  bool conjunction = false;
  /// Conditions mentioned by the guard (bitmask over CondId).
  std::uint64_t mention = 0;
  /// One mask per cube of the guard DNF.
  std::vector<GuardCubeMask> cubes;
  /// Predecessor tasks with non-trivial guards (conjunction check only).
  std::vector<TaskId> guarded_preds;
};

class FlatGraph {
 public:
  /// Expand a CPG. The Cpg must outlive the FlatGraph.
  static FlatGraph expand(const Cpg& g);

  const Cpg& cpg() const { return *cpg_; }
  const Architecture& arch() const { return cpg_->arch(); }

  std::size_t task_count() const { return tasks_.size(); }
  const Task& task(TaskId t) const;
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Dependency DAG over tasks.
  const Digraph& deps() const { return deps_; }

  TaskId task_of_process(ProcessId p) const;
  /// Broadcast task of a condition; nullopt when broadcasts are disabled
  /// (single-resource models).
  std::optional<TaskId> broadcast_task(CondId c) const;
  bool broadcasts_enabled() const { return !bcast_tasks_.empty(); }

  /// Task of the disjunction process computing `c`.
  TaskId disjunction_task(CondId c) const;

  TaskId source_task() const { return task_of_process(cpg_->source()); }
  TaskId sink_task() const { return task_of_process(cpg_->sink()); }

  /// Tasks active on the path identified by `label` (a complete path
  /// label; every task guard is decided under it). An optional CoverCache
  /// memoizes the multi-cube guard checks across repeated calls.
  std::vector<bool> active_tasks(const Cube& label,
                                 CoverCache* cache = nullptr) const;

  /// True when guard masks are available (condition count <= 64).
  bool masks_enabled() const { return masks_enabled_; }

  /// Precomputed activation info for `t` (valid ids only).
  const TaskGuardInfo& guard_info(TaskId t) const;

  /// Resources that host at least one task (sorted).
  const std::vector<PeId>& used_resources() const { return used_resources_; }

  /// Broadcast bus candidates (sorted by PE id); empty iff broadcasts are
  /// disabled.
  const std::vector<PeId>& broadcast_buses() const { return bcast_buses_; }

  /// Process-unique graph id (assigned at expand time, carried by moves).
  /// Lets long-lived caches keyed on this graph's *addresses* (notably
  /// EngineWorkspace's private cover cache, whose keys are Dnf pointers
  /// into this graph's tasks) detect that a different graph arrived even
  /// when heap addresses were reused. Strictly process-local.
  std::uint64_t uid() const { return uid_; }

  /// Content digest of the canonical Cpg encoding (cpg/canonical.hpp),
  /// computed at expand time. Two structurally identical models expanded
  /// in different processes (or different runs) share this digest — the
  /// identity EngineHistory and the schedule cache key on.
  const Digest128& canonical_digest() const { return digest_; }

 private:
  void compute_guard_info();

  const Cpg* cpg_ = nullptr;
  std::vector<Task> tasks_;
  Digraph deps_;
  std::vector<TaskId> task_of_process_;   // by ProcessId
  std::vector<TaskId> bcast_tasks_;       // by CondId (empty if disabled)
  std::vector<PeId> used_resources_;
  std::vector<PeId> bcast_buses_;
  std::vector<TaskGuardInfo> guard_info_;  // by TaskId
  bool masks_enabled_ = false;
  std::uint64_t uid_ = 0;
  Digest128 digest_;
};

}  // namespace cps
