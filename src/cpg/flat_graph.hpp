// FlatGraph: the scheduler's view of a CPG.
//
// Expanding a Cpg against its architecture yields one *task* per:
//  * process (ordinary + dummies), mapped to its processor;
//  * inter-PE communication (paper: "communication process", the black
//    dots of Fig. 1), mapped to the bus assigned to the edge, with
//    duration equal to the communication time;
//  * condition broadcast (paper §3): after a disjunction process ends, its
//    condition value is broadcast on the first available bus that connects
//    all processors, taking τ0 time units. Broadcast tasks exist when the
//    model has conditions and more than one resource hosts tasks.
//
// The dependency digraph runs over tasks: src-process -> comm -> dst-process
// for expanded edges, direct edges otherwise, and disjunction -> broadcast.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cpg/cpg.hpp"
#include "cpg/paths.hpp"
#include "graph/digraph.hpp"

namespace cps {

using TaskId = std::uint32_t;

enum class TaskKind : std::uint8_t { kProcess, kComm, kBroadcast };

struct Task {
  TaskId id = 0;
  TaskKind kind = TaskKind::kProcess;
  std::string name;
  /// Resource executing the task. For broadcast tasks this is the
  /// *default* broadcast bus; when the architecture has several broadcast
  /// buses the scheduler may pick a different one per path.
  PeId resource = 0;
  Time duration = 0;
  /// Activation guard (process guard; for a communication, guard of the
  /// transmission = guard(src) & edge literal; for a broadcast, guard of
  /// the disjunction process).
  Dnf guard = Dnf::true_();
  /// Condition computed on completion (disjunction processes only).
  std::optional<CondId> computes;
  /// Condition broadcast by this task (broadcast tasks only).
  std::optional<CondId> broadcasts;
  /// Originating process (kProcess) or edge (kComm).
  std::optional<ProcessId> origin_process;
  std::optional<EdgeId> origin_edge;

  bool is_process() const { return kind == TaskKind::kProcess; }
  bool is_comm() const { return kind == TaskKind::kComm; }
  bool is_broadcast() const { return kind == TaskKind::kBroadcast; }
};

class FlatGraph {
 public:
  /// Expand a CPG. The Cpg must outlive the FlatGraph.
  static FlatGraph expand(const Cpg& g);

  const Cpg& cpg() const { return *cpg_; }
  const Architecture& arch() const { return cpg_->arch(); }

  std::size_t task_count() const { return tasks_.size(); }
  const Task& task(TaskId t) const;
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Dependency DAG over tasks.
  const Digraph& deps() const { return deps_; }

  TaskId task_of_process(ProcessId p) const;
  /// Broadcast task of a condition; nullopt when broadcasts are disabled
  /// (single-resource models).
  std::optional<TaskId> broadcast_task(CondId c) const;
  bool broadcasts_enabled() const { return !bcast_tasks_.empty(); }

  /// Task of the disjunction process computing `c`.
  TaskId disjunction_task(CondId c) const;

  TaskId source_task() const { return task_of_process(cpg_->source()); }
  TaskId sink_task() const { return task_of_process(cpg_->sink()); }

  /// Tasks active on the path identified by `label` (a complete path
  /// label; every task guard is decided under it).
  std::vector<bool> active_tasks(const Cube& label) const;

  /// Resources that host at least one task (sorted).
  const std::vector<PeId>& used_resources() const { return used_resources_; }

  /// Broadcast bus candidates (sorted by PE id); empty iff broadcasts are
  /// disabled.
  const std::vector<PeId>& broadcast_buses() const { return bcast_buses_; }

 private:
  const Cpg* cpg_ = nullptr;
  std::vector<Task> tasks_;
  Digraph deps_;
  std::vector<TaskId> task_of_process_;   // by ProcessId
  std::vector<TaskId> bcast_tasks_;       // by CondId (empty if disabled)
  std::vector<PeId> used_resources_;
  std::vector<PeId> bcast_buses_;
};

}  // namespace cps
