// CpgBuilder: fluent construction and validation of conditional process
// graphs.
//
// Usage:
//   CpgBuilder b(arch);
//   CondId c = b.add_condition("C");
//   ProcessId p1 = b.add_process("P1", pe1, 3);
//   ProcessId p2 = b.add_process("P2", pe1, 4);
//   b.add_edge(p1, p2, /*comm_time=*/1);            // simple edge
//   b.add_cond_edge(p2, p4, Literal{c, true}, 3);   // conditional edge
//   b.mark_conjunction(p17);
//   Cpg g = b.build();   // adds dummy source/sink, validates, computes
//                        // guards, assigns buses
//
// build() enforces the structural rules of paper §2:
//  * the graph is acyclic (and polar once source/sink are attached);
//  * all conditional out-edges of a node carry literals of one condition,
//    making the node the unique disjunction process of that condition;
//  * every guard is satisfiable (no process waits for a message from a
//    process that cannot be activated together with it — the X_Pj => X_Pi
//    edge rule);
//  * a condition is only used by processes that run strictly after the
//    disjunction process computing it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cpg/cpg.hpp"

namespace cps {

class CpgBuilder {
 public:
  /// The architecture is copied into the built Cpg.
  explicit CpgBuilder(Architecture arch);

  CondId add_condition(const std::string& name);

  ProcessId add_process(const std::string& name, PeId mapping,
                        Time exec_time);

  /// Declare `p` to be the disjunction process computing `cond`.
  /// (Implied automatically by add_cond_edge; explicit form exists for
  /// disjunctions whose false branch has no successors.)
  void set_computes(ProcessId p, CondId cond);

  /// Mark a conjunction process (guard = OR over its input alternatives).
  void mark_conjunction(ProcessId p);

  /// Simple (unconditional) edge. comm_time applies only if the endpoints
  /// are mapped to different PEs. Returns the edge id.
  EdgeId add_edge(ProcessId src, ProcessId dst, Time comm_time = 0);

  /// Conditional edge carrying `literal`.
  EdgeId add_cond_edge(ProcessId src, ProcessId dst, Literal literal,
                       Time comm_time = 0);

  /// Pin the communication of an inter-PE edge to a specific bus.
  void set_bus(EdgeId e, PeId bus);

  /// Finalize: attach dummy source/sink, assign buses to unpinned
  /// inter-PE edges (round robin over the architecture's buses), compute
  /// guards and validate. Throws ValidationError on a malformed model.
  Cpg build();

 private:
  void validate_and_finalize(Cpg& g);

  Cpg g_;
  bool built_ = false;
};

}  // namespace cps
