#include "cpg/cpg.hpp"

#include "support/error.hpp"

namespace cps {

const Process& Cpg::process(ProcessId p) const {
  CPS_REQUIRE(p < processes_.size(), "process id out of range");
  return processes_[p];
}

const CpgEdge& Cpg::edge(EdgeId e) const {
  CPS_REQUIRE(e < edges_.size(), "edge id out of range");
  return edges_[e];
}

ProcessId Cpg::disjunction_of(CondId cond) const {
  CPS_REQUIRE(cond < disjunction_of_.size(), "condition id out of range");
  return disjunction_of_[cond];
}

std::size_t Cpg::ordinary_process_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p.is_dummy()) ++n;
  }
  return n;
}

bool Cpg::active_under(ProcessId p, const Assignment& a) const {
  return process(p).guard.evaluate(
      [&a](CondId c) { return a.value(c); });
}

ProcessId Cpg::process_by_name(const std::string& name) const {
  for (const auto& p : processes_) {
    if (p.name == name) return p.id;
  }
  throw InvalidArgument("unknown process name: " + name);
}

}  // namespace cps
