#include "cpg/paths.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

namespace {

// Activation status of each process given a partial context: a process is
// active iff its guard holds for *every* completion of the context. During
// enumeration the context always decides every condition whose disjunction
// is active, so the tri-state collapses to a bool for exactly those
// processes that matter.
std::vector<bool> active_under_context(const Cpg& g, const Cube& context) {
  std::vector<bool> active(g.process_count(), false);
  for (ProcessId p = 0; p < g.process_count(); ++p) {
    active[p] = g.process(p).guard.covered_by_context(context);
  }
  return active;
}

void enumerate_rec(const Cpg& g, const Cube& context,
                   std::vector<AltPath>& out) {
  const std::vector<bool> active = active_under_context(g, context);
  // Find an active disjunction process whose condition is undecided.
  // Deterministic choice: smallest condition id. (Any choice yields the
  // same leaf set because conditions are independent.)
  for (CondId c = 0; c < g.conditions().size(); ++c) {
    if (context.mentions(c)) continue;
    if (!active[g.disjunction_of(c)]) continue;
    auto pos = context.conjoin(Literal{c, true});
    auto neg = context.conjoin(Literal{c, false});
    CPS_ASSERT(pos && neg, "undecided condition must be conjoinable");
    enumerate_rec(g, *pos, out);
    enumerate_rec(g, *neg, out);
    return;
  }
  out.push_back(AltPath{context, active});
}

}  // namespace

std::vector<AltPath> enumerate_paths(const Cpg& g) {
  std::vector<AltPath> out;
  enumerate_rec(g, Cube::top(), out);
  return out;
}

AltPath path_for_assignment(const Cpg& g, const Assignment& a) {
  CPS_REQUIRE(a.universe_size() == g.conditions().size(),
              "assignment universe does not match the graph");
  // Build the label: conditions whose disjunction process is active.
  std::vector<Literal> lits;
  for (CondId c = 0; c < g.conditions().size(); ++c) {
    if (g.active_under(g.disjunction_of(c), a)) {
      lits.push_back(Literal{c, a.value(c)});
    }
  }
  AltPath path;
  path.label = Cube(lits);
  path.active.resize(g.process_count());
  for (ProcessId p = 0; p < g.process_count(); ++p) {
    path.active[p] = g.active_under(p, a);
  }
  return path;
}

}  // namespace cps
