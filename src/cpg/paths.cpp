#include "cpg/paths.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

namespace {

// Activation status of each process given a partial context: a process is
// active iff its guard holds for *every* completion of the context. During
// enumeration the context always decides every condition whose disjunction
// is active, so the tri-state collapses to a bool for exactly those
// processes that matter.
std::vector<bool> active_under_context(const Cpg& g, const Cube& context) {
  std::vector<bool> active(g.process_count(), false);
  for (ProcessId p = 0; p < g.process_count(); ++p) {
    active[p] = g.process(p).guard.covered_by_context(context);
  }
  return active;
}

}  // namespace

PathEnumerator::PathEnumerator(const Cpg& g) : g_(&g) {
  stack_.push_back(Cube::top());
}

PathEnumerator::PathEnumerator(const Cpg& g, Cube context) : g_(&g) {
  stack_.push_back(std::move(context));
}

std::optional<AltPath> PathEnumerator::next() {
  while (!stack_.empty()) {
    const Cube context = std::move(stack_.back());
    stack_.pop_back();
    std::vector<bool> active = active_under_context(*g_, context);
    // Find an active disjunction process whose condition is undecided.
    // Deterministic choice: smallest condition id. (Any choice yields the
    // same leaf set because conditions are independent.)
    bool expanded = false;
    for (CondId c = 0; c < g_->conditions().size(); ++c) {
      if (context.mentions(c)) continue;
      if (!active[g_->disjunction_of(c)]) continue;
      auto pos = context.conjoin(Literal{c, true});
      auto neg = context.conjoin(Literal{c, false});
      CPS_ASSERT(pos && neg, "undecided condition must be conjoinable");
      // LIFO: push the false branch first so the true branch is expanded
      // next, reproducing the recursive true-first depth-first order.
      stack_.push_back(std::move(*neg));
      stack_.push_back(std::move(*pos));
      expanded = true;
      break;
    }
    if (expanded) continue;
    ++produced_;
    return AltPath{context, std::move(active)};
  }
  return std::nullopt;
}

std::optional<CondId> PathTree::branch_condition(const Cube& context) const {
  const std::vector<bool> active = active_under_context(*g_, context);
  for (CondId c = 0; c < g_->conditions().size(); ++c) {
    if (context.mentions(c)) continue;
    if (active[g_->disjunction_of(c)]) return c;
  }
  return std::nullopt;
}

std::vector<PathTree::Node> PathTree::frontier(std::size_t min_nodes) const {
  std::vector<Node> nodes{Node{Cube::top(), false}};
  bool expandable = true;
  while (expandable && nodes.size() < std::max<std::size_t>(min_nodes, 1)) {
    expandable = false;
    // Expand one whole level, replacing each non-leaf in place by its
    // (true, false) children so the vector stays in depth-first order.
    std::vector<Node> next;
    next.reserve(nodes.size() * 2);
    for (Node& node : nodes) {
      if (node.leaf) {
        next.push_back(std::move(node));
        continue;
      }
      const auto c = branch_condition(node.context);
      if (!c) {
        node.leaf = true;
        next.push_back(std::move(node));
        continue;
      }
      auto pos = node.context.conjoin(Literal{*c, true});
      auto neg = node.context.conjoin(Literal{*c, false});
      CPS_ASSERT(pos && neg, "undecided condition must be conjoinable");
      next.push_back(Node{std::move(*pos), false});
      next.push_back(Node{std::move(*neg), false});
      expandable = true;
    }
    nodes = std::move(next);
  }
  // Settle the leaf flags of nodes the size cutoff left unclassified.
  for (Node& node : nodes) {
    if (!node.leaf) node.leaf = !branch_condition(node.context).has_value();
  }
  return nodes;
}

PathLabelMasks collect_label_masks(const std::vector<AltPath>& paths) {
  PathLabelMasks out;
  out.pos.reserve(paths.size());
  out.neg.reserve(paths.size());
  for (const AltPath& p : paths) {
    out.pos.push_back(p.label.pos_bits());
    out.neg.push_back(p.label.neg_bits());
    out.narrow = out.narrow && p.label.narrow();
  }
  return out;
}

std::vector<AltPath> enumerate_paths(const Cpg& g) {
  std::vector<AltPath> out;
  PathEnumerator en(g);
  while (auto path = en.next()) out.push_back(std::move(*path));
  return out;
}

std::optional<std::size_t> count_paths(const Cpg& g, std::size_t limit) {
  PathEnumerator en(g);
  while (en.next()) {
    if (limit != 0 && en.produced() > limit) return std::nullopt;
  }
  return en.produced();
}

AltPath path_for_assignment(const Cpg& g, const Assignment& a) {
  CPS_REQUIRE(a.universe_size() == g.conditions().size(),
              "assignment universe does not match the graph");
  // Build the label: conditions whose disjunction process is active.
  std::vector<Literal> lits;
  for (CondId c = 0; c < g.conditions().size(); ++c) {
    if (g.active_under(g.disjunction_of(c), a)) {
      lits.push_back(Literal{c, a.value(c)});
    }
  }
  AltPath path;
  path.label = Cube(lits);
  path.active.resize(g.process_count());
  for (ProcessId p = 0; p < g.process_count(); ++p) {
    path.active[p] = g.active_under(p, a);
  }
  return path;
}

}  // namespace cps
