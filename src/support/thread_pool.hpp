// Work-stealing task runtime.
//
// Grown out of the batch driver's ad-hoc thread spawning, then a central
// mutex + single queue pool, and now a work-stealing scheduler: every
// parallel subsystem (batch co-synthesis, speculative schedule merging,
// guard-trie subtree dispatch) shares ONE pool instead of each carving a
// slice of the machine — nested parallelism (a batch of tree-scheduled
// items) keeps all cores busy instead of oversubscribing or degenerating
// to serial inner execution.
//
// Scheduler shape (cf. managarm's per-CPU run queues in SNIPPETS):
//  * per-worker deques, one per priority level — the owner pushes and
//    pops at the back (LIFO: a worker's freshest task is the hottest),
//    thieves steal from the front (FIFO: the oldest task is the largest
//    remaining subtree, and the owner's end stays uncontended);
//  * a global injection queue for submissions from non-worker threads;
//  * strict priority ordering across ALL sources: a worker prefers a
//    kHigh task anywhere (own deque, injection queue, someone else's
//    deque) over its own kNormal work, so walk-critical jobs (the
//    merger's speculative adjustments, which DFS-order commits wait on)
//    are never starved behind bulk batch items;
//  * nesting support — a task that must wait for child tasks *help-runs*
//    them (TaskGroup::wait) instead of blocking its worker, so a batch
//    item running on a worker can fan its subtree jobs out on the same
//    pool without deadlock and without idling the worker.
//
// Design constraints, in order:
//  * determinism friendliness — the pool never decides *what* result is
//    produced, only *where* a pure function runs. Callers that need
//    byte-identical output across thread counts (batch driver, merge,
//    tree-mode scheduling) keep their own commit ordering; the pool makes
//    no ordering promise beyond priority preference.
//  * deadlock freedom under nesting — TaskGroup::wait help-runs its own
//    group's queued tasks (a waiter never idles while its children are
//    runnable), and jobs may additionally own claim flags (see the
//    speculative merger) so a blocked consumer can always steal
//    un-started work back and run it inline.
//  * cheap idling — workers sleep on a condition variable; an idle pool
//    costs nothing, so a process-wide shared() instance is safe to keep
//    alive for the program's lifetime.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cps {

/// Scheduling preference of a submitted task. Workers scan levels in
/// order, across every source, before looking at the next level.
enum class TaskPriority : std::uint8_t {
  kHigh = 0,    ///< walk-critical (speculative merge adjustments)
  kNormal = 1,  ///< default (subtree jobs, parallel_for helpers)
  kLow = 2,     ///< bulk background work (batch items)
};

/// Cumulative scheduler counters. Timing-dependent by nature (which
/// worker pops which task is a race the scheduler is *allowed* to have):
/// consumers surface them only through timing-gated outputs, never
/// through byte-identical ones. All counters are monotonic except
/// max_help_depth, which is a high-water mark.
struct PoolStats {
  std::uint64_t submitted = 0;   ///< tasks handed to the pool
  std::uint64_t executed = 0;    ///< tasks completed (any thread)
  std::uint64_t local_hits = 0;  ///< owner popped its own deque (LIFO)
  std::uint64_t steals = 0;      ///< popped another worker's deque (FIFO)
  std::uint64_t injected = 0;    ///< popped the external injection queue
  std::uint64_t help_runs = 0;   ///< tasks run inside a TaskGroup::wait
  std::uint64_t max_help_depth = 0;  ///< deepest observed help nesting
  /// Tasks queued but not yet claimed at snapshot time (a level, not a
  /// monotonic counter). The balance invariant of a snapshot is
  /// submitted == executed + pending + in-flight; after wait_idle() both
  /// pending and in-flight are zero, so submitted == executed exactly —
  /// snapshots no longer show the surprising executed < submitted gap
  /// that claimed-no-op merge tasks used to leave behind.
  std::uint64_t pending = 0;
  /// Task bodies skipped because their TaskGroup was cancelled (the
  /// wrapper still runs and counts as executed).
  std::uint64_t cancelled_tasks = 0;
  /// TaskGroups destroyed with a captured exception nobody observed
  /// (wait() not called after a task failed). Debug builds also assert.
  std::uint64_t dropped_errors = 0;

  /// Counter difference against an earlier snapshot of the same pool
  /// (max_help_depth keeps this snapshot's high-water mark, pending this
  /// snapshot's level).
  PoolStats delta_since(const PoolStats& before) const;
};

class TaskGroup;

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1). A pool of size 1 is a valid degenerate case: submitted
  /// jobs run on the single worker, parallel_for degenerates to the
  /// caller plus one helper.
  explicit ThreadPool(std::size_t threads = 0);

  /// Blocks until every running job finishes; queued jobs still run
  /// before the workers exit (a submitted job is never dropped).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a job. Jobs must not throw (wrap and capture exceptions via
  /// std::exception_ptr on the caller's side, or use TaskGroup, which
  /// does exactly that); an escaping exception terminates the process, as
  /// with raw std::thread.
  void submit(std::function<void()> job,
              TaskPriority priority = TaskPriority::kNormal);

  /// Block until the queue is empty and no job is running.
  void wait_idle();

  /// Run body(i) for every i in [0, count). The calling thread
  /// participates (work distribution over a shared atomic counter), and
  /// while waiting for straggler helpers it help-runs their queued tasks,
  /// so the call never deadlocks when invoked from inside another job on
  /// the same pool. Returns when every index has completed. `body` must
  /// be safe to invoke concurrently; if it throws, the first error (in
  /// caller-then-helper order) propagates after every index finished or
  /// was abandoned by its helper.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    TaskPriority priority = TaskPriority::kNormal);

  /// Process-wide pool sized to the hardware, created on first use.
  /// Intended for latency-insensitive helpers (speculative merge
  /// adjustments); subsystems with an explicit thread-count knob (batch
  /// driver) construct their own.
  static ThreadPool& shared();

  /// Resolve a user-facing thread-count knob: 0 = hardware concurrency.
  static std::size_t resolve_threads(std::size_t requested);

  /// Returned by worker_index() for threads that are not workers of the
  /// queried pool.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Index of the calling thread among *this* pool's workers (in
  /// [0, thread_count())), or kNotAWorker for every other thread —
  /// including workers of a different pool. Stable across help-running:
  /// a task help-run inside TaskGroup::wait still executes on the thread
  /// that waited, and sees that thread's index. Backs WorkerLocal.
  std::size_t worker_index() const;

  /// Snapshot of the cumulative scheduler counters (racy-but-consistent
  /// relaxed reads; see PoolStats for the determinism contract).
  PoolStats stats() const;

 private:
  friend class TaskGroup;

  static constexpr std::size_t kPriorities = 3;

  /// A queued unit of work. `tag` identifies the TaskGroup (if any) so a
  /// waiter can help-run its own group's tasks; untagged tasks are only
  /// picked up by the worker loop.
  struct Task {
    std::function<void()> fn;
    const void* tag = nullptr;
  };

  /// Per-worker run queues plus the guarding mutex. Heap-allocated once
  /// so worker references stay valid and false sharing between workers
  /// is bounded to deque internals.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> runq[kPriorities];
  };

  void push_task(Task task, TaskPriority priority);
  /// Remove the first task with this group tag from a deque. Owners
  /// search newest-first (the LIFO end they would pop anyway); thieves
  /// and the injection queue search oldest-first.
  static bool take_tagged(std::deque<Task>& q, const void* tag,
                          bool newest_first, Task* out);
  /// Pop the best runnable task for `self` (kNotAWorker = external
  /// thread): scans level by level — own deque back, injection front,
  /// then every other worker's front. Decrements pending_ on success.
  bool try_pop(std::size_t self, Task* out);
  /// Like try_pop but only considers tasks with this group tag.
  bool try_pop_tagged(const void* tag, Task* out);
  void run_task(Task& task);
  /// Run one queued task of `tag`'s group on the calling thread,
  /// recording help-run depth. Returns false when none is queued.
  bool help_run_one(const void* tag);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex inject_mutex_;
  std::deque<Task> inject_[kPriorities];

  /// Tasks queued anywhere (deques + injection). The sleep protocol:
  /// pushers bump pending_ then notify under sleep_mutex_; a worker that
  /// found nothing re-checks pending_ under sleep_mutex_ before waiting,
  /// so no wakeup is lost.
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> active_{0};  ///< tasks currently executing
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;  // workers wait for jobs
  std::condition_variable idle_cv_;  // wait_idle waits for drain

  // Scheduler counters (relaxed; see stats()).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> local_hits_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> help_runs_{0};
  std::atomic<std::uint64_t> max_help_depth_{0};
  std::atomic<std::uint64_t> cancelled_tasks_{0};
  std::atomic<std::uint64_t> dropped_errors_{0};
};

/// A set of tasks awaited together — the pool's unit of *nesting*. A task
/// that needs its children done calls wait(), which help-runs the group's
/// queued tasks on the waiting thread instead of blocking a worker: the
/// thread only sleeps when every remaining child is already running
/// elsewhere. Exceptions thrown by tasks are captured at the steal
/// boundary and the first one (by submission order — deterministic, not
/// by completion race) is rethrown from wait(). Destroying a group with
/// an unobserved captured exception counts a PoolStats::dropped_errors
/// and asserts in debug builds; call wait() to observe errors, or
/// wait_dismissing_errors() to discard them deliberately. Tasks may
/// submit further tasks into their own group while it is being waited on.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}

  /// Waits for stragglers. An unobserved captured exception is counted
  /// (and debug-asserted) as dropped — see class comment.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void submit(std::function<void()> fn,
              TaskPriority priority = TaskPriority::kNormal);

  /// Block until every submitted task completed, help-running queued
  /// group tasks meanwhile. Rethrows the first captured exception in
  /// submission order (at most once; later wait() calls return quietly).
  void wait() { wait_impl(/*rethrow=*/true); }

  /// Like wait(), but deliberately discards any captured exception —
  /// for callers that already hold a better error of their own (see
  /// parallel_for: when the caller's body threw, the caller's error
  /// wins over whatever the helpers captured).
  void wait_dismissing_errors();

  /// Request cancellation: queued tasks of this group that have not
  /// started yet run as no-ops (counted in PoolStats::cancelled_tasks),
  /// so a cancelled group drains in queue-pop time instead of executing
  /// its backlog. Tasks already running are not interrupted — they
  /// observe cancellation cooperatively via their own RunBudget, if any.
  /// wait() still accounts for every submitted task.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  void wait_impl(bool rethrow);

  ThreadPool* pool_;
  std::atomic<bool> cancelled_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;   // guarded by mutex_
  std::size_t next_seq_ = 0;  // guarded by mutex_
  std::size_t error_seq_ = 0;
  std::exception_ptr error_;  // first by submission seq, guarded by mutex_
};

/// Per-worker slots over one pool: each worker of the pool gets its own
/// element, plus one spare slot for the single orchestrating thread that
/// drives the pool from outside (the merge walk, parallel_for's caller).
/// Slots are created once at construction and never reallocated, so a
/// worker's reference stays valid for the WorkerLocal's lifetime and T
/// need not be copyable or movable. Intended for reusable scratch state
/// (engine workspaces): a slot is only ever touched by the one thread it
/// belongs to, so no locking is needed — which requires slot users to be
/// non-reentrant per thread: safe for plain tasks (a task does not nest
/// mid-computation), but a task that help-runs children while *holding* a
/// slot must not let those children touch the same WorkerLocal (current
/// consumers only wait at points where the slot is quiescent). Threads
/// that are neither pool workers nor the orchestrator share the spare
/// slot and must not use it concurrently (there is exactly one such
/// thread in every current caller).
template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(const ThreadPool& pool)
      : pool_(&pool), slots_(pool.thread_count() + 1) {}

  /// Slot of the calling thread (see class comment).
  T& local() {
    const std::size_t i = pool_->worker_index();
    return i == ThreadPool::kNotAWorker ? slots_.back() : slots_[i];
  }

  /// Visit every slot (aggregation; only safe once the pool is idle).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (T& slot : slots_) fn(slot);
  }

  std::size_t size() const { return slots_.size(); }

 private:
  const ThreadPool* pool_;
  std::vector<T> slots_;
};

}  // namespace cps
