// Reusable fixed-size worker pool.
//
// Grown out of the batch driver's ad-hoc thread spawning: every parallel
// subsystem (batch co-synthesis, speculative schedule merging) now shares
// this one primitive instead of rolling its own std::thread vectors.
//
// Design constraints, in order:
//  * determinism friendliness — the pool never decides *what* result is
//    produced, only *where* a pure function runs. Callers that need
//    byte-identical output across thread counts (batch driver, merge)
//    keep their own commit ordering; the pool makes no ordering promise.
//  * deadlock freedom under nesting — jobs may themselves own claim
//    flags (see the speculative merger) so a blocked consumer can always
//    steal un-started work back and run it inline.
//  * cheap idling — workers sleep on a condition variable; an idle pool
//    costs nothing, so a process-wide shared() instance is safe to keep
//    alive for the program's lifetime.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cps {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1). A pool of size 1 is a valid degenerate case: submitted
  /// jobs run on the single worker, parallel_for degenerates to the
  /// caller plus one helper.
  explicit ThreadPool(std::size_t threads = 0);

  /// Blocks until every running job finishes; queued jobs still run
  /// before the workers exit (a submitted job is never dropped).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a job. Jobs must not throw (wrap and capture exceptions via
  /// std::exception_ptr on the caller's side); an escaping exception
  /// terminates the process, as with raw std::thread.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and no job is running.
  void wait_idle();

  /// Run body(i) for every i in [0, count). The calling thread
  /// participates (work stealing over a shared atomic counter), so the
  /// call also works on a zero-thread pool and never deadlocks when
  /// invoked from inside another pool's job. Returns when every index
  /// has completed. `body` must be safe to invoke concurrently.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide pool sized to the hardware, created on first use.
  /// Intended for latency-insensitive helpers (speculative merge
  /// adjustments); subsystems with an explicit thread-count knob (batch
  /// driver) construct their own.
  static ThreadPool& shared();

  /// Resolve a user-facing thread-count knob: 0 = hardware concurrency.
  static std::size_t resolve_threads(std::size_t requested);

  /// Returned by worker_index() for threads that are not workers of the
  /// queried pool.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Index of the calling thread among *this* pool's workers (in
  /// [0, thread_count())), or kNotAWorker for every other thread —
  /// including workers of a different pool. Backs WorkerLocal.
  std::size_t worker_index() const;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for jobs
  std::condition_variable idle_cv_;   // wait_idle waits for drain
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Per-worker slots over one pool: each worker of the pool gets its own
/// element, plus one spare slot for the single orchestrating thread that
/// drives the pool from outside (the merge walk, parallel_for's caller).
/// Slots are created once at construction and never reallocated, so a
/// worker's reference stays valid for the WorkerLocal's lifetime and T
/// need not be copyable or movable. Intended for reusable scratch state
/// (engine workspaces): a slot is only ever touched by the one thread it
/// belongs to, so no locking is needed. Threads that are neither pool
/// workers nor the orchestrator share the spare slot and must not use it
/// concurrently (there is exactly one such thread in every current
/// caller).
template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(const ThreadPool& pool)
      : pool_(&pool), slots_(pool.thread_count() + 1) {}

  /// Slot of the calling thread (see class comment).
  T& local() {
    const std::size_t i = pool_->worker_index();
    return i == ThreadPool::kNotAWorker ? slots_.back() : slots_[i];
  }

  /// Visit every slot (aggregation; only safe once the pool is idle).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (T& slot : slots_) fn(slot);
  }

  std::size_t size() const { return slots_.size(); }

 private:
  const ThreadPool* pool_;
  std::vector<T> slots_;
};

}  // namespace cps
