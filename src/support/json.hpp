// Minimal deterministic JSON writer.
//
// The batch experiment driver emits machine-readable results consumed by
// the benchmark harness and external tooling; determinism ("same seed,
// byte-identical output") is part of the contract, so numbers are
// formatted with fixed rules (no locale, fixed precision for doubles) and
// keys appear exactly in emission order.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace cps {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 renders compact single-line.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  /// Any integer type (dispatches on signedness; covers std::size_t on
  /// every platform without overload ambiguity).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return write_int(static_cast<std::int64_t>(v));
    } else {
      return write_uint(static_cast<std::uint64_t>(v));
    }
  }
  /// Fixed "%.6f" rendering (deterministic); non-finite values render as
  /// null per JSON rules.
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

  /// JSON string escaping (quotes not included).
  static std::string escape(const std::string& s);

  /// Write `payload` to `path`, with "-" meaning stdout. Returns false
  /// (after printing to stderr) when the file cannot be written.
  static bool write_output(const std::string& path,
                           const std::string& payload);

 private:
  JsonWriter& write_int(std::int64_t v);
  JsonWriter& write_uint(std::uint64_t v);
  void comma_and_newline();
  void open(char c);
  void close(char c);

  std::string out_;
  int indent_ = 2;
  int depth_ = 0;
  // Whether the current container already holds a member (one flag per
  // nesting level).
  std::vector<bool> has_member_{false};
  bool after_key_ = false;
};

}  // namespace cps
