// Minimal deterministic JSON writer and a small recursive-descent reader.
//
// The batch experiment driver emits machine-readable results consumed by
// the benchmark harness and external tooling; determinism ("same seed,
// byte-identical output") is part of the contract, so numbers are
// formatted with fixed rules (no locale, fixed precision for doubles) and
// keys appear exactly in emission order. JsonValue parses those files back
// (e.g. the committed BENCH_baseline.json the perf benches compare
// against) — it accepts any standard JSON, not just our own output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cps {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 renders compact single-line.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  /// Any integer type (dispatches on signedness; covers std::size_t on
  /// every platform without overload ambiguity).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return write_int(static_cast<std::int64_t>(v));
    } else {
      return write_uint(static_cast<std::uint64_t>(v));
    }
  }
  /// Fixed "%.6f" rendering (deterministic); non-finite values render as
  /// null per JSON rules.
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-serialized JSON value verbatim in value position (after
  /// a key, or as an array element) — for embedding a document rendered
  /// by another writer (e.g. a batch item inside a service response). The
  /// caller vouches that `json` is valid and matches this writer's indent
  /// style; nothing is re-validated.
  JsonWriter& raw(const std::string& json);

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

  /// JSON string escaping (quotes not included).
  static std::string escape(const std::string& s);

  /// Write `payload` to `path`, with "-" meaning stdout. Returns false
  /// (after printing to stderr) when the file cannot be written.
  static bool write_output(const std::string& path,
                           const std::string& payload);

 private:
  JsonWriter& write_int(std::int64_t v);
  JsonWriter& write_uint(std::uint64_t v);
  void comma_and_newline();
  void open(char c);
  void close(char c);

  std::string out_;
  int indent_ = 2;
  int depth_ = 0;
  // Whether the current container already holds a member (one flag per
  // nesting level).
  std::vector<bool> has_member_{false};
  bool after_key_ = false;
};

/// Parsed JSON document. Throws cps::ParseError on malformed input or on
/// accessing a value as the wrong kind. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete JSON document (trailing garbage is an error).
  static JsonValue parse(const std::string& text);

  /// parse() over the contents of `path`; ParseError if unreadable.
  static JsonValue parse_file(const std::string& path);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array elements (ParseError unless an array).
  const std::vector<JsonValue>& items() const;

  /// Object members in document order (ParseError unless an object).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  /// Object member lookup; ParseError when absent.
  const JsonValue& at(const std::string& key) const;

 private:
  struct Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace cps
