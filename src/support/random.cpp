#include "support/random.hpp"

#include <cmath>

namespace cps {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CPS_REQUIRE(lo <= hi, "Rng::uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  CPS_REQUIRE(lo < hi, "Rng::uniform_real requires lo < hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  CPS_REQUIRE(mean > 0.0, "Rng::exponential requires mean > 0");
  double u = uniform01();
  // uniform01 may return 0; -log(0) is infinite, nudge away.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  CPS_REQUIRE(n > 0, "Rng::index requires n > 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng(next()); }

}  // namespace cps
