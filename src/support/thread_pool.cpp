#include "support/thread_pool.hpp"

#include <memory>

#include "support/error.hpp"

namespace cps {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

// Identity of the calling thread: the pool it works for (if any) and its
// index there. Set once at worker startup; read by worker_index().
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = ThreadPool::kNotAWorker;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  CPS_REQUIRE(job != nullptr, "ThreadPool::submit: empty job");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CPS_REQUIRE(!stop_, "ThreadPool::submit after shutdown began");
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ThreadPool::worker_index() const {
  return tls_pool == this ? tls_index : kNotAWorker;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: exit
      continue;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    job();
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Shared by the caller and the helper jobs; kept alive by shared_ptr so
  // a helper scheduled after the caller finished (all indices consumed)
  // still has valid state to look at.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex m;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->count = count;
  state->body = &body;

  const auto drain = [](const std::shared_ptr<State>& s) {
    while (true) {
      const std::size_t i = s->next.fetch_add(1);
      if (i >= s->count) break;
      (*s->body)(i);
      if (s->done.fetch_add(1) + 1 == s->count) {
        std::lock_guard<std::mutex> lock(s->m);
        s->cv.notify_all();
      }
    }
  };

  // One helper per worker, capped by the remaining items beyond the
  // caller's own share.
  const std::size_t helpers =
      count > 1 ? std::min(thread_count(), count - 1) : 0;
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state, drain] { drain(state); });
  }
  drain(state);
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock,
                 [&] { return state->done.load() == state->count; });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace cps
