#include "support/thread_pool.hpp"

#include <cassert>
#include <utility>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace cps {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

// Identity of the calling thread: the pool it works for (if any) and its
// index there. Set once at worker startup; read by worker_index(). The
// identity does NOT change while help-running — a task run inside
// TaskGroup::wait executes on the waiting thread and sees its slot.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = ThreadPool::kNotAWorker;

// Nesting depth of help-running on this thread (0 = a worker's normal
// top-level task or a non-pool thread).
thread_local std::size_t tls_help_depth = 0;

}  // namespace

PoolStats PoolStats::delta_since(const PoolStats& before) const {
  PoolStats d;
  d.submitted = submitted - before.submitted;
  d.executed = executed - before.executed;
  d.local_hits = local_hits - before.local_hits;
  d.steals = steals - before.steals;
  d.injected = injected - before.injected;
  d.help_runs = help_runs - before.help_runs;
  d.max_help_depth = max_help_depth;  // high-water mark, not a counter
  d.pending = pending;                // level, not a counter
  d.cancelled_tasks = cancelled_tasks - before.cancelled_tasks;
  d.dropped_errors = dropped_errors - before.dropped_errors;
  return d;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true);
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::worker_index() const {
  return tls_pool == this ? tls_index : kNotAWorker;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.injected = injected_.load(std::memory_order_relaxed);
  s.help_runs = help_runs_.load(std::memory_order_relaxed);
  s.max_help_depth = max_help_depth_.load(std::memory_order_relaxed);
  s.pending = pending_.load(std::memory_order_relaxed);
  s.cancelled_tasks = cancelled_tasks_.load(std::memory_order_relaxed);
  s.dropped_errors = dropped_errors_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::submit(std::function<void()> job, TaskPriority priority) {
  CPS_REQUIRE(job != nullptr, "ThreadPool::submit: empty job");
  push_task(Task{std::move(job), nullptr}, priority);
}

void ThreadPool::push_task(Task task, TaskPriority priority) {
  CPS_REQUIRE(!stop_.load(), "ThreadPool::submit after shutdown began");
  const auto level = static_cast<std::size_t>(priority);
  const std::size_t self = worker_index();
  if (self != kNotAWorker) {
    // Owner end: LIFO for the owner, FIFO (front) for thieves.
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    queues_[self]->runq[level].push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_[level].push_back(std::move(task));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1);
  {
    // A worker that just found nothing re-checks pending_ under
    // sleep_mutex_ before sleeping; pairing the notify with the same
    // mutex (empty critical section suffices) closes the lost-wakeup
    // window between its check and its wait.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task* out) {
  const std::size_t n = queues_.size();
  const auto claim = [this] {
    // active_ rises before pending_ falls so (pending_ + active_) never
    // transiently hits zero while a task is in flight (wait_idle).
    active_.fetch_add(1);
    pending_.fetch_sub(1);
  };
  // Strict priority ordering across every source: a kHigh task anywhere
  // beats the scanner's own kNormal work.
  for (std::size_t level = 0; level < kPriorities; ++level) {
    if (self != kNotAWorker) {
      WorkerQueue& own = *queues_[self];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.runq[level].empty()) {
        *out = std::move(own.runq[level].back());
        own.runq[level].pop_back();
        local_hits_.fetch_add(1, std::memory_order_relaxed);
        claim();
        return true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(inject_mutex_);
      if (!inject_[level].empty()) {
        *out = std::move(inject_[level].front());
        inject_[level].pop_front();
        injected_.fetch_add(1, std::memory_order_relaxed);
        claim();
        return true;
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t v = self == kNotAWorker ? k : (self + 1 + k) % n;
      if (v == self) continue;
      WorkerQueue& victim = *queues_[v];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.runq[level].empty()) {
        *out = std::move(victim.runq[level].front());
        victim.runq[level].pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        claim();
        return true;
      }
    }
  }
  return false;
}

bool ThreadPool::take_tagged(std::deque<Task>& q, const void* tag,
                             bool newest_first, Task* out) {
  if (newest_first) {
    for (auto it = q.rbegin(); it != q.rend(); ++it) {
      if (it->tag == tag) {
        *out = std::move(*it);
        q.erase(std::next(it).base());
        return true;
      }
    }
  } else {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->tag == tag) {
        *out = std::move(*it);
        q.erase(it);
        return true;
      }
    }
  }
  return false;
}

bool ThreadPool::try_pop_tagged(const void* tag, Task* out) {
  const std::size_t n = queues_.size();
  const std::size_t self = worker_index();
  const auto claim = [this] {
    active_.fetch_add(1);
    pending_.fetch_sub(1);
  };
  if (self != kNotAWorker) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    for (std::size_t level = 0; level < kPriorities; ++level) {
      if (take_tagged(own.runq[level], tag, /*newest_first=*/true, out)) {
        local_hits_.fetch_add(1, std::memory_order_relaxed);
        claim();
        return true;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    for (std::size_t level = 0; level < kPriorities; ++level) {
      if (take_tagged(inject_[level], tag, /*newest_first=*/false, out)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        claim();
        return true;
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = self == kNotAWorker ? k : (self + 1 + k) % n;
    if (v == self) continue;
    WorkerQueue& victim = *queues_[v];
    std::lock_guard<std::mutex> lock(victim.mutex);
    for (std::size_t level = 0; level < kPriorities; ++level) {
      if (take_tagged(victim.runq[level], tag, /*newest_first=*/false,
                      out)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        claim();
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  task.fn();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (active_.fetch_sub(1) == 1 && pending_.load() == 0) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    idle_cv_.notify_all();
  }
}

bool ThreadPool::help_run_one(const void* tag) {
  Task task;
  if (!try_pop_tagged(tag, &task)) return false;
  help_runs_.fetch_add(1, std::memory_order_relaxed);
  const auto depth = static_cast<std::uint64_t>(++tls_help_depth);
  std::uint64_t seen = max_help_depth_.load(std::memory_order_relaxed);
  while (seen < depth &&
         !max_help_depth_.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
  run_task(task);
  --tls_help_depth;
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  while (true) {
    Task task;
    if (try_pop(index, &task)) {
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (pending_.load() > 0) continue;  // appeared between scan and lock
    if (stop_.load()) return;           // drained and stopping
    work_cv_.wait(lock,
                  [this] { return stop_.load() || pending_.load() > 0; });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load() == 0 && active_.load() == 0;
  });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              TaskPriority priority) {
  if (count == 0) return;
  // Shared by the caller and the helper tasks; kept alive by shared_ptr
  // so a helper scheduled after the caller finished (all indices
  // consumed) still has valid state to look at.
  struct State {
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };
  auto state = std::make_shared<State>();
  state->count = count;
  state->body = &body;

  const auto drain = [](State& s) {
    while (true) {
      const std::size_t i = s.next.fetch_add(1);
      if (i >= s.count) break;
      (*s.body)(i);
    }
  };

  std::exception_ptr caller_error;
  {
    TaskGroup group(*this);
    // One helper per worker, capped by the remaining items beyond the
    // caller's own share.
    const std::size_t helpers =
        count > 1 ? std::min(thread_count(), count - 1) : 0;
    for (std::size_t i = 0; i < helpers; ++i) {
      group.submit([state, drain] { drain(*state); }, priority);
    }
    try {
      drain(*state);
    } catch (...) {
      caller_error = std::current_exception();
      // Fail fast: stop handing out further indices to the helpers.
      state->next.store(state->count);
    }
    // The group wait help-runs queued helpers, so a parallel_for from
    // inside another pool job never deadlocks. When the caller's own
    // body threw, the caller's error wins: any error a helper captured
    // meanwhile is dismissed explicitly (not silently dropped — the
    // destructor would count that against PoolStats::dropped_errors).
    if (caller_error) {
      group.wait_dismissing_errors();
    } else {
      group.wait();
    }
  }
  if (caller_error) std::rethrow_exception(caller_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

TaskGroup::~TaskGroup() {
  wait_impl(/*rethrow=*/false);
  // pending_ hit zero under mutex_ before we got here, so no task is
  // touching group state anymore: error_ is safe to read unlocked.
  if (error_ != nullptr) {
    pool_->dropped_errors_.fetch_add(1, std::memory_order_relaxed);
    assert(!"TaskGroup destroyed with an unobserved task exception; "
            "call wait() or wait_dismissing_errors()");
  }
}

void TaskGroup::wait_dismissing_errors() {
  wait_impl(/*rethrow=*/false);
  std::lock_guard<std::mutex> lock(mutex_);
  error_ = nullptr;
}

void TaskGroup::submit(std::function<void()> fn, TaskPriority priority) {
  CPS_REQUIRE(fn != nullptr, "TaskGroup::submit: empty job");
  std::size_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_++;
    ++pending_;
  }
  pool_->push_task(
      ThreadPool::Task{[this, seq, f = std::move(fn)] {
                         try {
                           // A cancelled group's queued bodies are
                           // skipped: the backlog drains at pop speed.
                           if (cancelled_.load(std::memory_order_relaxed)) {
                             pool_->cancelled_tasks_.fetch_add(
                                 1, std::memory_order_relaxed);
                           } else {
                             CPS_FAULT_POINT("pool.group_task");
                             f();
                           }
                         } catch (...) {
                           std::lock_guard<std::mutex> lock(mutex_);
                           if (error_ == nullptr || seq < error_seq_) {
                             error_ = std::current_exception();
                             error_seq_ = seq;
                           }
                         }
                         // Nothing below may touch group state after the
                         // count hits zero outside this critical section:
                         // the waiter is free to destroy the group as
                         // soon as it observes pending_ == 0 under the
                         // mutex, which happens-after this unlock.
                         std::lock_guard<std::mutex> lock(mutex_);
                         if (--pending_ == 0) cv_.notify_all();
                       },
                       this},
      priority);
}

void TaskGroup::wait_impl(bool rethrow) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (pending_ == 0) break;
    }
    // Help-run our own queued tasks instead of blocking the thread; only
    // sleep once every remaining task is already running elsewhere. (A
    // task queued *while* we sleep — tasks may submit into their own
    // group — is picked up by a worker; we only need the zero wakeup.)
    if (pool_->help_run_one(this)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    break;
  }
  if (!rethrow) return;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace cps
