// Thin RAII layer over AF_UNIX stream sockets for the co-synthesis
// service. Everything here is deliberately boring POSIX: the server
// event loop needs nonblocking accept/read/write with EINTR/EAGAIN
// folded into typed results, tests need a blocking client with a
// receive timeout, and both need file descriptors that cannot leak
// across exceptions. No protocol knowledge lives here (see
// support/frame.hpp and serve/protocol.hpp for that).
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace cps {

/// Owning file descriptor. Move-only; closes on destruction.
class UnixFd {
 public:
  UnixFd() = default;
  explicit UnixFd(int fd) : fd_(fd) {}
  ~UnixFd() { reset(); }

  UnixFd(UnixFd&& other) noexcept : fd_(other.release()) {}
  UnixFd& operator=(UnixFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UnixFd(const UnixFd&) = delete;
  UnixFd& operator=(const UnixFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Outcome of one nonblocking read/write attempt.
enum class IoStatus : unsigned char {
  kOk,          ///< >= 1 byte transferred
  kWouldBlock,  ///< EAGAIN/EWOULDBLOCK — retry after poll()
  kClosed,      ///< orderly EOF (reads) or EPIPE/ECONNRESET (writes)
  kError,       ///< any other errno (connection unusable)
};

/// Create a pipe whose write end is safe to use from a signal handler /
/// pool worker (both ends nonblocking + CLOEXEC). Throws Error on
/// failure.
std::pair<UnixFd, UnixFd> make_wakeup_pipe();

/// Drain every pending byte from a wakeup pipe read end (level-triggered
/// poll loops coalesce wakeups this way).
void drain_wakeup_pipe(int fd);

/// Write one byte to a wakeup pipe write end, ignoring a full pipe (the
/// reader is already pending wakeup). Async-signal-safe.
void signal_wakeup_pipe(int fd);

/// Listening AF_UNIX stream socket bound to `path`. Binding unlinks a
/// stale socket file first; the destructor unlinks it again so daemons
/// do not litter. Throws Error when bind/listen fail (e.g. the path
/// exceeds sun_path, or the directory is not writable).
class UnixListener {
 public:
  UnixListener() = default;
  explicit UnixListener(const std::string& path, int backlog = 64);
  ~UnixListener();

  UnixListener(UnixListener&&) noexcept = default;
  UnixListener& operator=(UnixListener&&) noexcept = default;

  /// Accept one pending connection as a nonblocking fd. Returns an
  /// invalid UnixFd when no connection is pending (EAGAIN) or on a
  /// transient per-connection error (ECONNABORTED, EINTR).
  UnixFd accept();

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }
  const std::string& path() const { return path_; }

  /// Close the listening socket and unlink the path (idempotent): the
  /// graceful-drain "stop accepting" step, before the listener object
  /// itself goes away.
  void close();

 private:
  UnixFd fd_;
  std::string path_;
};

/// Connect to a listening unix socket. Blocking fd (client side); throws
/// Error when the socket does not exist or refuses.
UnixFd unix_connect(const std::string& path);

/// Set a receive timeout on a blocking socket (0 = never time out).
void set_recv_timeout(int fd, double seconds);

/// Nonblocking read into `buffer`/`size`. On kOk, `*transferred` holds
/// the byte count.
IoStatus socket_read(int fd, char* buffer, std::size_t size,
                     std::size_t* transferred);

/// Nonblocking write of `buffer`/`size` (MSG_NOSIGNAL — a dead peer
/// yields kClosed, not SIGPIPE). On kOk, `*transferred` holds the byte
/// count (possibly short).
IoStatus socket_write(int fd, const char* buffer, std::size_t size,
                      std::size_t* transferred);

/// Blocking write of the whole buffer (client side). Returns false when
/// the peer closed or errored.
bool write_all(int fd, const char* buffer, std::size_t size);

void set_nonblocking(int fd);

}  // namespace cps
