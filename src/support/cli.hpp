// Tiny command-line flag parser used by examples and benchmark binaries.
//
// Supports "--name value", "--name=value" and boolean "--name" flags.
// Unknown flags raise ParseError so typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cps {

/// Declarative flag set; call parse(argc, argv) then read typed values.
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Declare a flag with a default value (rendered in --help).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);
  /// Declare a boolean flag (defaults to false, presence sets true).
  void add_bool(const std::string& name, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help text printed
  /// to stdout); throws ParseError on unknown or malformed flags.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Non-negative count flag with a lower bound; throws ParseError when
  /// the value is below `min_value` (e.g. a negative count).
  std::size_t get_count(const std::string& name,
                        std::int64_t min_value = 0) const;

  /// Comma-separated list of counts ("60,80,120"); empty fields are
  /// skipped. Throws ParseError (naming the flag) on malformed items, on
  /// items below `min_value`, or when the list is empty.
  std::vector<std::size_t> get_count_list(const std::string& name,
                                          std::int64_t min_value = 1) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help_text() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    bool boolean = false;
  };

  const Flag& find(const std::string& name) const;

  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cps
