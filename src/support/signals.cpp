#include "support/signals.hpp"

#include <atomic>

#include "support/error.hpp"

namespace cps {

namespace {

// Handler-visible state. The write fd is an int (not UnixFd) because the
// handler may run on any thread at any time; it is only mutated while no
// handlers are installed.
std::atomic<bool> g_instance_alive{false};
volatile std::sig_atomic_t g_triggered = 0;
int g_wakeup_fd = -1;

extern "C" void signal_drain_handler(int) {
  g_triggered = 1;
  if (g_wakeup_fd >= 0) signal_wakeup_pipe(g_wakeup_fd);
}

UnixFd g_write_end;  // owns g_wakeup_fd for the instance's lifetime

}  // namespace

SignalDrain::SignalDrain(std::initializer_list<int> signals) {
  CPS_REQUIRE(!g_instance_alive.exchange(true),
              "only one SignalDrain may be alive per process");
  auto pipe = make_wakeup_pipe();
  read_end_ = std::move(pipe.first);
  g_write_end = std::move(pipe.second);
  g_wakeup_fd = g_write_end.get();
  g_triggered = 0;

  struct sigaction action{};
  action.sa_handler = signal_drain_handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: the whole point is that a blocking poll() returns
  // (EINTR) even if the pipe write raced it.
  action.sa_flags = 0;
  for (int signo : signals) {
    Installed entry{signo, {}};
    if (::sigaction(signo, &action, &entry.previous) != 0) {
      // Roll back what was installed so the process is not left with a
      // half-applied disposition set.
      for (auto it = installed_.rbegin(); it != installed_.rend(); ++it) {
        ::sigaction(it->signo, &it->previous, nullptr);
      }
      g_wakeup_fd = -1;
      g_write_end.reset();
      g_instance_alive.store(false);
      throw Error(ErrorCode::kInternal,
                  "sigaction failed for signal " + std::to_string(signo));
    }
    installed_.push_back(entry);
  }
}

SignalDrain::~SignalDrain() {
  for (auto it = installed_.rbegin(); it != installed_.rend(); ++it) {
    ::sigaction(it->signo, &it->previous, nullptr);
  }
  g_wakeup_fd = -1;
  g_write_end.reset();
  g_triggered = 0;
  g_instance_alive.store(false);
}

bool SignalDrain::triggered() const {
  drain_wakeup_pipe(read_end_.get());
  return g_triggered != 0;
}

}  // namespace cps
