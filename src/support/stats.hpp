// Streaming and batch descriptive statistics used by the benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace cps {

/// Accumulates samples and reports summary statistics.
class StatAccumulator {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Percentile in [0,100] by linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples for which pred holds, in [0,1].
  template <typename Pred>
  double fraction(Pred pred) const {
    if (samples_.empty()) return 0.0;
    std::size_t n = 0;
    for (double x : samples_) {
      if (pred(x)) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace cps
