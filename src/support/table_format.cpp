#include "support/table_format.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace cps {

void AsciiTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

AsciiTable& AsciiTable::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

AsciiTable& AsciiTable::cell(std::int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

AsciiTable& AsciiTable::cell(double value, int decimals) {
  pending_.push_back(format_double(value, decimals));
  return *this;
}

void AsciiTable::end_row() {
  rows_.push_back(pending_);
  pending_.clear();
}

void AsciiTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto line = [&](const std::vector<std::string>& cells, std::ostream& o) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      o << (i == 0 ? "| " : " | ");
      // Left-align the first column (labels), right-align the rest (numbers).
      o << (i == 0 ? pad_right(c, widths[i]) : pad_left(c, widths[i]));
    }
    o << " |\n";
  };

  if (!title_.empty()) os << title_ << '\n';
  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');
  os << rule << '\n';
  if (!header_.empty()) {
    line(header_, os);
    os << rule << '\n';
  }
  for (const auto& row : rows_) line(row, os);
  os << rule << '\n';
}

}  // namespace cps
