// Deterministic, seeded fault injection for robustness tests.
//
// The pipeline's error paths — exceptions crossing ThreadPool steal
// boundaries, cancellation racing the merge's DFS commit, a batch item
// dying mid-graph — are nearly impossible to hit organically with real
// inputs, so they would rot untested. This framework plants named fault
// *sites* at the interesting boundaries (engine run/step, merge
// adjust/speculative job/commit, trie subtree/commit, batch item, pool
// group task); a test arms a site with a 1-based hit ordinal and the
// site throws InjectedFault on exactly that hit — deterministically,
// because the ordinal counts hits, not wall clock.
//
// The hooks compile to nothing unless the CPS_FAULT_INJECT CMake option
// is ON (tests GTEST_SKIP when fault::enabled() is false): production
// builds carry zero overhead, and the fault build's only unarmed cost
// is one relaxed atomic load per site visit.
//
// Invariant under test: after any injected fault, every EngineWorkspace
// and EngineHistory stays reusable, and a subsequent clean run produces
// byte-identical output to a never-faulted run.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace cps {

/// Deterministic test failure raised by an armed fault site. `transient`
/// models a recoverable condition: the batch driver retries transient
/// faults with capped, seed-deterministic backoff instead of failing the
/// item outright.
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& site, bool transient)
      : Error(ErrorCode::kInjectedFault,
              "injected fault at site '" + site + "'" +
                  (transient ? " (transient)" : "")),
        site_(site),
        transient_(transient) {}

  const std::string& site() const { return site_; }
  bool transient() const { return transient_; }

 private:
  std::string site_;
  bool transient_;
};

namespace fault {

/// Compile-time switch (the CPS_FAULT_INJECT CMake option).
constexpr bool enabled() {
#ifdef CPS_FAULT_INJECT
  return true;
#else
  return false;
#endif
}

/// When and how an armed site fires.
struct FaultSpec {
  /// 1-based ordinal of the first hit that fires (1 = the next hit).
  std::uint64_t fire_at = 1;
  /// Consecutive hits that fire, starting at fire_at (so a retried
  /// operation can be made to fail N times and then succeed).
  std::uint64_t count = 1;
  /// Throw a transient fault (see InjectedFault::transient).
  bool transient = false;
};

/// Arm `site`; its hit counter restarts at zero. Sites are plain string
/// names (see the CPS_FAULT_POINT call sites); arming an unknown name is
/// legal and simply never fires.
void arm(const std::string& site, const FaultSpec& spec);

/// Disarm every site and reset all counters.
void disarm_all();

/// Hits observed at `site` since it was armed (0 when never armed;
/// unarmed sites do not count hits — the fast path skips the registry).
std::uint64_t hits(const std::string& site);

/// Faults actually thrown from `site` since it was armed.
std::uint64_t fires(const std::string& site);

namespace detail {
/// Registered by CPS_FAULT_POINT. Throws InjectedFault when armed to
/// fire at this hit; otherwise just counts (armed sites only).
void hit(const char* site);
}  // namespace detail

}  // namespace fault
}  // namespace cps

/// Named fault site. Compiles away without CPS_FAULT_INJECT; with it,
/// costs one relaxed atomic load while no site is armed.
#ifdef CPS_FAULT_INJECT
#define CPS_FAULT_POINT(site) ::cps::fault::detail::hit(site)
#else
#define CPS_FAULT_POINT(site) \
  do {                        \
  } while (false)
#endif
