#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <system_error>

#include "support/error.hpp"

namespace cps {

bool JsonWriter::write_output(const std::string& path,
                              const std::string& payload) {
  if (path == "-") {
    std::cout << payload;
    return true;
  }
  std::ofstream out(path);
  out << payload;
  out.close();
  if (!out) {
    std::cerr << "error: could not write " << path << '\n';
    return false;
  }
  std::cerr << "wrote " << path << '\n';
  return true;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_member_.back()) out_ += ',';
  has_member_.back() = true;
  if (indent_ > 0 && depth_ > 0) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }
}

void JsonWriter::open(char c) {
  comma_and_newline();
  CPS_REQUIRE(depth_ < 128, "JsonWriter: nesting too deep");
  out_ += c;
  ++depth_;
  has_member_.push_back(false);
}

void JsonWriter::close(char c) {
  CPS_REQUIRE(depth_ > 0, "JsonWriter: unbalanced close");
  const bool had_members = has_member_.back();
  has_member_.pop_back();
  --depth_;
  if (indent_ > 0 && had_members) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }
  out_ += c;
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma_and_newline();
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  comma_and_newline();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_and_newline();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::write_int(std::int64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::write_uint(std::uint64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma_and_newline();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_and_newline();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  out_ += "null";
  return *this;
}

// ----------------------------------------------------------- JsonValue --

struct JsonValue::Parser {
  /// Containers nest by recursion; bound the depth so corrupt input (a
  /// truncated file of '[' bytes, say) raises ParseError instead of
  /// overflowing the stack.
  static constexpr int kMaxDepth = 256;

  const std::string& text;
  std::size_t pos = 0;
  int depth = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos) +
                     ": " + message);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + text[pos] + "'");
    }
    ++pos;
  }

  bool consume_keyword(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (the writer only emits
          // \u00xx control escapes; surrogate pairs are out of scope).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue out;
    if (c == '{') {
      if (++depth > kMaxDepth) fail("nesting too deep");
      ++pos;
      out.kind_ = Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        --depth;
        return out;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        out.members_.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        --depth;
        return out;
      }
    }
    if (c == '[') {
      if (++depth > kMaxDepth) fail("nesting too deep");
      ++pos;
      out.kind_ = Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        --depth;
        return out;
      }
      while (true) {
        out.items_.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        --depth;
        return out;
      }
    }
    if (c == '"') {
      out.kind_ = Kind::kString;
      out.string_ = parse_string();
      return out;
    }
    if (consume_keyword("true")) {
      out.kind_ = Kind::kBool;
      out.bool_ = true;
      return out;
    }
    if (consume_keyword("false")) {
      out.kind_ = Kind::kBool;
      out.bool_ = false;
      return out;
    }
    if (consume_keyword("null")) return out;
    // Number.
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail("unexpected character");
    const std::string token = text.substr(start, pos - start);
#if defined(__cpp_lib_to_chars)
    // Locale-independent: '.' is the decimal separator regardless of the
    // process locale (std::stod would reject "1.5" under e.g. de_DE).
    const char* token_end = token.data() + token.size();
    const auto [parse_end, ec] =
        std::from_chars(token.data(), token_end, out.number_);
    if (ec != std::errc() || parse_end != token_end) {
      fail("malformed number '" + token + "'");
    }
#else
    std::size_t used = 0;
    try {
      out.number_ = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
    if (used != token.size()) fail("malformed number '" + token + "'");
#endif
    out.kind_ = Kind::kNumber;
    return out;
  }
};

JsonValue JsonValue::parse(const std::string& text) {
  Parser parser{text};
  JsonValue out = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing content");
  return out;
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot read JSON file: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse(text);
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw ParseError("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw ParseError("JSON value is not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw ParseError("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw ParseError("JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) {
    throw ParseError("JSON value is not an object");
  }
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw ParseError("missing JSON object member: " + key);
  }
  return *found;
}

}  // namespace cps
