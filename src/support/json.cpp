#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "support/error.hpp"

namespace cps {

bool JsonWriter::write_output(const std::string& path,
                              const std::string& payload) {
  if (path == "-") {
    std::cout << payload;
    return true;
  }
  std::ofstream out(path);
  out << payload;
  out.close();
  if (!out) {
    std::cerr << "error: could not write " << path << '\n';
    return false;
  }
  std::cerr << "wrote " << path << '\n';
  return true;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_member_.back()) out_ += ',';
  has_member_.back() = true;
  if (indent_ > 0 && depth_ > 0) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }
}

void JsonWriter::open(char c) {
  comma_and_newline();
  CPS_REQUIRE(depth_ < 128, "JsonWriter: nesting too deep");
  out_ += c;
  ++depth_;
  has_member_.push_back(false);
}

void JsonWriter::close(char c) {
  CPS_REQUIRE(depth_ > 0, "JsonWriter: unbalanced close");
  const bool had_members = has_member_.back();
  has_member_.pop_back();
  --depth_;
  if (indent_ > 0 && had_members) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }
  out_ += c;
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma_and_newline();
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_and_newline();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::write_int(std::int64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::write_uint(std::uint64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma_and_newline();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_and_newline();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  out_ += "null";
  return *this;
}

}  // namespace cps
