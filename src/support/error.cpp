#include "support/error.hpp"

#include <sstream>

namespace cps::detail {

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: " << message << " [" << expr << " at "
     << file << ":" << line << "]";
  throw InternalError(os.str());
}

void throw_invalid(const std::string& message) {
  throw InvalidArgument(message);
}

}  // namespace cps::detail
