#include "support/error.hpp"

#include <sstream>

namespace cps {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kValidationFailed: return "validation_failed";
    case ErrorCode::kParseFailed: return "parse_failed";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnschedulable: return "unschedulable";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kStepBudgetExceeded: return "step_budget_exceeded";
    case ErrorCode::kPathBudgetExceeded: return "path_budget_exceeded";
    case ErrorCode::kInjectedFault: return "injected_fault";
    case ErrorCode::kRejectedOverload: return "rejected_overload";
    case ErrorCode::kStoreCorrupt: return "store_corrupt";
  }
  return "?";
}

bool is_interrupt(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCancelled:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kStepBudgetExceeded:
      return true;
    default:
      return false;
  }
}

ErrorCode error_code_of(const std::exception& e) {
  if (const auto* typed = dynamic_cast<const Error*>(&e)) {
    return typed->code();
  }
  return ErrorCode::kInternal;
}

void throw_interrupt(ErrorCode code, const std::string& context) {
  switch (code) {
    case ErrorCode::kCancelled:
      throw CancelledError(context);
    case ErrorCode::kDeadlineExceeded:
      throw DeadlineExceededError(context);
    case ErrorCode::kStepBudgetExceeded:
      throw BudgetExceededError(code, context);
    default:
      break;
  }
  throw InternalError("throw_interrupt called with non-interrupt code " +
                      std::string(to_string(code)) + ": " + context);
}

namespace detail {

void throw_internal(const char* expr, const char* file, int line,
                    const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: " << message << " [" << expr << " at "
     << file << ":" << line << "]";
  throw InternalError(os.str());
}

void throw_invalid(const std::string& message) {
  throw InvalidArgument(message);
}

}  // namespace detail

}  // namespace cps
