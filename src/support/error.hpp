// Error handling primitives for the condsched library.
//
// All library errors derive from cps::Error. Precondition violations on the
// public API throw InvalidArgument; violated internal invariants throw
// InternalError (these indicate a library bug and are exercised by tests
// through deliberately corrupted inputs).
#pragma once

#include <stdexcept>
#include <string>

namespace cps {

/// Base class of every exception thrown by condsched.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A model (graph, architecture, mapping) failed semantic validation.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// A text input (``.cpg`` file, CLI flag) could not be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// An internal invariant of the library was violated (a bug in condsched).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& message);
[[noreturn]] void throw_invalid(const std::string& message);
}  // namespace detail

}  // namespace cps

/// Internal invariant check. Throws cps::InternalError when violated; always
/// enabled (scheduling correctness matters more than the branch cost).
#define CPS_ASSERT(expr, message)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::cps::detail::throw_internal(#expr, __FILE__, __LINE__, (message)); \
    }                                                                     \
  } while (false)

/// Public-API precondition check; throws cps::InvalidArgument when violated.
#define CPS_REQUIRE(expr, message)              \
  do {                                          \
    if (!(expr)) {                              \
      ::cps::detail::throw_invalid((message));  \
    }                                           \
  } while (false)
