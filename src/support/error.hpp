// Error handling primitives for the condsched library.
//
// All library errors derive from cps::Error and carry a machine-readable
// ErrorCode. Precondition violations on the public API throw
// InvalidArgument; violated internal invariants throw InternalError
// (these indicate a library bug and are exercised by tests through
// deliberately corrupted inputs). Interrupt conditions — cancellation,
// deadlines, budgets (support/cancel.hpp) and injected faults
// (support/fault.hpp) — have their own codes so callers can tell "the
// input is bad" from "the run was cut short" without string matching:
// result structs (EngineResult, MergeResult, BatchItem) report the code,
// and the batch JSON serializes it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cps {

/// Machine-readable classification of every error the library reports,
/// whether thrown (Error::code) or returned (MergeResult::code,
/// BatchItem::code, ...). Serialized via to_string into batch JSON.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  /// A caller violated a documented API precondition.
  kInvalidArgument,
  /// A model or generated table failed semantic validation.
  kValidationFailed,
  /// A text input could not be parsed.
  kParseFailed,
  /// An internal invariant was violated (a bug in condsched).
  kInternal,
  /// A scheduling request has no feasible schedule (locked reservation
  /// cannot be honored, or the event loop deadlocked). On validated CPGs
  /// this only occurs for over-constrained merge adjustments, which the
  /// merge recovers from by relaxing locks.
  kUnschedulable,
  /// A CancelToken was triggered (support/cancel.hpp).
  kCancelled,
  /// A RunBudget wall-clock deadline passed.
  kDeadlineExceeded,
  /// A RunBudget step budget was exhausted.
  kStepBudgetExceeded,
  /// The alternative-path budget (CoSynthesisOptions::max_paths or
  /// RunBudget::max_paths) was crossed. With BudgetAction::kBound this
  /// marks a *successful* bounded-coverage result, not a failure.
  kPathBudgetExceeded,
  /// A deterministic test fault fired (support/fault.hpp).
  kInjectedFault,
  /// The co-synthesis service refused admission: a bounded request queue
  /// or in-flight-bytes watermark was exceeded (or the daemon is
  /// draining). Never raised by the library pipeline itself — it exists
  /// so servers can shed load with a *typed* response instead of a
  /// string, and so clients can distinguish "back off and retry" from
  /// every other failure.
  kRejectedOverload,
  /// A persistent-store entry failed validation on load (bad magic,
  /// version mismatch, truncation, checksum failure). The schedule cache
  /// treats this as a miss and recomputes; it surfaces only to callers of
  /// io/store directly.
  kStoreCorrupt,
};

/// Stable snake_case name (used in JSON output and error messages).
const char* to_string(ErrorCode code);

/// True for codes meaning "the run was cut short by an external limit"
/// (cancel/deadline/step budget) rather than "this input cannot be
/// scheduled". Interrupted engine results must NOT enter the merge's
/// lock-relaxation loop (relaxing locks cannot un-cancel a run) and are
/// rethrown as typed exceptions by the driver.
bool is_interrupt(ErrorCode code);

/// Base class of every exception thrown by condsched.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(ErrorCode::kInternal) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// A caller supplied an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error(ErrorCode::kInvalidArgument, what) {}
};

/// A model (graph, architecture, mapping) failed semantic validation.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error(ErrorCode::kValidationFailed, what) {}
};

/// A text input (``.cpg`` file, CLI flag) could not be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what)
      : Error(ErrorCode::kParseFailed, what) {}
};

/// An internal invariant of the library was violated (a bug in condsched).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error(ErrorCode::kInternal, what) {}
};

/// A CancelToken fired while a run polled its RunBudget.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what)
      : Error(ErrorCode::kCancelled, what) {}
};

/// A RunBudget wall-clock deadline passed mid-run.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : Error(ErrorCode::kDeadlineExceeded, what) {}
};

/// A RunBudget step budget — or, with BudgetAction::kThrow, the
/// alternative-path budget — was exhausted mid-run.
class BudgetExceededError : public Error {
 public:
  BudgetExceededError(ErrorCode code, const std::string& what)
      : Error(code, what) {}
};

/// A persistent-store entry failed validation on load (io/store).
class StoreCorruptError : public Error {
 public:
  explicit StoreCorruptError(const std::string& what)
      : Error(ErrorCode::kStoreCorrupt, what) {}
};

/// The ErrorCode of any exception: Error subclasses report their own
/// code, everything else maps to kInternal. Used by the batch driver to
/// type item failures without a dynamic_cast ladder.
ErrorCode error_code_of(const std::exception& e);

/// Throw the typed exception matching an interrupt code (precondition:
/// is_interrupt(code)). The driver uses it to convert interrupted
/// EngineResult/MergeResult codes back into exceptions at the API edge.
[[noreturn]] void throw_interrupt(ErrorCode code, const std::string& context);

namespace detail {
[[noreturn]] void throw_internal(const char* expr, const char* file, int line,
                                 const std::string& message);
[[noreturn]] void throw_invalid(const std::string& message);
}  // namespace detail

}  // namespace cps

/// Internal invariant check. Throws cps::InternalError when violated; always
/// enabled (scheduling correctness matters more than the branch cost).
#define CPS_ASSERT(expr, message)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::cps::detail::throw_internal(#expr, __FILE__, __LINE__, (message)); \
    }                                                                     \
  } while (false)

/// Public-API precondition check; throws cps::InvalidArgument when violated.
#define CPS_REQUIRE(expr, message)              \
  do {                                          \
    if (!(expr)) {                              \
      ::cps::detail::throw_invalid((message));  \
    }                                           \
  } while (false)
