// Length-prefixed message framing for the co-synthesis service.
//
// The wire format is deliberately minimal: every message is a 4-byte
// big-endian unsigned payload length followed by that many payload bytes
// (UTF-8 JSON in the service protocol, but the codec is payload-agnostic).
// Stream boundaries are therefore exact — a reader never has to scan for
// delimiters inside a payload — and a single malformed length cannot be
// resynchronized, so the decoder treats an over-limit length as a fatal
// protocol error and the connection must be closed.
//
// FrameDecoder is incremental: feed() whatever the socket produced
// (including partial headers) and pop complete frames as they become
// available. The internal buffer compacts lazily so a burst of small
// frames costs one memmove, not one per frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cps {

/// Bytes of the length prefix preceding every payload.
constexpr std::size_t kFrameHeaderSize = 4;

/// Default payload cap: generous for request/response JSON, small enough
/// that a corrupt length prefix cannot make a reader allocate gigabytes.
constexpr std::size_t kDefaultMaxFramePayload = std::size_t{16} << 20;

/// Encode one frame: 4-byte big-endian length + payload, appended to
/// `out` (append-based so a response writer can batch several frames
/// into one socket write). Throws InvalidArgument when the payload
/// exceeds `max_payload`.
void append_frame(std::string& out, const std::string& payload,
                  std::size_t max_payload = kDefaultMaxFramePayload);

/// Convenience form returning a fresh buffer.
std::string encode_frame(const std::string& payload,
                         std::size_t max_payload = kDefaultMaxFramePayload);

/// Incremental frame reader (see file comment).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Append raw stream bytes. Returns false — permanently — once a frame
  /// header announces a payload larger than max_payload (the stream is
  /// unrecoverable; close the connection).
  bool feed(const char* data, std::size_t size);

  /// Pop the next complete payload, if any.
  std::optional<std::string> next();

  /// True after feed() observed an over-limit length prefix.
  bool corrupt() const { return corrupt_; }

  /// Bytes buffered but not yet returned (header + partial payloads).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already returned
  bool corrupt_ = false;
};

}  // namespace cps
