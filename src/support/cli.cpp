#include "support/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace cps {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  CPS_REQUIRE(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{default_value, help, false};
  order_.push_back(name);
}

void CliParser::add_bool(const std::string& name, const std::string& help) {
  CPS_REQUIRE(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{"false", help, true};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      std::cout << help_text();
      return false;
    }
    std::string name = arg;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw ParseError("unknown flag --" + name + " (see --help)");
    }
    if (it->second.boolean) {
      values_[name] = value.value_or("true");
    } else if (value) {
      values_[name] = *value;
    } else {
      if (i + 1 >= argc) {
        throw ParseError("flag --" + name + " expects a value");
      }
      values_[name] = argv[++i];
    }
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  CPS_REQUIRE(it != flags_.end(), "flag --" + name + " was never declared");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  auto it = values_.find(name);
  return it == values_.end() ? flag.default_value : it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  // std::stoll throws raw std::invalid_argument / std::out_of_range;
  // translate both into a ParseError that names the offending flag, and
  // reject trailing garbage ("12abc") via the parse position.
  const std::string v = get_string(name);
  std::size_t pos = 0;
  std::int64_t out = 0;
  try {
    out = std::stoll(v, &pos);
  } catch (const std::out_of_range&) {
    throw ParseError("flag --" + name + ": '" + v +
                     "' is out of range for a 64-bit integer");
  } catch (const std::exception&) {
    throw ParseError("flag --" + name + ": '" + v + "' is not an integer");
  }
  if (pos != v.size()) {
    throw ParseError("flag --" + name + ": '" + v + "' is not an integer");
  }
  return out;
}

std::size_t CliParser::get_count(const std::string& name,
                                 std::int64_t min_value) const {
  const std::int64_t v = get_int(name);
  if (v < min_value) {
    throw ParseError("flag --" + name + ": must be >= " +
                     std::to_string(min_value));
  }
  return static_cast<std::size_t>(v);
}

std::vector<std::size_t> CliParser::get_count_list(
    const std::string& name, std::int64_t min_value) const {
  std::vector<std::size_t> out;
  for (const std::string& field : split(get_string(name), ',')) {
    const std::string v = trim(field);
    if (v.empty()) continue;
    std::size_t pos = 0;
    std::int64_t n = 0;
    try {
      n = std::stoll(v, &pos);
    } catch (const std::exception&) {
      pos = 0;  // report through the shared error below
    }
    if (pos != v.size() || n < min_value) {
      throw ParseError("flag --" + name + ": '" + v +
                       "' is not an integer >= " +
                       std::to_string(min_value));
    }
    out.push_back(static_cast<std::size_t>(n));
  }
  if (out.empty()) {
    throw ParseError("flag --" + name + ": empty list");
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  double out = 0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::out_of_range&) {
    throw ParseError("flag --" + name + ": '" + v +
                     "' is out of range for a double");
  } catch (const std::exception&) {
    throw ParseError("flag --" + name + ": '" + v + "' is not a number");
  }
  if (pos != v.size()) {
    throw ParseError("flag --" + name + ": '" + v + "' is not a number");
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ParseError("flag --" + name + ": '" + v + "' is not a boolean");
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << pad_right(name, 24) << f.help;
    if (!f.boolean) os << " (default: " << f.default_value << ")";
    os << '\n';
  }
  os << "  --" << pad_right("help", 24) << "show this message\n";
  return os.str();
}

}  // namespace cps
