// Poll-friendly delivery of termination signals.
//
// A long-lived daemon must turn SIGTERM into a *graceful drain*, not an
// abrupt exit — but almost nothing is legal inside a signal handler.
// SignalDrain uses the classic self-pipe pattern: the handler does two
// async-signal-safe things (set a sig_atomic_t flag, write one byte to a
// nonblocking pipe) and everything else happens on the event loop, which
// polls fd() alongside its sockets and calls triggered() when it wakes.
//
// One instance per process (enforced): POSIX signal dispositions are
// process-global, so a second concurrent instance could only fight over
// them. The previous dispositions are restored on destruction, making
// the scoped use in tests (install, raise, drain, uninstall) safe.
#pragma once

#include <csignal>
#include <initializer_list>
#include <vector>

#include "support/socket.hpp"

namespace cps {

class SignalDrain {
 public:
  /// Install handlers for `signals` (e.g. {SIGTERM, SIGINT}). Throws
  /// Error if another SignalDrain is alive or sigaction fails.
  explicit SignalDrain(std::initializer_list<int> signals);
  ~SignalDrain();

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  /// Read end of the self-pipe: becomes readable when a signal arrived.
  /// Poll it; then call triggered() (which also drains the pipe).
  int fd() const { return read_end_.get(); }

  /// True once any installed signal was delivered (sticky). Drains the
  /// wakeup pipe as a side effect so level-triggered poll loops settle.
  bool triggered() const;

 private:
  struct Installed {
    int signo;
    struct sigaction previous;
  };

  UnixFd read_end_;
  std::vector<Installed> installed_;
};

}  // namespace cps
