#include "support/csv.hpp"

#include "support/strings.hpp"

namespace cps {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(fields[i]);
  }
  os_ << '\n';
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(double value, int decimals) {
  pending_.push_back(format_double(value, decimals));
  return *this;
}

void CsvWriter::end_row() {
  row(pending_);
  pending_.clear();
}

}  // namespace cps
