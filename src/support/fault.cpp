#include "support/fault.hpp"

#include <atomic>
#include <map>
#include <mutex>

namespace cps::fault {

namespace {

struct SiteState {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  bool armed = false;
  FaultSpec spec;
};

// One process-wide registry: tests arm sites, any thread may hit them.
// A mutex (not lock-free) is fine — sites sit at coarse boundaries and
// only pay when something is armed; the unarmed fast path is the single
// relaxed load of armed_count below.
std::mutex registry_mutex;
std::map<std::string, SiteState>& registry() {
  static std::map<std::string, SiteState> sites;
  return sites;
}
std::atomic<std::uint64_t> armed_count{0};

}  // namespace

void arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(registry_mutex);
  SiteState& s = registry()[site];
  if (!s.armed) armed_count.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.spec = spec;
  s.hits = 0;
  s.fires = 0;
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex);
  registry().clear();
  armed_count.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex);
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

std::uint64_t fires(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex);
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.fires;
}

namespace detail {

void hit(const char* site) {
  if (armed_count.load(std::memory_order_relaxed) == 0) return;
  bool fire = false;
  bool transient = false;
  {
    std::lock_guard<std::mutex> lock(registry_mutex);
    const auto it = registry().find(site);
    if (it == registry().end() || !it->second.armed) return;
    SiteState& s = it->second;
    ++s.hits;
    if (s.hits >= s.spec.fire_at && s.hits < s.spec.fire_at + s.spec.count) {
      ++s.fires;
      fire = true;
      transient = s.spec.transient;
    }
  }
  if (fire) throw InjectedFault(site, transient);
}

}  // namespace detail

}  // namespace cps::fault
