// Cooperative cancellation and run budgets.
//
// The co-synthesis pipeline is a deep stack of loops — the engine's
// event loop, the merge's decision-tree walk, trie subtree jobs, batch
// items — and every one of them can be handed a RunBudget: a non-owning
// bundle of an optional CancelToken, an optional wall-clock deadline,
// and optional step/path budgets. Loops poll it cooperatively (there is
// no preemption); a trip surfaces as a typed ErrorCode at the layer
// that observed it (see support/error.hpp), never as a torn state —
// after any trip every EngineWorkspace/EngineHistory stays reusable and
// a subsequent clean run is byte-identical to a never-interrupted one.
//
// Polling cost is bounded by BudgetPoll: the cancel flag is a relaxed
// atomic load checked on every poll, the clock is read only once per
// kStride polls (a steady_clock read is ~20ns but engine steps can be
// ~100ns, so per-step clock reads would be measurable).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "support/error.hpp"

namespace cps {

/// Thread-safe one-way cancellation flag. The requesting side calls
/// cancel() (any thread, any time); workers observe it through
/// RunBudget/BudgetPoll polls. reset() re-arms the token for reuse —
/// only safe between runs, when no loop is polling it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Limits for one co-synthesis run (or one batch item). Non-owning and
/// shared: the same budget is handed by pointer to every layer of one
/// run — engine, merge walk, speculative jobs, subtree jobs — so the
/// step counter is global to the run, not per engine invocation.
/// Non-copyable (the step counter is an atomic); pass by pointer.
struct RunBudget {
  using clock = std::chrono::steady_clock;

  /// Optional external cancellation (non-owning; may be null).
  const CancelToken* token = nullptr;
  /// Wall-clock deadline, meaningful only when has_deadline is set.
  clock::time_point deadline{};
  bool has_deadline = false;
  /// Committed engine steps across the whole run; 0 = unlimited.
  std::uint64_t max_steps = 0;
  /// Alternative-path budget folded into CoSynthesisOptions::max_paths
  /// (the smaller nonzero value wins); 0 = unlimited.
  std::size_t max_paths = 0;

  RunBudget() = default;
  RunBudget(const RunBudget&) = delete;
  RunBudget& operator=(const RunBudget&) = delete;

  void set_deadline_after(double ms) {
    deadline = clock::now() + std::chrono::duration_cast<clock::duration>(
                                  std::chrono::duration<double, std::milli>(ms));
    has_deadline = true;
  }

  /// Count `n` committed engine steps against max_steps. Returns
  /// kStepBudgetExceeded once the cumulative total crosses the budget.
  ErrorCode charge_steps(std::uint64_t n) {
    if (max_steps == 0) return ErrorCode::kOk;
    const std::uint64_t used =
        steps_used_.fetch_add(n, std::memory_order_relaxed) + n;
    return used > max_steps ? ErrorCode::kStepBudgetExceeded : ErrorCode::kOk;
  }

  std::uint64_t steps_used() const {
    return steps_used_.load(std::memory_order_relaxed);
  }

  /// Cancel flag only (one relaxed load; safe to call every iteration).
  ErrorCode check_cheap() const {
    if (token != nullptr && token->cancelled()) return ErrorCode::kCancelled;
    return ErrorCode::kOk;
  }

  /// Cancel flag + wall clock (reads the clock; amortize via BudgetPoll).
  ErrorCode check_now() const {
    const ErrorCode c = check_cheap();
    if (c != ErrorCode::kOk) return c;
    if (has_deadline && clock::now() >= deadline) {
      return ErrorCode::kDeadlineExceeded;
    }
    return ErrorCode::kOk;
  }

 private:
  std::atomic<std::uint64_t> steps_used_{0};
};

/// Bounded-interval poller over an optional budget: checks the cancel
/// token on every poll() and the wall clock once per kStride polls, so
/// hot loops can poll unconditionally. A null budget polls to kOk for
/// free (one pointer test).
class BudgetPoll {
 public:
  static constexpr std::uint32_t kStride = 64;

  explicit BudgetPoll(const RunBudget* budget) : budget_(budget) {}

  ErrorCode poll() {
    if (budget_ == nullptr) return ErrorCode::kOk;
    const ErrorCode c = budget_->check_cheap();
    if (c != ErrorCode::kOk) return c;
    if (++tick_ < kStride) return ErrorCode::kOk;
    tick_ = 0;
    return budget_->check_now();
  }

 private:
  const RunBudget* budget_;
  std::uint32_t tick_ = 0;
};

}  // namespace cps
