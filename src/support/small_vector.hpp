// SmallVector: a dynamic array with inline storage for the first N
// elements. Guard DNFs hold one or two cubes almost always, so keeping
// them inline removes a heap allocation from every Dnf copy and makes
// CoverCache keys allocation-free for paper-scale models.
//
// Deliberately minimal: contiguous storage, the std::vector subset the
// condition algebra needs (push_back, erase, iteration, comparison), and
// nothing else. Elements must be copyable; iterators are plain pointers
// so std:: algorithms (sort, unique, erase idiom) work unchanged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace cps {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { append(other); }
  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      append(other);
    }
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      release_heap();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() {
    clear();
    release_heap();
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      // The arguments may alias an element of this vector (v.push_back(
      // v[0]) is legal on std::vector); materialize the new value before
      // grow() destroys the old storage.
      T value(std::forward<Args>(args)...);
      grow(capacity_ * 2);
      T* slot = data_ + size_;
      ::new (static_cast<void*>(slot)) T(std::move(value));
      ++size_;
      return *slot;
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }

  iterator erase(const_iterator first, const_iterator last) {
    T* result = begin() + (first - begin());
    if (first == last) return result;  // std::vector parity: a no-op
    T* dst = result;
    T* src = begin() + (last - begin());
    while (src != end()) *dst++ = std::move(*src++);
    while (end() != dst) pop_back();
    return result;
  }

  /// Range insert. As with std::vector, [first, last) must not point
  /// into this container.
  template <typename It>
  void insert(const_iterator pos, It first, It last) {
    const std::size_t at = static_cast<std::size_t>(pos - begin());
    const std::size_t count = static_cast<std::size_t>(last - first);
    reserve(size_ + count);
    for (It it = first; it != last; ++it) push_back(*it);
    std::rotate(begin() + at, end() - count, end());
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }
  friend bool operator<(const SmallVector& a, const SmallVector& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }
  bool on_heap() const { return data_ != nullptr && capacity_ > N; }

  void grow(std::size_t want) {
    const std::size_t next = std::max<std::size_t>(want, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(next * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = fresh;
    capacity_ = next;
  }

  void release_heap() {
    if (on_heap()) ::operator delete(static_cast<void*>(data_));
    data_ = inline_data();
    capacity_ = N;
  }

  void append(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other.data_[i]);
  }

  void move_from(SmallVector&& other) {
    if (other.on_heap()) {
      // Steal the heap block; leave the source empty on its inline buffer.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    for (std::size_t i = 0; i < other.size_; ++i) {
      push_back(std::move(other.data_[i]));
    }
    other.clear();
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace cps
