// Minimal CSV writer for experiment output (RFC 4180 quoting).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cps {

/// Streams rows of a CSV file, quoting fields only when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Write a header or data row from pre-rendered fields.
  void row(const std::vector<std::string>& fields);

  /// Fluent per-cell interface: writer.cell(a).cell(b).end_row();
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(double value, int decimals = 6);
  void end_row();

 private:
  static std::string escape(const std::string& field);

  std::ostream& os_;
  std::vector<std::string> pending_;
};

}  // namespace cps
