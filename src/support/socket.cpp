#include "support/socket.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/error.hpp"

namespace cps {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(ErrorCode::kInternal, what + ": " + ::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CPS_REQUIRE(path.size() < sizeof(addr.sun_path),
              "unix socket path too long: " + path);
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void UnixFd::reset() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable-by-retry on Linux (the fd is gone
    // either way); just ignore the result.
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

std::pair<UnixFd, UnixFd> make_wakeup_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  UnixFd read_end(fds[0]);
  UnixFd write_end(fds[1]);
  set_nonblocking(read_end.get());
  set_nonblocking(write_end.get());
  ::fcntl(read_end.get(), F_SETFD, FD_CLOEXEC);
  ::fcntl(write_end.get(), F_SETFD, FD_CLOEXEC);
  return {std::move(read_end), std::move(write_end)};
}

void drain_wakeup_pipe(int fd) {
  char sink[256];
  while (true) {
    const ssize_t n = ::read(fd, sink, sizeof(sink));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (drained) or EOF/error — nothing more to coalesce
  }
}

void signal_wakeup_pipe(int fd) {
  const char byte = 1;
  // A full pipe means a wakeup is already pending — losing this byte is
  // fine. EINTR: retry once is pointless for a 1-byte nonblocking write
  // that exists only to make poll() return; the pending-data case covers
  // us, and repeated wakeups are idempotent.
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
}

UnixListener::UnixListener(const std::string& path, int backlog)
    : path_(path) {
  const sockaddr_un addr = make_addr(path);
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  // A stale socket file from a crashed daemon would fail bind with
  // EADDRINUSE; the service owns its path, so replace it.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(fd.get());
  fd_ = std::move(fd);
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (fd_.valid()) {
    fd_.reset();
    ::unlink(path_.c_str());
  }
}

UnixFd UnixListener::accept() {
  while (true) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      UnixFd conn(fd);
      set_nonblocking(conn.get());
      ::fcntl(conn.get(), F_SETFD, FD_CLOEXEC);
      return conn;
    }
    if (errno == EINTR) continue;
    // EAGAIN: nothing pending. ECONNABORTED: the peer gave up between
    // connect and accept — per-connection noise, not a listener error.
    return UnixFd();
  }
}

UnixFd unix_connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  while (true) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    throw_errno("connect(" + path + ")");
  }
}

void set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

IoStatus socket_read(int fd, char* buffer, std::size_t size,
                     std::size_t* transferred) {
  *transferred = 0;
  while (true) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n > 0) {
      *transferred = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus socket_write(int fd, const char* buffer, std::size_t size,
                      std::size_t* transferred) {
  *transferred = 0;
  while (true) {
    const ssize_t n = ::send(fd, buffer, size, MSG_NOSIGNAL);
    if (n >= 0) {
      *transferred = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

bool write_all(int fd, const char* buffer, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    std::size_t n = 0;
    const IoStatus status = socket_write(fd, buffer + sent, size - sent, &n);
    if (status == IoStatus::kOk) {
      sent += n;
      continue;
    }
    if (status == IoStatus::kWouldBlock) {
      // Blocking client sockets only reach here via SO_SNDTIMEO (unset by
      // default); treat a timeout as a dead peer.
      return false;
    }
    return false;
  }
  return true;
}

}  // namespace cps
