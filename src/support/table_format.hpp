// ASCII table rendering for benchmark and example output.
//
// The benchmark binaries print paper-style tables; this helper keeps the
// layout code out of the experiment logic.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cps {

/// Accumulates rows of strings and renders them with aligned columns.
class AsciiTable {
 public:
  /// Optional title printed above the table.
  explicit AsciiTable(std::string title = "") : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);

  /// Fluent cell interface mirroring CsvWriter.
  AsciiTable& cell(const std::string& value);
  AsciiTable& cell(std::int64_t value);
  AsciiTable& cell(double value, int decimals = 2);
  void end_row();

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

  void render(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace cps
