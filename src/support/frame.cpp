#include "support/frame.hpp"

#include <cstring>

#include "support/error.hpp"

namespace cps {

namespace {

constexpr std::size_t kHeaderBytes = 4;

std::uint32_t read_be32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

void append_frame(std::string& out, const std::string& payload,
                  std::size_t max_payload) {
  CPS_REQUIRE(payload.size() <= max_payload &&
                  payload.size() <= std::size_t{0xffffffff},
              "frame payload exceeds the frame size limit");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char header[kHeaderBytes];
  header[0] = static_cast<char>((n >> 24) & 0xff);
  header[1] = static_cast<char>((n >> 16) & 0xff);
  header[2] = static_cast<char>((n >> 8) & 0xff);
  header[3] = static_cast<char>(n & 0xff);
  out.append(header, kHeaderBytes);
  out.append(payload);
}

std::string encode_frame(const std::string& payload, std::size_t max_payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  append_frame(out, payload, max_payload);
  return out;
}

bool FrameDecoder::feed(const char* data, std::size_t size) {
  if (corrupt_) return false;
  // Compact once the consumed prefix dominates the buffer: amortized O(1)
  // per byte, and a long-lived connection cannot grow the buffer beyond
  // ~2x its peak unconsumed size.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
  // Validate the next header eagerly so a poisoned length is reported on
  // feed, before a caller waits for a payload that will never fit.
  if (buffer_.size() - consumed_ >= kHeaderBytes) {
    const std::uint32_t n = read_be32(buffer_.data() + consumed_);
    if (n > max_payload_) {
      corrupt_ = true;
      return false;
    }
  }
  return true;
}

std::optional<std::string> FrameDecoder::next() {
  if (corrupt_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return std::nullopt;
  const std::uint32_t n = read_be32(buffer_.data() + consumed_);
  if (n > max_payload_) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (available < kHeaderBytes + n) return std::nullopt;
  std::string payload(buffer_.data() + consumed_ + kHeaderBytes, n);
  consumed_ += kHeaderBytes + n;
  return payload;
}

}  // namespace cps
