// Deterministic pseudo-random number generation.
//
// Every randomized component of condsched (graph generator, ablation
// shuffles, property tests) takes an explicit Rng so experiments are exactly
// reproducible from a seed. The engine is xoshiro256**, seeded through
// SplitMix64 so that small consecutive seeds give independent streams.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace cps {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Exponentially distributed real with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    CPS_REQUIRE(!v.empty(), "Rng::pick on empty vector");
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-trial streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace cps
