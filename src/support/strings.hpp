// Small string utilities shared by the text I/O and rendering code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cps {

/// Split on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; drops empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading and trailing whitespace.
std::string trim(std::string_view s);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-point formatting with the given number of decimals.
std::string format_double(double v, int decimals);

/// Pad with spaces on the right (left-aligned) to at least `width`.
std::string pad_right(std::string s, std::size_t width);

/// Pad with spaces on the left (right-aligned) to at least `width`.
std::string pad_left(std::string s, std::size_t width);

}  // namespace cps
