#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace cps {

void StatAccumulator::add(double x) { samples_.push_back(x); }

void StatAccumulator::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

double StatAccumulator::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double StatAccumulator::mean() const {
  CPS_REQUIRE(!samples_.empty(), "mean of empty sample set");
  return sum() / static_cast<double>(samples_.size());
}

double StatAccumulator::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double StatAccumulator::min() const {
  CPS_REQUIRE(!samples_.empty(), "min of empty sample set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double StatAccumulator::max() const {
  CPS_REQUIRE(!samples_.empty(), "max of empty sample set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double StatAccumulator::percentile(double p) const {
  CPS_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  CPS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace cps
