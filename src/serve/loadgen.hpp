// Load generator for the co-synthesis service, shared by the CI smoke
// job (overload burst + mid-stream SIGTERM), the serve benchmark, and
// the --server mode of bench_batch_throughput.
//
// Two driving disciplines:
//  - Closed loop (default): each connection keeps exactly one request in
//    flight — send, await the response, send the next. Offered load
//    equals `connections` concurrent requests; the classic
//    latency-vs-concurrency probe.
//  - Open loop: each connection fires requests on a fixed schedule
//    (rate_per_sec split evenly) whether or not responses came back —
//    the discipline that actually drives a server into overload, which
//    is the point: shed responses are expected output here, not errors.
//
// Latency percentiles are computed per completed response (send-to-recv
// wall time), statuses are tallied from the typed response envelopes,
// and — for oracle verification — complete response payloads can be
// retained keyed by request id.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cps {

struct LoadGenConfig {
  std::string socket_path;
  /// Total "run" requests to issue across all connections.
  std::size_t requests = 64;
  std::size_t connections = 1;
  /// false = closed loop, true = open loop at `rate_per_sec`.
  bool open_loop = false;
  double rate_per_sec = 50.0;
  /// Client-supplied per-request deadline; 0 = none.
  double deadline_ms = 0.0;
  /// Request ids are first_id .. first_id + requests - 1; index defaults
  /// to the id server-side, so ids choose workload items.
  std::uint64_t first_id = 0;
  /// Retain each response payload (for sorting by id and comparing to
  /// the run_batch oracle).
  bool keep_payloads = false;
  /// Per-recv timeout; expiring counts the remaining requests as lost.
  double recv_timeout_s = 120.0;
  /// Treat a dropped connection as expected (mid-stream SIGTERM smoke):
  /// remaining requests are counted as disconnected, not errors.
  bool tolerate_disconnect = false;
  /// Fraction of requests (after the first) that RE-ISSUE an earlier
  /// workload index instead of a fresh one — the repeat-heavy discipline
  /// that exercises the daemon's schedule cache. Repeats pick among the
  /// already-issued indices with a zipf-ish popularity bias (early
  /// indices repeat most). 0 = every request unique (and, as before, the
  /// index is left implicit so ids keep choosing items). The plan is a
  /// pure function of (requests, repeat_frac, repeat_seed, first_id):
  /// deterministic across runs, threads, and arrival order.
  double repeat_frac = 0.0;
  std::uint64_t repeat_seed = 1;
};

struct LoadGenResult {
  std::size_t sent = 0;
  std::size_t responses = 0;
  std::size_t ok = 0;            ///< envelope status "ok"
  std::size_t shed = 0;          ///< rejected_overload
  std::size_t timed_out = 0;     ///< deadline_exceeded
  std::size_t other_failed = 0;  ///< any other typed status
  std::size_t parse_failed = 0;  ///< responses this client could not parse
  std::size_t disconnected = 0;  ///< requests lost to a dropped connection
  std::size_t recv_timeouts = 0; ///< recv() waits that expired
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  /// Repeat-mode split (repeat_frac > 0): a request is "cold" when it is
  /// the first occurrence of its workload index, "repeat" otherwise —
  /// repeats are the daemon cache's exact-hit candidates. Counts are
  /// planned sends; percentiles cover completed responses of each class.
  std::size_t unique_indices = 0;
  std::size_t repeats_planned = 0;
  double cold_p50_ms = 0.0;
  double cold_p99_ms = 0.0;
  double repeat_p50_ms = 0.0;
  double repeat_p99_ms = 0.0;
  /// (request id, response payload) pairs, unordered; filled only with
  /// keep_payloads. Sort by id before comparing to an oracle.
  std::vector<std::pair<std::uint64_t, std::string>> payloads;
};

LoadGenResult run_loadgen(const LoadGenConfig& config);

/// The deterministic workload-index plan run_loadgen(config) will use:
/// element o is the index requested by ordinal o (= id first_id + o).
/// Exposed so harnesses can rebuild the id -> index mapping when oracle-
/// verifying repeat-heavy runs. With repeat_frac = 0 this is the identity
/// plan first_id + o.
std::vector<std::uint64_t> loadgen_plan_indices(const LoadGenConfig& config);

}  // namespace cps
