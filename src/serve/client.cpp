#include "serve/client.hpp"

#include "support/error.hpp"
#include "support/json.hpp"

namespace cps {

ServeClient::ServeClient(const std::string& path, double recv_timeout_s)
    : fd_(unix_connect(path)) {
  if (recv_timeout_s > 0.0) set_recv_timeout(fd_.get(), recv_timeout_s);
}

bool ServeClient::send(const std::string& payload) {
  if (!fd_.valid()) return false;
  std::string frame;
  append_frame(frame, payload);
  if (!write_all(fd_.get(), frame.data(), frame.size())) {
    fd_.reset();
    return false;
  }
  return true;
}

std::optional<std::string> ServeClient::recv() {
  if (!fd_.valid()) return std::nullopt;
  while (true) {
    if (std::optional<std::string> frame = decoder_.next()) return frame;
    if (decoder_.corrupt()) {
      throw Error(ErrorCode::kParseFailed,
                  "corrupt frame stream from server");
    }
    char buffer[4096];
    std::size_t n = 0;
    const IoStatus status = socket_read(fd_.get(), buffer, sizeof(buffer), &n);
    if (status == IoStatus::kOk) {
      if (!decoder_.feed(buffer, n)) {
        throw Error(ErrorCode::kParseFailed,
                    "corrupt frame stream from server");
      }
      continue;
    }
    if (status == IoStatus::kWouldBlock) return std::nullopt;  // SO_RCVTIMEO
    fd_.reset();  // kClosed / kError
    return std::nullopt;
  }
}

bool ServeClient::send_run(std::uint64_t id,
                           std::optional<std::uint64_t> index,
                           double deadline_ms) {
  return send(make_run_request(id, index, deadline_ms));
}

std::string make_run_request(std::uint64_t id,
                             std::optional<std::uint64_t> index,
                             double deadline_ms) {
  JsonWriter w(0);
  w.begin_object();
  w.field("id", id);
  w.field("op", "run");
  if (index.has_value()) w.field("index", *index);
  if (deadline_ms > 0.0) w.field("deadline_ms", deadline_ms);
  w.end_object();
  return w.str();
}

}  // namespace cps
