// Blocking client for the co-synthesis service — the counterpart the
// tests, the load generator, and the --server bench mode all share. One
// ServeClient is one connection; it is deliberately synchronous (send a
// frame, read a frame) because callers that want concurrency run one
// client per thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"
#include "support/frame.hpp"
#include "support/socket.hpp"

namespace cps {

class ServeClient {
 public:
  /// Connect to the daemon at `path`. `recv_timeout_s` bounds every
  /// recv() wait (0 = wait forever). Throws Error when the socket does
  /// not exist or refuses the connection.
  explicit ServeClient(const std::string& path, double recv_timeout_s = 60.0);

  ServeClient(ServeClient&&) noexcept = default;
  ServeClient& operator=(ServeClient&&) noexcept = default;

  /// Frame and send one request payload. Returns false when the peer
  /// closed the connection (a draining daemon does this after the last
  /// flushed response).
  bool send(const std::string& payload);

  /// Block for the next response frame. nullopt on orderly EOF or
  /// receive timeout; throws Error on a corrupt stream.
  std::optional<std::string> recv();

  /// send() a "run" request built from the parts. Convenience for tests
  /// and the load generator; callers needing csv/max_steps build their
  /// own JSON.
  bool send_run(std::uint64_t id, std::optional<std::uint64_t> index =
                                      std::nullopt,
                double deadline_ms = 0.0);

  bool connected() const { return fd_.valid(); }

 private:
  UnixFd fd_;
  FrameDecoder decoder_;
};

/// Build the JSON payload of a "run" request (shared by send_run and the
/// load generator's open-loop writer).
std::string make_run_request(std::uint64_t id,
                             std::optional<std::uint64_t> index,
                             double deadline_ms);

}  // namespace cps
