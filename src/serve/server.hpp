// Long-lived co-synthesis daemon core.
//
// One Server owns a listening AF_UNIX socket, a poll() event loop, and a
// work-stealing ThreadPool. The event loop does only cheap work —
// accepting, framing, parsing, admission control, response flushing —
// and never runs the pipeline itself: admitted requests queue in FIFO
// order and dispatch onto the pool at kLow, where each one runs the same
// run_batch_item the offline batch driver runs (inner subtree jobs and
// speculative merge adjustments keep their higher priorities on the same
// pool). Workers hand finished response frames back through a lock-free-
// enough completion queue plus a wakeup pipe.
//
// Robustness machinery (the point of this subsystem):
//  - Admission control: a bounded request queue (max_queue_depth counts
//    queued + running) and an in-flight-bytes watermark. Requests beyond
//    either bound get a typed rejected_overload response — never a
//    silent drop, never an unbounded queue.
//  - Load shedding: under sustained overload the kShedOldest policy
//    sheds the *oldest queued* requests (they have waited longest and
//    are most likely already expired client-side) in favor of new
//    arrivals; kRejectNewest refuses the new arrival instead. Running
//    requests are never cancelled by shedding.
//  - Deadlines: each request carries (or inherits) a wall-clock budget.
//    Expiry is checked at admission, while queued (the poll timeout
//    tracks the earliest queued deadline), at dispatch, and inside the
//    run via RunBudget — each layer answers with a typed
//    deadline_exceeded response instead of hanging.
//  - Graceful drain: SIGTERM (via an external SignalDrain fd), a
//    "shutdown" request, or request_drain() stop the listener, refuse
//    new work with typed responses, let queued + running requests finish
//    (deadlines still apply), flush every outbuf, and return from run().
//
// Determinism: a response's payload is a pure function of the workload
// definition and the request's index — not of arrival order, connection
// count, thread count, or warm-workspace state (reuse counters are
// excluded from the serialization; see protocol.hpp). Collecting any
// request set's responses and sorting by id yields byte-identical output
// to the run_batch oracle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/batch_driver.hpp"
#include "sched/workspace_pool.hpp"
#include "serve/protocol.hpp"
#include "support/frame.hpp"
#include "support/socket.hpp"
#include "support/thread_pool.hpp"

namespace cps {

/// What to do when admission control finds the server over its bounds.
enum class OverloadPolicy : std::uint8_t {
  /// Refuse the arriving request (oldest work wins).
  kRejectNewest,
  /// Shed the oldest *queued* request(s) — typed responses, never silent
  /// — and admit the arrival; refuse the arrival only when everything
  /// admitted is already running. Production default: the oldest queued
  /// request has the least remaining client patience.
  kShedOldest,
};

struct ServerOptions {
  /// Path of the AF_UNIX listening socket (created, later unlinked).
  std::string socket_path;
  /// Pool workers running requests; 0 = hardware concurrency. Also the
  /// dispatch width: at most this many requests run concurrently.
  std::size_t threads = 0;
  /// Admission bound on queued + running requests.
  std::size_t max_queue_depth = 64;
  /// Admission watermark on summed frame bytes of admitted-but-unfinished
  /// requests.
  std::size_t max_inflight_bytes = std::size_t{4} << 20;
  /// Deadline for requests that do not carry their own; 0 = none.
  double default_deadline_ms = 0.0;
  OverloadPolicy overload = OverloadPolicy::kShedOldest;
  /// Readable fd that signals "drain now" (e.g. SignalDrain::fd() wired
  /// to SIGTERM). -1 = none; shutdown requests and request_drain() still
  /// work.
  int signal_fd = -1;
  int listen_backlog = 64;
  /// The workload definition: request index i co-synthesizes exactly
  /// run_batch_item(workload, i) (count is ignored; per-request budgets
  /// override deadline_ms/synthesis.budget per request). Shared with the
  /// offline oracle and the bench load generator. workload.cache is
  /// overwritten by the server with its own per-daemon cache (below).
  BatchConfig workload;
  /// Per-daemon content-addressed schedule cache, shared across every
  /// connection and request (thread-safe; see sched/schedule_cache.hpp).
  /// Responses stay byte-identical with or without it — only latency and
  /// the "stats" op's counters change. cache.store_dir persists the exact
  /// tier across daemon restarts.
  bool enable_cache = true;
  ScheduleCacheOptions cache;
};

/// Monotonic counters (every value only grows). Snapshot via stats().
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_parsed = 0;
  std::uint64_t parse_failures = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed_ok = 0;      ///< item ran and reported ok
  std::uint64_t completed_failed = 0;  ///< item ran, typed failure code
  std::uint64_t shed_overload = 0;     ///< typed rejected_overload sent
  std::uint64_t rejected_draining = 0; ///< run refused during drain
  std::uint64_t expired_queued = 0;    ///< deadline fired before running
  std::uint64_t injected_failures = 0; ///< serve.* fault sites fired
  std::uint64_t responses_sent = 0;    ///< frames queued toward peers
  std::uint64_t orphaned_responses = 0;///< connection gone before reply
  std::uint64_t peak_queue_depth = 0;  ///< high-water queued + running
  std::uint64_t peak_inflight_bytes = 0;
};

class Server {
 public:
  /// Binds and listens immediately (clients may connect before run()).
  /// Throws Error when the socket cannot be bound.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Event loop: serves until a drain trigger fires AND all admitted
  /// work finished and flushed. Call from one thread only.
  void run();

  /// Thread-safe drain trigger (equivalent to receiving SIGTERM).
  void request_drain();

  const std::string& socket_path() const { return listener_.path(); }
  std::size_t dispatch_width() const { return pool_.thread_count(); }
  ServerCounters stats() const;

 private:
  struct Conn {
    std::uint64_t id = 0;
    UnixFd fd;
    FrameDecoder decoder;
    std::string out;               ///< pending response bytes
    std::size_t out_offset = 0;    ///< prefix already written
    bool dead = false;
    /// Per-session pool of warm engine workspaces: requests of one
    /// connection share buffers, sessions stay isolated. shared_ptr so
    /// in-flight requests keep it alive after the connection dies.
    std::shared_ptr<WorkspacePool> session;
  };

  /// One admitted request waiting for (or holding) a worker.
  struct Pending {
    std::uint64_t conn_id = 0;
    std::uint64_t id = 0;
    std::uint64_t index = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    bool has_max_steps = false;
    std::uint64_t max_steps = 0;
    bool has_max_paths = false;
    std::uint64_t max_paths = 0;
    bool csv = false;
    std::size_t frame_bytes = 0;
    std::shared_ptr<WorkspacePool> session;
  };

  /// A worker-produced response traveling back to the event loop.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t id = 0;
    std::string payload;
    std::size_t frame_bytes = 0;
    bool item_ok = false;
  };

  void begin_drain();
  bool drained() const;
  void accept_pending();
  void read_conn(Conn& conn);
  void write_conn(Conn& conn);
  void handle_frame(Conn& conn, const std::string& payload);
  void admit(Conn& conn, const ServeRequest& request,
             std::size_t frame_bytes);
  void release_request(const Pending& p);
  void sweep_expired();
  void try_dispatch();
  std::string run_request(const Pending& p, bool* item_ok);
  void drain_completions();
  void send_response(Conn& conn, std::optional<std::uint64_t> id,
                     const std::string& payload);
  void send_to_conn_id(std::uint64_t conn_id, std::optional<std::uint64_t> id,
                       const std::string& payload);
  std::string make_pong_response(std::uint64_t id);
  std::string make_stats_response(std::uint64_t id);
  int poll_timeout_ms() const;
  void reap_dead_conns();

  ServerOptions options_;
  /// Daemon-wide schedule cache (null when disabled). Owned here, wired
  /// into every request's BatchConfig by run_request; outlives the pool
  /// (declaration order), so in-flight workers may touch it freely.
  std::unique_ptr<ScheduleCache> cache_;
  UnixListener listener_;
  ThreadPool pool_;
  UnixFd wake_read_;
  UnixFd wake_write_;

  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::deque<Pending> queue_;
  std::size_t running_ = 0;
  std::size_t inflight_bytes_ = 0;
  bool draining_ = false;
  std::atomic<bool> drain_requested_{false};

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  mutable std::mutex counters_mutex_;
  ServerCounters counters_;
};

}  // namespace cps
