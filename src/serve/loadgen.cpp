#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "serve/client.hpp"
#include "support/json.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile (q in [0,1]) of a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

/// Everything one connection thread accumulates; merged under a mutex at
/// the end (threads never share counters while driving load).
struct ThreadTally {
  std::vector<double> latencies_ms;
  std::vector<double> cold_ms;    ///< first occurrence of an index
  std::vector<double> repeat_ms;  ///< re-issued index (cache-hit candidate)
  LoadGenResult counts;  // only the std::size_t counters are used
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of a hash.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Deterministic per-ordinal request plan: which workload index each
/// ordinal asks for and whether that is a repeat of an earlier ordinal's
/// index. Pure function of the config — every thread (and every rerun)
/// derives the identical plan, so the cold/repeat split never depends on
/// arrival order.
struct RequestPlan {
  std::vector<std::uint64_t> index;  ///< workload index per ordinal
  std::vector<char> repeat;          ///< 1 = re-issues an earlier index
  std::size_t unique = 0;
};

RequestPlan plan_requests(const LoadGenConfig& config) {
  RequestPlan plan;
  plan.index.resize(config.requests);
  plan.repeat.assign(config.requests, 0);
  std::uint64_t unique = 0;
  for (std::size_t o = 0; o < config.requests; ++o) {
    const std::uint64_t h =
        splitmix64(config.repeat_seed ^ (0x632be59bd9b4e019ull + o));
    if (unique > 0 && unit(h) < config.repeat_frac) {
      // Zipf-ish popularity: squaring the uniform draw piles repeats onto
      // the lowest (earliest-issued) ranks.
      const double v = unit(splitmix64(h));
      const auto rank = static_cast<std::uint64_t>(
          v * v * static_cast<double>(unique));
      plan.index[o] = config.first_id + std::min(rank, unique - 1);
      plan.repeat[o] = 1;
    } else {
      plan.index[o] = config.first_id + unique++;
    }
  }
  plan.unique = unique;
  return plan;
}

/// Classify one response payload into the tally (and optionally retain
/// it). Returns the parsed request id when available.
void classify(const std::string& payload, bool keep, ThreadTally& tally) {
  std::uint64_t id = 0;
  try {
    const JsonValue doc = JsonValue::parse(payload);
    const JsonValue* idv = doc.find("id");
    if (idv != nullptr && idv->kind() == JsonValue::Kind::kNumber) {
      id = static_cast<std::uint64_t>(idv->as_number());
    }
    const std::string& status = doc.at("status").as_string();
    if (status == "ok") {
      ++tally.counts.ok;
    } else if (status == "rejected_overload") {
      ++tally.counts.shed;
    } else if (status == "deadline_exceeded") {
      ++tally.counts.timed_out;
    } else {
      ++tally.counts.other_failed;
    }
  } catch (const std::exception&) {
    ++tally.counts.parse_failed;
    return;
  }
  ++tally.counts.responses;
  if (keep) tally.counts.payloads.emplace_back(id, payload);
}

}  // namespace

LoadGenResult run_loadgen(const LoadGenConfig& config) {
  const std::size_t connections =
      std::max<std::size_t>(1, std::min(config.connections, config.requests));
  std::vector<ThreadTally> tallies(connections);
  // With repeat_frac = 0 the plan is the identity (index i for ordinal i)
  // and the index stays implicit in the request, exactly as before.
  const bool planned = config.repeat_frac > 0.0;
  const RequestPlan plan = plan_requests(config);
  const auto index_of = [&](std::size_t ordinal) {
    return planned ? std::optional<std::uint64_t>(plan.index[ordinal])
                   : std::nullopt;
  };
  const auto record_latency = [&](ThreadTally& tally, std::size_t ordinal,
                                  double ms) {
    tally.latencies_ms.push_back(ms);
    if (!planned || ordinal >= plan.repeat.size()) return;
    (plan.repeat[ordinal] != 0 ? tally.repeat_ms : tally.cold_ms)
        .push_back(ms);
  };
  const auto t_begin = clock_type::now();

  // Closed loop pulls the next ordinal from a shared counter (whichever
  // connection is free takes the next request — maximal concurrency);
  // open loop pre-partitions ordinals so each thread can pace its own
  // sends against the global schedule without coordination.
  std::atomic<std::size_t> next_ordinal{0};

  const auto closed_loop = [&](std::size_t worker) {
    ThreadTally& tally = tallies[worker];
    try {
      ServeClient client(config.socket_path, config.recv_timeout_s);
      while (true) {
        const std::size_t ordinal = next_ordinal.fetch_add(1);
        if (ordinal >= config.requests) return;
        const std::uint64_t id = config.first_id + ordinal;
        if (!client.send_run(id, index_of(ordinal), config.deadline_ms)) {
          ++tally.counts.disconnected;
          return;
        }
        ++tally.counts.sent;
        const auto t0 = clock_type::now();
        const std::optional<std::string> response = client.recv();
        if (!response.has_value()) {
          if (client.connected()) {
            ++tally.counts.recv_timeouts;
          } else {
            ++tally.counts.disconnected;
          }
          return;
        }
        record_latency(tally, ordinal, ms_between(t0, clock_type::now()));
        classify(*response, config.keep_payloads, tally);
      }
    } catch (const std::exception&) {
      // Connect refused (e.g. the daemon already drained): everything
      // this thread would have sent is accounted as disconnected.
      ++tally.counts.disconnected;
    }
  };

  const auto open_loop = [&](std::size_t worker) {
    ThreadTally& tally = tallies[worker];
    const double interval_ms =
        config.rate_per_sec > 0.0 ? 1000.0 / config.rate_per_sec : 0.0;
    std::unordered_map<std::uint64_t, clock_type::time_point> sent_at;
    try {
      // Short receive timeout: recv() doubles as the pacing sleep.
      ServeClient client(config.socket_path, 0.01);
      const auto drain_one = [&]() -> bool {
        const std::optional<std::string> response = client.recv();
        if (!response.has_value()) return false;
        std::uint64_t id = 0;
        try {
          const JsonValue doc = JsonValue::parse(*response);
          const JsonValue* idv = doc.find("id");
          if (idv != nullptr && idv->kind() == JsonValue::Kind::kNumber) {
            id = static_cast<std::uint64_t>(idv->as_number());
          }
        } catch (const std::exception&) {
        }
        const auto it = sent_at.find(id);
        if (it != sent_at.end()) {
          record_latency(tally,
                         static_cast<std::size_t>(id - config.first_id),
                         ms_between(it->second, clock_type::now()));
          sent_at.erase(it);
        }
        classify(*response, config.keep_payloads, tally);
        return true;
      };
      for (std::size_t ordinal = worker; ordinal < config.requests;
           ordinal += connections) {
        const auto due =
            t_begin + std::chrono::duration_cast<clock_type::duration>(
                          std::chrono::duration<double, std::milli>(
                              interval_ms * static_cast<double>(ordinal)));
        while (clock_type::now() < due) {
          if (!drain_one() && !client.connected()) break;
        }
        if (!client.connected()) break;
        const std::uint64_t id = config.first_id + ordinal;
        sent_at[id] = clock_type::now();
        if (!client.send_run(id, index_of(ordinal), config.deadline_ms)) {
          break;
        }
        ++tally.counts.sent;
      }
      // Collect stragglers until everything sent is answered or the
      // receive budget runs dry.
      const auto give_up =
          clock_type::now() +
          std::chrono::duration_cast<clock_type::duration>(
              std::chrono::duration<double>(config.recv_timeout_s));
      while (!sent_at.empty() && client.connected() &&
             clock_type::now() < give_up) {
        drain_one();
      }
      tally.counts.disconnected += sent_at.size();
    } catch (const std::exception&) {
      tally.counts.disconnected += sent_at.size();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      if (config.open_loop) {
        open_loop(c);
      } else {
        closed_loop(c);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadGenResult result;
  result.unique_indices = plan.unique;
  result.repeats_planned = config.requests - plan.unique;
  std::vector<double> all_latencies;
  std::vector<double> cold_latencies;
  std::vector<double> repeat_latencies;
  for (ThreadTally& tally : tallies) {
    result.sent += tally.counts.sent;
    result.responses += tally.counts.responses;
    result.ok += tally.counts.ok;
    result.shed += tally.counts.shed;
    result.timed_out += tally.counts.timed_out;
    result.other_failed += tally.counts.other_failed;
    result.parse_failed += tally.counts.parse_failed;
    result.disconnected += tally.counts.disconnected;
    result.recv_timeouts += tally.counts.recv_timeouts;
    all_latencies.insert(all_latencies.end(), tally.latencies_ms.begin(),
                         tally.latencies_ms.end());
    cold_latencies.insert(cold_latencies.end(), tally.cold_ms.begin(),
                          tally.cold_ms.end());
    repeat_latencies.insert(repeat_latencies.end(), tally.repeat_ms.begin(),
                            tally.repeat_ms.end());
    for (auto& kv : tally.counts.payloads) {
      result.payloads.push_back(std::move(kv));
    }
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  std::sort(cold_latencies.begin(), cold_latencies.end());
  std::sort(repeat_latencies.begin(), repeat_latencies.end());
  result.p50_ms = percentile(all_latencies, 0.50);
  result.p99_ms = percentile(all_latencies, 0.99);
  result.p999_ms = percentile(all_latencies, 0.999);
  result.cold_p50_ms = percentile(cold_latencies, 0.50);
  result.cold_p99_ms = percentile(cold_latencies, 0.99);
  result.repeat_p50_ms = percentile(repeat_latencies, 0.50);
  result.repeat_p99_ms = percentile(repeat_latencies, 0.99);
  result.wall_ms = ms_between(t_begin, clock_type::now());
  return result;
}

std::vector<std::uint64_t> loadgen_plan_indices(const LoadGenConfig& config) {
  return plan_requests(config).index;
}

}  // namespace cps
