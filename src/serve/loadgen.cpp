#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "serve/client.hpp"
#include "support/json.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile (q in [0,1]) of a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

/// Everything one connection thread accumulates; merged under a mutex at
/// the end (threads never share counters while driving load).
struct ThreadTally {
  std::vector<double> latencies_ms;
  LoadGenResult counts;  // only the std::size_t counters are used
};

/// Classify one response payload into the tally (and optionally retain
/// it). Returns the parsed request id when available.
void classify(const std::string& payload, bool keep, ThreadTally& tally) {
  std::uint64_t id = 0;
  try {
    const JsonValue doc = JsonValue::parse(payload);
    const JsonValue* idv = doc.find("id");
    if (idv != nullptr && idv->kind() == JsonValue::Kind::kNumber) {
      id = static_cast<std::uint64_t>(idv->as_number());
    }
    const std::string& status = doc.at("status").as_string();
    if (status == "ok") {
      ++tally.counts.ok;
    } else if (status == "rejected_overload") {
      ++tally.counts.shed;
    } else if (status == "deadline_exceeded") {
      ++tally.counts.timed_out;
    } else {
      ++tally.counts.other_failed;
    }
  } catch (const std::exception&) {
    ++tally.counts.parse_failed;
    return;
  }
  ++tally.counts.responses;
  if (keep) tally.counts.payloads.emplace_back(id, payload);
}

}  // namespace

LoadGenResult run_loadgen(const LoadGenConfig& config) {
  const std::size_t connections =
      std::max<std::size_t>(1, std::min(config.connections, config.requests));
  std::vector<ThreadTally> tallies(connections);
  const auto t_begin = clock_type::now();

  // Closed loop pulls the next ordinal from a shared counter (whichever
  // connection is free takes the next request — maximal concurrency);
  // open loop pre-partitions ordinals so each thread can pace its own
  // sends against the global schedule without coordination.
  std::atomic<std::size_t> next_ordinal{0};

  const auto closed_loop = [&](std::size_t worker) {
    ThreadTally& tally = tallies[worker];
    try {
      ServeClient client(config.socket_path, config.recv_timeout_s);
      while (true) {
        const std::size_t ordinal = next_ordinal.fetch_add(1);
        if (ordinal >= config.requests) return;
        const std::uint64_t id = config.first_id + ordinal;
        if (!client.send_run(id, std::nullopt, config.deadline_ms)) {
          ++tally.counts.disconnected;
          return;
        }
        ++tally.counts.sent;
        const auto t0 = clock_type::now();
        const std::optional<std::string> response = client.recv();
        if (!response.has_value()) {
          if (client.connected()) {
            ++tally.counts.recv_timeouts;
          } else {
            ++tally.counts.disconnected;
          }
          return;
        }
        tally.latencies_ms.push_back(ms_between(t0, clock_type::now()));
        classify(*response, config.keep_payloads, tally);
      }
    } catch (const std::exception&) {
      // Connect refused (e.g. the daemon already drained): everything
      // this thread would have sent is accounted as disconnected.
      ++tally.counts.disconnected;
    }
  };

  const auto open_loop = [&](std::size_t worker) {
    ThreadTally& tally = tallies[worker];
    const double interval_ms =
        config.rate_per_sec > 0.0 ? 1000.0 / config.rate_per_sec : 0.0;
    std::unordered_map<std::uint64_t, clock_type::time_point> sent_at;
    try {
      // Short receive timeout: recv() doubles as the pacing sleep.
      ServeClient client(config.socket_path, 0.01);
      const auto drain_one = [&]() -> bool {
        const std::optional<std::string> response = client.recv();
        if (!response.has_value()) return false;
        std::uint64_t id = 0;
        try {
          const JsonValue doc = JsonValue::parse(*response);
          const JsonValue* idv = doc.find("id");
          if (idv != nullptr && idv->kind() == JsonValue::Kind::kNumber) {
            id = static_cast<std::uint64_t>(idv->as_number());
          }
        } catch (const std::exception&) {
        }
        const auto it = sent_at.find(id);
        if (it != sent_at.end()) {
          tally.latencies_ms.push_back(
              ms_between(it->second, clock_type::now()));
          sent_at.erase(it);
        }
        classify(*response, config.keep_payloads, tally);
        return true;
      };
      for (std::size_t ordinal = worker; ordinal < config.requests;
           ordinal += connections) {
        const auto due =
            t_begin + std::chrono::duration_cast<clock_type::duration>(
                          std::chrono::duration<double, std::milli>(
                              interval_ms * static_cast<double>(ordinal)));
        while (clock_type::now() < due) {
          if (!drain_one() && !client.connected()) break;
        }
        if (!client.connected()) break;
        const std::uint64_t id = config.first_id + ordinal;
        sent_at[id] = clock_type::now();
        if (!client.send_run(id, std::nullopt, config.deadline_ms)) break;
        ++tally.counts.sent;
      }
      // Collect stragglers until everything sent is answered or the
      // receive budget runs dry.
      const auto give_up =
          clock_type::now() +
          std::chrono::duration_cast<clock_type::duration>(
              std::chrono::duration<double>(config.recv_timeout_s));
      while (!sent_at.empty() && client.connected() &&
             clock_type::now() < give_up) {
        drain_one();
      }
      tally.counts.disconnected += sent_at.size();
    } catch (const std::exception&) {
      tally.counts.disconnected += sent_at.size();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      if (config.open_loop) {
        open_loop(c);
      } else {
        closed_loop(c);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadGenResult result;
  std::vector<double> all_latencies;
  for (ThreadTally& tally : tallies) {
    result.sent += tally.counts.sent;
    result.responses += tally.counts.responses;
    result.ok += tally.counts.ok;
    result.shed += tally.counts.shed;
    result.timed_out += tally.counts.timed_out;
    result.other_failed += tally.counts.other_failed;
    result.parse_failed += tally.counts.parse_failed;
    result.disconnected += tally.counts.disconnected;
    result.recv_timeouts += tally.counts.recv_timeouts;
    all_latencies.insert(all_latencies.end(), tally.latencies_ms.begin(),
                         tally.latencies_ms.end());
    for (auto& kv : tally.counts.payloads) {
      result.payloads.push_back(std::move(kv));
    }
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  result.p50_ms = percentile(all_latencies, 0.50);
  result.p99_ms = percentile(all_latencies, 0.99);
  result.p999_ms = percentile(all_latencies, 0.999);
  result.wall_ms = ms_between(t_begin, clock_type::now());
  return result;
}

}  // namespace cps
