#include "serve/protocol.hpp"

#include <cmath>

#include "support/json.hpp"

namespace cps {

namespace {

/// Read a JSON number member as a non-negative integer; false when it is
/// negative, fractional, or not a number at all.
bool read_uint(const JsonValue& v, std::uint64_t* out, std::string* error,
               const char* name) {
  if (v.kind() != JsonValue::Kind::kNumber) {
    *error = std::string(name) + " must be a number";
    return false;
  }
  const double d = v.as_number();
  if (d < 0.0 || d != std::floor(d)) {
    *error = std::string(name) + " must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(d);
  return true;
}

}  // namespace

bool parse_serve_request(const std::string& payload, ServeRequest* out,
                         std::string* error) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(payload);
  } catch (const ParseError& e) {
    *error = e.what();
    return false;
  }
  if (!doc.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  const JsonValue* id = doc.find("id");
  if (id == nullptr) {
    *error = "request is missing \"id\"";
    return false;
  }
  if (!read_uint(*id, &out->id, error, "id")) return false;

  out->index = out->id;  // default: item index == request id
  if (const JsonValue* op = doc.find("op")) {
    if (op->kind() != JsonValue::Kind::kString) {
      *error = "op must be a string";
      return false;
    }
    const std::string& name = op->as_string();
    if (name == "run") {
      out->op = RequestOp::kRun;
    } else if (name == "ping") {
      out->op = RequestOp::kPing;
    } else if (name == "shutdown") {
      out->op = RequestOp::kShutdown;
    } else if (name == "stats") {
      out->op = RequestOp::kStats;
    } else {
      *error = "unknown op \"" + name + "\"";
      return false;
    }
  }
  if (const JsonValue* index = doc.find("index")) {
    if (!read_uint(*index, &out->index, error, "index")) return false;
  }
  if (const JsonValue* deadline = doc.find("deadline_ms")) {
    if (deadline->kind() != JsonValue::Kind::kNumber) {
      *error = "deadline_ms must be a number";
      return false;
    }
    out->deadline_ms = deadline->as_number();
    out->has_deadline = true;
  }
  if (const JsonValue* steps = doc.find("max_steps")) {
    if (!read_uint(*steps, &out->max_steps, error, "max_steps")) return false;
    out->has_max_steps = true;
  }
  if (const JsonValue* paths = doc.find("max_paths")) {
    if (!read_uint(*paths, &out->max_paths, error, "max_paths")) return false;
    out->has_max_paths = true;
  }
  if (const JsonValue* csv = doc.find("csv")) {
    if (csv->kind() != JsonValue::Kind::kBool) {
      *error = "csv must be a boolean";
      return false;
    }
    out->csv = csv->as_bool();
  }
  return true;
}

std::string make_error_response(std::optional<std::uint64_t> id,
                                ErrorCode code, const std::string& message) {
  JsonWriter w(0);
  w.begin_object();
  if (id.has_value()) {
    w.field("id", *id);
  } else {
    w.key("id").null();
  }
  w.field("status", to_string(code));
  w.field("error", message);
  w.end_object();
  return w.str();
}

std::string make_item_response(std::uint64_t id, const BatchItem& item,
                               const std::string* csv) {
  JsonWriter w(0);
  w.begin_object();
  w.field("id", id);
  // Envelope status: "ok" whenever the item produced a result (bounded
  // coverage included — the item body carries its own status field);
  // otherwise the item's typed failure code, so a client never has to
  // open the item to learn the outcome.
  w.field("status", item.ok ? "ok" : to_string(item.code));
  w.key("item").raw(batch_item_to_json(item, serve_item_json_options()));
  if (csv != nullptr) w.field("table_csv", *csv);
  w.end_object();
  return w.str();
}

std::string make_drain_response(std::uint64_t id) {
  JsonWriter w(0);
  w.begin_object();
  w.field("id", id);
  w.field("status", "ok");
  w.field("draining", true);
  w.end_object();
  return w.str();
}

BatchJsonOptions serve_item_json_options() {
  BatchJsonOptions options;
  options.include_timing = false;
  options.include_reuse_counters = false;
  // Prefix-seeded resume chains (the daemon's shared schedule cache) are
  // cross-request state; keeping these counters out keeps a response a
  // pure function of (index, request options) regardless of cache warmth.
  options.include_resume_counters = false;
  options.include_items = true;
  options.indent = 0;
  return options;
}

}  // namespace cps
