#include "serve/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cmath>

#include "support/fault.hpp"
#include "support/json.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_until(clock_type::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline -
                                                   clock_type::now())
      .count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.enable_cache
                 ? std::make_unique<ScheduleCache>(options_.cache)
                 : nullptr),
      listener_(options_.socket_path, options_.listen_backlog),
      pool_(ThreadPool::resolve_threads(options_.threads)) {
  CPS_REQUIRE(options_.max_queue_depth > 0,
              "max_queue_depth must be at least 1");
  auto pipe = make_wakeup_pipe();
  wake_read_ = std::move(pipe.first);
  wake_write_ = std::move(pipe.second);
}

Server::~Server() {
  // Workers may still be running requests if run() exited through an
  // exception; they only touch the completion queue and the wakeup pipe,
  // both of which outlive them (pool_ joins before the members above it
  // are destroyed — declaration order is load-bearing here).
  pool_.wait_idle();
}

ServerCounters Server::stats() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void Server::request_drain() {
  drain_requested_.store(true);
  signal_wakeup_pipe(wake_write_.get());
}

void Server::begin_drain() {
  if (draining_) return;
  draining_ = true;
  // Adopt the backlog, then stop accepting: a peer whose connect()
  // completed before the drain trigger is an established session and
  // deserves typed responses, not a vanished socket. Closing the
  // listener also unlinks the path, so later connect()s fail fast.
  accept_pending();
  listener_.close();
  // Final read sweep: requests a peer sent before the drain trigger are
  // already buffered in their sockets. Answer them (typed refusals now
  // that draining_ is set) instead of letting the shutdown race eat
  // them silently — drained() would otherwise see an idle server and
  // close over unread frames.
  for (auto& entry : conns_) {
    if (!entry.second.dead) read_conn(entry.second);
  }
}

bool Server::drained() const {
  if (!draining_ || !queue_.empty() || running_ != 0) return false;
  for (const auto& entry : conns_) {
    const Conn& conn = entry.second;
    if (!conn.dead && conn.out_offset < conn.out.size()) return false;
  }
  return true;
}

void Server::accept_pending() {
  while (true) {
    UnixFd fd = listener_.accept();
    if (!fd.valid()) return;
    try {
      CPS_FAULT_POINT("serve.accept");
    } catch (const InjectedFault&) {
      // Injected accept failure: the connection is dropped before any
      // request exists — the peer sees EOF and may reconnect. Existing
      // connections and admitted work are untouched.
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.injected_failures;
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.id = id;
    conn.fd = std::move(fd);
    conn.session = std::make_shared<WorkspacePool>();
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.connections_accepted;
  }
}

void Server::read_conn(Conn& conn) {
  char buffer[4096];
  bool peer_gone = false;
  while (!conn.dead) {
    std::size_t n = 0;
    const IoStatus status =
        socket_read(conn.fd.get(), buffer, sizeof(buffer), &n);
    if (status == IoStatus::kOk) {
      if (!conn.decoder.feed(buffer, n)) {
        // Corrupt framing (oversized length prefix): nothing downstream
        // can be trusted, so the connection dies. Admitted requests of
        // this connection still run; their responses orphan.
        conn.dead = true;
        return;
      }
      continue;
    }
    if (status == IoStatus::kWouldBlock) break;
    peer_gone = true;  // kClosed or kError
    break;
  }
  while (!conn.dead) {
    std::optional<std::string> frame = conn.decoder.next();
    if (!frame.has_value()) break;
    handle_frame(conn, *frame);
  }
  if (peer_gone) conn.dead = true;
}

void Server::handle_frame(Conn& conn, const std::string& payload) {
  ServeRequest request;
  std::string error;
  if (!parse_serve_request(payload, &request, &error)) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.parse_failures;
    }
    send_response(conn, std::nullopt,
                  make_error_response(std::nullopt, ErrorCode::kParseFailed,
                                      error));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.requests_parsed;
  }
  try {
    // Request-level ingress fault: the id is known, so the failure is a
    // typed response to exactly this request; the connection (and every
    // other request) keeps working.
    CPS_FAULT_POINT("serve.read");
  } catch (const InjectedFault& e) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.injected_failures;
    }
    send_response(conn, request.id,
                  make_error_response(request.id, ErrorCode::kInjectedFault,
                                      e.what()));
    return;
  }

  switch (request.op) {
    case RequestOp::kPing:
      send_response(conn, request.id, make_pong_response(request.id));
      return;
    case RequestOp::kShutdown:
      send_response(conn, request.id, make_drain_response(request.id));
      begin_drain();
      return;
    case RequestOp::kStats:
      send_response(conn, request.id, make_stats_response(request.id));
      return;
    case RequestOp::kRun: break;
  }

  if (draining_) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.rejected_draining;
    }
    send_response(conn, request.id,
                  make_error_response(request.id, ErrorCode::kRejectedOverload,
                                      "server is draining"));
    return;
  }
  // Budget edge cases answered at admission, before any queue slot or
  // worker is spent: a zero step budget can never complete (RunBudget
  // reserves 0 for "unlimited", so it cannot even express the request),
  // and a non-positive deadline is already expired.
  if (request.has_max_steps && request.max_steps == 0) {
    send_response(
        conn, request.id,
        make_error_response(request.id, ErrorCode::kStepBudgetExceeded,
                            "max_steps of 0 cannot complete any run"));
    return;
  }
  if (request.has_deadline &&
      (request.deadline_ms <= 0.0 || !std::isfinite(request.deadline_ms))) {
    send_response(
        conn, request.id,
        make_error_response(request.id, ErrorCode::kDeadlineExceeded,
                            "deadline already expired at admission"));
    return;
  }
  admit(conn, request, kFrameHeaderSize + payload.size());
}

void Server::admit(Conn& conn, const ServeRequest& request,
                   std::size_t frame_bytes) {
  // Admission control: bounded depth (queued + running) and bounded
  // in-flight bytes. Overload never silently drops — every refused or
  // shed request gets a typed rejected_overload response.
  const auto over = [&] {
    return queue_.size() + running_ >= options_.max_queue_depth ||
           inflight_bytes_ + frame_bytes > options_.max_inflight_bytes;
  };
  if (over() && options_.overload == OverloadPolicy::kShedOldest) {
    while (over() && !queue_.empty()) {
      const Pending oldest = std::move(queue_.front());
      queue_.pop_front();
      inflight_bytes_ -= oldest.frame_bytes;
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.shed_overload;
      }
      send_to_conn_id(
          oldest.conn_id, oldest.id,
          make_error_response(oldest.id, ErrorCode::kRejectedOverload,
                              "shed by newer arrival under overload"));
    }
  }
  if (over()) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.shed_overload;
    }
    send_response(
        conn, request.id,
        make_error_response(request.id, ErrorCode::kRejectedOverload,
                            queue_.size() + running_ >=
                                    options_.max_queue_depth
                                ? "request queue is full"
                                : "in-flight byte watermark exceeded"));
    return;
  }

  Pending p;
  p.conn_id = conn.id;
  p.id = request.id;
  p.index = request.index;
  p.has_max_steps = request.has_max_steps;
  p.max_steps = request.max_steps;
  p.has_max_paths = request.has_max_paths;
  p.max_paths = request.max_paths;
  p.csv = request.csv;
  p.frame_bytes = frame_bytes;
  p.session = conn.session;
  const double deadline_ms = request.has_deadline
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    p.has_deadline = true;
    p.deadline = clock_type::now() +
                 std::chrono::duration_cast<clock_type::duration>(
                     std::chrono::duration<double, std::milli>(deadline_ms));
  }
  inflight_bytes_ += p.frame_bytes;
  queue_.push_back(std::move(p));
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.admitted;
    counters_.peak_queue_depth = std::max<std::uint64_t>(
        counters_.peak_queue_depth, queue_.size() + running_);
    counters_.peak_inflight_bytes =
        std::max<std::uint64_t>(counters_.peak_inflight_bytes,
                                inflight_bytes_);
  }
}

void Server::release_request(const Pending& p) {
  inflight_bytes_ -= p.frame_bytes;
}

/// Answer queued requests whose deadline passed while waiting for a
/// worker — the "deadline fires between admission and dispatch" window.
/// The poll timeout tracks the earliest queued deadline, so this runs
/// promptly even on an otherwise idle loop.
void Server::sweep_expired() {
  const auto now = clock_type::now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (!it->has_deadline || it->deadline > now) {
      ++it;
      continue;
    }
    const Pending p = std::move(*it);
    it = queue_.erase(it);
    release_request(p);
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.expired_queued;
    }
    send_to_conn_id(p.conn_id, p.id,
                    make_error_response(p.id, ErrorCode::kDeadlineExceeded,
                                        "deadline expired while queued"));
  }
}

void Server::try_dispatch() {
  while (running_ < pool_.thread_count() && !queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (p.has_deadline && clock_type::now() >= p.deadline) {
      release_request(p);
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.expired_queued;
      }
      send_to_conn_id(p.conn_id, p.id,
                      make_error_response(p.id, ErrorCode::kDeadlineExceeded,
                                          "deadline expired while queued"));
      continue;
    }
    if (conns_.find(p.conn_id) == conns_.end()) {
      // The connection died while this request waited; running it would
      // only produce an orphan. Counted, never silent.
      release_request(p);
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.orphaned_responses;
      continue;
    }
    try {
      CPS_FAULT_POINT("serve.dispatch");
    } catch (const InjectedFault& e) {
      release_request(p);
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.injected_failures;
      }
      send_to_conn_id(p.conn_id, p.id,
                      make_error_response(p.id, ErrorCode::kInjectedFault,
                                          e.what()));
      continue;
    }
    ++running_;
    // The worker thread touches only immutable server state
    // (options_.workload, pool_), its own Pending copy, and the
    // completion queue + wakeup pipe.
    auto task = std::make_shared<Pending>(std::move(p));
    pool_.submit(
        [this, task] {
          Completion done;
          done.conn_id = task->conn_id;
          done.id = task->id;
          done.frame_bytes = task->frame_bytes;
          done.payload = run_request(*task, &done.item_ok);
          {
            std::lock_guard<std::mutex> lock(completion_mutex_);
            completions_.push_back(std::move(done));
          }
          signal_wakeup_pipe(wake_write_.get());
        },
        TaskPriority::kLow);
  }
}

std::string Server::run_request(const Pending& p, bool* item_ok) {
  *item_ok = false;
  try {
    BatchConfig config = options_.workload;
    config.cancel = nullptr;
    RunBudget limits;
    if (p.has_max_steps) limits.max_steps = p.max_steps;
    if (p.has_max_paths) {
      limits.max_paths = p.max_paths;
      // A client-bounded path budget asks for graceful degradation: a
      // bounded-coverage result instead of a refusal.
      config.synthesis.on_budget = BudgetAction::kBound;
    }
    config.synthesis.budget =
        (p.has_max_steps || p.has_max_paths) ? &limits : nullptr;
    if (p.has_deadline) {
      const double remaining = ms_until(p.deadline);
      if (remaining <= 0.0) {
        return make_error_response(p.id, ErrorCode::kDeadlineExceeded,
                                   "deadline expired before dispatch");
      }
      config.deadline_ms = remaining;
    } else {
      config.deadline_ms = 0.0;
    }
    // Warm per-session workspaces; the shared_ptr in `p` keeps the pool
    // alive even if the connection died mid-run.
    config.synthesis.workspace_pool = p.session.get();
    // Daemon-wide schedule cache: exact hits replay recorded bytes
    // (including the CSV, which is why the csv out-param overload is used
    // instead of an observer — the engine never runs on a hit).
    config.cache = cache_.get();
    std::string csv;
    const BatchItem item = run_batch_item(config, p.index, &pool_, nullptr,
                                          p.csv ? &csv : nullptr);
    *item_ok = item.ok;
    return make_item_response(p.id, item,
                              p.csv && item.ok ? &csv : nullptr);
  } catch (const std::exception& e) {
    // run_batch_item captures pipeline errors itself; this is the belt
    // for serialization/CSV failures — the request still gets a typed
    // response.
    return make_error_response(p.id, error_code_of(e), e.what());
  }
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    --running_;
    inflight_bytes_ -= done.frame_bytes;
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      if (done.item_ok) {
        ++counters_.completed_ok;
      } else {
        ++counters_.completed_failed;
      }
    }
    send_to_conn_id(done.conn_id, done.id, done.payload);
  }
}

void Server::send_to_conn_id(std::uint64_t conn_id,
                             std::optional<std::uint64_t> id,
                             const std::string& payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.orphaned_responses;
    return;
  }
  send_response(it->second, id, payload);
}

void Server::send_response(Conn& conn, std::optional<std::uint64_t> id,
                           const std::string& payload) {
  try {
    CPS_FAULT_POINT("serve.write");
    append_frame(conn.out, payload);
  } catch (const InjectedFault& e) {
    // Egress fault: the response we meant to send is replaced by a typed
    // error frame for the same request id — the client still gets
    // exactly one response and the stream stays framed.
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.injected_failures;
    }
    append_frame(conn.out,
                 make_error_response(id, ErrorCode::kInjectedFault, e.what()));
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.responses_sent;
  }
  write_conn(conn);  // opportunistic flush; POLLOUT handles the rest
}

void Server::write_conn(Conn& conn) {
  while (!conn.dead && conn.out_offset < conn.out.size()) {
    std::size_t n = 0;
    const IoStatus status =
        socket_write(conn.fd.get(), conn.out.data() + conn.out_offset,
                     conn.out.size() - conn.out_offset, &n);
    if (status == IoStatus::kOk) {
      conn.out_offset += n;
      continue;
    }
    if (status == IoStatus::kWouldBlock) return;
    conn.dead = true;  // kClosed / kError: peer is gone
    return;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
}

std::string Server::make_pong_response(std::uint64_t id) {
  const ServerCounters c = stats();
  JsonWriter w(0);
  w.begin_object();
  w.field("id", id);
  w.field("status", "ok");
  w.field("pong", true);
  w.field("draining", draining_);
  w.key("stats").begin_object();
  w.field("admitted", c.admitted);
  w.field("completed_ok", c.completed_ok);
  w.field("completed_failed", c.completed_failed);
  w.field("shed_overload", c.shed_overload);
  w.field("expired_queued", c.expired_queued);
  w.field("peak_queue_depth", c.peak_queue_depth);
  w.field("peak_inflight_bytes", c.peak_inflight_bytes);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string Server::make_stats_response(std::uint64_t id) {
  // Built on the event-loop thread (like make_pong_response), so conns_
  // is safe to walk for the per-session workspace-pool aggregate.
  const ServerCounters c = stats();
  JsonWriter w(0);
  w.begin_object();
  w.field("id", id);
  w.field("status", "ok");
  w.field("draining", draining_);
  w.key("server").begin_object();
  w.field("connections_accepted", c.connections_accepted);
  w.field("requests_parsed", c.requests_parsed);
  w.field("parse_failures", c.parse_failures);
  w.field("admitted", c.admitted);
  w.field("completed_ok", c.completed_ok);
  w.field("completed_failed", c.completed_failed);
  w.field("shed_overload", c.shed_overload);
  w.field("rejected_draining", c.rejected_draining);
  w.field("expired_queued", c.expired_queued);
  w.field("injected_failures", c.injected_failures);
  w.field("responses_sent", c.responses_sent);
  w.field("orphaned_responses", c.orphaned_responses);
  w.field("peak_queue_depth", c.peak_queue_depth);
  w.field("peak_inflight_bytes", c.peak_inflight_bytes);
  w.end_object();
  w.field("cache_enabled", cache_ != nullptr);
  w.key("cache").begin_object();
  write_cache_stats_json(w, cache_ ? cache_->stats() : ScheduleCacheStats{});
  w.end_object();
  // Aggregate over the *live* sessions (dead connections drop their pool
  // with their last in-flight request; history is not retained).
  WorkspacePool::Stats ws;
  for (const auto& entry : conns_) {
    if (entry.second.session == nullptr) continue;
    const WorkspacePool::Stats s = entry.second.session->stats();
    ws.created += s.created;
    ws.leases += s.leases;
    ws.warm_hits += s.warm_hits;
  }
  w.key("workspace_pool").begin_object();
  w.field("created", static_cast<std::uint64_t>(ws.created));
  w.field("leases", static_cast<std::uint64_t>(ws.leases));
  w.field("warm_hits", static_cast<std::uint64_t>(ws.warm_hits));
  w.end_object();
  const PoolStats rt = pool_.stats();
  w.key("runtime").begin_object();
  w.field("submitted", rt.submitted);
  w.field("executed", rt.executed);
  w.field("local_hits", rt.local_hits);
  w.field("steals", rt.steals);
  w.field("injected", rt.injected);
  w.field("help_runs", rt.help_runs);
  w.end_object();
  w.end_object();
  return w.str();
}

int Server::poll_timeout_ms() const {
  // Sleep until the earliest queued deadline (so expiry answers arrive
  // on time even with every worker busy); otherwise block — wakeups come
  // through the pipe.
  bool any = false;
  double earliest = 0.0;
  for (const Pending& p : queue_) {
    if (!p.has_deadline) continue;
    const double remaining = ms_until(p.deadline);
    if (!any || remaining < earliest) {
      earliest = remaining;
      any = true;
    }
  }
  if (!any) return -1;
  return std::max(0, static_cast<int>(std::ceil(earliest)));
}

void Server::reap_dead_conns() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second.dead) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::run() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = none)
  while (true) {
    if (drain_requested_.exchange(false)) begin_drain();
    drain_completions();
    sweep_expired();
    try_dispatch();
    reap_dead_conns();
    if (drained()) break;

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_.get(), POLLIN, 0});
    fd_conn.push_back(0);
    if (options_.signal_fd >= 0) {
      fds.push_back({options_.signal_fd, POLLIN, 0});
      fd_conn.push_back(0);
    }
    if (listener_.valid()) {
      fds.push_back({listener_.fd(), POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& entry : conns_) {
      Conn& conn = entry.second;
      short events = POLLIN;
      if (conn.out_offset < conn.out.size()) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
      fd_conn.push_back(conn.id);
    }

    const int ready = ::poll(fds.data(), fds.size(), poll_timeout_ms());
    if (ready < 0) {
      if (errno == EINTR) continue;  // e.g. SIGTERM; the self-pipe wakes us
      throw Error(ErrorCode::kInternal, "poll failed in server loop");
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_read_.get()) {
        drain_wakeup_pipe(wake_read_.get());
        continue;
      }
      if (options_.signal_fd >= 0 && fds[i].fd == options_.signal_fd) {
        drain_wakeup_pipe(options_.signal_fd);
        begin_drain();
        continue;
      }
      if (listener_.valid() && fds[i].fd == listener_.fd()) {
        accept_pending();
        continue;
      }
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        conn.dead = true;
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) write_conn(conn);
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) read_conn(conn);
    }
  }
  // Drained: every response flushed; close everything in an orderly way.
  conns_.clear();
  listener_.close();
}

}  // namespace cps
