// Wire protocol of the co-synthesis service.
//
// Transport: length-prefixed frames (support/frame.hpp) over an AF_UNIX
// stream socket; every frame payload is one JSON document (support/json).
//
// Request:
//   {"id": 7,                // required; client-assigned, echoed back
//    "op": "run",    // "run" (default) | "ping" | "shutdown" | "stats"
//    "index": 7,             // workload item index; defaults to id
//    "deadline_ms": 250.0,   // optional per-request deadline
//    "max_steps": 100000,    // optional engine step budget
//    "max_paths": 64,        // optional path budget -> bounded coverage
//    "csv": true}            // attach the schedule table as CSV
//
// Response (compact, one frame each; exactly one per request):
//   {"id": 7, "status": "ok", "item": {...}}            // run success
//   {"id": 7, "status": "rejected_overload", "error"..} // typed refusal
//   {"id": null, "status": "parse_failed", "error"..}   // unparseable
//   {"id": 3, "status": "ok", "draining": true}         // shutdown ack
//   {"id": 9, "status": "ok", "pong": true, "stats"..}  // ping
//   {"id": 4, "status": "ok", "server".., "cache"..,    // stats: cache +
//    "workspace_pool".., "runtime"..}                   //  pool counters
//
// "item" is byte-for-byte the element run_batch's JSON would contain for
// the same index (timing and workspace reuse counters omitted — see
// BatchJsonOptions), which is what makes server responses comparable to
// an offline oracle. A "run" item that failed in the pipeline still gets
// status "ok" at the envelope level only when the item ran; pipeline
// failures surface as status = the item's error code with the item body
// attached, so clients switch on one field either way.
//
// Determinism contract: for a fixed workload definition, the response
// payload for request index i is a pure function of i. Ids are chosen by
// the client; re-sending a request after a reconnect yields the same
// bytes, which is what makes retry-after-disconnect idempotent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sched/batch_driver.hpp"
#include "support/error.hpp"

namespace cps {

enum class RequestOp : std::uint8_t { kRun, kPing, kShutdown, kStats };

/// One parsed request frame. Optional fields keep a has_* flag so the
/// server can distinguish "absent" from "explicit zero" (an explicit
/// zero step budget is a typed refusal, absence means unlimited).
struct ServeRequest {
  std::uint64_t id = 0;
  RequestOp op = RequestOp::kRun;
  std::uint64_t index = 0;
  double deadline_ms = 0.0;
  bool has_deadline = false;
  std::uint64_t max_steps = 0;
  bool has_max_steps = false;
  std::uint64_t max_paths = 0;
  bool has_max_paths = false;
  bool csv = false;
};

/// Parse one request payload. Returns false (with *error filled) on
/// malformed JSON, a missing/invalid id, or an unknown op — the caller
/// answers with a parse_failed response and keeps the connection.
bool parse_serve_request(const std::string& payload, ServeRequest* out,
                         std::string* error);

/// Typed failure/refusal envelope: {"id", "status", "error"}. `id` is
/// omitted as null when the request never yielded one (parse failures).
std::string make_error_response(std::optional<std::uint64_t> id,
                                ErrorCode code, const std::string& message);

/// Envelope around a completed run item. `status` mirrors the item:
/// "ok" (including bounded coverage, which stays ok + item.status) for
/// items that ran to a result, the item's typed error code otherwise.
/// `csv` (optional) attaches the rendered schedule table.
std::string make_item_response(std::uint64_t id, const BatchItem& item,
                               const std::string* csv);

/// Shutdown acknowledgement: {"id", "status": "ok", "draining": true}.
std::string make_drain_response(std::uint64_t id);

/// Serialization options every run response uses (compact; no timing, no
/// workspace reuse counters — the fields a warm per-session workspace
/// pool or wall clock would perturb). The oracle comparison must use the
/// same options on the run_batch side.
BatchJsonOptions serve_item_json_options();

}  // namespace cps
