#include "models/fig1.hpp"

#include "cpg/builder.hpp"

namespace cps {

Cpg build_fig1_cpg() {
  Architecture arch;
  const PeId pe1 = arch.add_processor(Fig1Names::kPe1);
  const PeId pe2 = arch.add_processor(Fig1Names::kPe2);
  const PeId pe3 = arch.add_hardware(Fig1Names::kPe3);
  arch.add_bus(Fig1Names::kBus);
  arch.set_cond_broadcast_time(1);

  CpgBuilder b(arch);
  const CondId c = b.add_condition("C");
  const CondId d = b.add_condition("D");
  const CondId k = b.add_condition("K");

  // Processes with the paper's mapping and execution times.
  const ProcessId p1 = b.add_process("P1", pe1, 3);
  const ProcessId p2 = b.add_process("P2", pe1, 4);
  const ProcessId p3 = b.add_process("P3", pe2, 12);
  const ProcessId p4 = b.add_process("P4", pe1, 5);
  const ProcessId p5 = b.add_process("P5", pe2, 3);
  const ProcessId p6 = b.add_process("P6", pe1, 5);
  const ProcessId p7 = b.add_process("P7", pe2, 3);
  const ProcessId p8 = b.add_process("P8", pe3, 4);
  const ProcessId p9 = b.add_process("P9", pe1, 5);
  const ProcessId p10 = b.add_process("P10", pe1, 5);
  const ProcessId p11 = b.add_process("P11", pe2, 6);
  const ProcessId p12 = b.add_process("P12", pe3, 6);
  const ProcessId p13 = b.add_process("P13", pe1, 8);
  const ProcessId p14 = b.add_process("P14", pe2, 2);
  const ProcessId p15 = b.add_process("P15", pe2, 6);
  const ProcessId p16 = b.add_process("P16", pe3, 4);
  const ProcessId p17 = b.add_process("P17", pe2, 2);

  // Cross-PE edges carry the paper's communication times t_{i,j};
  // intra-PE edges cost nothing.
  b.add_edge(p1, p3, 1);                          // t1,3 = 1
  b.add_cond_edge(p2, p4, Literal{c, true});      // intra pe1
  b.add_cond_edge(p2, p5, Literal{c, false}, 3);  // t2,5 = 3
  b.add_edge(p3, p6, 2);                          // t3,6 = 2
  b.add_edge(p3, p10, 2);                         // t3,10 = 2
  b.add_edge(p4, p7, 3);                          // t4,7 = 3
  b.add_edge(p6, p8, 3);                          // t6,8 = 3
  b.add_edge(p7, p10, 2);                         // t7,10 = 2
  b.add_edge(p8, p10, 2);                         // t8,10 = 2
  b.add_edge(p9, p10);                            // intra pe1
  b.add_cond_edge(p11, p12, Literal{d, true}, 1);   // t11,12 = 1
  b.add_cond_edge(p11, p13, Literal{d, false}, 2);  // t11,13 = 2
  b.add_cond_edge(p12, p14, Literal{k, true}, 1);   // t12,14 = 1
  b.add_cond_edge(p12, p15, Literal{k, false}, 3);  // t12,15 = 3
  b.add_edge(p13, p17, 2);                          // t13,17 = 2
  b.add_edge(p14, p17);                             // intra pe2
  b.add_edge(p15, p17);                             // intra pe2
  b.add_edge(p16, p17, 2);                          // t16,17 = 2

  // P17 joins the three alternatives D&K (via P14), D&!K (via P15) and
  // !D (via P13), plus the unconditional input from P16: X_P17 = true.
  b.mark_conjunction(p17);

  (void)p5;  // the !C alternative ends after P5 (output feeds the sink)

  return b.build();
}

}  // namespace cps
