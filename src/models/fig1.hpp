// The running example of the paper (Fig. 1): 17 ordinary processes on two
// programmable processors, one ASIC and one shared bus, with conditions
// C (computed by P2), D (by P11) and K (by P12).
//
// The paper's figure is not machine readable; this model reconstructs the
// edge set from the published data (see DESIGN.md §4): the inter-processor
// communication-time list fixes all cross-PE edges, the mapping table and
// execution times are printed verbatim, the guard examples
// (X_P3 = true, X_P5 = !C, X_P14 = D&K, X_P17 = true) anchor the
// conditional structure, and the decision tree of Fig. 2 fixes the six
// alternative paths {C,!C} x {D&K, D&!K, !D}.
#pragma once

#include "cpg/cpg.hpp"

namespace cps {

/// Names of the processing elements, as in the paper.
struct Fig1Names {
  static constexpr const char* kPe1 = "pe1";   // programmable processor
  static constexpr const char* kPe2 = "pe2";   // programmable processor
  static constexpr const char* kPe3 = "pe3";   // ASIC
  static constexpr const char* kBus = "pe4";   // shared bus
};

/// Build the Fig. 1 conditional process graph (tau0 = 1 as in Table 1).
Cpg build_fig1_cpg();

}  // namespace cps
