// KeyStore: a hierarchical keyed on-disk store with atomic swap-in.
//
// The persistent tier of the schedule cache (and anything else that wants
// restart-surviving, cross-process blobs). Design follows the hierarchical
// key-database idiom (libelektra): entries live under
// `root/<first-two-hex-chars>/<key>.entry` so huge stores do not pile a
// million files into one directory; writers publish by writing a unique
// temp file in the final directory and atomically renaming it over the
// destination, so readers (and concurrent writers in other processes)
// never observe a half-written entry — the last rename wins, and with
// content-addressed keys both writers carried identical bytes anyway.
//
// Every entry is framed with a magic, a format version and an FNV-1a-64
// payload checksum; `get` validates all three plus the recorded length and
// throws StoreCorruptError (ErrorCode::kStoreCorrupt) on any mismatch, so
// callers can degrade gracefully (the schedule cache counts the error and
// treats it as a miss) instead of consuming garbage.
//
// Capacity is bounded deterministically, mirroring CoverCache's "no LRU
// luck" policy: after a put pushes the store past max_entries, the
// lexicographically largest keys are deleted until the bound holds again —
// the surviving set is a pure function of the key set, never of insertion
// or access order.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cps {

struct KeyStoreOptions {
  /// Root directory (created, along with parents, by the constructor).
  std::string root;
  /// Entry-count bound enforced after every put; 0 = unbounded.
  std::size_t max_entries = 4096;
};

class KeyStore {
 public:
  /// On-disk entry format version; bumped on incompatible layout changes.
  /// Entries written by another version are rejected as corrupt.
  static constexpr std::uint32_t kFormatVersion = 1;

  explicit KeyStore(KeyStoreOptions options);

  const std::string& root() const { return options_.root; }

  /// Atomically publish `payload` under `key`, replacing any previous
  /// entry, then enforce the entry bound. Keys must be lowercase-hex
  /// strings of at least two characters (Digest128::hex() qualifies).
  /// Returns the number of entries evicted by the bound.
  std::size_t put(const std::string& key, std::string_view payload);

  /// Load and validate the entry for `key`. Returns nullopt when absent;
  /// throws StoreCorruptError when present but invalid (bad magic, wrong
  /// version, truncated, checksum mismatch).
  std::optional<std::string> get(const std::string& key) const;

  /// Remove the entry for `key`; returns whether one existed.
  bool erase(const std::string& key);

  /// All keys currently present, sorted ascending.
  std::vector<std::string> keys() const;

  std::size_t size() const { return keys().size(); }

 private:
  std::string path_of(const std::string& key) const;

  KeyStoreOptions options_;
  /// Disambiguates temp files within this process (pid handles across).
  std::atomic<std::uint64_t> temp_seq_{0};
};

}  // namespace cps
