// ASCII Gantt rendering of a PathSchedule (the Fig. 4 view).
#pragma once

#include <ostream>
#include <string>

#include "sched/schedule.hpp"

namespace cps {

struct GanttOptions {
  /// Horizontal scale: model-time units per character cell (>= 1).
  Time time_per_cell = 1;
  /// Skip tasks shorter than this (0 = show everything).
  Time min_duration = 0;
  std::string title;
};

/// Render one row per resource; each task is drawn as `[name====]`
/// (approximately) over its time span.
void render_gantt(std::ostream& os, const FlatGraph& fg,
                  const PathSchedule& schedule,
                  const GanttOptions& options = {});

}  // namespace cps
