#include "io/table_csv.hpp"

#include <sstream>

#include "support/csv.hpp"

namespace cps {

void write_table_csv(std::ostream& os, const ScheduleTable& table) {
  const FlatGraph& fg = table.flat_graph();
  const ConditionSet& conds = fg.cpg().conditions();
  CsvWriter csv(os);
  csv.row({"task", "kind", "resource", "column", "start"});
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    const Task& task = fg.task(t);
    const char* kind = task.is_comm()        ? "comm"
                       : task.is_broadcast() ? "broadcast"
                                             : "process";
    for (const TableEntry& e : table.row(t)) {
      csv.cell(task.name)
          .cell(kind)
          .cell(fg.arch().pe(e.resource).name)
          .cell(conds.render(e.column))
          .cell(e.start);
      csv.end_row();
    }
  }
}

std::string table_csv_string(const ScheduleTable& table) {
  std::ostringstream os;
  write_table_csv(os, table);
  return os.str();
}

void write_delay_csv(std::ostream& os, const FlatGraph& fg,
                     const std::vector<AltPath>& paths,
                     const DelayReport& report) {
  CPS_REQUIRE(paths.size() == report.path_optimal.size() &&
                  paths.size() == report.path_actual.size(),
              "paths/report size mismatch");
  const ConditionSet& conds = fg.cpg().conditions();
  CsvWriter csv(os);
  csv.row({"path", "optimal_delay", "table_delay"});
  for (std::size_t i = 0; i < paths.size(); ++i) {
    csv.cell(conds.render(paths[i].label))
        .cell(report.path_optimal[i])
        .cell(report.path_actual[i]);
    csv.end_row();
  }
}

}  // namespace cps
