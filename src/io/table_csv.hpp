// CSV export of schedule tables and delay reports, for downstream
// analysis of experiment sweeps (plots of Fig. 5/6 style data).
#pragma once

#include <ostream>
#include <string>

#include "sched/delay.hpp"
#include "sched/schedule_table.hpp"

namespace cps {

/// One row per cell: task, kind, resource, column expression, start.
void write_table_csv(std::ostream& os, const ScheduleTable& table);

/// Same rows as write_table_csv, rendered to a string — for embedding
/// the table in another document (the service attaches it to a JSON
/// response when a request asks for "csv"). Deterministic: a pure
/// function of the table.
std::string table_csv_string(const ScheduleTable& table);

/// One row per alternative path: label, optimal delay, table delay.
void write_delay_csv(std::ostream& os, const FlatGraph& fg,
                     const std::vector<AltPath>& paths,
                     const DelayReport& report);

}  // namespace cps
