#include "io/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"

namespace cps {
namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'C', 'P', 'S', 'S', 'T', 'O', 'R', 'E'};
constexpr char kEntrySuffix[] = ".entry";

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x00000100000001b3ull;
  }
  return h;
}

// Header: magic(8) | version(4) | payload_len(8) | checksum(8).
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

bool valid_key(const std::string& key) {
  if (key.size() < 2) return false;
  for (char c : key) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

}  // namespace

KeyStore::KeyStore(KeyStoreOptions options) : options_(std::move(options)) {
  CPS_REQUIRE(!options_.root.empty(), "KeyStore requires a root directory");
  fs::create_directories(options_.root);
}

std::string KeyStore::path_of(const std::string& key) const {
  CPS_REQUIRE(valid_key(key),
              "KeyStore keys are lowercase-hex strings of >= 2 chars");
  return (fs::path(options_.root) / key.substr(0, 2) / (key + kEntrySuffix))
      .string();
}

std::size_t KeyStore::put(const std::string& key, std::string_view payload) {
  const fs::path dest = path_of(key);
  fs::create_directories(dest.parent_path());

  std::string blob;
  blob.reserve(kHeaderBytes + payload.size());
  blob.append(kMagic, sizeof(kMagic));
  put_u32(blob, kFormatVersion);
  put_u64(blob, payload.size());
  put_u64(blob, fnv1a(payload));
  blob.append(payload);

  // Unique temp name in the destination directory (rename across
  // directories would not be atomic), then swap in.
  const std::uint64_t seq = temp_seq_.fetch_add(1);
  const fs::path tmp =
      dest.parent_path() / (key + ".tmp." + std::to_string(::getpid()) + "." +
                            std::to_string(seq));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
      throw InternalError("KeyStore: failed to write " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, dest, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw InternalError("KeyStore: rename to " + dest.string() +
                        " failed: " + ec.message());
  }

  // Deterministic bound: survivors are always the max_entries smallest
  // keys, independent of insertion order (a large new key may evict
  // itself — acceptable, the property is what tests rely on).
  std::size_t evicted = 0;
  if (options_.max_entries != 0) {
    std::vector<std::string> all = keys();
    while (all.size() > options_.max_entries) {
      if (erase(all.back())) ++evicted;
      all.pop_back();
    }
  }
  return evicted;
}

std::optional<std::string> KeyStore::get(const std::string& key) const {
  const fs::path entry = path_of(key);
  std::ifstream in(entry, std::ios::binary);
  if (!in) return std::nullopt;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderBytes) {
    throw StoreCorruptError("store entry truncated below header: " +
                            entry.string());
  }
  if (blob.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    throw StoreCorruptError("store entry has bad magic: " + entry.string());
  }
  const std::uint32_t version = get_u32(blob, 8);
  if (version != kFormatVersion) {
    throw StoreCorruptError("store entry version " + std::to_string(version) +
                            " != " + std::to_string(kFormatVersion) + ": " +
                            entry.string());
  }
  const std::uint64_t len = get_u64(blob, 12);
  if (blob.size() != kHeaderBytes + len) {
    throw StoreCorruptError("store entry length mismatch: " + entry.string());
  }
  std::string payload = blob.substr(kHeaderBytes);
  if (fnv1a(payload) != get_u64(blob, 20)) {
    throw StoreCorruptError("store entry checksum mismatch: " +
                            entry.string());
  }
  return payload;
}

bool KeyStore::erase(const std::string& key) {
  std::error_code ec;
  return fs::remove(path_of(key), ec);
}

std::vector<std::string> KeyStore::keys() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator dir(options_.root, ec);
       !ec && dir != fs::directory_iterator(); ++dir) {
    if (!dir->is_directory()) continue;
    for (fs::directory_iterator it(dir->path(), ec);
         !ec && it != fs::directory_iterator(); ++it) {
      std::string name = it->path().filename().string();
      const std::size_t suffix = sizeof(kEntrySuffix) - 1;
      if (name.size() <= suffix ||
          name.compare(name.size() - suffix, suffix, kEntrySuffix) != 0) {
        continue;  // temp files and strangers are not entries
      }
      name.resize(name.size() - suffix);
      if (valid_key(name)) out.push_back(std::move(name));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cps
