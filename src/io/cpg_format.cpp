#include "io/cpg_format.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "cpg/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace cps {

namespace {

Time parse_time(const std::string& tok, int line_no) {
  try {
    std::size_t pos = 0;
    const Time t = std::stoll(tok, &pos);
    if (pos != tok.size() || t < 0) throw std::invalid_argument(tok);
    return t;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(line_no) +
                     ": expected a non-negative time, got '" + tok + "'");
  }
}

double parse_speed(const std::string& tok, int line_no) {
  try {
    std::size_t pos = 0;
    const double s = std::stod(tok, &pos);
    if (pos != tok.size() || s <= 0) throw std::invalid_argument(tok);
    return s;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(line_no) +
                     ": expected a positive speed, got '" + tok + "'");
  }
}

}  // namespace

Cpg parse_cpg(std::istream& is) {
  enum class Section { kNone, kArch, kConditions, kProcesses,
                       kConjunctions, kEdges };
  Section section = Section::kNone;

  Architecture arch;
  bool arch_done = false;
  std::optional<CpgBuilder> builder;
  std::map<std::string, CondId> conds;
  std::map<std::string, ProcessId> procs;
  std::vector<std::string> pending_conditions;
  std::vector<std::string> pending_conjunctions;

  auto ensure_builder = [&]() -> CpgBuilder& {
    if (!builder) {
      arch_done = true;
      builder.emplace(arch);
      for (const std::string& name : pending_conditions) {
        conds[name] = builder->add_condition(name);
      }
    }
    return *builder;
  };

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;

    if (tok[0][0] == '@') {
      const std::string& s = tok[0];
      if (s == "@arch") section = Section::kArch;
      else if (s == "@conditions") section = Section::kConditions;
      else if (s == "@processes") section = Section::kProcesses;
      else if (s == "@conjunctions") section = Section::kConjunctions;
      else if (s == "@edges") section = Section::kEdges;
      else throw ParseError("line " + std::to_string(line_no) +
                            ": unknown section " + s);
      continue;
    }

    switch (section) {
      case Section::kNone:
        throw ParseError("line " + std::to_string(line_no) +
                         ": content before any @section");
      case Section::kArch: {
        if (arch_done) {
          throw ParseError("line " + std::to_string(line_no) +
                           ": @arch must precede @processes");
        }
        if (tok[0] == "tau0") {
          if (tok.size() != 2) {
            throw ParseError("line " + std::to_string(line_no) +
                             ": tau0 expects one value");
          }
          arch.set_cond_broadcast_time(parse_time(tok[1], line_no));
        } else if (tok[0] == "processor") {
          if (tok.size() < 2 || tok.size() > 3) {
            throw ParseError("line " + std::to_string(line_no) +
                             ": processor expects name [speed]");
          }
          arch.add_processor(tok[1], tok.size() == 3
                                         ? parse_speed(tok[2], line_no)
                                         : 1.0);
        } else if (tok[0] == "hardware") {
          if (tok.size() != 2) {
            throw ParseError("line " + std::to_string(line_no) +
                             ": hardware expects a name");
          }
          arch.add_hardware(tok[1]);
        } else if (tok[0] == "bus") {
          if (tok.size() != 2) {
            throw ParseError("line " + std::to_string(line_no) +
                             ": bus expects a name");
          }
          arch.add_bus(tok[1]);
        } else if (tok[0] == "memory") {
          if (tok.size() != 2) {
            throw ParseError("line " + std::to_string(line_no) +
                             ": memory expects a name");
          }
          arch.add_memory(tok[1]);
        } else {
          throw ParseError("line " + std::to_string(line_no) +
                           ": unknown @arch item " + tok[0]);
        }
        break;
      }
      case Section::kConditions: {
        for (const std::string& name : tok) {
          pending_conditions.push_back(name);
        }
        break;
      }
      case Section::kProcesses: {
        if (tok.size() != 3) {
          throw ParseError("line " + std::to_string(line_no) +
                           ": process expects: name pe exec_time");
        }
        CpgBuilder& b = ensure_builder();
        if (procs.count(tok[0])) {
          throw ParseError("line " + std::to_string(line_no) +
                           ": duplicate process " + tok[0]);
        }
        procs[tok[0]] =
            b.add_process(tok[0], arch.id_of(tok[1]),
                          parse_time(tok[2], line_no));
        break;
      }
      case Section::kConjunctions: {
        for (const std::string& name : tok) {
          pending_conjunctions.push_back(name);
        }
        break;
      }
      case Section::kEdges: {
        if (tok.size() < 2 || tok.size() > 4) {
          throw ParseError("line " + std::to_string(line_no) +
                           ": edge expects: src dst [literal] [comm]");
        }
        CpgBuilder& b = ensure_builder();
        auto find_proc = [&](const std::string& name) {
          auto it = procs.find(name);
          if (it == procs.end()) {
            throw ParseError("line " + std::to_string(line_no) +
                             ": unknown process " + name);
          }
          return it->second;
        };
        const ProcessId src = find_proc(tok[0]);
        const ProcessId dst = find_proc(tok[1]);
        std::optional<Literal> literal;
        Time comm = 0;
        if (tok.size() >= 3) {
          // Third token: a literal (condition name, optionally '!') or a
          // communication time.
          std::string t3 = tok[2];
          bool neg = false;
          if (!t3.empty() && t3[0] == '!') {
            neg = true;
            t3 = t3.substr(1);
          }
          auto it = conds.find(t3);
          if (it != conds.end()) {
            literal = Literal{it->second, !neg};
            if (tok.size() == 4) comm = parse_time(tok[3], line_no);
          } else if (!neg && tok.size() == 3) {
            comm = parse_time(tok[2], line_no);
          } else {
            throw ParseError("line " + std::to_string(line_no) +
                             ": unknown condition " + t3);
          }
        }
        if (literal) {
          b.add_cond_edge(src, dst, *literal, comm);
        } else {
          b.add_edge(src, dst, comm);
        }
        break;
      }
    }
  }

  CpgBuilder& b = ensure_builder();
  for (const std::string& name : pending_conjunctions) {
    auto it = procs.find(name);
    if (it == procs.end()) {
      throw ParseError("@conjunctions mentions unknown process " + name);
    }
    b.mark_conjunction(it->second);
  }
  return b.build();
}

Cpg parse_cpg_string(const std::string& text) {
  std::istringstream is(text);
  return parse_cpg(is);
}

Cpg parse_cpg_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ParseError("cannot open " + path);
  return parse_cpg(is);
}

void write_cpg(std::ostream& os, const Cpg& g) {
  const Architecture& arch = g.arch();
  os << "@arch\n";
  for (PeId id = 0; id < static_cast<PeId>(arch.pe_count()); ++id) {
    const ProcessingElement& pe = arch.pe(id);
    switch (pe.kind) {
      case PeKind::kProcessor:
        os << "processor " << pe.name << ' ' << pe.speed << '\n';
        break;
      case PeKind::kHardware:
        os << "hardware " << pe.name << '\n';
        break;
      case PeKind::kBus:
        os << "bus " << pe.name << '\n';
        break;
      case PeKind::kMemory:
        os << "memory " << pe.name << '\n';
        break;
    }
  }
  os << "tau0 " << arch.cond_broadcast_time() << '\n';

  if (g.conditions().size() > 0) {
    os << "@conditions\n";
    for (CondId c = 0; c < g.conditions().size(); ++c) {
      const bool last = c + 1 == static_cast<CondId>(g.conditions().size());
      os << g.conditions().name(c) << (last ? "\n" : " ");
    }
  }

  os << "@processes\n";
  for (const Process& p : g.processes()) {
    if (p.is_dummy()) continue;
    os << p.name << ' ' << arch.pe(p.mapping).name << ' ' << p.exec_time
       << '\n';
  }

  bool any_conj = false;
  for (const Process& p : g.processes()) {
    if (!p.is_dummy() && p.conjunction) {
      if (!any_conj) {
        os << "@conjunctions\n";
        any_conj = true;
      }
      os << p.name << '\n';
    }
  }

  os << "@edges\n";
  for (const CpgEdge& e : g.edges()) {
    const Process& src = g.process(e.src);
    const Process& dst = g.process(e.dst);
    if (src.is_dummy() || dst.is_dummy()) continue;
    os << src.name << ' ' << dst.name;
    if (e.literal) {
      os << ' ' << (e.literal->value ? "" : "!")
         << g.conditions().name(e.literal->cond);
    }
    os << ' ' << e.comm_time << '\n';
  }
}

std::string write_cpg_string(const Cpg& g) {
  std::ostringstream os;
  write_cpg(os, g);
  return os.str();
}

}  // namespace cps
