// Rendering of a ScheduleTable in the style of the paper's Table 1: one
// row per process/communication/condition, one column per condition-value
// conjunction, cells holding activation times.
#pragma once

#include <ostream>

#include "sched/schedule_table.hpp"

namespace cps {

struct TableRenderOptions {
  /// Hide rows of tasks that never appear (should not happen).
  bool skip_empty_rows = true;
  /// Show communication rows (the black-dot processes).
  bool show_comm = true;
  /// Show condition broadcast rows (the last rows of Table 1).
  bool show_broadcasts = true;
};

void render_schedule_table(std::ostream& os, const ScheduleTable& table,
                           const TableRenderOptions& options = {});

}  // namespace cps
