#include "io/table_render.hpp"

#include "support/table_format.hpp"

namespace cps {

void render_schedule_table(std::ostream& os, const ScheduleTable& table,
                           const TableRenderOptions& options) {
  const FlatGraph& fg = table.flat_graph();
  const ConditionSet& conds = fg.cpg().conditions();
  const std::vector<Cube> columns = table.columns();

  AsciiTable out;
  std::vector<std::string> header{"process"};
  for (const Cube& c : columns) header.push_back(conds.render(c));
  out.header(std::move(header));

  for (TaskId t = 0; t < fg.task_count(); ++t) {
    const Task& task = fg.task(t);
    if (task.is_comm() && !options.show_comm) continue;
    if (task.is_broadcast() && !options.show_broadcasts) continue;
    if (task.is_process() && fg.task(t).origin_process &&
        fg.cpg().process(*task.origin_process).is_dummy()) {
      continue;
    }
    const auto& row = table.row(t);
    if (row.empty() && options.skip_empty_rows) continue;
    std::vector<std::string> cells{task.name};
    for (const Cube& col : columns) {
      std::string cell;
      for (const TableEntry& e : row) {
        if (e.column == col) {
          cell = std::to_string(e.start);
          break;
        }
      }
      cells.push_back(cell);
    }
    out.add_row(std::move(cells));
  }
  out.render(os);
}

}  // namespace cps
