#include "io/gantt.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "support/strings.hpp"

namespace cps {

void render_gantt(std::ostream& os, const FlatGraph& fg,
                  const PathSchedule& schedule, const GanttOptions& options) {
  const Time scale = std::max<Time>(1, options.time_per_cell);

  // Group scheduled tasks by resource.
  std::map<PeId, std::vector<TaskId>> by_resource;
  Time horizon = 0;
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (!schedule.scheduled(t)) continue;
    const Slot& s = schedule.slot(t);
    if (s.end - s.start < options.min_duration) continue;
    if (fg.task(t).is_process() && fg.task(t).duration == 0) continue;
    by_resource[s.resource].push_back(t);
    horizon = std::max(horizon, s.end);
  }

  if (!options.title.empty()) os << options.title << '\n';
  const auto cells = static_cast<std::size_t>(horizon / scale + 1);

  // Time ruler (marks every 10 cells).
  std::string ruler(cells, ' ');
  for (std::size_t i = 0; i < cells; i += 10) {
    const std::string mark = std::to_string(i * static_cast<std::size_t>(scale));
    for (std::size_t j = 0; j < mark.size() && i + j < cells; ++j) {
      ruler[i + j] = mark[j];
    }
  }
  os << pad_right("", 14) << ruler << '\n';

  for (auto& [res, tasks] : by_resource) {
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return schedule.slot(a).start < schedule.slot(b).start;
    });
    std::string line(cells, '.');
    for (TaskId t : tasks) {
      const Slot& s = schedule.slot(t);
      const auto from = static_cast<std::size_t>(s.start / scale);
      auto to = static_cast<std::size_t>(s.end / scale);
      if (to <= from) to = from + 1;  // zero-length tasks get one cell
      const std::string& name = fg.task(t).name;
      for (std::size_t i = from; i < to && i < cells; ++i) {
        const std::size_t k = i - from;
        line[i] = k < name.size() ? name[k] : '=';
      }
      if (to <= cells && to - from > name.size()) line[to - 1] = '|';
    }
    os << pad_right(fg.arch().pe(res).name, 13) << ' ' << line << '\n';
  }
}

}  // namespace cps
