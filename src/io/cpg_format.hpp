// Plain-text serialization of conditional process graphs (`.cpg` files).
//
// Format (line oriented, '#' starts a comment):
//
//   @arch
//   processor pe1 1.0       # name [speed]
//   hardware  pe3
//   bus       pe4           # all buses connect all processors
//   memory    mem1
//   tau0 1                  # condition broadcast time
//   @conditions
//   C D K
//   @processes
//   P1 pe1 3                # name pe exec_time
//   @conjunctions
//   P17
//   @edges
//   P1 P3 1                 # src dst [comm_time]
//   P2 P4 C 0               # src dst literal [comm_time]; '!' negates
//   P2 P5 !C 3
//
// parse_cpg builds and validates the graph (dummy source/sink, guards);
// write_cpg is its inverse for graphs built by any means.
#pragma once

#include <iosfwd>
#include <string>

#include "cpg/cpg.hpp"

namespace cps {

/// Parse a `.cpg` document. Throws ParseError on malformed input and
/// ValidationError on a structurally invalid model.
Cpg parse_cpg(std::istream& is);
Cpg parse_cpg_string(const std::string& text);
Cpg parse_cpg_file(const std::string& path);

/// Serialize; parse_cpg(write_cpg(g)) reproduces the model (dummy
/// processes are omitted, they are re-created on parse).
void write_cpg(std::ostream& os, const Cpg& g);
std::string write_cpg_string(const Cpg& g);

}  // namespace cps
