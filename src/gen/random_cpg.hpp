// Random conditional-process-graph generation (the 1080-graph workload of
// paper §6: 60/80/120-node graphs with 10/12/18/24/32 alternative paths,
// uniformly or exponentially distributed execution times).
//
// Construction is plan-driven so the number of alternative paths is hit
// *exactly*: a path-count N is recursively decomposed into
//   N = a * b  -> two blocks in series (independent condition regions), or
//   N = a + b  -> a disjunction process with an a-plan on the true branch,
//                 a b-plan on the false branch, meeting in a conjunction,
// and the resulting skeleton is padded with extra processes and extra
// forward data dependencies (guard-implication safe) up to the requested
// node count.
#pragma once

#include <cstdint>

#include "cpg/builder.hpp"
#include "support/random.hpp"

namespace cps {

enum class TimeDistribution : std::uint8_t { kUniform, kExponential };

const char* to_string(TimeDistribution d);

struct RandomCpgParams {
  /// Target number of ordinary processes (the skeleton may exceed it
  /// slightly for large path counts; the generator then keeps the larger
  /// size).
  std::size_t process_count = 60;
  /// Exact number of alternative paths (N_alt) the graph must have.
  std::size_t path_count = 10;
  TimeDistribution distribution = TimeDistribution::kUniform;
  /// Uniform execution-time range / exponential mean.
  Time exec_min = 1;
  Time exec_max = 20;
  double exec_mean = 8.0;
  /// Communication-time range (inter-PE edges only). Must stay >= tau0.
  Time comm_min = 1;
  Time comm_max = 8;
  double comm_mean = 4.0;
  /// Extra forward data-dependency edges, as a fraction of process count.
  double extra_edge_fraction = 0.4;
  /// Probability that a process is mapped to a hardware PE (if any).
  double hardware_fraction = 0.15;
};

/// Generate a validated CPG over the given architecture. Throws
/// InvalidArgument on unsatisfiable parameters (e.g. path_count == 0).
Cpg generate_random_cpg(const Architecture& arch,
                        const RandomCpgParams& params, Rng& rng);

}  // namespace cps
