// Random architecture generation for the Fig. 5 / Fig. 6 experiments:
// "architectures consisting of one ASIC and one to eleven processors and
// one to eight busses" (paper §6).
#pragma once

#include "arch/architecture.hpp"
#include "support/random.hpp"

namespace cps {

struct RandomArchParams {
  std::size_t min_processors = 1;
  std::size_t max_processors = 11;
  std::size_t min_buses = 1;
  std::size_t max_buses = 8;
  /// Number of ASICs (the paper uses exactly one).
  std::size_t asics = 1;
  Time cond_broadcast_time = 1;
};

/// Draw an architecture uniformly within the parameter bounds. All buses
/// connect all processors (paper §3 footnote 1 assumption).
Architecture generate_random_architecture(Rng& rng,
                                          const RandomArchParams& params = {});

/// A fixed small architecture (2 processors + 1 ASIC + 1 bus) matching the
/// Fig. 1 setting; handy for tests and examples.
Architecture example_architecture();

}  // namespace cps
