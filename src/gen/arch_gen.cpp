#include "gen/arch_gen.hpp"

namespace cps {

Architecture generate_random_architecture(Rng& rng,
                                          const RandomArchParams& params) {
  CPS_REQUIRE(params.min_processors >= 1 &&
                  params.min_processors <= params.max_processors,
              "invalid processor bounds");
  CPS_REQUIRE(params.min_buses >= 1 && params.min_buses <= params.max_buses,
              "invalid bus bounds");
  Architecture arch;
  const auto n_proc = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(params.min_processors),
      static_cast<std::int64_t>(params.max_processors)));
  const auto n_bus = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.min_buses),
                      static_cast<std::int64_t>(params.max_buses)));
  for (std::size_t i = 0; i < n_proc; ++i) {
    arch.add_processor("pe" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < params.asics; ++i) {
    arch.add_hardware("asic" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < n_bus; ++i) {
    arch.add_bus("bus" + std::to_string(i + 1));
  }
  arch.set_cond_broadcast_time(params.cond_broadcast_time);
  return arch;
}

Architecture example_architecture() {
  Architecture arch;
  arch.add_processor("pe1");
  arch.add_processor("pe2");
  arch.add_hardware("pe3");
  arch.add_bus("pe4");
  arch.set_cond_broadcast_time(1);
  return arch;
}

}  // namespace cps
