#include "gen/random_cpg.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace cps {

const char* to_string(TimeDistribution d) {
  switch (d) {
    case TimeDistribution::kUniform: return "uniform";
    case TimeDistribution::kExponential: return "exponential";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// Path-count plan.
// ---------------------------------------------------------------------

struct Plan {
  enum class Kind { kLeaf, kSeries, kBranch } kind = Kind::kLeaf;
  std::unique_ptr<Plan> left;
  std::unique_ptr<Plan> right;
};

std::unique_ptr<Plan> make_plan(std::size_t n, Rng& rng) {
  auto plan = std::make_unique<Plan>();
  if (n <= 1) return plan;  // leaf

  std::vector<std::size_t> divisors;
  for (std::size_t d = 2; d < n; ++d) {
    if (n % d == 0) divisors.push_back(d);
  }
  // Prefer multiplicative decomposition (keeps the condition count near
  // log2(N)); fall back on a branch split.
  if (!divisors.empty() && rng.bernoulli(0.7)) {
    const std::size_t d = divisors[rng.index(divisors.size())];
    plan->kind = Plan::Kind::kSeries;
    plan->left = make_plan(d, rng);
    plan->right = make_plan(n / d, rng);
    return plan;
  }
  // Balanced-ish additive split.
  const std::size_t lo = std::max<std::size_t>(1, n / 3);
  const std::size_t hi = std::max(lo, n - 1 - (n / 3));
  const std::size_t a = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(hi)));
  plan->kind = Plan::Kind::kBranch;
  plan->left = make_plan(a, rng);
  plan->right = make_plan(n - a, rng);
  return plan;
}

// ---------------------------------------------------------------------
// Graph construction.
// ---------------------------------------------------------------------

class Generator {
 public:
  Generator(const Architecture& arch, const RandomCpgParams& params,
            Rng& rng)
      : arch_(arch), params_(params), rng_(rng), builder_(arch) {}

  Cpg generate();

 private:
  struct Block {
    ProcessId entry;
    ProcessId exit;
  };

  Time sample_exec();
  Time sample_comm();
  PeId sample_mapping();
  ProcessId new_process(const Cube& guard);
  void connect(ProcessId src, ProcessId dst,
               std::optional<Literal> literal = std::nullopt);
  Block build_block(const Plan& plan, const Cube& guard);

  const Architecture& arch_;
  const RandomCpgParams& params_;
  Rng& rng_;
  CpgBuilder builder_;
  std::vector<PeId> processors_;
  std::vector<PeId> hardware_;
  std::vector<Cube> guard_of_;        // by ProcessId (creation order)
  std::vector<bool> is_conjunction_;  // by ProcessId
  std::size_t cond_counter_ = 0;
};

Time Generator::sample_exec() {
  switch (params_.distribution) {
    case TimeDistribution::kUniform:
      return rng_.uniform_int(params_.exec_min, params_.exec_max);
    case TimeDistribution::kExponential:
      return std::max<Time>(
          1, static_cast<Time>(rng_.exponential(params_.exec_mean) + 0.5));
  }
  return 1;
}

Time Generator::sample_comm() {
  Time t = params_.comm_min;
  switch (params_.distribution) {
    case TimeDistribution::kUniform:
      t = rng_.uniform_int(params_.comm_min, params_.comm_max);
      break;
    case TimeDistribution::kExponential:
      t = static_cast<Time>(rng_.exponential(params_.comm_mean) + 0.5);
      break;
  }
  // Communications must not undercut the condition broadcast time tau0
  // (paper §3: tau0 is at most any communication time).
  return std::max({t, params_.comm_min, arch_.cond_broadcast_time()});
}

PeId Generator::sample_mapping() {
  if (!hardware_.empty() && rng_.bernoulli(params_.hardware_fraction)) {
    return hardware_[rng_.index(hardware_.size())];
  }
  return processors_[rng_.index(processors_.size())];
}

ProcessId Generator::new_process(const Cube& guard) {
  const std::string name = "P" + std::to_string(guard_of_.size() + 1);
  const ProcessId p =
      builder_.add_process(name, sample_mapping(), sample_exec());
  CPS_ASSERT(p == guard_of_.size(), "process id drift in generator");
  guard_of_.push_back(guard);
  is_conjunction_.push_back(false);
  return p;
}

void Generator::connect(ProcessId src, ProcessId dst,
                        std::optional<Literal> literal) {
  if (literal) {
    builder_.add_cond_edge(src, dst, *literal, sample_comm());
  } else {
    builder_.add_edge(src, dst, sample_comm());
  }
}

Generator::Block Generator::build_block(const Plan& plan, const Cube& guard) {
  switch (plan.kind) {
    case Plan::Kind::kLeaf: {
      const ProcessId p = new_process(guard);
      return Block{p, p};
    }
    case Plan::Kind::kSeries: {
      const Block a = build_block(*plan.left, guard);
      const Block b = build_block(*plan.right, guard);
      connect(a.exit, b.entry);
      return Block{a.entry, b.exit};
    }
    case Plan::Kind::kBranch: {
      const ProcessId disj = new_process(guard);
      const CondId cond =
          builder_.add_condition("c" + std::to_string(++cond_counter_));
      const Literal pos{cond, true};
      const Literal neg{cond, false};
      auto guard_pos = guard.conjoin(pos);
      auto guard_neg = guard.conjoin(neg);
      CPS_ASSERT(guard_pos && guard_neg, "fresh condition cannot clash");
      const Block a = build_block(*plan.left, *guard_pos);
      const Block b = build_block(*plan.right, *guard_neg);
      connect(disj, a.entry, pos);
      connect(disj, b.entry, neg);
      const ProcessId conj = new_process(guard);
      builder_.mark_conjunction(conj);
      is_conjunction_[conj] = true;
      connect(a.exit, conj);
      connect(b.exit, conj);
      return Block{disj, conj};
    }
  }
  CPS_ASSERT(false, "unreachable plan kind");
}

Cpg Generator::generate() {
  CPS_REQUIRE(params_.path_count >= 1, "path_count must be >= 1");
  CPS_REQUIRE(params_.process_count >= 1, "process_count must be >= 1");
  processors_ = arch_.processors();
  for (PeId pe : arch_.of_kind(PeKind::kHardware)) hardware_.push_back(pe);
  CPS_REQUIRE(!processors_.empty() || !hardware_.empty(),
              "architecture has no computation PE");
  if (processors_.empty()) processors_ = hardware_;

  const auto plan = make_plan(params_.path_count, rng_);
  build_block(*plan, Cube::top());

  // Pad with extra processes hanging off random existing ones. The new
  // process inherits the guard cube of its predecessor, which keeps the
  // alternative-path count unchanged.
  while (guard_of_.size() < params_.process_count) {
    const ProcessId anchor =
        static_cast<ProcessId>(rng_.index(guard_of_.size()));
    const ProcessId p = new_process(guard_of_[anchor]);
    connect(anchor, p);
  }

  // Extra forward dependencies: src earlier than dst in creation order
  // (keeps the graph acyclic) and guard(dst) => guard(src) (keeps guards
  // unchanged); never into a conjunction process (its input set encodes
  // the alternatives).
  const auto extra_edges = static_cast<std::size_t>(
      params_.extra_edge_fraction *
      static_cast<double>(params_.process_count));
  std::size_t attempts = extra_edges * 8;
  std::size_t added = 0;
  std::vector<std::pair<ProcessId, ProcessId>> seen;
  while (added < extra_edges && attempts-- > 0) {
    const ProcessId a = static_cast<ProcessId>(rng_.index(guard_of_.size()));
    const ProcessId b = static_cast<ProcessId>(rng_.index(guard_of_.size()));
    if (a >= b) continue;
    if (is_conjunction_[b]) continue;
    if (!guard_of_[b].implies(guard_of_[a])) continue;
    if (std::find(seen.begin(), seen.end(), std::make_pair(a, b)) !=
        seen.end()) {
      continue;
    }
    seen.emplace_back(a, b);
    connect(a, b);
    ++added;
  }

  return builder_.build();
}

}  // namespace

Cpg generate_random_cpg(const Architecture& arch,
                        const RandomCpgParams& params, Rng& rng) {
  Generator gen(arch, params, rng);
  return gen.generate();
}

}  // namespace cps
