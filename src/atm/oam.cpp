#include "atm/oam.hpp"

#include <algorithm>

#include "cpg/builder.hpp"
#include "support/error.hpp"

namespace cps {

const char* to_string(OamCpu cpu) {
  switch (cpu) {
    case OamCpu::k486: return "486";
    case OamCpu::kPentium: return "Pent.";
  }
  return "?";
}

double oam_cpu_speed(OamCpu cpu) {
  switch (cpu) {
    case OamCpu::k486: return 1.0;
    case OamCpu::kPentium: return 1.6;  // 486DX2/80 -> Pentium/120
  }
  return 1.0;
}

std::string OamArchitecture::label() const {
  std::string s = std::to_string(cpus.size()) + "P/" +
                  std::to_string(memories) + "M ";
  if (cpus.size() == 2 && cpus[0] != cpus[1]) {
    s += "486+Pent.";
  } else if (cpus.size() == 2) {
    s += std::string("2x") + to_string(cpus[0]);
  } else {
    s += to_string(cpus[0]);
  }
  return s;
}

namespace {

// Base (486) durations in nanoseconds.
constexpr Time kCpuShort = 90;
constexpr Time kCpuMedium = 150;
constexpr Time kCpuLong = 240;
constexpr Time kMemAccess = 180;    // memory-module time, speed independent
constexpr Time kCommCpuMem = 0;     // memory has a dedicated port (no bus)
constexpr Time kCommCpuCpu = 140;   // bus time for a cpu<->cpu transfer
// Mode 3's side branch ships a bulk data structure: offloading it to the
// second processor costs this much bus time in each direction.
constexpr Time kCommBranchData = 340;
constexpr Time kTau0 = 25;          // condition broadcast time

/// Incremental construction helper: chains of cpu/mem processes with the
/// mapping knobs applied.
class ModeBuilder {
 public:
  ModeBuilder(const OamArchitecture& arch, const OamMapping& mapping)
      : arch_cfg_(arch), mapping_(mapping) {
    CPS_REQUIRE(!arch.cpus.empty() && arch.cpus.size() <= 2,
                "OAM architectures have one or two processors");
    CPS_REQUIRE(arch.memories == 1 || arch.memories == 2,
                "OAM architectures have one or two memory modules");
    for (std::size_t i = 0; i < arch.cpus.size(); ++i) {
      cpu_pes_.push_back(arch_.add_processor(
          "cpu" + std::to_string(i + 1), oam_cpu_speed(arch.cpus[i])));
    }
    for (int i = 0; i < arch.memories; ++i) {
      mem_pes_.push_back(arch_.add_memory("mem" + std::to_string(i + 1)));
    }
    arch_.add_bus("bus");
    arch_.set_cond_broadcast_time(kTau0);
    builder_.emplace(arch_);
  }

  /// Processor used for a chain of the given branch (0 = main chain).
  PeId cpu_for(int branch) const {
    const std::size_t main_idx =
        static_cast<std::size_t>(mapping_.main_cpu) % cpu_pes_.size();
    if (branch == 0 || !mapping_.offload_branch || cpu_pes_.size() < 2) {
      return cpu_pes_[main_idx];
    }
    return cpu_pes_[1 - main_idx];
  }

  PeId mem_for(int branch) const {
    if (mem_pes_.size() < 2 || !mapping_.split_memory) return mem_pes_[0];
    return mem_pes_[branch % 2];
  }

  double speed_of(PeId pe) const { return arch_.pe(pe).speed; }

  /// Add a computation process on the branch's processor.
  ProcessId cpu(int branch, Time base) {
    const PeId pe = cpu_for(branch);
    const Time t = std::max<Time>(
        1, static_cast<Time>(static_cast<double>(base) / speed_of(pe) + 0.5));
    return add(pe, t);
  }

  /// Add a memory-access process on the branch's memory module.
  ProcessId mem(int branch, Time duration = kMemAccess) {
    return add(mem_for(branch), duration);
  }

  CondId cond(const std::string& name) { return builder_->add_condition(name); }

  /// Connect two processes; communication time is inferred from the kinds
  /// of the endpoints (0 when they share a PE — the builder ignores it),
  /// or forced with `comm` for bulk transfers.
  void edge(ProcessId a, ProcessId b, Time comm = -1) {
    builder_->add_edge(a, b, comm >= 0 ? comm : comm_time(a, b));
  }
  void cond_edge(ProcessId a, ProcessId b, Literal lit) {
    builder_->add_cond_edge(a, b, lit, comm_time(a, b));
  }
  void conjunction(ProcessId p) { builder_->mark_conjunction(p); }

  /// Chain `n` processes after `prev` on a branch, making every second one
  /// a memory access (if with_memory). Returns the last process.
  ProcessId chain(int branch, ProcessId prev, int n, bool with_memory,
                  Time base = kCpuMedium) {
    for (int i = 0; i < n; ++i) {
      const bool is_mem = with_memory && (i % 2 == 1);
      const ProcessId p = is_mem ? mem(branch) : cpu(branch, base);
      edge(prev, p);
      prev = p;
    }
    return prev;
  }

  std::size_t process_count() const { return count_; }

  Cpg build() { return builder_->build(); }

 private:
  ProcessId add(PeId pe, Time t) {
    ++count_;
    const ProcessId p =
        builder_->add_process("P" + std::to_string(count_), pe, t);
    CPS_ASSERT(p == pe_of_.size(), "process id drift in OAM builder");
    pe_of_.push_back(pe);
    return p;
  }

  Time comm_time(ProcessId a, ProcessId b) const {
    const PeId pa = pe_of_[a];
    const PeId pb = pe_of_[b];
    if (pa == pb) return 0;
    const bool mem_involved = arch_.pe(pa).kind == PeKind::kMemory ||
                              arch_.pe(pb).kind == PeKind::kMemory;
    return mem_involved ? kCommCpuMem : kCommCpuCpu;
  }

  // PE of every created process (used by comm_time).
  std::vector<PeId> pe_of_;

  OamArchitecture arch_cfg_;
  OamMapping mapping_;
  Architecture arch_;
  std::optional<CpgBuilder> builder_;
  std::vector<PeId> cpu_pes_;
  std::vector<PeId> mem_pes_;
  std::size_t count_ = 0;
};

}  // namespace

Cpg build_oam_mode_cpg(int mode, const OamArchitecture& arch,
                       const OamMapping& mapping) {
  CPS_REQUIRE(mode >= 1 && mode <= 3, "OAM mode must be 1, 2 or 3");
  ModeBuilder mb(arch, mapping);

  if (mode == 1) {
    // 32 processes, 6 alternative paths: head(2) -> {F(13) || G(13)} ->
    // tail(4). F carries condition c1 (2 paths), G carries c2 nested with
    // c3 (3 paths). Both branches interleave computation with long memory
    // transactions. The memory windows are staggered so that on a 486 the
    // two branches never contend for one module, while on the faster
    // Pentium the computation between accesses shrinks, the windows slide
    // into each other and the *critical* branch F stalls behind G — which
    // a second memory module (split mapping) removes. This reproduces the
    // Table 2 effect that an extra module pays back only for 2 Pentiums.
    constexpr Time kMemLong = 350;
    const ProcessId h1 = mb.cpu(0, kCpuMedium);
    const ProcessId h2 = mb.cpu(0, kCpuShort);
    mb.edge(h1, h2);

    // F branch (branch id 0, main processor; the critical branch —
    // its memory windows start late).
    const CondId c1 = mb.cond("c1");
    const ProcessId f0 = mb.cpu(0, kCpuShort);  // disjunction of c1
    mb.edge(h2, f0);
    ProcessId f = mb.cpu(0, 840);
    mb.cond_edge(f0, f, Literal{c1, true});
    for (const Time step : {Time{-1}, Time{400}, Time{400}, Time{-1},
                            Time{300}, Time{300}, Time{-1}}) {
      const ProcessId p = step < 0 ? mb.mem(0, kMemLong) : mb.cpu(0, step);
      mb.edge(f, p);
      f = p;
    }
    ProcessId ff = mb.cpu(0, kCpuMedium);
    mb.cond_edge(f0, ff, Literal{c1, false});
    const ProcessId ffm = mb.mem(0);
    mb.edge(ff, ffm);
    const ProcessId ff2 = mb.cpu(0, kCpuShort);
    mb.edge(ffm, ff2);
    const ProcessId fj = mb.cpu(0, kCpuShort);
    mb.conjunction(fj);
    mb.edge(f, fj);
    mb.edge(ff2, fj);

    // G branch (branch id 1, offloadable; shorter, accesses memory first).
    const CondId c2 = mb.cond("c2");
    const CondId c3 = mb.cond("c3");
    const ProcessId g0 = mb.cpu(1, kCpuShort);  // disjunction of c2
    mb.edge(h2, g0);
    ProcessId g = mb.cpu(1, 310);
    mb.cond_edge(g0, g, Literal{c2, true});
    for (const Time step : {Time{-1}, Time{400}, Time{400}, Time{-1},
                            Time{600}, Time{300}}) {
      const ProcessId p = step < 0 ? mb.mem(1, kMemLong) : mb.cpu(1, step);
      mb.edge(g, p);
      g = p;
    }
    const ProcessId g1 = mb.cpu(1, kCpuShort);  // disjunction of c3
    mb.cond_edge(g0, g1, Literal{c2, false});
    const ProcessId gft = mb.cpu(1, kCpuMedium);
    mb.cond_edge(g1, gft, Literal{c3, true});
    const ProcessId gftm = mb.mem(1);
    mb.edge(gft, gftm);
    const ProcessId gff = mb.cpu(1, kCpuMedium);
    mb.cond_edge(g1, gff, Literal{c3, false});
    const ProcessId gj = mb.cpu(1, kCpuShort);
    mb.conjunction(gj);
    mb.edge(g, gj);
    mb.edge(gftm, gj);
    mb.edge(gff, gj);

    // Short tail on the main processor.
    const ProcessId t1 = mb.cpu(0, kCpuShort);
    mb.edge(fj, t1);
    mb.edge(gj, t1);
    mb.chain(0, t1, 3, /*with_memory=*/false, kCpuMedium);

    CPS_ASSERT(mb.process_count() == 32, "OAM mode 1 must have 32 processes");
    return mb.build();
  }

  if (mode == 2) {
    // 23 processes, 3 alternative paths; a pure chain (no parallelism),
    // entirely on the main processor.
    ProcessId prev = mb.cpu(0, kCpuMedium);
    prev = mb.chain(0, prev, 5, /*with_memory=*/true, kCpuMedium);
    const CondId c1 = mb.cond("c1");
    const ProcessId d1 = mb.cpu(0, kCpuShort);
    mb.edge(prev, d1);
    ProcessId bt = mb.cpu(0, kCpuLong);
    mb.cond_edge(d1, bt, Literal{c1, true});
    bt = mb.chain(0, bt, 6, /*with_memory=*/true, kCpuLong);
    const CondId c2 = mb.cond("c2");
    const ProcessId d2 = mb.cpu(0, kCpuShort);
    mb.cond_edge(d1, d2, Literal{c1, false});
    ProcessId b2 = mb.cpu(0, kCpuMedium);
    mb.cond_edge(d2, b2, Literal{c2, true});
    b2 = mb.chain(0, b2, 2, /*with_memory=*/true);
    ProcessId b3 = mb.cpu(0, kCpuShort);
    mb.cond_edge(d2, b3, Literal{c2, false});
    b3 = mb.chain(0, b3, 1, /*with_memory=*/false);
    const ProcessId j2 = mb.cpu(0, kCpuShort);
    mb.conjunction(j2);
    mb.edge(b2, j2);
    mb.edge(b3, j2);
    const ProcessId j1 = mb.cpu(0, kCpuShort);
    mb.conjunction(j1);
    mb.edge(bt, j1);
    mb.edge(j2, j1);
    mb.chain(0, j1, 1, /*with_memory=*/false);

    CPS_ASSERT(mb.process_count() == 23, "OAM mode 2 must have 23 processes");
    return mb.build();
  }

  // Mode 3: 42 processes, 8 alternative paths. Main chain A (with
  // conditions c1, c2) plus a side branch B (condition c3) forked from the
  // middle of A; offloading B pays only when the processors are slow
  // relative to the fixed communication cost.
  const ProcessId h1 = mb.cpu(0, kCpuMedium);
  ProcessId prev = mb.chain(0, h1, 3, /*with_memory=*/true, kCpuMedium);

  // A, first half.
  prev = mb.chain(0, prev, 3, /*with_memory=*/true, kCpuLong);
  const CondId c1 = mb.cond("c1");
  const ProcessId d1 = mb.cpu(0, kCpuShort);
  mb.edge(prev, d1);
  ProcessId at = mb.cpu(0, kCpuLong);
  mb.cond_edge(d1, at, Literal{c1, true});
  at = mb.chain(0, at, 4, /*with_memory=*/true, kCpuLong);
  ProcessId af = mb.cpu(0, kCpuMedium);
  mb.cond_edge(d1, af, Literal{c1, false});
  af = mb.chain(0, af, 3, /*with_memory=*/true, kCpuLong);
  const ProcessId ja1 = mb.cpu(0, kCpuShort);
  mb.conjunction(ja1);
  mb.edge(at, ja1);
  mb.edge(af, ja1);

  // B forks here (branch id 1): pure computation, no memory; moving it to
  // the other processor requires shipping the working set over the bus
  // (the comm time is ignored when B stays on the main processor).
  ProcessId b = mb.cpu(1, kCpuLong);
  mb.edge(ja1, b, kCommBranchData);
  b = mb.chain(1, b, 2, /*with_memory=*/false, kCpuLong);
  const CondId c3 = mb.cond("c3");
  const ProcessId d3 = mb.cpu(1, kCpuShort);
  mb.edge(b, d3);
  ProcessId bt3 = mb.cpu(1, kCpuMedium);
  mb.cond_edge(d3, bt3, Literal{c3, true});
  bt3 = mb.chain(1, bt3, 1, /*with_memory=*/false);
  const ProcessId bf3 = mb.cpu(1, kCpuShort);
  mb.cond_edge(d3, bf3, Literal{c3, false});
  const ProcessId jb = mb.cpu(1, kCpuShort);
  mb.conjunction(jb);
  mb.edge(bt3, jb);
  mb.edge(bf3, jb);
  b = mb.chain(1, jb, 1, /*with_memory=*/false);

  // A, second half (long enough that B fits in its shadow on a 486).
  ProcessId a2 = mb.cpu(0, kCpuLong);
  mb.edge(ja1, a2);
  a2 = mb.chain(0, a2, 4, /*with_memory=*/true, kCpuLong);
  const CondId c2 = mb.cond("c2");
  const ProcessId d2 = mb.cpu(0, kCpuShort);
  mb.edge(a2, d2);
  ProcessId a2t = mb.cpu(0, kCpuMedium);
  mb.cond_edge(d2, a2t, Literal{c2, true});
  const ProcessId a2f = mb.cpu(0, kCpuShort);
  mb.cond_edge(d2, a2f, Literal{c2, false});
  const ProcessId ja2 = mb.cpu(0, kCpuShort);
  mb.conjunction(ja2);
  mb.edge(a2t, ja2);
  mb.edge(a2f, ja2);

  // Join of A and B, then the tail. B's result is bulk data again.
  const ProcessId j = mb.cpu(0, kCpuShort);
  mb.edge(ja2, j);
  mb.edge(b, j, kCommBranchData);
  mb.chain(0, j, 5, /*with_memory=*/true, kCpuMedium);

  CPS_ASSERT(mb.process_count() == 42, "OAM mode 3 must have 42 processes");
  return mb.build();
}

OamModeResult evaluate_oam_mode(int mode, const OamArchitecture& arch) {
  std::vector<OamMapping> candidates;
  const int cpu_choices = arch.cpus.size() == 2 ? 2 : 1;
  for (int main_cpu = 0; main_cpu < cpu_choices; ++main_cpu) {
    for (int offload = 0; offload < (arch.cpus.size() == 2 ? 2 : 1);
         ++offload) {
      for (int split = 0; split < (arch.memories == 2 ? 2 : 1); ++split) {
        candidates.push_back(
            OamMapping{main_cpu, offload != 0, split != 0});
      }
    }
  }

  OamModeResult best;
  bool have = false;
  for (const OamMapping& mapping : candidates) {
    const Cpg g = build_oam_mode_cpg(mode, arch, mapping);
    const CoSynthesisResult res = schedule_cpg(g);
    if (!have || res.delays.delta_max < best.worst_case_delay) {
      best.worst_case_delay = res.delays.delta_max;
      best.process_count = g.ordinary_process_count();
      best.path_count = res.paths.size();
      best.best_mapping = mapping;
      have = true;
    }
  }
  CPS_ASSERT(have, "no mapping candidate evaluated");
  return best;
}

std::vector<OamArchitecture> oam_table2_architectures() {
  using C = OamCpu;
  return {
      OamArchitecture{{C::k486}, 1},
      OamArchitecture{{C::kPentium}, 1},
      OamArchitecture{{C::k486}, 2},
      OamArchitecture{{C::kPentium}, 2},
      OamArchitecture{{C::k486, C::k486}, 1},
      OamArchitecture{{C::kPentium, C::kPentium}, 1},
      OamArchitecture{{C::k486, C::kPentium}, 1},
      OamArchitecture{{C::k486, C::k486}, 2},
      OamArchitecture{{C::kPentium, C::kPentium}, 2},
      OamArchitecture{{C::k486, C::kPentium}, 2},
  };
}

}  // namespace cps
