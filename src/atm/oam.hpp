// ATM switch OAM block models (paper §6, Table 2).
//
// The OAM (operation and maintenance) block of the F4 protocol level runs
// in one of three independent modes; each mode is a conditional process
// graph scheduled on a small architecture of one or two processors
// (486DX2/80 or Pentium/120), one or two memory modules and an internal
// bus. The paper's VHDL process graphs are unpublished, so these models
// are synthesized to the published sizes (32/23/42 processes, 6/3/8
// alternative paths) and structural properties (see DESIGN.md §4):
//  * mode 2 is a pure chain: a second processor can never help;
//  * mode 3 has one side branch whose offloading pays for the 486 but is
//    eaten by communication overhead on the faster Pentium;
//  * mode 1 has two parallel branches with interleaved memory accesses:
//    a second processor always helps, a second memory module only when
//    the processors are fast enough for memory to become the bottleneck.
//
// Memory accesses are explicit processes mapped onto memory-module
// resources; execution times of processor-mapped processes scale with the
// processor's speed factor.
//
// As in the paper, processes are "assigned to processors taking into
// consideration the potential parallelism of the process graphs and the
// amount of communication": evaluate_oam_mode tries the sensible mapping
// candidates (main processor choice, branch offloading, memory-bank
// splitting) and reports the best worst-case delay.
#pragma once

#include <string>
#include <vector>

#include "cpg/cpg.hpp"
#include "sched/driver.hpp"

namespace cps {

enum class OamCpu : std::uint8_t { k486, kPentium };

const char* to_string(OamCpu cpu);

/// Relative speed of the processor models (execution-time divisor).
double oam_cpu_speed(OamCpu cpu);

struct OamArchitecture {
  std::vector<OamCpu> cpus;  // 1 or 2 entries
  int memories = 1;          // 1 or 2

  std::string label() const;  // e.g. "2P/1M 486+Pent."
};

/// Mapping knobs explored by evaluate_oam_mode.
struct OamMapping {
  /// Index (into cpus) of the processor running the main chain.
  int main_cpu = 0;
  /// Run the parallel branch (modes 1 and 3) on the other processor.
  bool offload_branch = false;
  /// Spread memory accesses of different branches over the two modules.
  bool split_memory = false;
};

/// Build the CPG of one mode (1..3) under a concrete mapping.
Cpg build_oam_mode_cpg(int mode, const OamArchitecture& arch,
                       const OamMapping& mapping);

struct OamModeResult {
  Time worst_case_delay = 0;
  std::size_t process_count = 0;  // ordinary processes (paper "nr. proc")
  std::size_t path_count = 0;     // alternative paths (paper "nr. paths")
  OamMapping best_mapping;
};

/// Evaluate one mode on one architecture: try all applicable mapping
/// candidates and keep the smallest worst-case delay (δ_max of the
/// generated schedule table).
OamModeResult evaluate_oam_mode(int mode, const OamArchitecture& arch);

/// The ten architecture configurations of Table 2, in column order.
std::vector<OamArchitecture> oam_table2_architectures();

}  // namespace cps
