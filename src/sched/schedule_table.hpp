// ScheduleTable: the output of the merging algorithm (paper §3).
//
// One row per task (ordinary process, communication process, condition
// broadcast); each cell holds an activation time valid when the cube
// heading its column is true. The coherence requirements 1-4 of paper §3
// are checked by sched/table_validate.hpp.
//
// Lookup structure: each row keeps its entries in insertion order (the
// deterministic order the merge produces and every equivalence guarantee
// compares) plus a hash index keyed on the packed column cube, so
// add_entry's exact-column lookup is O(1), and a union of the columns'
// mention masks, so matching/activation/conflict scans prefilter whole
// rows with a word test before touching individual entries. Tests
// re-derive every query by scanning row() and compare.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpg/flat_graph.hpp"

namespace cps {

struct TableEntry {
  /// Column header: conjunction of condition values known, at the start
  /// time, on the resource executing the task.
  Cube column;
  Time start = 0;
  /// Resource the activation refers to (differs from Task::resource only
  /// for broadcasts, which pick a bus per path).
  PeId resource = 0;

  friend bool operator==(const TableEntry& a, const TableEntry& b) {
    return a.column == b.column && a.start == b.start &&
           a.resource == b.resource;
  }
  friend bool operator!=(const TableEntry& a, const TableEntry& b) {
    return !(a == b);
  }
};

enum class AddEntryResult {
  kAdded,      ///< new cell
  kDuplicate,  ///< identical (column, start, resource) already present
  kClash,      ///< same column already present with a different start —
               ///< a requirement-2 violation the merge could not avoid
};

class ScheduleTable {
 public:
  explicit ScheduleTable(const FlatGraph& fg);

  const FlatGraph& flat_graph() const { return *fg_; }

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<TableEntry>& row(TaskId t) const;

  AddEntryResult add_entry(TaskId t, const Cube& column, Time start,
                           PeId resource);

  /// Entries of `t` whose column is compatible with `column` but whose
  /// start time or resource differs (the §5.2 conflict set W).
  std::vector<TableEntry> conflicting_entries(TaskId t, const Cube& column,
                                              Time start,
                                              PeId resource) const;

  /// All entries of `t` whose column is implied by the label (on a
  /// requirement-2-clean table, all agree on one decision).
  std::vector<TableEntry> matching(TaskId t, const Cube& label) const;

  /// Activation of `t` under a complete path label: the unique entry whose
  /// column is implied by the label. Returns nullopt when no entry
  /// applies (task inactive on the path). Throws InternalError when
  /// several applicable entries disagree (a requirement-2 violation);
  /// use matching() when inspecting possibly incoherent tables.
  std::optional<TableEntry> activation(TaskId t, const Cube& label) const;

  /// All distinct column cubes, sorted for display (fewer literals first,
  /// then lexicographically).
  std::vector<Cube> columns() const;

  /// Total number of cells.
  std::size_t entry_count() const;

  /// Cell-wise equality (rows, order and every entry field) — the
  /// canonical check behind the "byte-identical tables" guarantees of the
  /// speculative merger. Ignores which FlatGraph instance is referenced.
  friend bool operator==(const ScheduleTable& a, const ScheduleTable& b);
  friend bool operator!=(const ScheduleTable& a, const ScheduleTable& b) {
    return !(a == b);
  }

 private:
  struct Row {
    /// Cells in insertion order — the externally visible row.
    std::vector<TableEntry> entries;
    /// Exact-match index: column cube -> position in `entries`.
    std::unordered_map<Cube, std::uint32_t> by_column;
    /// Union of the packed mention masks of every column in the row.
    std::uint64_t mention_union = 0;
    /// All columns narrow (packed-only)? Cleared by a >64-condition
    /// universe; the mask prefilters are skipped then.
    bool all_narrow = true;
  };

  const FlatGraph* fg_;
  std::vector<Row> rows_;
};

}  // namespace cps
