// EngineWorkspace: reusable storage for the list-scheduler engine, plus
// the checkpoint machinery behind incremental prefix rescheduling.
//
// The engine deliberately runs its hot loops against engine-owned storage
// (borrowing the caller's vectors measured ~3x slower per-path run, see
// list_scheduler.hpp). Before this layer existed that snapshot was a fresh
// allocation per run; a workspace keeps every engine-side buffer — the
// request snapshot, the per-task bookkeeping vectors, the per-resource
// ready heaps and knowledge words, the private cover cache — alive across
// runs so repeated `run_list_scheduler` calls only re-`assign` into warm
// capacity. One workspace serves one thread: the serial driver and the
// merge walk own one as a plain member, speculative merge workers get
// per-worker slots (support/thread_pool's WorkerLocal).
//
// On top of the workspace, EngineHistory records a *checkpoint stream*
// during a run: the request-independent engine state at (a thinned subset
// of) the committed time steps. A later run on the same graph can then
// resume from the latest checkpoint that provably precedes any influence
// of the way the new request differs from the recorded one, instead of
// rescheduling from t=0. Two kinds of difference are supported:
//
//  * a differing rule-3 *lock set* (same label/active/priority) — the
//    classic incremental-rescheduling win for the merge phase, where
//    adjacent back-step adjustments of the same path differ only in a
//    small lock-set delta;
//  * an *extended guard assignment* (different path label, and with it
//    different active sets and priorities) — the guard-trie win for
//    per-path scheduling, where sibling alternative paths replay
//    identically until the first divergent condition value becomes known
//    on some resource (knowledge rule), so a leaf resumes from the
//    previous leaf's checkpoint at their shared trie prefix.
//
// A checkpoint deliberately stores no engine state at all — just a
// position into the run's append-only *start-event log* (schedule slots
// are write-once, so the whole request-independent state at a committed
// step is a pure function of the log prefix). Restoring replays that
// prefix into freshly initialized state and rebuilds everything
// request-dependent — pending counts, ready heaps, act times, knowledge
// words, lock structures — from the *new* request, which is what makes
// one stream servable to requests with different active sets and keeps
// recording cost near zero. Resumed runs are byte-identical to
// from-scratch runs (equivalence-tested); the knob is EngineResume with
// kFromScratch retained as the reference.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "cond/cover_cache.hpp"
#include "cpg/flat_graph.hpp"
#include "sched/schedule.hpp"

namespace cps {

/// A fixed reservation for a task (merge adjustment).
struct TaskLock {
  Time start = 0;
  PeId resource = 0;

  friend bool operator==(const TaskLock& a, const TaskLock& b) {
    return a.start == b.start && a.resource == b.resource;
  }
  friend bool operator!=(const TaskLock& a, const TaskLock& b) {
    return !(a == b);
  }
};

/// Ready-task selection strategy.
///
/// kHeap is the production engine: per-resource lazy max-heaps keyed by
/// (priority, task id), precomputed guard masks and a memoized DNF cover
/// cache. kLinearScan preserves the original O(V^2) engine byte-for-byte
/// (full task scans, per-step DNF re-evaluation); it exists as the
/// equivalence-test reference and performance baseline. Both produce
/// identical schedules on identical requests.
enum class ReadySelection : std::uint8_t { kHeap, kLinearScan };

const char* to_string(ReadySelection s);

/// Whether an engine run may resume from a recorded checkpoint stream.
///
/// kCheckpoint (production) resumes when the request matches a recorded
/// run up to its lock set and the first divergent lock provably cannot
/// influence the prefix; otherwise it falls back to a full run (and
/// re-records). kFromScratch ignores any history entirely — the reference
/// behavior, retained for equivalence tests and ablation.
enum class EngineResume : std::uint8_t { kFromScratch, kCheckpoint };

const char* to_string(EngineResume r);

/// Max-heap entry of the per-resource ready list: highest priority first,
/// lowest task id on ties (matching the reference linear scan exactly).
struct ReadyEntry {
  std::int64_t prio = 0;
  TaskId id = 0;
};

struct ReadyCompare {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return a.prio < b.prio || (a.prio == b.prio && a.id > b.id);
  }
};

using ReadyHeap =
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyCompare>;

/// Counters of one workspace (accumulated across the runs it served).
/// The serial driver's and the serial merge walk's counters are
/// deterministic; under speculative merge execution the inline-vs-worker
/// split depends on timing, so aggregated merge-side counters may vary
/// with thread count (the schedule tables never do).
struct WorkspaceStats {
  /// Engine runs served by this workspace.
  std::size_t runs = 0;
  /// Runs that found warm buffers from an earlier run (capacity reuse).
  std::size_t reuse_hits = 0;
  /// Checkpoint-mode runs resumed from a recorded checkpoint.
  std::size_t resumes = 0;
  /// Checkpoint-mode runs whose lock set matched the recorded run exactly
  /// (the recorded result was returned without stepping the engine).
  std::size_t full_reuses = 0;
  /// Checkpoint-mode runs that found no usable checkpoint.
  std::size_t from_scratch = 0;
  /// Committed time steps skipped by resuming (vs rescheduling from t=0).
  std::size_t resumed_steps = 0;
  /// Checkpoints recorded into histories by runs on this workspace.
  std::size_t checkpoints = 0;

  WorkspaceStats& operator+=(const WorkspaceStats& o) {
    runs += o.runs;
    reuse_hits += o.reuse_hits;
    resumes += o.resumes;
    full_reuses += o.full_reuses;
    from_scratch += o.from_scratch;
    resumed_steps += o.resumed_steps;
    checkpoints += o.checkpoints;
    return *this;
  }

  /// Counter delta (`after - before` of the same monotonic workspace):
  /// isolates the runs of one scope when a workspace is shared.
  WorkspaceStats& operator-=(const WorkspaceStats& o) {
    runs -= o.runs;
    reuse_hits -= o.reuse_hits;
    resumes -= o.resumes;
    full_reuses -= o.full_reuses;
    from_scratch -= o.from_scratch;
    resumed_steps -= o.resumed_steps;
    checkpoints -= o.checkpoints;
    return *this;
  }
};

/// One committed task start of a recorded run. Schedule slots are
/// write-once (placed at start, never modified), so the whole
/// request-independent engine state at any committed step is a pure
/// function of the *prefix* of the start-event log: started/finished
/// flags, schedule slots, resource occupancy, the knowledge words (a
/// condition is known where its disjunction/broadcast completions put
/// it), and — together with the resuming request — every derived
/// structure (pending counts, ready heaps, act times, lock lists).
struct StartEvent {
  TaskId task = 0;
  Time start = 0;
  Time end = 0;
  PeId resource = 0;
};

/// A checkpoint is just a position in the start-event log plus the clock:
/// recording one costs three scalar stores, and restore replays the log
/// prefix into freshly initialized engine state. The replay is what lets
/// one checkpoint stream serve requests that differ in their lock set
/// *or* in their whole guard assignment (active sets and priorities
/// included) — nothing request-dependent is ever stored.
struct EngineCheckpoint {
  Time now = 0;
  std::size_t steps = 0;    ///< committed steps up to and incl. this one
  std::size_t log_pos = 0;  ///< EngineHistory::log entries committed
};

/// Recorded run of one (graph, label, active, priority) request: the lock
/// set it ran with, the outcome, per-task first-startable times,
/// per-condition first-known times, and a thinned stream of checkpoints.
/// Owned by the caller and handed to the engine via
/// EngineRequest::history; the engine validates before trusting it and
/// re-records on every run. A later run may resume when it matches the
/// record exactly up to its lock set (the merge keeps one history per
/// alternative path), or — with empty lock sets on both sides — when only
/// its guard assignment diverged (the tree driver chains one history
/// across the leaves of the guard trie). Not thread-safe: one history
/// belongs to one thread at a time.
struct EngineHistory {
  /// Upper bound on live checkpoints; when reached, every second one is
  /// dropped and the recording stride doubles (log-structured thinning),
  /// so long runs keep coarse early coverage plus dense recent coverage.
  /// Checkpoints are log positions (three scalars each), so the bound is
  /// about keeping the restore search short, not about memory.
  static constexpr std::size_t kMaxCheckpoints = 64;

  bool valid = false;

  /// Caller hint: record checkpoints from the very first run. Runs whose
  /// history may be rerun by someone else (speculative merge jobs, whose
  /// commit re-runs with the by-then-grown lock set on a miss) set this;
  /// the recording then happens off the walk's critical path. Without it,
  /// checkpoint recording is demand-driven: the first run stores only the
  /// cheap per-run metadata (identity, locks, act, outcome — enough for
  /// full reuse), and per-step recording starts once a rerun with the
  /// same identity has actually been observed (see `record`). This keeps
  /// the serial merge free of recording overhead on workloads where every
  /// path is adjusted exactly once.
  bool eager = false;
  /// Demand latch, engine-maintained: a run with matching identity but a
  /// different lock set arrived, so reruns happen here and recording pays.
  bool record = false;

  // Identity of the recorded request (everything but the locks). The
  // graph is identified by its canonical *content* digest, not the
  // process-local uid: histories may cross requests — and, via the
  // schedule cache's prefix tier, processes — so "same graph" must mean
  // "same model". Safe because a history never holds pointers into the
  // graph (unlike EngineWorkspace's address-keyed cover cache, which
  // stays uid-bound) and the engine verifies task_count/label/active/
  // priority content before resuming.
  Digest128 graph_digest;
  std::size_t task_count = 0;
  Cube label;
  std::vector<bool> active;
  std::vector<std::int64_t> priority;
  bool enforce_knowledge = true;

  // The recorded run.
  std::vector<std::optional<TaskLock>> locks;
  std::uint64_t lock_fingerprint = 0;
  /// Per task: time its last active predecessor completed (the first
  /// moment it could possibly start); Time max when it never happened.
  std::vector<Time> act;
  /// Per condition: earliest time its value became known on *any*
  /// resource during the recorded run (Time max when it never did).
  /// Drives the guard-divergence analysis: a task whose activity differs
  /// between two guard assignments cannot start before some divergent
  /// condition is known on its resource.
  std::vector<Time> cond_known;
  /// Max duration over active tasks (lock-influence horizon), >= 1.
  Time max_duration = 1;
  bool feasible = false;
  PathSchedule final_schedule;
  std::optional<TaskId> offending_lock;
  std::string reason;
  std::size_t total_steps = 0;

  // Start-event log of the recorded run (committed task starts in start
  // order) and the checkpoint stream of positions into it. A resume
  // truncates both to the restored prefix; the continuation re-appends.
  std::vector<StartEvent> log;
  std::vector<EngineCheckpoint> ckpts;
  std::size_t ckpt_count = 0;
  std::size_t stride = 1;
  std::size_t since_record = 0;

  void invalidate() {
    valid = false;
    log.clear();
    ckpt_count = 0;
    stride = 1;
    since_record = 0;
  }
};

/// Deterministic fingerprint of a lock set (quick inequality filter; the
/// engine still compares exactly before reusing anything).
std::uint64_t lock_set_fingerprint(
    const std::vector<std::optional<TaskLock>>& locks);

/// Reusable engine-side storage. Default-constructed cold; the engine
/// warms it on first use and re-assigns (capacity-preserving) on every
/// subsequent run. All members below `stats` are engine-internal: callers
/// only construct the workspace, pass it to `run_list_scheduler` /
/// `schedule_path` / the merge, and read `stats`.
struct EngineWorkspace {
  EngineWorkspace() = default;
  EngineWorkspace(const EngineWorkspace&) = delete;
  EngineWorkspace& operator=(const EngineWorkspace&) = delete;

  WorkspaceStats stats;

  // --- engine-internal state (documented in list_scheduler.cpp) ---

  /// Graph the private cover cache (and warm sizing) is bound to; the
  /// cache is cleared whenever a run arrives for a different graph.
  std::uint64_t bound_graph_uid = 0;
  bool warm = false;

  /// Private fallback cover cache (used when the request brings none).
  CoverCache private_cache;

  // Request snapshot (engine-owned copies; assignment reuses capacity).
  Cube label;
  std::vector<bool> active;
  std::vector<std::int64_t> priority;
  std::vector<std::optional<TaskLock>> locks;
  bool enforce_knowledge = true;
  ReadySelection selection = ReadySelection::kHeap;

  // Scheduling state.
  PathSchedule sched;
  std::vector<std::size_t> pending;
  std::vector<Time> dep_ready;
  std::vector<bool> started;
  std::vector<bool> finished;
  std::vector<Time> busy_until;
  std::vector<TaskId> running;
  std::vector<std::vector<Time>> known;
  std::vector<char> seq;
  std::size_t remaining = 0;
  bool use_masks = false;

  // Heap-mode state.
  std::vector<std::uint64_t> known_pos;
  std::vector<std::uint64_t> known_neg;
  std::vector<ReadyHeap> ready;
  std::vector<TaskId> hw_ready;
  std::vector<TaskId> bcast_pending;
  std::vector<TaskId> locked_tasks;
  std::vector<std::vector<TaskId>> locks_on_res;

  // Checkpoint support.
  std::vector<Time> act;
  std::vector<Time> cond_known;

  // Step-local scratch (swap targets so the per-step rebuild of the
  // pending/running lists stops allocating).
  std::vector<TaskId> scratch_tasks;
  std::vector<TaskId> scratch_running;
  std::vector<ReadyEntry> scratch_deferred;
};

}  // namespace cps
