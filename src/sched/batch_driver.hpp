// Parallel batch experiment driver.
//
// The paper's experiments (§6) co-synthesize ~1080 random CPGs; the
// ROADMAP's north star is "thousands of scenarios, as fast as the hardware
// allows". This driver is the scaling substrate: ONE work-stealing
// runtime (support/thread_pool) co-synthesizes N random CPGs in parallel
// and also runs each item's inner parallelism — guard-trie subtree jobs
// and speculative merge adjustments are submitted to the same pool at
// higher priorities, so nested work saturates the machine instead of
// serializing inside items or oversubscribing it with per-item pools.
// Each graph derives from a deterministic per-task seed (base_seed +
// index) and each item pins its trie decomposition (a fixed subtree
// frontier, independent of pool size), so results are byte-identical
// regardless of thread count or completion order. Per-graph
// pipeline-stage timings and delay/merge statistics are aggregated via
// support/stats and exported as machine-readable JSON (support/json) for
// the benchmark harness and external tooling.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gen/arch_gen.hpp"
#include "gen/random_cpg.hpp"
#include "sched/driver.hpp"
#include "support/stats.hpp"

namespace cps {

class JsonWriter;

struct BatchConfig {
  /// Number of random CPGs to co-synthesize.
  std::size_t count = 16;
  /// Graph i uses Rng(base_seed + i) for architecture + CPG generation.
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Per-item wall-clock deadline in milliseconds; 0 = none. Each item
  /// (each retry attempt, in fact) gets a fresh deadline; a trip isolates
  /// that item — it reports kDeadlineExceeded and the batch continues.
  double deadline_ms = 0.0;
  /// Retry attempts for *transient* injected faults (deterministic
  /// seeded backoff, capped at 8 ms per step). Non-transient failures
  /// never retry. Total attempts per item = 1 + max_retries.
  std::size_t max_retries = 2;
  /// Optional batch-wide cancellation (non-owning; must outlive the
  /// call). Cancelling stops in-flight items cooperatively and fails
  /// not-yet-started items fast with kCancelled; run_batch still returns
  /// a complete BatchResult. Overrides (together with deadline_ms) any
  /// synthesis.budget the caller set.
  const CancelToken* cancel = nullptr;
  RandomArchParams arch;
  RandomCpgParams cpg;
  /// Per-item co-synthesis knobs. Most are passed through as-is; the
  /// driver overrides workspace/schedule_pool/keep_paths per item (see
  /// run_batch_item). synthesis.workspace_pool *does* flow through: a
  /// thread-safe pool of warm engine workspaces shared by every item
  /// (the service sets one per session). Results are identical with or
  /// without it, but the per-item "workspace" reuse counters then depend
  /// on which item drew a warm workspace — serialize with
  /// BatchJsonOptions::include_reuse_counters off when comparing such
  /// runs byte-for-byte.
  CoSynthesisOptions synthesis;
  /// Optional content-addressed schedule cache shared across items,
  /// batches and (via its persistent tier) processes — non-owning,
  /// thread-safe, must outlive the call. Exact tier: an item whose graph
  /// + result-affecting options were co-synthesized before replays the
  /// recorded result (and CSV) without touching the engine. Prefix tier:
  /// the driver seeds EngineHistory resume chains (see
  /// CoSynthesisOptions::schedule_cache, which this populates). Results
  /// are byte-identical with or without a cache; resume-class counters
  /// (cover_cache/workspace/path_tree) reflect cache state — serialize
  /// with BatchJsonOptions::include_resume_counters off when comparing a
  /// warm-cache run against a cold oracle byte-for-byte.
  ScheduleCache* cache = nullptr;
};

/// Outcome of one co-synthesized graph. All non-timing fields are a pure
/// function of the item seed (and config), never of thread scheduling.
struct BatchItem {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  bool ok = false;
  /// kOk for complete results; kPathBudgetExceeded for successful
  /// bounded-coverage results (ok stays true); otherwise the typed
  /// failure code (kDeadlineExceeded, kCancelled, kInjectedFault,
  /// kValidationFailed, ... — kInternal for untyped exceptions).
  ErrorCode code = ErrorCode::kOk;
  std::string error;  ///< non-empty iff !ok
  /// Attempts actually run (1 + retries taken; 0 only for count == 0).
  std::size_t attempts = 0;
  /// Transient-fault retries taken (attempts - 1 when retrying happened).
  std::size_t retries = 0;
  /// Total deterministic backoff slept between retry attempts.
  std::uint64_t backoff_ms = 0;
  /// Covered-leaves fraction (< 1.0 only for bounded-coverage results).
  double coverage = 1.0;
  /// Total leaf count behind `coverage` (see CoSynthesisResult).
  std::size_t total_leaves = 0;

  std::size_t processes = 0;
  std::size_t tasks = 0;
  std::size_t conditions = 0;
  std::size_t paths = 0;
  std::size_t table_entries = 0;
  Time delta_m = 0;
  Time delta_max = 0;
  double increase_percent = 0.0;
  MergeStats merge;
  /// Per-path scheduling cover-cache counters (deterministic per seed; the
  /// merge's own cache is timing-dependent under speculative execution and
  /// deliberately not exported here).
  CoverCacheStats cover_cache;
  /// Per-path scheduling engine-workspace counters (same determinism
  /// contract as cover_cache: each item runs on its own workspace, so the
  /// counters are a pure function of the seed; the merge-side workspace
  /// split is timing-dependent under speculation and not exported).
  WorkspaceStats workspace;
  /// Guard-trie scheduling counters (PathScheduling::kTree). Items pin
  /// their trie decomposition to a fixed subtree frontier (independent of
  /// pool size — the subtree jobs just run inline when the batch is
  /// serial), so these are a pure function of the seed too.
  PathTreeStats tree;

  // Wall-clock per pipeline stage (milliseconds).
  double expand_ms = 0.0;
  double enumerate_ms = 0.0;
  double schedule_ms = 0.0;
  double merge_ms = 0.0;
  double validate_ms = 0.0;
  double total_ms = 0.0;
};

struct BatchSummary {
  std::size_t count = 0;
  std::size_t ok_count = 0;
  /// Items that failed with kDeadlineExceeded.
  std::size_t timeouts = 0;
  /// Items that failed with kCancelled.
  std::size_t cancelled = 0;
  /// Transient-fault retry attempts summed over all items (including
  /// items that eventually succeeded).
  std::size_t retries = 0;
  /// Whole-batch wall clock (ms) and resulting throughput.
  double wall_ms = 0.0;
  double graphs_per_second = 0.0;

  StatAccumulator delta_m;
  StatAccumulator delta_max;
  StatAccumulator increase_percent;
  StatAccumulator tasks;
  StatAccumulator paths;
  StatAccumulator table_entries;
  StatAccumulator expand_ms;
  StatAccumulator enumerate_ms;
  StatAccumulator schedule_ms;
  StatAccumulator merge_ms;
  StatAccumulator validate_ms;
  StatAccumulator total_ms;

  /// Work-stealing runtime counters over the whole batch (zero for serial
  /// runs — no pool exists then). Like the wall-clock fields these are
  /// timing-dependent (which worker stole what is a legitimate race), so
  /// the JSON writer gates them behind include_timing.
  PoolStats pool;
  /// Snapshot of BatchConfig::cache at batch end (zero when none). Gated
  /// behind include_timing the same way PoolStats are: the counters are a
  /// pure function of the request set for one batch, but on a shared
  /// (daemon) cache they accumulate whatever earlier traffic left behind.
  ScheduleCacheStats cache;
  bool cache_enabled = false;
};

struct BatchResult {
  BatchConfig config;
  std::vector<BatchItem> items;  ///< ordered by index
  BatchSummary summary;
};

/// Run one item of the batch (exposed for tests and custom harnesses).
/// `runtime` is the shared work-stealing pool the item's inner subtree
/// jobs and speculative merge adjustments ride on; nullptr runs them
/// inline on the calling thread — same decomposition, same results.
BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime = nullptr);

/// Like run_batch_item, but additionally hands the successful attempt's
/// full CoSynthesisResult to `observe` (never called when the item
/// failed) — for harnesses that need more than the summarized BatchItem,
/// e.g. the service rendering a schedule-table CSV for a request. The
/// callback runs while the generated graph is still alive; the result
/// (its FlatGraph references the Cpg/Architecture, both locals of the
/// attempt) must NOT escape the callback.
using BatchItemObserver = std::function<void(const CoSynthesisResult&)>;
BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime,
                         const BatchItemObserver& observe);

/// Like the observer overload, but additionally returns the schedule-table
/// CSV through `table_csv` (ignored when nullptr, left empty for failed
/// items). This is the cache-transparent way to get the CSV: an exact
/// cache hit replays the *recorded* CSV bytes — the observer, which needs
/// a live CoSynthesisResult, is NOT called on a hit (the engine never
/// ran). The service uses this overload for its table_csv responses.
BatchItem run_batch_item(const BatchConfig& config, std::size_t index,
                         ThreadPool* runtime, const BatchItemObserver& observe,
                         std::string* table_csv);

/// Run the whole batch on the configured thread pool. Per-item failures
/// (generation or validation errors) are captured in the item, not thrown.
BatchResult run_batch(const BatchConfig& config);

struct BatchJsonOptions {
  /// Include wall-clock fields. Disable for byte-identical output across
  /// runs and thread counts (determinism tests, golden files).
  bool include_timing = true;
  /// Include the per-item array, not just config + summary.
  bool include_items = true;
  /// Include the per-item engine-workspace reuse-counter block. Those
  /// counters are a pure function of the seed for the default cold
  /// per-item workspaces, but with a shared WorkspacePool they reflect
  /// warm-lease luck — disable when comparing a pooled run against a
  /// cold oracle byte-for-byte (the service's determinism contract).
  bool include_reuse_counters = true;
  /// Include the per-item cover_cache and path_tree blocks. Pure
  /// functions of the seed for isolated items, but with a shared
  /// ScheduleCache the prefix tier seeds resume chains across requests —
  /// the same prefix-luck class as pooled workspace counters. The serve
  /// protocol serializes with this off so a response stays a pure
  /// function of (index, request options) regardless of cache state.
  bool include_resume_counters = true;
  /// Spaces per indentation level (0 = compact).
  int indent = 2;
};

std::string batch_result_to_json(const BatchResult& result,
                                 const BatchJsonOptions& options = {});

/// Serialize one item exactly as it appears in batch_result_to_json's
/// "items" array — into an existing writer (for embedding in a larger
/// document, e.g. a service response) or as a standalone string. The
/// byte-identical service contract rides on this shared serializer: a
/// response item and the run_batch oracle's item are the same bytes.
void write_batch_item_json(JsonWriter& w, const BatchItem& item,
                           const BatchJsonOptions& options);
std::string batch_item_to_json(const BatchItem& item,
                               const BatchJsonOptions& options = {});

}  // namespace cps
