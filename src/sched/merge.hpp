// Schedule merging: generation of the global schedule table (paper §5).
//
// The algorithm walks the binary decision tree of condition values in
// depth-first order. The state descending the tree carries the schedule of
// the *current path* — always the reachable path with the largest delay
// (rule 1). Start times are copied from the current schedule into the
// table, in chronological order, until a disjunction process whose
// condition is still undecided terminates; there the walk branches:
//
//  * the branch the current path takes continues with the same schedule;
//  * the opposite branch selects a new current path, *adjusts* its
//    optimal schedule — processes whose activation time was already fixed
//    in a column decided at ancestors of the branching node are locked to
//    that time (rule 3), the remaining ones are re-scheduled ASAP keeping
//    their original relative order — and *resolves conflicts* (§5.2): a
//    placement whose column is compatible with an existing cell at a
//    different time is moved onto one of the existing activation times
//    (Theorem 2) and the schedule re-adjusted, until the table stays
//    deterministic.
#pragma once

#include <cstdint>

#include "sched/list_scheduler.hpp"
#include "sched/schedule_table.hpp"
#include "support/random.hpp"

namespace cps {

/// Which reachable path becomes the current one after a back-step.
/// The paper uses kLongestFirst; the alternatives quantify the benefit
/// (bench_ablation_merge_order).
enum class PathSelection : std::uint8_t {
  kLongestFirst,
  kShortestFirst,
  kRandom,
};

const char* to_string(PathSelection s);

struct MergeOptions {
  PathSelection selection = PathSelection::kLongestFirst;
  std::uint64_t random_seed = 1;
  /// Engine used for the schedule adjustments (heap in production;
  /// linear-scan as the pre-heap reference for equivalence/ablation).
  ReadySelection ready = ReadySelection::kHeap;
  /// Trace the decision-tree walk, locks and conflicts to stderr
  /// (debugging aid).
  bool trace = false;
};

struct MergeStats {
  /// Back-steps taken in the decision tree (= schedules merged - 1).
  std::size_t backsteps = 0;
  /// Schedule adjustments performed (one per back-step).
  std::size_t adjustments = 0;
  /// Tasks locked by rule 3 across all adjustments.
  std::size_t locks = 0;
  /// Conflicts detected (§5.2).
  std::size_t conflicts = 0;
  /// Conflicts resolved by moving the task to a previously fixed time.
  std::size_t conflict_moves = 0;
  /// Conflicts no Theorem-2 candidate could fix (0 on well-formed models;
  /// counted so experiments can report the corner).
  std::size_t unresolved_conflicts = 0;
  /// Locks that had to be relaxed because the reservation was infeasible
  /// on the new path (0 on well-formed models).
  std::size_t relaxed_locks = 0;
  /// Exact-column clashes recorded by the table (0 expected).
  std::size_t column_clashes = 0;
};

struct MergeResult {
  ScheduleTable table;
  MergeStats stats;
};

/// Merge the per-path schedules into a schedule table. `paths` and
/// `schedules` are parallel arrays (one optimal PathSchedule per AltPath).
MergeResult merge_schedules(const FlatGraph& fg,
                            const std::vector<AltPath>& paths,
                            const std::vector<PathSchedule>& schedules,
                            const MergeOptions& options = {});

}  // namespace cps
