// Schedule merging: generation of the global schedule table (paper §5).
//
// The algorithm walks the binary decision tree of condition values in
// depth-first order. The state descending the tree carries the schedule of
// the *current path* — always the reachable path with the largest delay
// (rule 1). Start times are copied from the current schedule into the
// table, in chronological order, until a disjunction process whose
// condition is still undecided terminates; there the walk branches:
//
//  * the branch the current path takes continues with the same schedule;
//  * the opposite branch selects a new current path, *adjusts* its
//    optimal schedule — processes whose activation time was already fixed
//    in a column decided at ancestors of the branching node are locked to
//    that time (rule 3), the remaining ones are re-scheduled ASAP keeping
//    their original relative order — and *resolves conflicts* (§5.2): a
//    placement whose column is compatible with an existing cell at a
//    different time is moved onto one of the existing activation times
//    (Theorem 2) and the schedule re-adjusted, until the table stays
//    deterministic.
#pragma once

#include <cstdint>

#include "sched/list_scheduler.hpp"
#include "sched/schedule_table.hpp"
#include "support/random.hpp"

namespace cps {

class ThreadPool;

/// Which reachable path becomes the current one after a back-step.
/// The paper uses kLongestFirst; the alternatives quantify the benefit
/// (bench_ablation_merge_order).
enum class PathSelection : std::uint8_t {
  kLongestFirst,
  kShortestFirst,
  kRandom,
};

const char* to_string(PathSelection s);

/// How the decision-tree walk executes.
///
/// kSpeculative (production) runs the engine part of every back-step
/// adjustment on a thread pool: when the walk reaches a branching node it
/// already knows which path the opposite branch will adjust, so the
/// adjustment's list-scheduler run — a pure function of the rule-3 lock
/// set — is dispatched speculatively while the walk continues through the
/// sibling subtree. At commit time the lock set is re-derived from the
/// (by then further filled) table; on a match the speculated schedule is
/// reused, otherwise it is recomputed inline. Table writes, conflict
/// resolution (§5.2) and path selection stay on the walking thread in
/// exact serial order, so the resulting table is byte-identical to
/// kSerial at every thread count.
///
/// kSerial is the reference single-threaded walk (the pre-parallel
/// implementation, analogous to ReadySelection::kLinearScan), used by the
/// equivalence tests and as the speedup baseline.
enum class MergeExecution : std::uint8_t { kSerial, kSpeculative };

const char* to_string(MergeExecution e);

struct MergeOptions {
  PathSelection selection = PathSelection::kLongestFirst;
  std::uint64_t random_seed = 1;
  /// Engine used for the schedule adjustments (heap in production;
  /// linear-scan as the pre-heap reference for equivalence/ablation).
  ReadySelection ready = ReadySelection::kHeap;
  /// Decision-tree walk execution (see MergeExecution). kSpeculative
  /// silently degrades to the serial walk when tracing is on or when
  /// selection == kRandom (the random draw order is part of the
  /// reproducible serial behavior and cannot be speculated).
  MergeExecution execution = MergeExecution::kSpeculative;
  /// Speculative worker threads assisting the walk; 0 = the process-wide
  /// shared pool (hardware concurrency). Ignored by kSerial. The merged
  /// table does not depend on this value.
  std::size_t threads = 0;
  /// Optional externally owned pool for the speculative workers
  /// (overrides `threads`): lets callers that merge repeatedly — or that
  /// time the merge — pay the worker spawn cost once instead of per
  /// invocation. Must outlive the merge call. nullptr = resolve from
  /// `threads`.
  ThreadPool* pool = nullptr;
  /// Incremental prefix rescheduling of the walking thread's adjustment
  /// engine runs (see EngineResume): with kCheckpoint (production), each
  /// run records a checkpoint stream into a per-path EngineHistory and a
  /// later adjustment of the same path resumes from the last checkpoint
  /// preceding its rule-3 lock-set divergence, instead of rescheduling
  /// from t=0. Byte-identical to kFromScratch (the retained reference) at
  /// every thread count and execution mode.
  EngineResume resume = EngineResume::kCheckpoint;
  /// Trace the decision-tree walk, locks and conflicts to stderr
  /// (debugging aid; forces the serial walk).
  bool trace = false;
  /// Optional cooperative cancellation/deadline/step budget (non-owning;
  /// must outlive the merge). Polled by the decision-tree walk at every
  /// node and forwarded into every adjustment engine run — including
  /// speculative jobs on pool workers, so cancelling the budget drains
  /// in-flight speculation quickly too. A trip reports through
  /// MergeResult::ok/code; the table must then not be used, but every
  /// workspace/history stays reusable.
  RunBudget* budget = nullptr;
};

struct MergeStats {
  /// Back-steps taken in the decision tree (= schedules merged - 1).
  std::size_t backsteps = 0;
  /// Schedule adjustments performed (one per back-step).
  std::size_t adjustments = 0;
  /// Tasks locked by rule 3 across all adjustments.
  std::size_t locks = 0;
  /// Conflicts detected (§5.2).
  std::size_t conflicts = 0;
  /// Conflicts resolved by moving the task to a previously fixed time.
  std::size_t conflict_moves = 0;
  /// Conflicts no Theorem-2 candidate could fix (0 on well-formed models;
  /// counted so experiments can report the corner).
  std::size_t unresolved_conflicts = 0;
  /// Locks that had to be relaxed because the reservation was infeasible
  /// on the new path (0 on well-formed models).
  std::size_t relaxed_locks = 0;
  /// Exact-column clashes recorded by the table (0 expected).
  std::size_t column_clashes = 0;
  /// Speculative adjustments whose spawn-time rule-3 lock set still
  /// matched at commit time (engine run reused). Deterministic: the
  /// hit/miss split depends only on table contents, never on timing, so
  /// it is identical at every thread count (and 0 under kSerial).
  std::size_t speculative_hits = 0;
  /// Speculative adjustments re-run because the sibling subtree fixed
  /// additional rule-3 locks in the meantime.
  std::size_t speculative_misses = 0;
};

struct MergeResult {
  ScheduleTable table;
  MergeStats stats;
  /// Walking-thread cover-cache counters. Deterministic under kSerial; in
  /// speculative runs the inline-vs-worker split depends on timing, so
  /// these counters (unlike everything in `stats`) may vary with thread
  /// count and are excluded from byte-identical outputs.
  CoverCacheStats cover_cache;
  /// Aggregated engine-workspace counters (walking thread + speculative
  /// workers): buffer reuse, checkpoint resumes vs from-scratch runs,
  /// resumed steps. Like `cover_cache`, deterministic under kSerial but
  /// timing-dependent under speculation (whether a given adjustment runs
  /// inline or on a worker decides which counters it hits), so excluded
  /// from byte-identical outputs.
  WorkspaceStats workspace;
  /// False when an adjustment was unschedulable even after relaxing every
  /// relaxable lock (never happens on validated CPGs; previously this
  /// aborted via an internal assertion), or when the walk's RunBudget
  /// tripped. The table then holds the walk's progress up to the failure
  /// and must not be used.
  bool ok = true;
  /// kOk, kUnschedulable (genuine adjustment infeasibility), or the
  /// interrupt code of the budget trip that stopped the walk.
  ErrorCode code = ErrorCode::kOk;
  std::string error;  ///< non-empty iff !ok
};

/// Merge the per-path schedules into a schedule table. `paths` and
/// `schedules` are parallel arrays (one optimal PathSchedule per AltPath).
/// Adjustment infeasibility is reported through MergeResult::ok/error
/// rather than thrown.
MergeResult merge_schedules(const FlatGraph& fg,
                            const std::vector<AltPath>& paths,
                            const std::vector<PathSchedule>& schedules,
                            const MergeOptions& options = {});

}  // namespace cps
