// Structural validation of a schedule table against the four coherence
// requirements of paper §3:
//  1. an activation time in a column headed by E exists only if E implies
//     the guard of the process;
//  2. activation times are uniquely determined by the conditions: two
//     cells of one row with different times (or resources) must have
//     incompatible column expressions;
//  3. if the guard of a process becomes true, the process is activated:
//     the disjunction of the columns of its row is equivalent to its
//     guard;
//  4. activations depend only on condition values known, at that moment,
//     on the processing element executing the process (checked per path
//     by the run-time simulator, sched/table_sim.hpp).
#pragma once

#include <string>
#include <vector>

#include "cpg/paths.hpp"
#include "sched/schedule_table.hpp"

namespace cps {

struct TableValidation {
  bool ok = false;
  std::vector<std::string> violations;
};

/// Check requirements 1-3 structurally and requirement 4 (plus physical
/// realizability) by executing the table on every alternative path.
///
/// `complete_coverage` (default) asserts requirement 3 in full: each
/// row's columns must cover the task guard *exactly*. Bounded-coverage
/// tables (BudgetAction::kBound — `paths` is a truncated prefix of the
/// enumeration) pass false: uncovered label combinations legitimately
/// have no entries, so only the containment direction (req1) and the
/// per-covered-path requirements are enforced.
TableValidation validate_table(const FlatGraph& fg,
                               const ScheduleTable& table,
                               const std::vector<AltPath>& paths,
                               bool complete_coverage = true);

}  // namespace cps
