// PathSchedule: a concrete non-preemptive schedule of the tasks of one
// alternative path (start/end times plus the resource actually used, which
// matters for condition broadcasts that pick a bus dynamically).
#pragma once

#include <vector>

#include "cpg/flat_graph.hpp"

namespace cps {

struct Slot {
  Time start = -1;
  Time end = -1;
  PeId resource = 0;

  bool scheduled() const { return start >= 0; }
};

class PathSchedule {
 public:
  PathSchedule() = default;
  explicit PathSchedule(std::size_t task_count) : slots_(task_count) {}

  /// Re-initialize to `task_count` empty slots, reusing capacity (the
  /// allocation-free equivalent of `*this = PathSchedule(task_count)`).
  void reset(std::size_t task_count) { slots_.assign(task_count, Slot{}); }

  std::size_t task_count() const { return slots_.size(); }

  const Slot& slot(TaskId t) const {
    CPS_REQUIRE(t < slots_.size(), "task id out of range");
    return slots_[t];
  }
  bool scheduled(TaskId t) const { return slot(t).scheduled(); }

  void place(TaskId t, Time start, Time end, PeId resource) {
    CPS_REQUIRE(t < slots_.size(), "task id out of range");
    CPS_REQUIRE(start >= 0 && end >= start, "malformed slot");
    slots_[t] = Slot{start, end, resource};
  }

  /// Largest end time over all scheduled tasks (includes trailing
  /// broadcasts/communications).
  Time makespan() const;

  /// The system delay: activation time of the sink process (paper §2).
  /// Requires the sink task to be scheduled.
  Time delay(const FlatGraph& fg) const;

  /// Scheduled task ids sorted by (start, id) — the placement order used
  /// by the schedule-table generation walk.
  std::vector<TaskId> tasks_by_start() const;

 private:
  std::vector<Slot> slots_;
};

}  // namespace cps
