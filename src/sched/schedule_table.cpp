#include "sched/schedule_table.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

ScheduleTable::ScheduleTable(const FlatGraph& fg)
    : fg_(&fg), rows_(fg.task_count()) {}

const std::vector<TableEntry>& ScheduleTable::row(TaskId t) const {
  CPS_REQUIRE(t < rows_.size(), "task id out of range");
  return rows_[t].entries;
}

AddEntryResult ScheduleTable::add_entry(TaskId t, const Cube& column,
                                        Time start, PeId resource) {
  CPS_REQUIRE(t < rows_.size(), "task id out of range");
  CPS_REQUIRE(start >= 0, "activation times are non-negative");
  Row& row = rows_[t];
  const auto it = row.by_column.find(column);
  if (it != row.by_column.end()) {
    const TableEntry& e = row.entries[it->second];
    if (e.start == start && e.resource == resource) {
      return AddEntryResult::kDuplicate;
    }
    return AddEntryResult::kClash;
  }
  row.by_column.emplace(column,
                        static_cast<std::uint32_t>(row.entries.size()));
  row.entries.push_back(TableEntry{column, start, resource});
  row.mention_union |= column.mention_bits();
  row.all_narrow = row.all_narrow && column.narrow();
  return AddEntryResult::kAdded;
}

std::vector<TableEntry> ScheduleTable::conflicting_entries(
    TaskId t, const Cube& column, Time start, PeId resource) const {
  CPS_REQUIRE(t < rows_.size(), "task id out of range");
  const Row& row = rows_[t];
  std::vector<TableEntry> out;
  if (row.all_narrow && column.narrow()) {
    // A column sharing no mentioned condition with `column` is trivially
    // compatible; the union mask cannot rule the row out, but it skips the
    // per-entry incompatibility masks when no overlap exists at all.
    const std::uint64_t pos = column.pos_bits();
    const std::uint64_t neg = column.neg_bits();
    for (const TableEntry& e : row.entries) {
      if ((e.column.pos_bits() & neg) != 0 ||
          (e.column.neg_bits() & pos) != 0) {
        continue;  // incompatible: opposite literal
      }
      if (e.start == start && e.resource == resource) continue;
      out.push_back(e);
    }
  } else {
    for (const TableEntry& e : row.entries) {
      if (!e.column.compatible(column)) continue;
      if (e.start == start && e.resource == resource) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TableEntry& a, const TableEntry& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.resource < b.resource;
            });
  return out;
}

std::vector<TableEntry> ScheduleTable::matching(TaskId t,
                                                const Cube& label) const {
  CPS_REQUIRE(t < rows_.size(), "task id out of range");
  const Row& row = rows_[t];
  std::vector<TableEntry> out;
  if (row.all_narrow && label.narrow()) {
    // Row-level prefilter: a label deciding none of the conditions the
    // row's columns mention can only match the unconditional column.
    const std::uint64_t pos = label.pos_bits();
    const std::uint64_t neg = label.neg_bits();
    if ((row.mention_union & (pos | neg)) == 0) {
      const auto it = row.by_column.find(Cube::top());
      if (it != row.by_column.end()) out.push_back(row.entries[it->second]);
      return out;
    }
    for (const TableEntry& e : row.entries) {
      if ((e.column.pos_bits() & ~pos) != 0 ||
          (e.column.neg_bits() & ~neg) != 0) {
        continue;  // label does not imply the column
      }
      out.push_back(e);
    }
    return out;
  }
  for (const TableEntry& e : row.entries) {
    if (label.implies(e.column)) out.push_back(e);
  }
  return out;
}

std::optional<TableEntry> ScheduleTable::activation(
    TaskId t, const Cube& label) const {
  std::optional<TableEntry> found;
  for (const TableEntry& e : matching(t, label)) {
    if (found) {
      CPS_ASSERT(found->start == e.start && found->resource == e.resource,
                 "ambiguous activation for task " + fg_->task(t).name +
                     " under label " + label.to_string() +
                     " (requirement 2 violated)");
      continue;
    }
    found = e;
  }
  return found;
}

std::vector<Cube> ScheduleTable::columns() const {
  std::vector<Cube> out;
  for (const Row& row : rows_) {
    for (const TableEntry& e : row.entries) out.push_back(e.column);
  }
  std::sort(out.begin(), out.end(), [](const Cube& a, const Cube& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t ScheduleTable::entry_count() const {
  std::size_t n = 0;
  for (const Row& row : rows_) n += row.entries.size();
  return n;
}

bool operator==(const ScheduleTable& a, const ScheduleTable& b) {
  // Cell-wise: rows, order and every entry field. The index structures are
  // derived data and deliberately excluded.
  if (a.rows_.size() != b.rows_.size()) return false;
  for (std::size_t t = 0; t < a.rows_.size(); ++t) {
    if (a.rows_[t].entries != b.rows_[t].entries) return false;
  }
  return true;
}

}  // namespace cps
