#include "sched/schedule_table.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cps {

ScheduleTable::ScheduleTable(const FlatGraph& fg)
    : fg_(&fg), rows_(fg.task_count()) {}

const std::vector<TableEntry>& ScheduleTable::row(TaskId t) const {
  CPS_REQUIRE(t < rows_.size(), "task id out of range");
  return rows_[t];
}

AddEntryResult ScheduleTable::add_entry(TaskId t, const Cube& column,
                                        Time start, PeId resource) {
  CPS_REQUIRE(t < rows_.size(), "task id out of range");
  CPS_REQUIRE(start >= 0, "activation times are non-negative");
  for (const TableEntry& e : rows_[t]) {
    if (e.column == column) {
      if (e.start == start && e.resource == resource) {
        return AddEntryResult::kDuplicate;
      }
      return AddEntryResult::kClash;
    }
  }
  rows_[t].push_back(TableEntry{column, start, resource});
  return AddEntryResult::kAdded;
}

std::vector<TableEntry> ScheduleTable::conflicting_entries(
    TaskId t, const Cube& column, Time start, PeId resource) const {
  std::vector<TableEntry> out;
  for (const TableEntry& e : row(t)) {
    if (!e.column.compatible(column)) continue;
    if (e.start == start && e.resource == resource) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TableEntry& a, const TableEntry& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.resource < b.resource;
            });
  return out;
}

std::vector<TableEntry> ScheduleTable::matching(TaskId t,
                                                const Cube& label) const {
  std::vector<TableEntry> out;
  for (const TableEntry& e : row(t)) {
    if (label.implies(e.column)) out.push_back(e);
  }
  return out;
}

std::optional<TableEntry> ScheduleTable::activation(
    TaskId t, const Cube& label) const {
  std::optional<TableEntry> found;
  for (const TableEntry& e : matching(t, label)) {
    if (found) {
      CPS_ASSERT(found->start == e.start && found->resource == e.resource,
                 "ambiguous activation for task " + fg_->task(t).name +
                     " under label " + label.to_string() +
                     " (requirement 2 violated)");
      continue;
    }
    found = e;
  }
  return found;
}

std::vector<Cube> ScheduleTable::columns() const {
  std::vector<Cube> out;
  for (const auto& row : rows_) {
    for (const TableEntry& e : row) out.push_back(e.column);
  }
  std::sort(out.begin(), out.end(), [](const Cube& a, const Cube& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t ScheduleTable::entry_count() const {
  std::size_t n = 0;
  for (const auto& row : rows_) n += row.size();
  return n;
}

}  // namespace cps
