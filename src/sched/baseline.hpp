// Baseline schedulers used by the evaluation harness.
//
// The paper's quality reference is δ_M (per-path optimal). To situate the
// contribution, the benchmarks also compare against a *condition-oblivious*
// scheduler: it ignores the flow of control entirely and schedules every
// process of the graph as if it always executed (the classical data-flow
// view of [2,6]). Its single static schedule is trivially deterministic
// but its delay envelope is pessimistic; the gap to δ_max quantifies what
// condition awareness buys.
#pragma once

#include "sched/list_scheduler.hpp"

namespace cps {

struct ObliviousResult {
  /// The single static schedule over all tasks.
  PathSchedule schedule;
  /// Its delay (activation time of the sink).
  Time delay = 0;
};

/// Schedule every process/communication task, ignoring conditions:
/// conditional edges always fire, conjunction processes wait for all
/// inputs, no condition broadcasts are needed.
ObliviousResult oblivious_schedule(
    const FlatGraph& fg,
    PriorityPolicy policy = PriorityPolicy::kCriticalPath);

}  // namespace cps
