// Worst-case delay metrics (paper §4 and §6).
//
// δ_M  = max over alternative paths of the individually scheduled delay
//        (the lower bound the merge aims at);
// δ_max = max over alternative paths of the delay induced by the schedule
//        table (the guaranteed worst case);
// the quality metric of Fig. 5 is the percentage increase of δ_max over
// δ_M.
#pragma once

#include <vector>

#include "sched/schedule_table.hpp"
#include "sched/schedule.hpp"

namespace cps {

struct DelayReport {
  Time delta_m = 0;
  Time delta_max = 0;
  /// 100 * (δ_max - δ_M) / δ_M.
  double increase_percent = 0.0;
  /// Per-path optimal delay δ_k (parallel to the paths vector).
  std::vector<Time> path_optimal;
  /// Per-path delay induced by the table.
  std::vector<Time> path_actual;
};

/// Compute the report. Throws InternalError if the table fails to execute
/// on some path (validate first when in doubt).
DelayReport delay_report(const FlatGraph& fg,
                         const std::vector<AltPath>& paths,
                         const std::vector<PathSchedule>& schedules,
                         const ScheduleTable& table);

}  // namespace cps
