#include "sched/engine_workspace.hpp"

namespace cps {

const char* to_string(ReadySelection s) {
  switch (s) {
    case ReadySelection::kHeap: return "heap";
    case ReadySelection::kLinearScan: return "linear-scan";
  }
  return "?";
}

const char* to_string(EngineResume r) {
  switch (r) {
    case EngineResume::kFromScratch: return "from-scratch";
    case EngineResume::kCheckpoint: return "checkpoint";
  }
  return "?";
}

std::uint64_t lock_set_fingerprint(
    const std::vector<std::optional<TaskLock>>& locks) {
  // FNV-1a over (task, start, resource) of every present lock. Order is
  // the vector order, so equal lock sets hash equal deterministically.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::size_t t = 0; t < locks.size(); ++t) {
    if (!locks[t]) continue;
    mix(t);
    mix(static_cast<std::uint64_t>(locks[t]->start));
    mix(locks[t]->resource);
  }
  return h;
}

}  // namespace cps
