#include "sched/priority.hpp"

#include <algorithm>

#include "graph/dag_algo.hpp"
#include "support/error.hpp"

namespace cps {

const char* to_string(PriorityPolicy p) {
  switch (p) {
    case PriorityPolicy::kCriticalPath: return "critical-path";
    case PriorityPolicy::kTaskOrder: return "task-order";
    case PriorityPolicy::kRandom: return "random";
  }
  return "?";
}

std::vector<std::int64_t> compute_priorities(const FlatGraph& fg,
                                             const std::vector<bool>& active,
                                             PriorityPolicy policy,
                                             Rng* rng) {
  const std::size_t n = fg.task_count();
  CPS_REQUIRE(active.size() == n, "active vector size mismatch");
  std::vector<std::int64_t> prio(n, 0);
  switch (policy) {
    case PriorityPolicy::kCriticalPath: {
      auto order = topological_order(fg.deps());
      CPS_ASSERT(order.has_value(), "task dependency graph must be a DAG");
      for (auto it = order->rbegin(); it != order->rend(); ++it) {
        const TaskId v = *it;
        if (!active[v]) continue;
        std::int64_t best = 0;
        for (EdgeId e : fg.deps().out_edges(v)) {
          const TaskId w = fg.deps().edge(e).dst;
          if (active[w]) best = std::max(best, prio[w]);
        }
        prio[v] = best + fg.task(v).duration;
      }
      break;
    }
    case PriorityPolicy::kTaskOrder: {
      for (TaskId t = 0; t < n; ++t) {
        if (active[t]) prio[t] = static_cast<std::int64_t>(n - t);
      }
      break;
    }
    case PriorityPolicy::kRandom: {
      CPS_REQUIRE(rng != nullptr, "random priority policy needs an Rng");
      std::vector<std::int64_t> ranks(n);
      for (std::size_t i = 0; i < n; ++i) {
        ranks[i] = static_cast<std::int64_t>(i);
      }
      rng->shuffle(ranks);
      for (TaskId t = 0; t < n; ++t) {
        if (active[t]) prio[t] = ranks[t];
      }
      break;
    }
  }
  return prio;
}

}  // namespace cps
