#include "sched/merge.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"

namespace cps {

const char* to_string(PathSelection s) {
  switch (s) {
    case PathSelection::kLongestFirst: return "longest-first";
    case PathSelection::kShortestFirst: return "shortest-first";
    case PathSelection::kRandom: return "random";
  }
  return "?";
}

const char* to_string(MergeExecution e) {
  switch (e) {
    case MergeExecution::kSerial: return "serial";
    case MergeExecution::kSpeculative: return "speculative";
  }
  return "?";
}

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

/// Raised by the walk when an adjustment is unschedulable even after
/// relaxing every relaxable lock, or when the walk's RunBudget tripped;
/// caught by Merger::run and reported through MergeResult::ok/code/error
/// (never escapes merge_schedules).
struct MergeInfeasible {
  ErrorCode code = ErrorCode::kUnschedulable;
  std::string reason;
};

/// Engine run + lock-relaxation loop of one adjustment (paper §5.1): runs
/// the list scheduler, dropping any rule-3 lock that turns out infeasible
/// on the new path (rare; counted). Mutates base.locks to the final
/// (possibly relaxed) set. Pure in the inputs — no table, RNG or stats
/// access — which is exactly what makes it speculatable off-thread. The
/// workspace provides reusable engine buffers; base.history (if set)
/// carries the checkpoint stream for incremental resume.
struct AdjustEngineRun {
  bool ok = true;
  ErrorCode code = ErrorCode::kOk;  ///< kUnschedulable or interrupt iff !ok
  std::string error;                ///< non-empty iff !ok
  PathSchedule schedule;
  std::size_t relaxed = 0;
};

AdjustEngineRun run_adjust_engine(const FlatGraph& fg, EngineRequest& base,
                                  bool trace, EngineWorkspace& ws) {
  AdjustEngineRun out;
  EngineResult result;
  while (true) {
    result = run_list_scheduler(fg, base, ws);
    if (result.feasible) break;
    // An interrupted run (cancel/deadline/step budget) is NOT lock
    // infeasibility: relaxing locks cannot un-cancel it, so bail out
    // before the relaxation loop spins the engine again.
    if (is_interrupt(result.code)) {
      out.ok = false;
      out.code = result.code;
      out.error = result.reason;
      return out;
    }
    if (result.offending_lock && !base.locks.empty() &&
        base.locks[*result.offending_lock]) {
      if (trace) {
        std::cerr << "[merge]   RELAX lock on "
                  << fg.task(*result.offending_lock).name << " ("
                  << result.reason << ")\n";
      }
      base.locks[*result.offending_lock].reset();
      ++out.relaxed;
      continue;
    }
    // No relaxable lock left: the adjustment cannot be scheduled. This
    // never happens on validated CPGs; report it instead of aborting so
    // Release callers get a recoverable MergeResult error.
    out.ok = false;
    out.code = ErrorCode::kUnschedulable;
    out.error = "adjustment unschedulable: " + result.reason;
    return out;
  }
  out.schedule = std::move(result.schedule);
  return out;
}

/// One speculative adjustment in flight. The walking thread creates the
/// job with the spawn-time lock set, a pool worker (or, if the walk gets
/// there first, the walking thread itself) claims and runs the engine;
/// the claim flag guarantees exactly-once execution and makes the scheme
/// deadlock-free — the consumer never blocks on un-started work.
struct SpecJob {
  std::atomic<bool> claimed{false};
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;

  const FlatGraph* fg = nullptr;
  /// Inputs frozen at spawn; locks are mutated by the relaxation loop.
  EngineRequest base;
  /// Spawn-time rule-3 locks, kept for the commit-time validation.
  std::vector<std::optional<TaskLock>> spawn_locks;
  /// Job-local checkpoint stream (base.history points here). The worker
  /// records it eagerly — off the walk's critical path — so that a
  /// commit-time lock-set miss re-runs incrementally: the fresh locks
  /// typically differ from the spawn-time set only by the few rule-3
  /// locks the sibling subtree added, and the re-run resumes from the
  /// last checkpoint before that divergence instead of t=0. Ownership
  /// follows the claim flag: the worker writes it while running, the
  /// walking thread touches it only after wait().
  EngineHistory history;
  /// Per-worker engine workspaces of the owning merger. Only dereferenced
  /// by the pool worker that wins the claim — the merger (and therefore
  /// the slots) outlives every claimed job.
  WorkerLocal<EngineWorkspace>* workspaces = nullptr;

  AdjustEngineRun result;
  std::exception_ptr error;

  /// Run the engine (claim must already be won by the caller).
  void run() {
    try {
      // Fault site on a pool worker: exercises an exception crossing the
      // claim/steal boundary (captured here, rethrown at commit).
      CPS_FAULT_POINT("merge.spec");
      result = run_adjust_engine(*fg, base, /*trace=*/false,
                                 workspaces->local());
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
    }
    cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return done; });
  }
};

class Merger {
 public:
  Merger(const FlatGraph& fg, const std::vector<AltPath>& paths,
         const std::vector<PathSchedule>& schedules,
         const MergeOptions& options)
      : fg_(fg),
        paths_(paths),
        scheds_(schedules),
        opts_(options),
        rng_(options.random_seed),
        table_(fg),
        poll_(options.budget) {}

  ~Merger() { drain_outstanding(); }

  MergeResult run();

 private:
  std::vector<std::size_t> reachable_under(const Cube& decided) const;
  std::size_t select(const std::vector<std::size_t>& reachable);
  const std::vector<bool>& active_of(std::size_t path);
  Cube column_for(const PathSchedule& s, const Cube& label, TaskId t) const;
  void place(const PathSchedule& s, const Cube& label, TaskId t);

  /// Engine request for adjusting path `cur` (everything but the locks).
  /// The in-place form re-assigns into an existing request so the serial
  /// walk reuses one buffer across all its adjustments.
  void fill_base_request(std::size_t cur, EngineRequest& base);
  EngineRequest base_request(std::size_t cur);
  /// Rule-3 lock derivation against the current table state: lock every
  /// active task whose activation time was already fixed in a column
  /// decided entirely at ancestors of the branching node. `count`
  /// receives the number of locks found. The in-place form re-assigns an
  /// existing vector (capacity reuse on the walking thread).
  void rule3_locks_into(const Cube& ancestors, const Cube& decided,
                        const std::vector<bool>& active,
                        std::vector<std::optional<TaskLock>>& locks,
                        std::size_t* count) const;
  std::vector<std::optional<TaskLock>> rule3_locks(
      const Cube& ancestors, const Cube& decided,
      const std::vector<bool>& active, std::size_t* count) const;
  /// §5.2 conflict handling on the walking thread (exact table state).
  PathSchedule resolve_conflicts(EngineRequest& base, std::size_t cur,
                                 PathSchedule adjusted);

  PathSchedule adjust(const Cube& ancestors, const Cube& decided,
                      std::size_t cur);
  std::shared_ptr<SpecJob> spawn(const Cube& ancestors, const Cube& decided,
                                 std::size_t cur);
  PathSchedule commit(SpecJob& job, const Cube& ancestors,
                      const Cube& decided, std::size_t cur);

  void dfs(const Cube& decided, std::size_t cur, const PathSchedule& sched,
           std::vector<bool> done);

  /// Claim every outstanding job so no pool worker can touch a request
  /// (or workspace slot) that borrows from this object after it is gone,
  /// and wait out the ones that are running. A normal walk commits — and
  /// therefore claims — every job it spawned; this matters when the walk
  /// unwinds through an exception. Then quiesce the group: a committed
  /// job leaves its claimed-no-op wrapper behind in the pool queue, and
  /// waiting those wrappers out (help-running them — they are claim-check
  /// cheap) restores the submitted == executed balance before merge
  /// returns, so callers snapshotting PoolStats right after see a
  /// settled runtime instead of phantom pending work.
  void drain_outstanding() {
    for (const std::shared_ptr<SpecJob>& job : outstanding_) {
      if (job->claimed.exchange(true)) job->wait();
    }
    outstanding_.clear();
    if (spec_group_ != nullptr) spec_group_->wait();
  }

  const FlatGraph& fg_;
  const std::vector<AltPath>& paths_;
  const std::vector<PathSchedule>& scheds_;
  MergeOptions opts_;
  Rng rng_;
  std::vector<Time> deltas_;
  ScheduleTable table_;
  MergeStats stats_;
  /// Memoized guard-cover results shared by every walking-thread
  /// adjustment run (the same (guard, known-conditions) queries recur
  /// across paths). Never handed to pool workers — speculative engine
  /// runs use their per-worker workspaces' private caches.
  CoverCache cache_;
  /// Reusable engine buffers for every walking-thread engine run
  /// (adjustments, conflict trials, speculative-miss reruns), plus the
  /// request buffer the serial adjustments re-fill instead of
  /// reallocating. Safe to share across the walk: adjustments never
  /// overlap (dfs recurses only after the adjustment fully resolved).
  EngineWorkspace walk_ws_;
  EngineRequest walk_base_;
  /// Per-path checkpoint streams for incremental prefix rescheduling
  /// (EngineResume::kCheckpoint). Walking-thread property: speculative
  /// off-thread runs never see them, so there is no cross-thread sharing
  /// — and since resumed runs are byte-identical to from-scratch runs,
  /// the table stays identical whether or not a given run resumed.
  std::vector<EngineHistory> histories_;
  /// Per-path active-task vectors, computed once per path on demand.
  std::vector<std::vector<bool>> active_cache_;
  std::vector<bool> active_cached_;
  /// Packed per-path label masks for the reachability walks.
  PathLabelMasks label_masks_;
  /// Bounded-interval budget poller of the walking thread (one poll per
  /// decision-tree node; speculative workers poll inside their engine
  /// runs instead).
  BudgetPoll poll_;

  /// Speculation state (kSpeculative only).
  bool speculative_ = false;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  /// One engine workspace per pool worker (plus the spare slot that
  /// WorkerLocal reserves for the walking thread, unused here — the walk
  /// runs on walk_ws_).
  std::unique_ptr<WorkerLocal<EngineWorkspace>> worker_ws_;
  /// All speculative wrappers ride one group so drain_outstanding() can
  /// wait them out (declared after owned_pool_ in destruction-order
  /// terms: the group dies before the pool it tags tasks on).
  std::unique_ptr<TaskGroup> spec_group_;
  std::vector<std::shared_ptr<SpecJob>> outstanding_;
};

const std::vector<bool>& Merger::active_of(std::size_t path) {
  if (active_cache_.empty()) {
    active_cache_.resize(paths_.size());
    active_cached_.assign(paths_.size(), false);
  }
  if (!active_cached_[path]) {
    active_cache_[path] = fg_.active_tasks(paths_[path].label, &cache_);
    active_cached_[path] = true;
  }
  return active_cache_[path];
}

std::vector<std::size_t> Merger::reachable_under(const Cube& decided) const {
  std::vector<std::size_t> out;
  if (label_masks_.narrow && decided.narrow()) {
    // Hot path of the decision-tree walk: two word tests per path over
    // contiguous mask arrays.
    const std::uint64_t pos = decided.pos_bits();
    const std::uint64_t neg = decided.neg_bits();
    for (std::size_t i = 0; i < label_masks_.size(); ++i) {
      if (label_masks_.compatible(i, pos, neg)) out.push_back(i);
    }
    return out;
  }
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].label.compatible(decided)) out.push_back(i);
  }
  return out;
}

std::size_t Merger::select(const std::vector<std::size_t>& reachable) {
  CPS_ASSERT(!reachable.empty(), "path selection from empty set");
  switch (opts_.selection) {
    case PathSelection::kLongestFirst: {
      std::size_t best = reachable.front();
      for (std::size_t i : reachable) {
        if (deltas_[i] > deltas_[best]) best = i;
      }
      return best;
    }
    case PathSelection::kShortestFirst: {
      std::size_t best = reachable.front();
      for (std::size_t i : reachable) {
        if (deltas_[i] < deltas_[best]) best = i;
      }
      return best;
    }
    case PathSelection::kRandom:
      return reachable[rng_.index(reachable.size())];
  }
  return reachable.front();
}

Cube Merger::column_for(const PathSchedule& s, const Cube& label,
                        TaskId t) const {
  const Slot& slot = s.slot(t);
  // The column is a sub-cube of the (packed) label, so it is built
  // directly in packed form: one conjoin per known literal, each a couple
  // of word operations.
  Cube col;
  label.for_each([&](Literal lit) {
    const TaskId disj = fg_.disjunction_task(lit.cond);
    if (!s.scheduled(disj)) return;
    Time known_time;
    if (s.slot(disj).resource == slot.resource) {
      known_time = s.slot(disj).end;
    } else if (const auto bcast = fg_.broadcast_task(lit.cond)) {
      // Multi-resource models: a condition value crosses resources only
      // through its broadcast (the engine's knowledge rule). Without a
      // scheduled broadcast the value never reaches this PE — treating it
      // as known here used to fix start times in columns the resource
      // cannot distinguish yet.
      if (!s.scheduled(*bcast)) return;
      known_time = s.slot(*bcast).end;
    } else {
      // Single-resource models: a value is visible everywhere as soon as
      // the disjunction terminates (matching the engine's knowledge rule).
      known_time = s.slot(disj).end;
    }
    if (known_time <= slot.start) {
      auto next = col.conjoin(lit);
      CPS_ASSERT(next.has_value(), "label literals cannot contradict");
      col = std::move(*next);
    }
  });
  return col;
}

void Merger::place(const PathSchedule& s, const Cube& label, TaskId t) {
  const Slot& slot = s.slot(t);
  const Cube col = column_for(s, label, t);
  const AddEntryResult res =
      table_.add_entry(t, col, slot.start, slot.resource);
  if (res == AddEntryResult::kClash) ++stats_.column_clashes;
}

void Merger::fill_base_request(std::size_t cur, EngineRequest& base) {
  base.label = paths_[cur].label;
  base.active = active_of(cur);
  base.selection = opts_.ready;
  base.locks.assign(fg_.task_count(), std::nullopt);
  // Unlocked tasks keep the relative order of the path's optimal schedule.
  const PathSchedule& orig = scheds_[cur];
  base.priority.assign(fg_.task_count(), 0);
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (orig.scheduled(t)) base.priority[t] = -orig.slot(t).start;
  }
  base.cover_cache = nullptr;
  base.resume = EngineResume::kFromScratch;
  base.history = nullptr;
  // Every adjustment engine run — walking thread or speculative worker —
  // polls the merge's budget, so cancellation reaches nested runs fast.
  base.budget = opts_.budget;
}

EngineRequest Merger::base_request(std::size_t cur) {
  EngineRequest base;
  fill_base_request(cur, base);
  return base;
}

void Merger::rule3_locks_into(const Cube& ancestors, const Cube& decided,
                              const std::vector<bool>& active,
                              std::vector<std::optional<TaskLock>>& locks,
                              std::size_t* count) const {
  locks.assign(fg_.task_count(), std::nullopt);
  std::size_t found = 0;
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active[t]) continue;
    for (const TableEntry& e : table_.row(t)) {
      if (!e.column.conditions_subset_of(ancestors)) continue;
      if (!e.column.compatible(decided)) continue;
      locks[t] = TaskLock{e.start, e.resource};
      ++found;
      if (opts_.trace) {
        std::cerr << "[merge]   lock " << fg_.task(t).name << " @"
                  << e.start << " from column " << e.column.to_string()
                  << "\n";
      }
      break;
    }
  }
  if (count != nullptr) *count = found;
}

std::vector<std::optional<TaskLock>> Merger::rule3_locks(
    const Cube& ancestors, const Cube& decided,
    const std::vector<bool>& active, std::size_t* count) const {
  std::vector<std::optional<TaskLock>> locks;
  rule3_locks_into(ancestors, decided, active, locks, count);
  return locks;
}

PathSchedule Merger::resolve_conflicts(EngineRequest& base, std::size_t cur,
                                       PathSchedule adjusted) {
  const AltPath& path = paths_[cur];
  // §5.2 conflict handling. Each iteration pins one more task, so the
  // loop terminates after at most task_count iterations.
  while (true) {
    std::optional<TaskId> conflict_task;
    std::vector<TableEntry> w;
    for (TaskId t : adjusted.tasks_by_start()) {
      if (base.locks[t]) continue;
      const Cube col = column_for(adjusted, path.label, t);
      auto confl = table_.conflicting_entries(
          t, col, adjusted.slot(t).start, adjusted.slot(t).resource);
      if (!confl.empty()) {
        conflict_task = t;
        w = std::move(confl);
        break;
      }
    }
    if (!conflict_task) break;
    ++stats_.conflicts;
    if (opts_.trace) {
      std::cerr << "[merge]   CONFLICT on " << fg_.task(*conflict_task).name
                << " at " << adjusted.slot(*conflict_task).start
                << " col "
                << column_for(adjusted, paths_[cur].label, *conflict_task)
                       .to_string()
                << " with " << w.size() << " entries\n";
    }

    bool resolved = false;
    for (const TableEntry& cand : w) {
      auto trial = base;
      trial.locks[*conflict_task] = TaskLock{cand.start, cand.resource};
      // The trial differs from `base` in exactly one lock — the shape the
      // checkpoint resume (carried by base.history) accelerates best.
      EngineResult tr = run_list_scheduler(fg_, trial, walk_ws_);
      if (!tr.feasible) continue;
      const Cube col = column_for(tr.schedule, path.label, *conflict_task);
      if (!table_
               .conflicting_entries(*conflict_task, col, cand.start,
                                    cand.resource)
               .empty()) {
        continue;
      }
      base.locks = std::move(trial.locks);
      adjusted = std::move(tr.schedule);
      ++stats_.conflict_moves;
      resolved = true;
      break;
    }
    if (opts_.trace && resolved) {
      std::cerr << "[merge]   resolved by move\n";
    }
    if (!resolved) {
      if (opts_.trace) std::cerr << "[merge]   UNRESOLVED\n";
      // Theorem 2 guarantees a candidate on well-formed inputs; if none
      // worked, freeze the task where it is so the walk terminates and let
      // the validator surface the residual nondeterminism.
      ++stats_.unresolved_conflicts;
      base.locks[*conflict_task] =
          TaskLock{adjusted.slot(*conflict_task).start,
                   adjusted.slot(*conflict_task).resource};
    }
  }
  return adjusted;
}

PathSchedule Merger::adjust(const Cube& ancestors, const Cube& decided,
                            std::size_t cur) {
  CPS_FAULT_POINT("merge.adjust");
  ++stats_.adjustments;
  if (opts_.trace) {
    std::cerr << "[merge] adjust path " << cur << " label "
              << paths_[cur].label.to_string() << " decided "
              << decided.to_string() << " ancestors "
              << ancestors.to_string() << "\n";
  }
  EngineRequest& base = walk_base_;
  fill_base_request(cur, base);
  std::size_t lock_count = 0;
  rule3_locks_into(ancestors, decided, base.active, base.locks, &lock_count);
  stats_.locks += lock_count;
  base.cover_cache = &cache_;
  base.resume = opts_.resume;
  base.history = &histories_[cur];

  AdjustEngineRun run = run_adjust_engine(fg_, base, opts_.trace, walk_ws_);
  if (!run.ok) throw MergeInfeasible{run.code, run.error};
  stats_.relaxed_locks += run.relaxed;
  return resolve_conflicts(base, cur, std::move(run.schedule));
}

std::shared_ptr<SpecJob> Merger::spawn(const Cube& ancestors,
                                       const Cube& decided,
                                       std::size_t cur) {
  auto job = std::make_shared<SpecJob>();
  job->fg = &fg_;
  job->base = base_request(cur);
  // The speculative engine run happens off-thread: no shared cover cache
  // (CoverCache is not thread-safe; the engine uses the worker slot's
  // private one), no per-path history (histories_ belongs to the walking
  // thread — the job records into its own), and locks derived from the
  // table as of spawn time.
  job->base.cover_cache = nullptr;
  job->base.resume = opts_.resume;
  job->base.history = &job->history;
  job->history.eager = true;
  job->base.locks = rule3_locks(ancestors, decided, job->base.active,
                                nullptr);
  job->spawn_locks = job->base.locks;
  job->workspaces = worker_ws_.get();
  outstanding_.push_back(job);
  // High priority: on a shared runtime a speculative adjustment is on
  // the walking thread's critical path *right now*, so it must jump
  // ahead of queued batch items and subtree jobs.
  spec_group_->submit(
      [job] {
        if (job->claimed.exchange(true)) return;  // the walk got there first
        job->run();
      },
      TaskPriority::kHigh);
  return job;
}

PathSchedule Merger::commit(SpecJob& job, const Cube& ancestors,
                            const Cube& decided, std::size_t cur) {
  CPS_FAULT_POINT("merge.commit");
  ++stats_.adjustments;
  std::size_t lock_count = 0;
  std::vector<std::optional<TaskLock>> fresh =
      rule3_locks(ancestors, decided, job.base.active, &lock_count);
  stats_.locks += lock_count;

  // The hit/miss classification compares table states, not timing: it is
  // identical at every thread count.
  const bool reusable = fresh == job.spawn_locks;
  if (reusable) {
    ++stats_.speculative_hits;
  } else {
    ++stats_.speculative_misses;
  }

  if (!job.claimed.exchange(true)) {
    // No worker picked the job up yet: run it inline with the fresh
    // locks (always correct, whether or not they match spawn time).
    // Mark the job done so anything waiting on the claimed flag (the
    // destructor) sees the claim ⇒ eventually-done invariant hold.
    {
      std::lock_guard<std::mutex> lock(job.mutex);
      job.done = true;
    }
    job.cv.notify_all();
    job.base.locks = std::move(fresh);
    job.base.cover_cache = &cache_;
    // Running inline on the walking thread: demand-driven recording only
    // (eager recording is only free when a worker pays for it).
    job.history.eager = false;
    AdjustEngineRun run = run_adjust_engine(fg_, job.base, false, walk_ws_);
    if (!run.ok) throw MergeInfeasible{run.code, run.error};
    stats_.relaxed_locks += run.relaxed;
    return resolve_conflicts(job.base, cur, std::move(run.schedule));
  }

  job.wait();
  if (job.error) std::rethrow_exception(job.error);
  job.base.cover_cache = &cache_;
  if (reusable) {
    // The sibling subtree fixed no additional rule-3 locks: the
    // speculated engine run is exactly what the serial walk would have
    // computed (locks in, relaxations and schedule out).
    if (!job.result.ok) {
      throw MergeInfeasible{job.result.code, job.result.error};
    }
    stats_.relaxed_locks += job.result.relaxed;
    return resolve_conflicts(job.base, cur, std::move(job.result.schedule));
  }
  job.base.locks = std::move(fresh);
  AdjustEngineRun run = run_adjust_engine(fg_, job.base, false, walk_ws_);
  if (!run.ok) throw MergeInfeasible{run.code, run.error};
  stats_.relaxed_locks += run.relaxed;
  return resolve_conflicts(job.base, cur, std::move(run.schedule));
}

void Merger::dfs(const Cube& decided, std::size_t cur,
                 const PathSchedule& sched, std::vector<bool> done) {
  // One budget poll per decision-tree node: cheap (token-only most
  // polls), and bounded — a node does at most one adjustment engine run,
  // which polls internally. A trip here unwinds through the walk;
  // ~Merger's drain_outstanding() then claims or waits out every
  // speculative job (their engine runs share the budget, so they drain
  // fast instead of finishing queued work).
  {
    const ErrorCode trip = poll_.poll();
    if (trip != ErrorCode::kOk) {
      throw MergeInfeasible{
          trip, std::string("schedule merging interrupted: ") +
                    to_string(trip)};
    }
  }
  const Cube& label = paths_[cur].label;

  // Next undecided condition to be computed according to the current
  // schedule (the next node of the decision tree on this branch).
  // for_each visits literals in increasing condition order, matching the
  // historical iteration (earliest end wins; smallest condition id on
  // ties).
  Time tau = kInf;
  CondId next_cond = 0;
  bool branching = false;
  label.for_each([&](Literal lit) {
    if (decided.mentions(lit.cond)) return;
    const TaskId disj = fg_.disjunction_task(lit.cond);
    if (!sched.scheduled(disj)) return;
    const Time end = sched.slot(disj).end;
    if (!branching || end < tau || (end == tau && lit.cond < next_cond)) {
      tau = end;
      next_cond = lit.cond;
      branching = true;
    }
  });

  // Fix start times from the current schedule into the table, up to the
  // branching moment (everything, on a leaf).
  for (TaskId t : sched.tasks_by_start()) {
    if (done[t]) continue;
    if (branching && sched.slot(t).start >= tau) continue;
    place(sched, label, t);
    done[t] = true;
  }
  if (!branching) return;  // leaf of the decision tree

  const bool value = *label.value_of(next_cond);
  auto same = decided.conjoin(Literal{next_cond, value});
  auto flip = decided.conjoin(Literal{next_cond, !value});
  CPS_ASSERT(same && flip, "branching condition was undecided");

  // The path the opposite branch will adjust is already determined (for
  // the deterministic selection policies), so its engine run can start
  // now and overlap with the walk of the sibling subtree below.
  const auto reachable = reachable_under(*flip);
  std::shared_ptr<SpecJob> job;
  std::size_t flip_cur = 0;
  if (!reachable.empty() && speculative_) {
    flip_cur = select(reachable);
    job = spawn(decided, *flip, flip_cur);
  }

  // Follow the current schedule (no back-step).
  dfs(*same, cur, sched, done);

  // Back-step: explore the opposite condition value.
  if (!reachable.empty()) {
    ++stats_.backsteps;
    if (!job) flip_cur = select(reachable);  // serial: original draw order
    const PathSchedule adjusted =
        job ? commit(*job, decided, *flip, flip_cur)
            : adjust(decided, *flip, flip_cur);
    dfs(*flip, flip_cur, adjusted, done);
  }
}

MergeResult Merger::run() {
  CPS_REQUIRE(!paths_.empty(), "merge needs at least one path");
  CPS_REQUIRE(paths_.size() == scheds_.size(),
              "paths/schedules size mismatch");

  // Tracing and random path selection are inherently serial-order
  // businesses; everything else may speculate.
  speculative_ = opts_.execution == MergeExecution::kSpeculative &&
                 opts_.selection != PathSelection::kRandom && !opts_.trace;
  if (speculative_) {
    if (opts_.pool != nullptr) {
      pool_ = opts_.pool;
    } else if (opts_.threads == 0) {
      pool_ = &ThreadPool::shared();
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(opts_.threads);
      pool_ = owned_pool_.get();
    }
    worker_ws_ = std::make_unique<WorkerLocal<EngineWorkspace>>(*pool_);
    spec_group_ = std::make_unique<TaskGroup>(*pool_);
  }

  histories_.resize(paths_.size());
  label_masks_ = collect_label_masks(paths_);
  deltas_.resize(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    deltas_[i] = scheds_[i].delay(fg_);
  }
  std::vector<std::size_t> all(paths_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const std::size_t cur = select(all);

  bool ok = true;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  try {
    dfs(Cube::top(), cur, scheds_[cur],
        std::vector<bool>(fg_.task_count(), false));
  } catch (const MergeInfeasible& e) {
    ok = false;
    code = e.code;
    error = e.reason;
  }
  // Quiesce the speculation machinery before reading worker state (only
  // the infeasible path can leave un-committed jobs behind).
  drain_outstanding();

  WorkspaceStats workspace = walk_ws_.stats;
  if (worker_ws_ != nullptr) {
    worker_ws_->for_each(
        [&workspace](EngineWorkspace& ws) { workspace += ws.stats; });
  }
  return MergeResult{std::move(table_), stats_,     cache_.stats(),
                     workspace,         ok,         code,
                     std::move(error)};
}

}  // namespace

MergeResult merge_schedules(const FlatGraph& fg,
                            const std::vector<AltPath>& paths,
                            const std::vector<PathSchedule>& schedules,
                            const MergeOptions& options) {
  Merger merger(fg, paths, schedules, options);
  return merger.run();
}

}  // namespace cps
