#include "sched/merge.hpp"

#include <algorithm>
#include <iostream>
#include <limits>

#include "support/error.hpp"

namespace cps {

const char* to_string(PathSelection s) {
  switch (s) {
    case PathSelection::kLongestFirst: return "longest-first";
    case PathSelection::kShortestFirst: return "shortest-first";
    case PathSelection::kRandom: return "random";
  }
  return "?";
}

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

class Merger {
 public:
  Merger(const FlatGraph& fg, const std::vector<AltPath>& paths,
         const std::vector<PathSchedule>& schedules,
         const MergeOptions& options)
      : fg_(fg),
        paths_(paths),
        scheds_(schedules),
        opts_(options),
        rng_(options.random_seed),
        table_(fg) {}

  MergeResult run();

 private:
  std::vector<std::size_t> reachable_under(const Cube& decided) const;
  std::size_t select(const std::vector<std::size_t>& reachable);
  const std::vector<bool>& active_of(std::size_t path);
  Cube column_for(const PathSchedule& s, const Cube& label, TaskId t) const;
  void place(const PathSchedule& s, const Cube& label, TaskId t);
  PathSchedule adjust(const Cube& ancestors, const Cube& decided,
                      std::size_t cur);
  void dfs(const Cube& decided, std::size_t cur, const PathSchedule& sched,
           std::vector<bool> done);

  const FlatGraph& fg_;
  const std::vector<AltPath>& paths_;
  const std::vector<PathSchedule>& scheds_;
  MergeOptions opts_;
  Rng rng_;
  std::vector<Time> deltas_;
  ScheduleTable table_;
  MergeStats stats_;
  /// Memoized guard-cover results shared by every adjustment run (the
  /// same (guard, known-conditions) queries recur across paths).
  CoverCache cache_;
  /// Per-path active-task vectors, computed once per path on demand.
  std::vector<std::vector<bool>> active_cache_;
  std::vector<bool> active_cached_;
};

const std::vector<bool>& Merger::active_of(std::size_t path) {
  if (active_cache_.empty()) {
    active_cache_.resize(paths_.size());
    active_cached_.assign(paths_.size(), false);
  }
  if (!active_cached_[path]) {
    active_cache_[path] = fg_.active_tasks(paths_[path].label, &cache_);
    active_cached_[path] = true;
  }
  return active_cache_[path];
}

std::vector<std::size_t> Merger::reachable_under(const Cube& decided) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].label.compatible(decided)) out.push_back(i);
  }
  return out;
}

std::size_t Merger::select(const std::vector<std::size_t>& reachable) {
  CPS_ASSERT(!reachable.empty(), "path selection from empty set");
  switch (opts_.selection) {
    case PathSelection::kLongestFirst: {
      std::size_t best = reachable.front();
      for (std::size_t i : reachable) {
        if (deltas_[i] > deltas_[best]) best = i;
      }
      return best;
    }
    case PathSelection::kShortestFirst: {
      std::size_t best = reachable.front();
      for (std::size_t i : reachable) {
        if (deltas_[i] < deltas_[best]) best = i;
      }
      return best;
    }
    case PathSelection::kRandom:
      return reachable[rng_.index(reachable.size())];
  }
  return reachable.front();
}

Cube Merger::column_for(const PathSchedule& s, const Cube& label,
                        TaskId t) const {
  const Slot& slot = s.slot(t);
  Cube col;
  for (const Literal& lit : label.literals()) {
    const TaskId disj = fg_.disjunction_task(lit.cond);
    if (!s.scheduled(disj)) continue;
    Time known_time;
    if (s.slot(disj).resource == slot.resource) {
      known_time = s.slot(disj).end;
    } else if (auto bcast = fg_.broadcast_task(lit.cond);
               bcast && s.scheduled(*bcast)) {
      known_time = s.slot(*bcast).end;
    } else {
      // Single-resource models: a value is visible everywhere as soon as
      // the disjunction terminates (matching the engine's knowledge rule).
      known_time = s.slot(disj).end;
    }
    if (known_time <= slot.start) {
      auto next = col.conjoin(lit);
      CPS_ASSERT(next.has_value(), "label literals cannot contradict");
      col = std::move(*next);
    }
  }
  return col;
}

void Merger::place(const PathSchedule& s, const Cube& label, TaskId t) {
  const Slot& slot = s.slot(t);
  const Cube col = column_for(s, label, t);
  const AddEntryResult res =
      table_.add_entry(t, col, slot.start, slot.resource);
  if (res == AddEntryResult::kClash) ++stats_.column_clashes;
}

PathSchedule Merger::adjust(const Cube& ancestors, const Cube& decided,
                            std::size_t cur) {
  ++stats_.adjustments;
  if (opts_.trace) {
    std::cerr << "[merge] adjust path " << cur << " label "
              << paths_[cur].label.to_string() << " decided "
              << decided.to_string() << " ancestors "
              << ancestors.to_string() << "\n";
  }
  const AltPath& path = paths_[cur];

  EngineRequest base;
  base.label = path.label;
  base.active = active_of(cur);
  base.selection = opts_.ready;
  base.cover_cache = &cache_;
  base.locks.assign(fg_.task_count(), std::nullopt);

  // Rule 3: lock tasks whose activation time was already fixed in a column
  // decided entirely at ancestors of the branching node.
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!base.active[t]) continue;
    for (const TableEntry& e : table_.row(t)) {
      if (!e.column.conditions_subset_of(ancestors)) continue;
      if (!e.column.compatible(decided)) continue;
      base.locks[t] = TaskLock{e.start, e.resource};
      ++stats_.locks;
      if (opts_.trace) {
        std::cerr << "[merge]   lock " << fg_.task(t).name << " @"
                  << e.start << " from column " << e.column.to_string()
                  << "\n";
      }
      break;
    }
  }

  // Unlocked tasks keep the relative order of the path's optimal schedule.
  const PathSchedule& orig = scheds_[cur];
  base.priority.assign(fg_.task_count(), 0);
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (orig.scheduled(t)) base.priority[t] = -orig.slot(t).start;
  }

  // Run, relaxing any lock that turns out infeasible on this path (rare;
  // counted in the stats).
  EngineResult result;
  while (true) {
    result = run_list_scheduler(fg_, base);
    if (result.feasible) break;
    if (result.offending_lock && base.locks[*result.offending_lock]) {
      if (opts_.trace) {
        std::cerr << "[merge]   RELAX lock on "
                  << fg_.task(*result.offending_lock).name << " ("
                  << result.reason << ")\n";
      }
      base.locks[*result.offending_lock].reset();
      ++stats_.relaxed_locks;
      continue;
    }
    CPS_ASSERT(false, "adjustment unschedulable: " + result.reason);
  }
  PathSchedule adjusted = std::move(result.schedule);

  // §5.2 conflict handling. Each iteration pins one more task, so the
  // loop terminates after at most task_count iterations.
  while (true) {
    std::optional<TaskId> conflict_task;
    std::vector<TableEntry> w;
    for (TaskId t : adjusted.tasks_by_start()) {
      if (base.locks[t]) continue;
      const Cube col = column_for(adjusted, path.label, t);
      auto confl = table_.conflicting_entries(
          t, col, adjusted.slot(t).start, adjusted.slot(t).resource);
      if (!confl.empty()) {
        conflict_task = t;
        w = std::move(confl);
        break;
      }
    }
    if (!conflict_task) break;
    ++stats_.conflicts;
    if (opts_.trace) {
      std::cerr << "[merge]   CONFLICT on " << fg_.task(*conflict_task).name
                << " at " << adjusted.slot(*conflict_task).start
                << " col "
                << column_for(adjusted, paths_[cur].label, *conflict_task)
                       .to_string()
                << " with " << w.size() << " entries\n";
    }

    bool resolved = false;
    for (const TableEntry& cand : w) {
      auto trial = base;
      trial.locks[*conflict_task] = TaskLock{cand.start, cand.resource};
      EngineResult tr = run_list_scheduler(fg_, trial);
      if (!tr.feasible) continue;
      const Cube col = column_for(tr.schedule, path.label, *conflict_task);
      if (!table_
               .conflicting_entries(*conflict_task, col, cand.start,
                                    cand.resource)
               .empty()) {
        continue;
      }
      base.locks = std::move(trial.locks);
      adjusted = std::move(tr.schedule);
      ++stats_.conflict_moves;
      resolved = true;
      break;
    }
    if (opts_.trace && resolved) {
      std::cerr << "[merge]   resolved by move\n";
    }
    if (!resolved) {
      if (opts_.trace) std::cerr << "[merge]   UNRESOLVED\n";
      // Theorem 2 guarantees a candidate on well-formed inputs; if none
      // worked, freeze the task where it is so the walk terminates and let
      // the validator surface the residual nondeterminism.
      ++stats_.unresolved_conflicts;
      base.locks[*conflict_task] =
          TaskLock{adjusted.slot(*conflict_task).start,
                   adjusted.slot(*conflict_task).resource};
    }
  }
  return adjusted;
}

void Merger::dfs(const Cube& decided, std::size_t cur,
                 const PathSchedule& sched, std::vector<bool> done) {
  const Cube& label = paths_[cur].label;

  // Next undecided condition to be computed according to the current
  // schedule (the next node of the decision tree on this branch).
  Time tau = kInf;
  CondId next_cond = 0;
  bool branching = false;
  for (const Literal& lit : label.literals()) {
    if (decided.mentions(lit.cond)) continue;
    const TaskId disj = fg_.disjunction_task(lit.cond);
    if (!sched.scheduled(disj)) continue;
    const Time end = sched.slot(disj).end;
    if (!branching || end < tau || (end == tau && lit.cond < next_cond)) {
      tau = end;
      next_cond = lit.cond;
      branching = true;
    }
  }

  // Fix start times from the current schedule into the table, up to the
  // branching moment (everything, on a leaf).
  for (TaskId t : sched.tasks_by_start()) {
    if (done[t]) continue;
    if (branching && sched.slot(t).start >= tau) continue;
    place(sched, label, t);
    done[t] = true;
  }
  if (!branching) return;  // leaf of the decision tree

  const bool value = *label.value_of(next_cond);
  auto same = decided.conjoin(Literal{next_cond, value});
  auto flip = decided.conjoin(Literal{next_cond, !value});
  CPS_ASSERT(same && flip, "branching condition was undecided");

  // Follow the current schedule (no back-step).
  dfs(*same, cur, sched, done);

  // Back-step: explore the opposite condition value.
  const auto reachable = reachable_under(*flip);
  if (!reachable.empty()) {
    ++stats_.backsteps;
    const std::size_t next_cur = select(reachable);
    const PathSchedule adjusted = adjust(decided, *flip, next_cur);
    dfs(*flip, next_cur, adjusted, done);
  }
}

MergeResult Merger::run() {
  CPS_REQUIRE(!paths_.empty(), "merge needs at least one path");
  CPS_REQUIRE(paths_.size() == scheds_.size(),
              "paths/schedules size mismatch");
  deltas_.resize(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    deltas_[i] = scheds_[i].delay(fg_);
  }
  std::vector<std::size_t> all(paths_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const std::size_t cur = select(all);
  dfs(Cube::top(), cur, scheds_[cur],
      std::vector<bool>(fg_.task_count(), false));
  return MergeResult{std::move(table_), stats_};
}

}  // namespace

MergeResult merge_schedules(const FlatGraph& fg,
                            const std::vector<AltPath>& paths,
                            const std::vector<PathSchedule>& schedules,
                            const MergeOptions& options) {
  Merger merger(fg, paths, schedules, options);
  return merger.run();
}

}  // namespace cps
