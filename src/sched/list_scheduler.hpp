// Event-driven non-preemptive list scheduler for one alternative path.
//
// This single engine serves three callers:
//  1. per-path "(near) optimal" scheduling (paper §4 step 1) with
//     critical-path priorities;
//  2. schedule *adjustment* during table merging (paper §5.1 rule 3):
//     locked tasks are fixed reservations, unlocked tasks are re-scheduled
//     ASAP while keeping their original relative order;
//  3. the condition-oblivious baseline (all tasks active, knowledge
//     checks disabled).
//
// Semantics enforced:
//  * programmable processors / buses / memory modules execute one task at
//    a time; hardware PEs run tasks in parallel (paper §2);
//  * a task starts only after every predecessor that is active on the
//    path has completed;
//  * a task starts only when the condition values known on its resource
//    at that moment imply its guard (knowledge rule, DESIGN.md §5.1);
//    a condition is known on the disjunction's own PE at the
//    disjunction's end and elsewhere at the end of its broadcast;
//  * broadcast tasks are scheduled as soon as possible on the first
//    available all-connecting bus (paper §3) and take precedence over
//    data communications that become ready at the same moment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cpg/flat_graph.hpp"
#include "sched/priority.hpp"
#include "sched/schedule.hpp"

namespace cps {

/// A fixed reservation for a task (merge adjustment).
struct TaskLock {
  Time start = 0;
  PeId resource = 0;

  friend bool operator==(const TaskLock& a, const TaskLock& b) {
    return a.start == b.start && a.resource == b.resource;
  }
  friend bool operator!=(const TaskLock& a, const TaskLock& b) {
    return !(a == b);
  }
};

/// Ready-task selection strategy.
///
/// kHeap is the production engine: per-resource lazy max-heaps keyed by
/// (priority, task id), precomputed guard masks and a memoized DNF cover
/// cache. kLinearScan preserves the original O(V^2) engine byte-for-byte
/// (full task scans, per-step DNF re-evaluation); it exists as the
/// equivalence-test reference and performance baseline. Both produce
/// identical schedules on identical requests.
enum class ReadySelection : std::uint8_t { kHeap, kLinearScan };

const char* to_string(ReadySelection s);

struct EngineRequest {
  /// Path label: provides the value of every condition the guards can see.
  Cube label;
  /// Active tasks on the path (size = task_count).
  std::vector<bool> active;
  /// Static priorities (higher scheduled first; size = task_count).
  std::vector<std::int64_t> priority;
  /// Optional per-task locks (empty, or size = task_count).
  std::vector<std::optional<TaskLock>> locks;
  /// Enforce the condition-knowledge rule (off for the oblivious baseline).
  bool enforce_knowledge = true;
  /// Ready-task selection strategy (see ReadySelection).
  ReadySelection selection = ReadySelection::kHeap;
  /// Optional shared DNF cover cache (non-owning; must outlive the run and
  /// memoize guards of the same FlatGraph). The engine uses a private
  /// cache when null. Ignored by kLinearScan.
  CoverCache* cover_cache = nullptr;
};

struct EngineResult {
  bool feasible = false;
  PathSchedule schedule;
  /// When infeasible because a locked task could not start at its fixed
  /// time, the offending task (lets the merge relax that lock).
  std::optional<TaskId> offending_lock;
  std::string reason;
};

/// Run the engine. Never throws on schedulable input; reports
/// infeasibility through the result. The engine deliberately snapshots
/// the request into freshly allocated, engine-owned vectors: measured on
/// the fig6 workload, running the hot loops against caller-built storage
/// (whether borrowed by reference or moved in) costs ~3x in per-path
/// scheduling time, so there is intentionally no move/borrow overload.
EngineResult run_list_scheduler(const FlatGraph& fg,
                                const EngineRequest& request);

/// Convenience wrapper: schedule one alternative path with the given
/// priority policy (initial per-path scheduling). Throws InternalError if
/// the path is unschedulable (cannot happen for a validated CPG).
PathSchedule schedule_path(
    const FlatGraph& fg, const AltPath& path,
    PriorityPolicy policy = PriorityPolicy::kCriticalPath,
    Rng* rng = nullptr, ReadySelection selection = ReadySelection::kHeap,
    CoverCache* cover_cache = nullptr);

}  // namespace cps
