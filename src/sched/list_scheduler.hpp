// Event-driven non-preemptive list scheduler for one alternative path.
//
// This single engine serves three callers:
//  1. per-path "(near) optimal" scheduling (paper §4 step 1) with
//     critical-path priorities;
//  2. schedule *adjustment* during table merging (paper §5.1 rule 3):
//     locked tasks are fixed reservations, unlocked tasks are re-scheduled
//     ASAP while keeping their original relative order;
//  3. the condition-oblivious baseline (all tasks active, knowledge
//     checks disabled).
//
// Semantics enforced:
//  * programmable processors / buses / memory modules execute one task at
//    a time; hardware PEs run tasks in parallel (paper §2);
//  * a task starts only after every predecessor that is active on the
//    path has completed;
//  * a task starts only when the condition values known on its resource
//    at that moment imply its guard (knowledge rule, DESIGN.md §5.1);
//    a condition is known on the disjunction's own PE at the
//    disjunction's end and elsewhere at the end of its broadcast;
//  * broadcast tasks are scheduled as soon as possible on the first
//    available all-connecting bus (paper §3) and take precedence over
//    data communications that become ready at the same moment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cpg/flat_graph.hpp"
#include "sched/engine_workspace.hpp"
#include "sched/priority.hpp"
#include "sched/schedule.hpp"
#include "support/cancel.hpp"

namespace cps {

struct EngineRequest {
  /// Path label: provides the value of every condition the guards can see.
  Cube label;
  /// Active tasks on the path (size = task_count).
  std::vector<bool> active;
  /// Static priorities (higher scheduled first; size = task_count).
  std::vector<std::int64_t> priority;
  /// Optional per-task locks (empty, or size = task_count).
  std::vector<std::optional<TaskLock>> locks;
  /// Enforce the condition-knowledge rule (off for the oblivious baseline).
  bool enforce_knowledge = true;
  /// Ready-task selection strategy (see ReadySelection).
  ReadySelection selection = ReadySelection::kHeap;
  /// Optional shared DNF cover cache (non-owning; must outlive the run and
  /// memoize guards of the same FlatGraph). The engine uses the
  /// workspace's private cache when null. Ignored by kLinearScan.
  CoverCache* cover_cache = nullptr;
  /// Incremental rescheduling knob (see EngineResume). Only effective
  /// with kHeap selection and a non-null `history`.
  EngineResume resume = EngineResume::kFromScratch;
  /// Checkpoint stream to resume from and re-record into (non-owning;
  /// must outlive the run). The caller guarantees that every run handed
  /// the same history differs from the recorded one at most in `locks`
  /// (the engine verifies and falls back to from-scratch otherwise).
  EngineHistory* history = nullptr;
  /// Optional cooperative cancellation/deadline/step budget (non-owning;
  /// must outlive the run). The main loop polls it at bounded intervals
  /// — the cancel token every step, the wall clock every
  /// BudgetPoll::kStride steps — and charges each committed step against
  /// the budget. A trip returns an infeasible EngineResult carrying the
  /// interrupt code; any attached history is invalidated (not finalized),
  /// so the workspace and history stay reusable and the next clean run
  /// is byte-identical to a never-interrupted one.
  RunBudget* budget = nullptr;
};

struct EngineResult {
  bool feasible = false;
  /// kOk when feasible; kUnschedulable for genuine scheduling
  /// infeasibility (locked reservation, deadlock); an interrupt code
  /// (kCancelled/kDeadlineExceeded/kStepBudgetExceeded) when the run
  /// was cut short by its RunBudget. Interrupted results must not be
  /// treated as lock infeasibility (see is_interrupt).
  ErrorCode code = ErrorCode::kOk;
  PathSchedule schedule;
  /// When infeasible because a locked task could not start at its fixed
  /// time, the offending task (lets the merge relax that lock).
  std::optional<TaskId> offending_lock;
  std::string reason;
  /// This run resumed from a checkpoint of `request.history`, skipping
  /// `resumed_steps` committed time steps.
  bool resumed = false;
  std::size_t resumed_steps = 0;
  /// The request's lock set matched the recorded run exactly: the result
  /// is the recorded outcome, no engine step was executed.
  bool full_reuse = false;
};

/// Run the engine against a caller-provided reusable workspace: the
/// request is snapshotted into the workspace's engine-owned buffers
/// (capacity-preserving assignment — the hot loops never touch caller
/// storage, which measured ~3x slower whether borrowed by reference or
/// moved in), and all scheduling state lives in the workspace so repeated
/// calls stop reallocating. Never throws on schedulable input; reports
/// infeasibility through the result. One workspace serves one thread.
EngineResult run_list_scheduler(const FlatGraph& fg,
                                const EngineRequest& request,
                                EngineWorkspace& workspace);

/// Convenience overload running on a throwaway workspace (tests, one-shot
/// callers). Hot paths should hold a workspace and use the overload above.
EngineResult run_list_scheduler(const FlatGraph& fg,
                                const EngineRequest& request);

/// Build the per-path engine request of `schedule_path` (active set +
/// priorities for one alternative path) without running the engine. The
/// tree driver uses it to attach resume options — an EngineHistory
/// chained across the leaves of the guard trie — before dispatch.
EngineRequest make_path_request(const FlatGraph& fg, const AltPath& path,
                                PriorityPolicy policy, Rng* rng,
                                ReadySelection selection,
                                CoverCache* cover_cache);

/// Convenience wrapper: schedule one alternative path with the given
/// priority policy (initial per-path scheduling). Throws InternalError if
/// the path is unschedulable (cannot happen for a validated CPG).
PathSchedule schedule_path(
    const FlatGraph& fg, const AltPath& path,
    PriorityPolicy policy = PriorityPolicy::kCriticalPath,
    Rng* rng = nullptr, ReadySelection selection = ReadySelection::kHeap,
    CoverCache* cover_cache = nullptr, EngineWorkspace* workspace = nullptr);

}  // namespace cps
