#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace cps {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

class Engine {
 public:
  Engine(const FlatGraph& fg, EngineRequest req)
      : fg_(fg), req_(std::move(req)) {}

  EngineResult run();

 private:
  bool active(TaskId t) const { return req_.active[t]; }
  bool locked(TaskId t) const {
    return !req_.locks.empty() && req_.locks[t].has_value();
  }
  const TaskLock& lock(TaskId t) const { return *req_.locks[t]; }

  bool deps_done(TaskId t, Time now) const {
    return pending_[t] == 0 && dep_ready_[t] <= now;
  }

  /// Condition-knowledge check for starting task t at `now` on `res`.
  bool knowledge_ok(TaskId t, Time now, PeId res) const;

  /// Does [now, now+dur) avoid every unstarted lock reservation on `res`?
  bool fits(PeId res, Time now, Time dur) const;

  void start_task(TaskId t, Time now, PeId res);
  void complete_task(TaskId t, Time now);
  bool try_starts(Time now);
  EngineResult infeasible(TaskId t, const std::string& reason);

  const FlatGraph& fg_;
  EngineRequest req_;

  PathSchedule sched_;
  std::vector<std::size_t> pending_;    // unfinished active preds
  std::vector<Time> dep_ready_;         // max end over finished preds
  std::vector<bool> started_;
  std::vector<bool> finished_;
  // Sequential resource occupancy: end time of the running task (or -1).
  std::vector<Time> busy_until_;
  // Running tasks (for event extraction and completion processing).
  std::vector<TaskId> running_;
  // known_[res][cond]: time from which `cond` is known on `res` (kInf if
  // not yet known).
  std::vector<std::vector<Time>> known_;
  std::size_t remaining_ = 0;
};

bool Engine::knowledge_ok(TaskId t, Time now, PeId res) const {
  if (!req_.enforce_knowledge) return true;
  const Task& task = fg_.task(t);
  const bool conjunction =
      task.origin_process &&
      fg_.cpg().process(*task.origin_process).conjunction;
  if (task.guard.is_true() && !conjunction) return true;

  Cube known_cube;
  for (CondId c = 0; c < fg_.cpg().conditions().size(); ++c) {
    const auto value = req_.label.value_of(c);
    if (!value) continue;
    if (known_[res][c] > now) continue;
    auto next = known_cube.conjoin(Literal{c, *value});
    CPS_ASSERT(next.has_value(), "known cube cannot contradict itself");
    known_cube = std::move(*next);
  }
  if (!task.guard.covered_by_context(known_cube)) return false;

  // Conjunction processes (and the sink) are activated by whichever input
  // alternative is selected, so their start time varies with conditions
  // their own guard may not mention. A deterministic time-triggered
  // scheduler on M(t) must be able to tell the alternatives apart:
  // require that the known conditions *decide* the activity of every
  // predecessor (paper §5.2, the premise behind Theorem 1).
  if (conjunction) {
    for (EdgeId e : fg_.deps().in_edges(t)) {
      const TaskId pred = fg_.deps().edge(e).src;
      const Dnf& pg = fg_.task(pred).guard;
      if (pg.is_true()) continue;
      if (req_.active[pred]) {
        if (!pg.covered_by_context(known_cube)) return false;
      } else {
        if (!pg.and_cube(known_cube).is_false()) return false;
      }
    }
  }
  return true;
}

bool Engine::fits(PeId res, Time now, Time dur) const {
  if (req_.locks.empty()) return true;
  if (!fg_.arch().pe(res).sequential()) return true;
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active(t) || started_[t] || !locked(t)) continue;
    const TaskLock& l = *req_.locks[t];
    if (l.resource != res) continue;
    const Time lock_end = l.start + fg_.task(t).duration;
    if (l.start < now + dur && now < lock_end) return false;
    // Zero-length occupations still forbid covering them with a running
    // task: a lock at time s inside (now, now+dur) must stay reachable.
    if (fg_.task(t).duration == 0 && l.start >= now && l.start < now + dur) {
      return false;
    }
  }
  return true;
}

void Engine::start_task(TaskId t, Time now, PeId res) {
  const Time dur = fg_.task(t).duration;
  started_[t] = true;
  sched_.place(t, now, now + dur, res);
  if (dur == 0) {
    complete_task(t, now);
    return;
  }
  if (fg_.arch().pe(res).sequential()) {
    busy_until_[res] = now + dur;
  }
  running_.push_back(t);
}

void Engine::complete_task(TaskId t, Time now) {
  finished_[t] = true;
  CPS_ASSERT(remaining_ > 0, "completion bookkeeping underflow");
  --remaining_;
  const Task& task = fg_.task(t);
  for (EdgeId e : fg_.deps().out_edges(t)) {
    const TaskId succ = fg_.deps().edge(e).dst;
    if (!active(succ)) continue;
    CPS_ASSERT(pending_[succ] > 0, "predecessor bookkeeping underflow");
    --pending_[succ];
    dep_ready_[succ] = std::max(dep_ready_[succ], now);
  }
  // Knowledge updates.
  if (task.computes) {
    const CondId c = *task.computes;
    const PeId res = sched_.slot(t).resource;
    known_[res][c] = std::min(known_[res][c], now);
    if (!fg_.broadcasts_enabled()) {
      // Single-resource models: the value is immediately visible (there is
      // nobody else to inform).
      for (auto& per_res : known_) per_res[c] = std::min(per_res[c], now);
    }
  }
  if (task.broadcasts) {
    const CondId c = *task.broadcasts;
    for (auto& per_res : known_) per_res[c] = std::min(per_res[c], now);
  }
}

bool Engine::try_starts(Time now) {
  bool any = false;

  // 1. Locked tasks reaching their fixed start time. A lock that cannot
  //    start exactly at its reserved moment makes the request infeasible;
  //    that is detected here and reported by run().
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active(t) || started_[t] || !locked(t)) continue;
    if (lock(t).start != now) continue;
    // Feasibility is re-checked in run() via pending_failure_; here we
    // only start locks whose prerequisites hold.
    if (!deps_done(t, now)) continue;
    if (!knowledge_ok(t, now, lock(t).resource)) continue;
    const PeId res = lock(t).resource;
    if (fg_.arch().pe(res).sequential() && busy_until_[res] > now) continue;
    start_task(t, now, res);
    any = true;
  }

  // 2. Broadcast tasks: as soon as possible on the first available
  //    all-connecting bus.
  if (fg_.broadcasts_enabled()) {
    for (TaskId t = 0; t < fg_.task_count(); ++t) {
      const Task& task = fg_.task(t);
      if (!task.is_broadcast() || !active(t) || started_[t] || locked(t)) {
        continue;
      }
      if (!deps_done(t, now)) continue;
      for (PeId bus : fg_.broadcast_buses()) {
        if (busy_until_[bus] > now) continue;
        if (!fits(bus, now, task.duration)) continue;
        if (!knowledge_ok(t, now, bus)) continue;
        start_task(t, now, bus);
        any = true;
        break;
      }
    }
  }

  // 3. Unlocked tasks on sequential resources: per free resource pick the
  //    ready task with the highest priority.
  for (PeId res : fg_.used_resources()) {
    if (!fg_.arch().pe(res).sequential()) continue;
    bool started_one = true;
    while (started_one) {  // zero-duration tasks free the resource again
      started_one = false;
      if (busy_until_[res] > now) break;
      TaskId best = 0;
      bool have = false;
      for (TaskId t = 0; t < fg_.task_count(); ++t) {
        const Task& task = fg_.task(t);
        if (task.is_broadcast() || task.resource != res) continue;
        if (!active(t) || started_[t] || locked(t)) continue;
        if (!deps_done(t, now)) continue;
        if (!fits(res, now, task.duration)) continue;
        if (!knowledge_ok(t, now, res)) continue;
        if (!have || req_.priority[t] > req_.priority[best] ||
            (req_.priority[t] == req_.priority[best] && t < best)) {
          best = t;
          have = true;
        }
      }
      if (have) {
        start_task(best, now, res);
        any = true;
        started_one = true;
      }
    }
  }

  // 4. Hardware resources run everything that is ready.
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    const Task& task = fg_.task(t);
    if (task.is_broadcast() || active(t) == false || started_[t]) continue;
    if (locked(t)) continue;
    if (fg_.arch().pe(task.resource).sequential()) continue;
    if (!deps_done(t, now)) continue;
    if (!knowledge_ok(t, now, task.resource)) continue;
    start_task(t, now, task.resource);
    any = true;
  }

  return any;
}

EngineResult Engine::infeasible(TaskId t, const std::string& reason) {
  EngineResult out;
  out.feasible = false;
  out.offending_lock = t;
  out.reason = reason;
  return out;
}

EngineResult Engine::run() {
  const std::size_t n = fg_.task_count();
  CPS_REQUIRE(req_.active.size() == n, "active vector size mismatch");
  CPS_REQUIRE(req_.priority.size() == n, "priority vector size mismatch");
  CPS_REQUIRE(req_.locks.empty() || req_.locks.size() == n,
              "locks vector size mismatch");

  sched_ = PathSchedule(n);
  pending_.assign(n, 0);
  dep_ready_.assign(n, 0);
  started_.assign(n, false);
  finished_.assign(n, false);
  busy_until_.assign(fg_.arch().pe_count(), -1);
  known_.assign(fg_.arch().pe_count(),
                std::vector<Time>(fg_.cpg().conditions().size(), kInf));
  remaining_ = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!active(t)) continue;
    ++remaining_;
    for (EdgeId e : fg_.deps().in_edges(t)) {
      if (active(fg_.deps().edge(e).src)) ++pending_[t];
    }
  }

  Time now = 0;
  while (remaining_ > 0) {
    // Start everything that can start at `now` (repeat until fixpoint:
    // zero-duration completions can enable further starts at this time).
    while (try_starts(now)) {
    }

    if (remaining_ == 0) break;

    // A locked task whose start time has arrived but which could not be
    // started is a hard failure: the reservation cannot be honored.
    for (TaskId t = 0; t < n; ++t) {
      if (active(t) && locked(t) && !started_[t] && lock(t).start <= now) {
        return infeasible(
            t, "locked task " + fg_.task(t).name +
                   " cannot start at its reserved time " +
                   std::to_string(lock(t).start));
      }
    }

    // Advance to the next event: a completion or a future lock start.
    Time next = kInf;
    for (TaskId t : running_) {
      if (!finished_[t]) next = std::min(next, sched_.slot(t).end);
    }
    for (TaskId t = 0; t < n; ++t) {
      if (active(t) && locked(t) && !started_[t]) {
        next = std::min(next, lock(t).start);
      }
    }
    if (next == kInf || next <= now) {
      EngineResult out;
      out.feasible = false;
      out.reason = "scheduling deadlock (no startable task and no pending "
                   "event)";
      return out;
    }
    now = next;
    // Process completions at `now`.
    std::vector<TaskId> still_running;
    still_running.reserve(running_.size());
    for (TaskId t : running_) {
      if (finished_[t]) continue;
      if (sched_.slot(t).end == now) {
        complete_task(t, now);
      } else {
        still_running.push_back(t);
      }
    }
    running_ = std::move(still_running);
  }

  EngineResult out;
  out.feasible = true;
  out.schedule = std::move(sched_);
  return out;
}

}  // namespace

EngineResult run_list_scheduler(const FlatGraph& fg, EngineRequest request) {
  Engine engine(fg, std::move(request));
  return engine.run();
}

PathSchedule schedule_path(const FlatGraph& fg, const AltPath& path,
                           PriorityPolicy policy, Rng* rng) {
  EngineRequest req;
  req.label = path.label;
  req.active = fg.active_tasks(path.label);
  req.priority = compute_priorities(fg, req.active, policy, rng);
  EngineResult res = run_list_scheduler(fg, std::move(req));
  CPS_ASSERT(res.feasible,
             "validated CPG path must be schedulable: " + res.reason);
  return std::move(res.schedule);
}

}  // namespace cps
