#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "support/error.hpp"

namespace cps {

const char* to_string(ReadySelection s) {
  switch (s) {
    case ReadySelection::kHeap: return "heap";
    case ReadySelection::kLinearScan: return "linear-scan";
  }
  return "?";
}

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

/// Max-heap entry of the per-resource ready list: highest priority first,
/// lowest task id on ties (matching the reference linear scan exactly).
struct ReadyEntry {
  std::int64_t prio = 0;
  TaskId id = 0;
};

struct ReadyCompare {
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return a.prio < b.prio || (a.prio == b.prio && a.id > b.id);
  }
};

using ReadyHeap =
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyCompare>;

class Engine {
 public:
  Engine(const FlatGraph& fg, EngineRequest req)
      : fg_(fg), req_(std::move(req)) {
    cache_ = req_.cover_cache ? req_.cover_cache : &local_cache_;
  }

  EngineResult run();

 private:
  bool heap_mode() const {
    return req_.selection == ReadySelection::kHeap;
  }
  bool active(TaskId t) const { return req_.active[t]; }
  bool locked(TaskId t) const {
    return !req_.locks.empty() && req_.locks[t].has_value();
  }
  const TaskLock& lock(TaskId t) const { return *req_.locks[t]; }

  bool deps_done(TaskId t, Time now) const {
    return pending_[t] == 0 && dep_ready_[t] <= now;
  }

  // ---- reference engine (pre-heap): full scans, direct DNF evaluation.

  /// Condition-knowledge check for starting task t at `now` on `res`.
  bool knowledge_ok_reference(TaskId t, Time now, PeId res) const;

  /// Does [now, now+dur) avoid every unstarted lock reservation on `res`?
  bool fits_reference(PeId res, Time now, Time dur) const;

  bool try_starts_reference(Time now);

  // ---- heap engine: lazy ready heaps, guard masks, memoized covers.

  bool knowledge_ok_fast(TaskId t, PeId res) const;
  bool guard_covered(const Dnf& guard, const TaskGuardInfo& info,
                     PeId res) const;
  bool guard_disjoint(const Dnf& guard, const TaskGuardInfo& info,
                      PeId res) const;
  /// Conditions known on `res` (restricted to `mention` in masks mode) as
  /// a context cube for the exact fallback checks.
  Cube known_context(PeId res, std::uint64_t mention) const;
  Cube known_context_full(PeId res) const;

  bool fits_fast(PeId res, Time now, Time dur) const;
  void enqueue_ready(TaskId t);
  bool try_starts_heap(Time now);

  // ---- shared machinery.

  bool try_starts(Time now) {
    return heap_mode() ? try_starts_heap(now) : try_starts_reference(now);
  }
  void start_task(TaskId t, Time now, PeId res);
  void complete_task(TaskId t, Time now);
  EngineResult infeasible(TaskId t, const std::string& reason);

  const FlatGraph& fg_;
  EngineRequest req_;
  CoverCache local_cache_;
  CoverCache* cache_ = nullptr;

  PathSchedule sched_;
  std::vector<std::size_t> pending_;    // unfinished active preds
  std::vector<Time> dep_ready_;         // max end over finished preds
  std::vector<bool> started_;
  std::vector<bool> finished_;
  // Sequential resource occupancy: end time of the running task (or -1).
  std::vector<Time> busy_until_;
  // Running tasks (for event extraction and completion processing).
  std::vector<TaskId> running_;
  // known_[res][cond]: time from which `cond` is known on `res` (kInf if
  // not yet known).
  std::vector<std::vector<Time>> known_;
  std::size_t remaining_ = 0;

  // Per-resource "executes one task at a time" flags, cached once per run
  // (Architecture::pe() bounds-checks on every call; the hot loops ask
  // hundreds of thousands of times per merge).
  std::vector<char> seq_;

  // Heap-mode state. Knowledge doubles as per-resource bitmasks over the
  // path label so guard coverage is a couple of AND/CMP instructions.
  // When the masks are exact (condition count <= 64) the time matrix
  // known_ is not maintained at all in heap mode.
  bool use_masks_ = false;
  std::vector<std::uint64_t> known_pos_;  // by PeId
  std::vector<std::uint64_t> known_neg_;  // by PeId
  std::vector<ReadyHeap> ready_;          // by PeId (sequential only)
  std::vector<TaskId> hw_ready_;          // dep-ready hardware tasks
  std::vector<TaskId> bcast_pending_;     // unstarted broadcast tasks
  std::vector<TaskId> locked_tasks_;      // active locked tasks
  std::vector<std::vector<TaskId>> locks_on_res_;  // by PeId
};

// --------------------------------------------------------------------------
// Reference engine (kLinearScan). This is the seed implementation, kept
// verbatim: the equivalence tests prove the heap engine reproduces its
// schedules, and the benchmarks quote speedups against it.

bool Engine::knowledge_ok_reference(TaskId t, Time now, PeId res) const {
  if (!req_.enforce_knowledge) return true;
  const Task& task = fg_.task(t);
  const bool conjunction =
      task.origin_process &&
      fg_.cpg().process(*task.origin_process).conjunction;
  if (task.guard.is_true() && !conjunction) return true;

  Cube known_cube;
  for (CondId c = 0; c < fg_.cpg().conditions().size(); ++c) {
    const auto value = req_.label.value_of(c);
    if (!value) continue;
    if (known_[res][c] > now) continue;
    auto next = known_cube.conjoin(Literal{c, *value});
    CPS_ASSERT(next.has_value(), "known cube cannot contradict itself");
    known_cube = std::move(*next);
  }
  if (!task.guard.covered_by_context(known_cube)) return false;

  // Conjunction processes (and the sink) are activated by whichever input
  // alternative is selected, so their start time varies with conditions
  // their own guard may not mention. A deterministic time-triggered
  // scheduler on M(t) must be able to tell the alternatives apart:
  // require that the known conditions *decide* the activity of every
  // predecessor (paper §5.2, the premise behind Theorem 1).
  if (conjunction) {
    for (EdgeId e : fg_.deps().in_edges(t)) {
      const TaskId pred = fg_.deps().edge(e).src;
      const Dnf& pg = fg_.task(pred).guard;
      if (pg.is_true()) continue;
      if (req_.active[pred]) {
        if (!pg.covered_by_context(known_cube)) return false;
      } else {
        if (!pg.and_cube(known_cube).is_false()) return false;
      }
    }
  }
  return true;
}

bool Engine::fits_reference(PeId res, Time now, Time dur) const {
  if (req_.locks.empty()) return true;
  if (!fg_.arch().pe(res).sequential()) return true;
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active(t) || started_[t] || !locked(t)) continue;
    const TaskLock& l = *req_.locks[t];
    if (l.resource != res) continue;
    const Time lock_end = l.start + fg_.task(t).duration;
    if (l.start < now + dur && now < lock_end) return false;
    // Zero-length occupations still forbid covering them with a running
    // task: a lock at time s inside (now, now+dur) must stay reachable.
    if (fg_.task(t).duration == 0 && l.start >= now && l.start < now + dur) {
      return false;
    }
  }
  return true;
}

bool Engine::try_starts_reference(Time now) {
  bool any = false;

  // 1. Locked tasks reaching their fixed start time. A lock that cannot
  //    start exactly at its reserved moment makes the request infeasible;
  //    that is detected here and reported by run().
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active(t) || started_[t] || !locked(t)) continue;
    if (lock(t).start != now) continue;
    // Feasibility is re-checked in run() via pending_failure_; here we
    // only start locks whose prerequisites hold.
    if (!deps_done(t, now)) continue;
    if (!knowledge_ok_reference(t, now, lock(t).resource)) continue;
    const PeId res = lock(t).resource;
    if (fg_.arch().pe(res).sequential() && busy_until_[res] > now) continue;
    start_task(t, now, res);
    any = true;
  }

  // 2. Broadcast tasks: as soon as possible on the first available
  //    all-connecting bus.
  if (fg_.broadcasts_enabled()) {
    for (TaskId t = 0; t < fg_.task_count(); ++t) {
      const Task& task = fg_.task(t);
      if (!task.is_broadcast() || !active(t) || started_[t] || locked(t)) {
        continue;
      }
      if (!deps_done(t, now)) continue;
      for (PeId bus : fg_.broadcast_buses()) {
        if (busy_until_[bus] > now) continue;
        if (!fits_reference(bus, now, task.duration)) continue;
        if (!knowledge_ok_reference(t, now, bus)) continue;
        start_task(t, now, bus);
        any = true;
        break;
      }
    }
  }

  // 3. Unlocked tasks on sequential resources: per free resource pick the
  //    ready task with the highest priority.
  for (PeId res : fg_.used_resources()) {
    if (!fg_.arch().pe(res).sequential()) continue;
    bool started_one = true;
    while (started_one) {  // zero-duration tasks free the resource again
      started_one = false;
      if (busy_until_[res] > now) break;
      TaskId best = 0;
      bool have = false;
      for (TaskId t = 0; t < fg_.task_count(); ++t) {
        const Task& task = fg_.task(t);
        if (task.is_broadcast() || task.resource != res) continue;
        if (!active(t) || started_[t] || locked(t)) continue;
        if (!deps_done(t, now)) continue;
        if (!fits_reference(res, now, task.duration)) continue;
        if (!knowledge_ok_reference(t, now, res)) continue;
        if (!have || req_.priority[t] > req_.priority[best] ||
            (req_.priority[t] == req_.priority[best] && t < best)) {
          best = t;
          have = true;
        }
      }
      if (have) {
        start_task(best, now, res);
        any = true;
        started_one = true;
      }
    }
  }

  // 4. Hardware resources run everything that is ready.
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    const Task& task = fg_.task(t);
    if (task.is_broadcast() || active(t) == false || started_[t]) continue;
    if (locked(t)) continue;
    if (fg_.arch().pe(task.resource).sequential()) continue;
    if (!deps_done(t, now)) continue;
    if (!knowledge_ok_reference(t, now, task.resource)) continue;
    start_task(t, now, task.resource);
    any = true;
  }

  return any;
}

// --------------------------------------------------------------------------
// Heap engine (kHeap).

Cube Engine::known_context(PeId res, std::uint64_t mention) const {
  // The knowledge words and the cube share the packed representation, so
  // the context is two masked copies — no literal vector, no allocation.
  return Cube::from_masks(known_pos_[res] & mention,
                          known_neg_[res] & mention);
}

Cube Engine::known_context_full(PeId res) const {
  // Fallback for models with more than 64 conditions: rebuild the known
  // cube from the time matrix (any already-recorded time is in the past).
  Cube known_cube;
  for (CondId c = 0; c < fg_.cpg().conditions().size(); ++c) {
    const auto value = req_.label.value_of(c);
    if (!value) continue;
    if (known_[res][c] == kInf) continue;
    auto next = known_cube.conjoin(Literal{c, *value});
    CPS_ASSERT(next.has_value(), "known cube cannot contradict itself");
    known_cube = std::move(*next);
  }
  return known_cube;
}

bool Engine::guard_covered(const Dnf& guard, const TaskGuardInfo& info,
                           PeId res) const {
  if (info.trivially_true) return true;
  if (use_masks_) {
    // A cube whose literals are all known true on the resource covers the
    // whole guard; for single-cube guards this test is exact.
    for (const GuardCubeMask& cube : info.cubes) {
      if (cube.covered_by(known_pos_[res], known_neg_[res])) return true;
    }
    if (info.cubes.size() <= 1) return false;
    // All mentioned conditions decided but no cube satisfied: not covered.
    if ((info.mention & ~(known_pos_[res] | known_neg_[res])) == 0) {
      return false;
    }
    return cache_->covered(guard, known_context(res, info.mention));
  }
  return cache_->covered(guard, known_context_full(res));
}

bool Engine::guard_disjoint(const Dnf& guard, const TaskGuardInfo& info,
                            PeId res) const {
  if (info.trivially_true) return false;
  if (use_masks_) {
    // guard & known == false iff every cube of the guard contradicts a
    // known condition value (exact, no fallback needed).
    for (const GuardCubeMask& cube : info.cubes) {
      if (!cube.conflicts(known_pos_[res], known_neg_[res])) return false;
    }
    return true;
  }
  return cache_->disjoint(guard, known_context_full(res));
}

bool Engine::knowledge_ok_fast(TaskId t, PeId res) const {
  if (!req_.enforce_knowledge) return true;
  const TaskGuardInfo& info = fg_.guard_info(t);
  if (info.trivially_true && !info.conjunction) return true;
  if (!guard_covered(fg_.task(t).guard, info, res)) return false;
  if (info.conjunction) {
    for (TaskId pred : info.guarded_preds) {
      const TaskGuardInfo& pinfo = fg_.guard_info(pred);
      if (req_.active[pred]) {
        if (!guard_covered(fg_.task(pred).guard, pinfo, res)) return false;
      } else {
        if (!guard_disjoint(fg_.task(pred).guard, pinfo, res)) return false;
      }
    }
  }
  return true;
}

bool Engine::fits_fast(PeId res, Time now, Time dur) const {
  if (req_.locks.empty()) return true;
  if (!seq_[res]) return true;
  for (TaskId t : locks_on_res_[res]) {
    if (started_[t]) continue;
    const TaskLock& l = *req_.locks[t];
    const Time lock_end = l.start + fg_.task(t).duration;
    if (l.start < now + dur && now < lock_end) return false;
    if (fg_.task(t).duration == 0 && l.start >= now && l.start < now + dur) {
      return false;
    }
  }
  return true;
}

void Engine::enqueue_ready(TaskId t) {
  // Called when the last active predecessor of `t` completes (and at
  // initialization for predecessor-free tasks). Locked tasks start via
  // their reservation, broadcast tasks via the pending list.
  if (!active(t) || started_[t] || locked(t)) return;
  const Task& task = fg_.task(t);
  if (task.is_broadcast()) return;
  if (seq_[task.resource]) {
    ready_[task.resource].push(ReadyEntry{req_.priority[t], t});
  } else {
    hw_ready_.push_back(t);
  }
}

bool Engine::try_starts_heap(Time now) {
  bool any = false;

  // 1. Locked tasks reaching their fixed start time.
  for (TaskId t : locked_tasks_) {
    if (started_[t]) continue;
    if (lock(t).start != now) continue;
    if (!deps_done(t, now)) continue;
    const PeId res = lock(t).resource;
    if (!knowledge_ok_fast(t, res)) continue;
    if (seq_[res] && busy_until_[res] > now) continue;
    start_task(t, now, res);
    any = true;
  }

  // 2. Broadcast tasks: as soon as possible on the first available
  //    all-connecting bus.
  if (!bcast_pending_.empty()) {
    std::vector<TaskId> still;
    still.reserve(bcast_pending_.size());
    for (TaskId t : bcast_pending_) {
      if (started_[t]) continue;
      if (!deps_done(t, now)) {
        still.push_back(t);
        continue;
      }
      const Task& task = fg_.task(t);
      for (PeId bus : fg_.broadcast_buses()) {
        if (busy_until_[bus] > now) continue;
        if (!fits_fast(bus, now, task.duration)) continue;
        if (!knowledge_ok_fast(t, bus)) continue;
        start_task(t, now, bus);
        any = true;
        break;
      }
      if (!started_[t]) still.push_back(t);
    }
    bcast_pending_ = std::move(still);
  }

  // 3. Sequential resources: pop the per-resource ready heap in priority
  //    order; candidates blocked by a lock window or missing condition
  //    knowledge are parked and re-armed after the next successful start
  //    (a zero-duration chain may have changed the knowledge state).
  std::vector<ReadyEntry> deferred;
  for (PeId res : fg_.used_resources()) {
    if (!seq_[res]) continue;
    ReadyHeap& heap = ready_[res];
    deferred.clear();
    while (busy_until_[res] <= now && !heap.empty()) {
      const ReadyEntry entry = heap.top();
      heap.pop();
      const TaskId t = entry.id;
      if (started_[t]) continue;  // stale entry
      if (!fits_fast(res, now, fg_.task(t).duration) ||
          !knowledge_ok_fast(t, res)) {
        deferred.push_back(entry);
        continue;
      }
      start_task(t, now, res);
      any = true;
      for (const ReadyEntry& d : deferred) heap.push(d);
      deferred.clear();
    }
    for (const ReadyEntry& d : deferred) heap.push(d);
  }

  // 4. Hardware resources run everything that is ready (the queue may grow
  //    while iterating: zero-duration completions enqueue successors).
  std::vector<TaskId> hw_still;
  for (std::size_t i = 0; i < hw_ready_.size(); ++i) {
    const TaskId t = hw_ready_[i];
    if (started_[t]) continue;
    const PeId res = fg_.task(t).resource;
    if (!knowledge_ok_fast(t, res)) {
      hw_still.push_back(t);
      continue;
    }
    start_task(t, now, res);
    any = true;
  }
  hw_ready_ = std::move(hw_still);

  return any;
}

// --------------------------------------------------------------------------
// Shared machinery.

void Engine::start_task(TaskId t, Time now, PeId res) {
  const Time dur = fg_.task(t).duration;
  started_[t] = true;
  sched_.place(t, now, now + dur, res);
  if (dur == 0) {
    complete_task(t, now);
    return;
  }
  if (seq_[res]) {
    busy_until_[res] = now + dur;
  }
  running_.push_back(t);
}

void Engine::complete_task(TaskId t, Time now) {
  finished_[t] = true;
  CPS_ASSERT(remaining_ > 0, "completion bookkeeping underflow");
  --remaining_;
  const Task& task = fg_.task(t);
  const bool heap = heap_mode();
  for (EdgeId e : fg_.deps().out_edges(t)) {
    const TaskId succ = fg_.deps().edge(e).dst;
    if (!active(succ)) continue;
    CPS_ASSERT(pending_[succ] > 0, "predecessor bookkeeping underflow");
    --pending_[succ];
    dep_ready_[succ] = std::max(dep_ready_[succ], now);
    if (heap && pending_[succ] == 0) enqueue_ready(succ);
  }
  // Knowledge updates. With exact masks the per-resource words are the
  // whole knowledge state (the known_ time matrix is not even allocated);
  // otherwise the time matrix drives the known_context fallbacks.
  const auto learn = [this](PeId res, CondId c, Time when) {
    if (use_masks_) {
      // The per-resource words are the whole knowledge state; the known_
      // time matrix is not even allocated in this mode.
      if (const auto value = req_.label.value_of(c)) {
        (*value ? known_pos_ : known_neg_)[res] |= std::uint64_t{1} << c;
      }
      return;
    }
    known_[res][c] = std::min(known_[res][c], when);
  };
  if (task.computes) {
    const CondId c = *task.computes;
    const PeId res = sched_.slot(t).resource;
    learn(res, c, now);
    if (!fg_.broadcasts_enabled()) {
      // Single-resource models: the value is immediately visible (there is
      // nobody else to inform).
      for (PeId r = 0; r < fg_.arch().pe_count(); ++r) learn(r, c, now);
    }
  }
  if (task.broadcasts) {
    const CondId c = *task.broadcasts;
    for (PeId r = 0; r < fg_.arch().pe_count(); ++r) learn(r, c, now);
  }
}

EngineResult Engine::infeasible(TaskId t, const std::string& reason) {
  EngineResult out;
  out.feasible = false;
  out.offending_lock = t;
  out.reason = reason;
  return out;
}

EngineResult Engine::run() {
  const std::size_t n = fg_.task_count();
  CPS_REQUIRE(req_.active.size() == n, "active vector size mismatch");
  CPS_REQUIRE(req_.priority.size() == n, "priority vector size mismatch");
  CPS_REQUIRE(req_.locks.empty() || req_.locks.size() == n,
              "locks vector size mismatch");

  sched_ = PathSchedule(n);
  pending_.assign(n, 0);
  dep_ready_.assign(n, 0);
  started_.assign(n, false);
  finished_.assign(n, false);
  busy_until_.assign(fg_.arch().pe_count(), -1);
  seq_.resize(fg_.arch().pe_count());
  for (PeId r = 0; r < fg_.arch().pe_count(); ++r) {
    seq_[r] = fg_.arch().pe(r).sequential() ? 1 : 0;
  }
  use_masks_ = heap_mode() && fg_.masks_enabled();
  if (!use_masks_) {
    known_.assign(fg_.arch().pe_count(),
                  std::vector<Time>(fg_.cpg().conditions().size(), kInf));
  }
  remaining_ = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!active(t)) continue;
    ++remaining_;
    for (EdgeId e : fg_.deps().in_edges(t)) {
      if (active(fg_.deps().edge(e).src)) ++pending_[t];
    }
  }

  if (heap_mode()) {
    known_pos_.assign(fg_.arch().pe_count(), 0);
    known_neg_.assign(fg_.arch().pe_count(), 0);
    ready_.assign(fg_.arch().pe_count(), ReadyHeap());
    locks_on_res_.assign(fg_.arch().pe_count(), {});
    for (TaskId t = 0; t < n; ++t) {
      if (!active(t)) continue;
      if (locked(t)) {
        locked_tasks_.push_back(t);
        locks_on_res_[lock(t).resource].push_back(t);
        continue;
      }
      if (fg_.task(t).is_broadcast()) {
        bcast_pending_.push_back(t);
        continue;
      }
      if (pending_[t] == 0) enqueue_ready(t);
    }
  }

  Time now = 0;
  while (remaining_ > 0) {
    // Start everything that can start at `now` (repeat until fixpoint:
    // zero-duration completions can enable further starts at this time).
    while (try_starts(now)) {
    }

    if (remaining_ == 0) break;

    // A locked task whose start time has arrived but which could not be
    // started is a hard failure: the reservation cannot be honored.
    for (TaskId t = 0; t < n; ++t) {
      if (active(t) && locked(t) && !started_[t] && lock(t).start <= now) {
        return infeasible(
            t, "locked task " + fg_.task(t).name +
                   " cannot start at its reserved time " +
                   std::to_string(lock(t).start));
      }
    }

    // Advance to the next event: a completion or a future lock start.
    Time next = kInf;
    for (TaskId t : running_) {
      if (!finished_[t]) next = std::min(next, sched_.slot(t).end);
    }
    for (TaskId t = 0; t < n; ++t) {
      if (active(t) && locked(t) && !started_[t]) {
        next = std::min(next, lock(t).start);
      }
    }
    if (next == kInf || next <= now) {
      EngineResult out;
      out.feasible = false;
      out.reason = "scheduling deadlock (no startable task and no pending "
                   "event)";
      return out;
    }
    now = next;
    // Process completions at `now`.
    std::vector<TaskId> still_running;
    still_running.reserve(running_.size());
    for (TaskId t : running_) {
      if (finished_[t]) continue;
      if (sched_.slot(t).end == now) {
        complete_task(t, now);
      } else {
        still_running.push_back(t);
      }
    }
    running_ = std::move(still_running);
  }

  EngineResult out;
  out.feasible = true;
  out.schedule = std::move(sched_);
  return out;
}

}  // namespace

EngineResult run_list_scheduler(const FlatGraph& fg,
                                const EngineRequest& request) {
  Engine engine(fg, request);
  return engine.run();
}

PathSchedule schedule_path(const FlatGraph& fg, const AltPath& path,
                           PriorityPolicy policy, Rng* rng,
                           ReadySelection selection, CoverCache* cover_cache) {
  EngineRequest req;
  req.label = path.label;
  req.active = fg.active_tasks(path.label, cover_cache);
  req.priority = compute_priorities(fg, req.active, policy, rng);
  req.selection = selection;
  req.cover_cache = cover_cache;
  EngineResult res = run_list_scheduler(fg, req);
  CPS_ASSERT(res.feasible,
             "validated CPG path must be schedulable: " + res.reason);
  return std::move(res.schedule);
}

}  // namespace cps
