#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace cps {

namespace {

constexpr Time kInf = std::numeric_limits<Time>::max();

/// Lock of task `t` in a lock vector that may be empty (= no locks).
const std::optional<TaskLock>& lock_at(
    const std::vector<std::optional<TaskLock>>& locks, TaskId t) {
  static const std::optional<TaskLock> kNone;
  return locks.empty() ? kNone : locks[t];
}

bool lock_sets_equal(const std::vector<std::optional<TaskLock>>& a,
                     const std::vector<std::optional<TaskLock>>& b,
                     std::size_t task_count) {
  for (TaskId t = 0; t < task_count; ++t) {
    if (lock_at(a, t) != lock_at(b, t)) return false;
  }
  return true;
}

bool any_lock(const std::vector<std::optional<TaskLock>>& locks) {
  for (const auto& l : locks) {
    if (l.has_value()) return true;
  }
  return false;
}

/// The engine proper. All mutable state lives in the EngineWorkspace so
/// repeated runs reuse capacity; the Engine object itself is a cheap
/// per-run view binding the workspace buffers to their historical names.
class Engine {
 public:
  Engine(const FlatGraph& fg, const EngineRequest& request,
         EngineWorkspace& ws)
      : fg_(fg),
        req_(request),
        ws_(ws),
        label_(ws.label),
        active_(ws.active),
        priority_(ws.priority),
        locks_(ws.locks),
        sched_(ws.sched),
        pending_(ws.pending),
        dep_ready_(ws.dep_ready),
        started_(ws.started),
        finished_(ws.finished),
        busy_until_(ws.busy_until),
        running_(ws.running),
        known_(ws.known),
        seq_(ws.seq),
        known_pos_(ws.known_pos),
        known_neg_(ws.known_neg),
        ready_(ws.ready),
        hw_ready_(ws.hw_ready),
        bcast_pending_(ws.bcast_pending),
        locked_tasks_(ws.locked_tasks),
        locks_on_res_(ws.locks_on_res),
        act_(ws.act),
        cond_known_(ws.cond_known) {}

  EngineResult run();

 private:
  bool heap_mode() const {
    return req_.selection == ReadySelection::kHeap;
  }
  bool active(TaskId t) const { return active_[t]; }
  bool locked(TaskId t) const {
    return !locks_.empty() && locks_[t].has_value();
  }
  const TaskLock& lock(TaskId t) const { return *locks_[t]; }

  bool deps_done(TaskId t, Time now) const {
    return pending_[t] == 0 && dep_ready_[t] <= now;
  }

  // ---- reference engine (pre-heap): full scans, direct DNF evaluation.

  /// Condition-knowledge check for starting task t at `now` on `res`.
  bool knowledge_ok_reference(TaskId t, Time now, PeId res) const;

  /// Does [now, now+dur) avoid every unstarted lock reservation on `res`?
  bool fits_reference(PeId res, Time now, Time dur) const;

  bool try_starts_reference(Time now);

  // ---- heap engine: lazy ready heaps, guard masks, memoized covers.

  bool knowledge_ok_fast(TaskId t, PeId res) const;
  bool guard_covered(const Dnf& guard, const TaskGuardInfo& info,
                     PeId res) const;
  bool guard_disjoint(const Dnf& guard, const TaskGuardInfo& info,
                      PeId res) const;
  /// Conditions known on `res` (restricted to `mention` in masks mode) as
  /// a context cube for the exact fallback checks.
  Cube known_context(PeId res, std::uint64_t mention) const;
  Cube known_context_full(PeId res) const;

  bool fits_fast(PeId res, Time now, Time dur) const;
  void enqueue_ready(TaskId t);
  bool try_starts_heap(Time now);

  // ---- checkpoint resume (EngineResume::kCheckpoint).

  bool history_matches(const EngineHistory& h) const;
  bool history_guard_matches(const EngineHistory& h) const;
  /// Earliest time the new lock set can influence the recorded run: every
  /// checkpoint strictly before it restores a state the new run provably
  /// reaches unchanged (see the prefix-equality argument below).
  Time divergence_limit(const EngineHistory& h) const;
  /// Same bound for a run differing in its whole guard assignment (label,
  /// active set, priorities) instead of its lock set.
  Time guard_divergence_limit(const EngineHistory& h) const;
  void restore_checkpoint(const EngineHistory& h, const EngineCheckpoint& ck);
  void maybe_record(Time now, std::size_t steps);
  void finalize_history(const EngineResult& out, std::size_t steps);

  // ---- shared machinery.

  bool try_starts(Time now) {
    return heap_mode() ? try_starts_heap(now) : try_starts_reference(now);
  }
  void start_task(TaskId t, Time now, PeId res);
  void complete_task(TaskId t, Time now);
  /// Record that `c`'s value became known on `res` at `when` (knowledge
  /// words / time matrix, first-known tracking). Shared by live
  /// completions and the checkpoint-restore replay.
  void learn(PeId res, CondId c, Time when);
  EngineResult infeasible(TaskId t, const std::string& reason);
  /// Result of a budget trip (cancel/deadline/step budget): infeasible
  /// with the interrupt code, a partially recorded history invalidated
  /// (a truncated run must never pose as a recorded outcome). The
  /// workspace needs no cleanup — every run re-initializes it.
  EngineResult interrupted(ErrorCode code);

  const FlatGraph& fg_;
  const EngineRequest& req_;  ///< validated, then snapshotted into ws_
  EngineWorkspace& ws_;
  CoverCache* cache_ = nullptr;
  bool recording_ = false;     ///< history metadata maintained this run
  bool record_ckpts_ = false;  ///< per-step checkpoints recorded this run
  Time max_duration_ = 1;

  // Workspace buffers under their historical names. The engine
  // deliberately runs its hot loops against these engine-owned snapshots:
  // measured on the fig6 workload, touching caller-built storage (whether
  // borrowed by reference or moved in) costs ~3x in per-path scheduling
  // time. The workspace keeps the snapshot capacity warm across runs.
  Cube& label_;
  std::vector<bool>& active_;
  std::vector<std::int64_t>& priority_;
  std::vector<std::optional<TaskLock>>& locks_;

  PathSchedule& sched_;
  std::vector<std::size_t>& pending_;   // unfinished active preds
  std::vector<Time>& dep_ready_;        // max end over finished preds
  std::vector<bool>& started_;
  std::vector<bool>& finished_;
  // Sequential resource occupancy: end time of the running task (or -1).
  std::vector<Time>& busy_until_;
  // Running tasks (for event extraction and completion processing).
  std::vector<TaskId>& running_;
  // known_[res][cond]: time from which `cond` is known on `res` (kInf if
  // not yet known).
  std::vector<std::vector<Time>>& known_;

  // Per-resource "executes one task at a time" flags, cached once per run
  // (Architecture::pe() bounds-checks on every call; the hot loops ask
  // hundreds of thousands of times per merge).
  std::vector<char>& seq_;

  std::size_t remaining_ = 0;

  // Heap-mode state. Knowledge doubles as per-resource bitmasks over the
  // path label so guard coverage is a couple of AND/CMP instructions.
  // When the masks are exact (condition count <= 64) the time matrix
  // known_ is not maintained at all in heap mode.
  bool use_masks_ = false;
  std::vector<std::uint64_t>& known_pos_;  // by PeId
  std::vector<std::uint64_t>& known_neg_;  // by PeId
  std::vector<ReadyHeap>& ready_;          // by PeId (sequential only)
  std::vector<TaskId>& hw_ready_;          // dep-ready hardware tasks
  std::vector<TaskId>& bcast_pending_;     // unstarted broadcast tasks
  std::vector<TaskId>& locked_tasks_;      // active locked tasks
  std::vector<std::vector<TaskId>>& locks_on_res_;  // by PeId

  // act_[t]: time the last active predecessor of t completed — the first
  // moment t could possibly start (kInf if it never happened). Drives the
  // checkpoint divergence analysis.
  std::vector<Time>& act_;
  // cond_known_[c]: earliest time condition c became known on any
  // resource (kInf if never; maintained only while recording). Drives the
  // guard-divergence analysis.
  std::vector<Time>& cond_known_;
};

// --------------------------------------------------------------------------
// Reference engine (kLinearScan). This is the seed implementation, kept
// verbatim: the equivalence tests prove the heap engine reproduces its
// schedules, and the benchmarks quote speedups against it.

bool Engine::knowledge_ok_reference(TaskId t, Time now, PeId res) const {
  if (!req_.enforce_knowledge) return true;
  const Task& task = fg_.task(t);
  const bool conjunction =
      task.origin_process &&
      fg_.cpg().process(*task.origin_process).conjunction;
  if (task.guard.is_true() && !conjunction) return true;

  Cube known_cube;
  for (CondId c = 0; c < fg_.cpg().conditions().size(); ++c) {
    const auto value = label_.value_of(c);
    if (!value) continue;
    if (known_[res][c] > now) continue;
    auto next = known_cube.conjoin(Literal{c, *value});
    CPS_ASSERT(next.has_value(), "known cube cannot contradict itself");
    known_cube = std::move(*next);
  }
  if (!task.guard.covered_by_context(known_cube)) return false;

  // Conjunction processes (and the sink) are activated by whichever input
  // alternative is selected, so their start time varies with conditions
  // their own guard may not mention. A deterministic time-triggered
  // scheduler on M(t) must be able to tell the alternatives apart:
  // require that the known conditions *decide* the activity of every
  // predecessor (paper §5.2, the premise behind Theorem 1).
  if (conjunction) {
    for (EdgeId e : fg_.deps().in_edges(t)) {
      const TaskId pred = fg_.deps().edge(e).src;
      const Dnf& pg = fg_.task(pred).guard;
      if (pg.is_true()) continue;
      if (active_[pred]) {
        if (!pg.covered_by_context(known_cube)) return false;
      } else {
        if (!pg.and_cube(known_cube).is_false()) return false;
      }
    }
  }
  return true;
}

bool Engine::fits_reference(PeId res, Time now, Time dur) const {
  if (locks_.empty()) return true;
  if (!fg_.arch().pe(res).sequential()) return true;
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active(t) || started_[t] || !locked(t)) continue;
    const TaskLock& l = *locks_[t];
    if (l.resource != res) continue;
    const Time lock_end = l.start + fg_.task(t).duration;
    if (l.start < now + dur && now < lock_end) return false;
    // Zero-length occupations still forbid covering them with a running
    // task: a lock at time s inside (now, now+dur) must stay reachable.
    if (fg_.task(t).duration == 0 && l.start >= now && l.start < now + dur) {
      return false;
    }
  }
  return true;
}

bool Engine::try_starts_reference(Time now) {
  bool any = false;

  // 1. Locked tasks reaching their fixed start time. A lock that cannot
  //    start exactly at its reserved moment makes the request infeasible;
  //    that is detected here and reported by run().
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (!active(t) || started_[t] || !locked(t)) continue;
    if (lock(t).start != now) continue;
    // Feasibility is re-checked in run() via pending_failure_; here we
    // only start locks whose prerequisites hold.
    if (!deps_done(t, now)) continue;
    if (!knowledge_ok_reference(t, now, lock(t).resource)) continue;
    const PeId res = lock(t).resource;
    if (fg_.arch().pe(res).sequential() && busy_until_[res] > now) continue;
    start_task(t, now, res);
    any = true;
  }

  // 2. Broadcast tasks: as soon as possible on the first available
  //    all-connecting bus.
  if (fg_.broadcasts_enabled()) {
    for (TaskId t = 0; t < fg_.task_count(); ++t) {
      const Task& task = fg_.task(t);
      if (!task.is_broadcast() || !active(t) || started_[t] || locked(t)) {
        continue;
      }
      if (!deps_done(t, now)) continue;
      for (PeId bus : fg_.broadcast_buses()) {
        if (busy_until_[bus] > now) continue;
        if (!fits_reference(bus, now, task.duration)) continue;
        if (!knowledge_ok_reference(t, now, bus)) continue;
        start_task(t, now, bus);
        any = true;
        break;
      }
    }
  }

  // 3. Unlocked tasks on sequential resources: per free resource pick the
  //    ready task with the highest priority.
  for (PeId res : fg_.used_resources()) {
    if (!fg_.arch().pe(res).sequential()) continue;
    bool started_one = true;
    while (started_one) {  // zero-duration tasks free the resource again
      started_one = false;
      if (busy_until_[res] > now) break;
      TaskId best = 0;
      bool have = false;
      for (TaskId t = 0; t < fg_.task_count(); ++t) {
        const Task& task = fg_.task(t);
        if (task.is_broadcast() || task.resource != res) continue;
        if (!active(t) || started_[t] || locked(t)) continue;
        if (!deps_done(t, now)) continue;
        if (!fits_reference(res, now, task.duration)) continue;
        if (!knowledge_ok_reference(t, now, res)) continue;
        if (!have || priority_[t] > priority_[best] ||
            (priority_[t] == priority_[best] && t < best)) {
          best = t;
          have = true;
        }
      }
      if (have) {
        start_task(best, now, res);
        any = true;
        started_one = true;
      }
    }
  }

  // 4. Hardware resources run everything that is ready.
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    const Task& task = fg_.task(t);
    if (task.is_broadcast() || active(t) == false || started_[t]) continue;
    if (locked(t)) continue;
    if (fg_.arch().pe(task.resource).sequential()) continue;
    if (!deps_done(t, now)) continue;
    if (!knowledge_ok_reference(t, now, task.resource)) continue;
    start_task(t, now, task.resource);
    any = true;
  }

  return any;
}

// --------------------------------------------------------------------------
// Heap engine (kHeap).

Cube Engine::known_context(PeId res, std::uint64_t mention) const {
  // The knowledge words and the cube share the packed representation, so
  // the context is two masked copies — no literal vector, no allocation.
  return Cube::from_masks(known_pos_[res] & mention,
                          known_neg_[res] & mention);
}

Cube Engine::known_context_full(PeId res) const {
  // Fallback for models with more than 64 conditions: rebuild the known
  // cube from the time matrix (any already-recorded time is in the past).
  Cube known_cube;
  for (CondId c = 0; c < fg_.cpg().conditions().size(); ++c) {
    const auto value = label_.value_of(c);
    if (!value) continue;
    if (known_[res][c] == kInf) continue;
    auto next = known_cube.conjoin(Literal{c, *value});
    CPS_ASSERT(next.has_value(), "known cube cannot contradict itself");
    known_cube = std::move(*next);
  }
  return known_cube;
}

bool Engine::guard_covered(const Dnf& guard, const TaskGuardInfo& info,
                           PeId res) const {
  if (info.trivially_true) return true;
  if (use_masks_) {
    // A cube whose literals are all known true on the resource covers the
    // whole guard; for single-cube guards this test is exact.
    for (const GuardCubeMask& cube : info.cubes) {
      if (cube.covered_by(known_pos_[res], known_neg_[res])) return true;
    }
    if (info.cubes.size() <= 1) return false;
    // All mentioned conditions decided but no cube satisfied: not covered.
    if ((info.mention & ~(known_pos_[res] | known_neg_[res])) == 0) {
      return false;
    }
    return cache_->covered(guard, known_context(res, info.mention));
  }
  return cache_->covered(guard, known_context_full(res));
}

bool Engine::guard_disjoint(const Dnf& guard, const TaskGuardInfo& info,
                            PeId res) const {
  if (info.trivially_true) return false;
  if (use_masks_) {
    // guard & known == false iff every cube of the guard contradicts a
    // known condition value (exact, no fallback needed).
    for (const GuardCubeMask& cube : info.cubes) {
      if (!cube.conflicts(known_pos_[res], known_neg_[res])) return false;
    }
    return true;
  }
  return cache_->disjoint(guard, known_context_full(res));
}

bool Engine::knowledge_ok_fast(TaskId t, PeId res) const {
  if (!req_.enforce_knowledge) return true;
  const TaskGuardInfo& info = fg_.guard_info(t);
  if (info.trivially_true && !info.conjunction) return true;
  if (!guard_covered(fg_.task(t).guard, info, res)) return false;
  if (info.conjunction) {
    for (TaskId pred : info.guarded_preds) {
      const TaskGuardInfo& pinfo = fg_.guard_info(pred);
      if (active_[pred]) {
        if (!guard_covered(fg_.task(pred).guard, pinfo, res)) return false;
      } else {
        if (!guard_disjoint(fg_.task(pred).guard, pinfo, res)) return false;
      }
    }
  }
  return true;
}

bool Engine::fits_fast(PeId res, Time now, Time dur) const {
  if (locks_.empty()) return true;
  if (!seq_[res]) return true;
  for (TaskId t : locks_on_res_[res]) {
    if (started_[t]) continue;
    const TaskLock& l = *locks_[t];
    const Time lock_end = l.start + fg_.task(t).duration;
    if (l.start < now + dur && now < lock_end) return false;
    if (fg_.task(t).duration == 0 && l.start >= now && l.start < now + dur) {
      return false;
    }
  }
  return true;
}

void Engine::enqueue_ready(TaskId t) {
  // Called when the last active predecessor of `t` completes (and at
  // initialization for predecessor-free tasks). Locked tasks start via
  // their reservation, broadcast tasks via the pending list.
  if (!active(t) || started_[t] || locked(t)) return;
  const Task& task = fg_.task(t);
  if (task.is_broadcast()) return;
  if (seq_[task.resource]) {
    ready_[task.resource].push(ReadyEntry{priority_[t], t});
  } else {
    hw_ready_.push_back(t);
  }
}

bool Engine::try_starts_heap(Time now) {
  bool any = false;

  // 1. Locked tasks reaching their fixed start time.
  for (TaskId t : locked_tasks_) {
    if (started_[t]) continue;
    if (lock(t).start != now) continue;
    if (!deps_done(t, now)) continue;
    const PeId res = lock(t).resource;
    if (!knowledge_ok_fast(t, res)) continue;
    if (seq_[res] && busy_until_[res] > now) continue;
    start_task(t, now, res);
    any = true;
  }

  // 2. Broadcast tasks: as soon as possible on the first available
  //    all-connecting bus.
  if (!bcast_pending_.empty()) {
    std::vector<TaskId>& still = ws_.scratch_tasks;
    still.clear();
    for (TaskId t : bcast_pending_) {
      if (started_[t]) continue;
      if (!deps_done(t, now)) {
        still.push_back(t);
        continue;
      }
      const Task& task = fg_.task(t);
      for (PeId bus : fg_.broadcast_buses()) {
        if (busy_until_[bus] > now) continue;
        if (!fits_fast(bus, now, task.duration)) continue;
        if (!knowledge_ok_fast(t, bus)) continue;
        start_task(t, now, bus);
        any = true;
        break;
      }
      if (!started_[t]) still.push_back(t);
    }
    bcast_pending_.swap(still);
  }

  // 3. Sequential resources: pop the per-resource ready heap in priority
  //    order; candidates blocked by a lock window or missing condition
  //    knowledge are parked and re-armed after the next successful start
  //    (a zero-duration chain may have changed the knowledge state).
  std::vector<ReadyEntry>& deferred = ws_.scratch_deferred;
  for (PeId res : fg_.used_resources()) {
    if (!seq_[res]) continue;
    ReadyHeap& heap = ready_[res];
    deferred.clear();
    while (busy_until_[res] <= now && !heap.empty()) {
      const ReadyEntry entry = heap.top();
      heap.pop();
      const TaskId t = entry.id;
      if (started_[t]) continue;  // stale entry
      if (!fits_fast(res, now, fg_.task(t).duration) ||
          !knowledge_ok_fast(t, res)) {
        deferred.push_back(entry);
        continue;
      }
      start_task(t, now, res);
      any = true;
      for (const ReadyEntry& d : deferred) heap.push(d);
      deferred.clear();
    }
    for (const ReadyEntry& d : deferred) heap.push(d);
  }

  // 4. Hardware resources run everything that is ready (the queue may grow
  //    while iterating: zero-duration completions enqueue successors).
  std::vector<TaskId>& hw_still = ws_.scratch_tasks;
  hw_still.clear();
  for (std::size_t i = 0; i < hw_ready_.size(); ++i) {
    const TaskId t = hw_ready_[i];
    if (started_[t]) continue;
    const PeId res = fg_.task(t).resource;
    if (!knowledge_ok_fast(t, res)) {
      hw_still.push_back(t);
      continue;
    }
    start_task(t, now, res);
    any = true;
  }
  hw_ready_.swap(hw_still);

  return any;
}

// --------------------------------------------------------------------------
// Checkpoint resume.
//
// A recorded run A (lock set L_A, checkpoint stream, per-task first-
// startable times act, max active duration D) and a new request B that
// differs only in its lock set replay *identically* through any time T
// that no differing lock can influence:
//
//  * a lock influences scheduling decisions at time `now` only through
//    the overlap probes of fits_* (which look at locks with
//    start < now + dur, dur <= D), the locked-task start/infeasibility
//    checks (locks with start <= now) and the event-time advance (future
//    lock starts); with T <= start - D for every differing lock, none of
//    those observe a difference at now <= T;
//  * a task whose lock differs behaves differently (enters the ready
//    structures vs waits for its reservation) only once its predecessors
//    have completed, i.e. from act(t) on; with T < act(t) it is inert in
//    both runs through T.
//
// The same prefix-equality argument extends to a run B that differs in
// its *guard assignment* instead — a different path label, and with it
// different active sets and priorities (lock sets empty on both sides,
// knowledge rule enforced). Two complete path labels of one graph decide
// at least one condition oppositely; call those the divergent conditions.
// Then through any T strictly before both (a) the first time any
// divergent condition became known on any resource in run A (cond_known)
// and (b) the first-startable time act(t) of any task active in both runs
// with differing priorities, the runs replay identically:
//
//  * a task whose activity differs has a guard whose truth value differs
//    under the two labels, so covering it (to start it) or refuting it
//    (to pass the conjunction check) requires a known context that
//    decides some divergent condition — if every known value were common
//    to both labels, the guard would evaluate identically under both.
//    Conditions become known only at task completions, recorded in
//    cond_known, so before (a) no differing-activity task has started on
//    either run, and none of its knock-on effects (resource occupancy,
//    completions, knowledge updates) exists;
//  * a conjunction task active in both runs whose predecessor activity
//    differs is blocked by the same argument (the conjunction check must
//    decide every guarded predecessor's activity). Non-conjunction tasks
//    cannot have predecessors of differing activity while active in both
//    runs — validated CPGs give non-conjunction processes guards that
//    imply every predecessor's guard — and guard_divergence_limit refuses
//    to resume if one appears anyway;
//  * a task active in both runs with equal priorities behaves
//    identically; with differing priorities it can steer a ready-heap pop
//    from the moment it first becomes ready, bounded by (b).
//
// Checkpoints store only request-independent state (schedule, flags,
// occupancy, knowledge); restore_checkpoint rebuilds everything
// request-dependent — pending counts, dep-ready/act times, ready heaps,
// broadcast/lock lists — from the *resuming* request, which is exactly
// what lets one stream serve both kinds of divergence. Under those
// bounds, restoring A's checkpoint at T and continuing with B's request
// is byte-identical to running B from scratch (equivalence-tested in
// test_list_scheduler / test_merge_parallel / test_path_tree).

bool Engine::history_matches(const EngineHistory& h) const {
  return h.graph_digest == fg_.canonical_digest() &&
         h.task_count == fg_.task_count() &&
         h.enforce_knowledge == req_.enforce_knowledge &&
         h.label == label_ && h.active == active_ &&
         h.priority == priority_;
}

bool Engine::history_guard_matches(const EngineHistory& h) const {
  // Guard-assignment resume: same graph, knowledge rule enforced, no lock
  // on either side — the divergence analysis leans on guarded tasks being
  // unable to start before their divergent conditions are known, and on
  // lock-free ready-structure rebuilds. A feasible recorded run is also
  // required: per-path runs of validated CPGs never deadlock, so an
  // infeasible record means malformed input (e.g. a hand-corrupted
  // active set) where the equivalence reasoning has no footing.
  return h.graph_digest == fg_.canonical_digest() &&
         h.task_count == fg_.task_count() &&
         h.feasible && h.enforce_knowledge && req_.enforce_knowledge &&
         h.cond_known.size() == fg_.cpg().conditions().size() &&
         !any_lock(h.locks) && !any_lock(locks_);
}

Time Engine::divergence_limit(const EngineHistory& h) const {
  const Time d = std::max<Time>(h.max_duration, 1);
  Time limit = kInf;
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    const std::optional<TaskLock>& a = lock_at(h.locks, t);
    const std::optional<TaskLock>& b = lock_at(locks_, t);
    if (a == b) continue;
    if (a) limit = std::min(limit, a->start - d + 1);
    if (b) limit = std::min(limit, b->start - d + 1);
    limit = std::min(limit, h.act[t]);
  }
  return limit;
}

Time Engine::guard_divergence_limit(const EngineHistory& h) const {
  Time limit = kInf;
  // (a) Conditions decided oppositely by both labels gate every
  //     differing-activity task (see the prefix-equality argument above).
  bool divergent = false;
  for (CondId c = 0; c < fg_.cpg().conditions().size(); ++c) {
    const auto a = h.label.value_of(c);
    const auto b = label_.value_of(c);
    if (a == b) continue;
    if (a && b) {
      divergent = true;
      limit = std::min(limit, h.cond_known[c]);
    }
  }
  // Distinct complete path labels of one graph are pairwise incompatible,
  // so a both-decided divergent condition must exist; refuse anything
  // else (identical labels, partial contexts, foreign label sets).
  if (!divergent) return 0;
  for (TaskId t = 0; t < fg_.task_count(); ++t) {
    if (h.active[t] && active_[t]) {
      // (b) Common tasks with differing priorities steer ready-heap pops
      //     from the moment they first become ready in the recorded run.
      //     Only sequential-resource non-broadcast tasks ever consult
      //     their priority: hardware tasks start whenever ready and
      //     broadcasts go by task-id order on the first free bus.
      if (h.priority[t] != priority_[t] && !fg_.task(t).is_broadcast() &&
          seq_[fg_.task(t).resource]) {
        limit = std::min(limit, h.act[t]);
      }
    } else if (h.active[t] != active_[t]) {
      // Belt: a non-conjunction successor active in both runs is not
      // knowledge-gated on this differing predecessor. Validated CPGs
      // cannot produce one (see the argument above) — refuse to resume
      // rather than risk a silent divergence on a hand-built model.
      for (EdgeId e : fg_.deps().out_edges(t)) {
        const TaskId succ = fg_.deps().edge(e).dst;
        if (h.active[succ] && active_[succ] &&
            !fg_.guard_info(succ).conjunction) {
          return 0;
        }
      }
    }
  }
  return limit;
}

void Engine::restore_checkpoint(const EngineHistory& h,
                                const EngineCheckpoint& ck) {
  // The engine state was just initialized from scratch for this request;
  // replaying the recorded log prefix on top reproduces the shared
  // prefix's request-independent state: through the divergence limit both
  // runs committed byte-identical steps, so the recorded starts are the
  // resuming run's own. A start with end <= ck.now has completed by the
  // checkpoint (completions at `now` are processed before the step at
  // `now` is recorded; zero-duration tasks complete at their start).
  for (std::size_t i = 0; i < ck.log_pos; ++i) {
    const StartEvent& e = h.log[i];
    const Task& task = fg_.task(e.task);
    started_[e.task] = true;
    sched_.place(e.task, e.start, e.end, e.resource);
    if (e.end > ck.now) {
      running_.push_back(e.task);  // log order = start order = natural
      if (seq_[e.resource]) busy_until_[e.resource] = e.end;
      continue;
    }
    finished_[e.task] = true;
    if (e.end > e.start && seq_[e.resource]) {
      busy_until_[e.resource] = e.end;
    }
    // Knowledge is a pure function of the finished prefix and the label;
    // prefix conditions are common to both runs, so the current label
    // supplies the same values the recorded run learned.
    if (task.computes) {
      const CondId c = *task.computes;
      learn(e.resource, c, e.end);
      if (!fg_.broadcasts_enabled()) {
        for (PeId r = 0; r < fg_.arch().pe_count(); ++r) learn(r, c, e.end);
      }
    }
    if (task.broadcasts) {
      const CondId c = *task.broadcasts;
      for (PeId r = 0; r < fg_.arch().pe_count(); ++r) learn(r, c, e.end);
    }
  }

  // Everything request-dependent is rebuilt from *this* request plus the
  // replayed flags — the resuming run may differ from the recorded one in
  // its lock set or in its whole guard assignment (active sets,
  // priorities), so nothing of the sort is ever recorded. The rebuild
  // reproduces exactly what a from-scratch run of this request holds
  // after the step at ck.now: pending/dep-ready/act are pure functions of
  // (active set, finished set, schedule), heap contents are the ready
  // unstarted unlocked tasks, and heap pop order is a total order on
  // (priority, id), making insertion order irrelevant.
  const std::size_t n = fg_.task_count();
  remaining_ = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!active(t)) continue;
    if (!finished_[t]) ++remaining_;
    bool has_pred = false;
    Time last_done = 0;
    std::size_t open = 0;
    for (EdgeId e : fg_.deps().in_edges(t)) {
      const TaskId pred = fg_.deps().edge(e).src;
      if (!active(pred)) continue;
      has_pred = true;
      if (finished_[pred]) {
        last_done = std::max(last_done, sched_.slot(pred).end);
      } else {
        ++open;
      }
    }
    pending_[t] = open;
    dep_ready_[t] = last_done;
    act_[t] = open == 0 ? (has_pred ? last_done : 0) : kInf;
  }
  // Ready structures and lock-derived lists, in task-id order exactly
  // like the from-scratch initialization.
  locked_tasks_.clear();
  locks_on_res_.assign(fg_.arch().pe_count(), {});
  bcast_pending_.clear();
  hw_ready_.clear();
  ready_.assign(fg_.arch().pe_count(), ReadyHeap());
  for (TaskId t = 0; t < n; ++t) {
    if (!active(t)) continue;
    if (locked(t)) {
      locked_tasks_.push_back(t);
      locks_on_res_[lock(t).resource].push_back(t);
      continue;
    }
    if (fg_.task(t).is_broadcast()) {
      if (!started_[t]) bcast_pending_.push_back(t);
      continue;
    }
    if (!started_[t] && pending_[t] == 0) enqueue_ready(t);
  }
}

void Engine::maybe_record(Time now, std::size_t steps) {
  EngineHistory& h = *req_.history;
  if (++h.since_record < h.stride) return;
  h.since_record = 0;
  if (h.ckpt_count == EngineHistory::kMaxCheckpoints) {
    // Thin: keep every second checkpoint, double the stride.
    for (std::size_t i = 1, j = 2; j < h.ckpt_count; ++i, j += 2) {
      h.ckpts[i] = h.ckpts[j];
    }
    h.ckpt_count = (h.ckpt_count + 1) / 2;
    h.stride *= 2;
  }
  if (h.ckpts.size() <= h.ckpt_count) h.ckpts.emplace_back();
  EngineCheckpoint& ck = h.ckpts[h.ckpt_count++];
  ck.now = now;
  ck.steps = steps;
  ck.log_pos = h.log.size();
  ++ws_.stats.checkpoints;
}

void Engine::finalize_history(const EngineResult& out, std::size_t steps) {
  EngineHistory& h = *req_.history;
  h.graph_digest = fg_.canonical_digest();
  h.task_count = fg_.task_count();
  h.label = label_;
  h.active = active_;
  h.priority = priority_;
  h.enforce_knowledge = req_.enforce_knowledge;
  h.locks = locks_;
  h.lock_fingerprint = lock_set_fingerprint(h.locks);
  h.act = act_;
  h.cond_known = cond_known_;
  h.max_duration = max_duration_;
  h.feasible = out.feasible;
  if (out.feasible) h.final_schedule = sched_;
  h.offending_lock = out.offending_lock;
  h.reason = out.reason;
  h.total_steps = steps;
  h.valid = true;
}

// --------------------------------------------------------------------------
// Shared machinery.

void Engine::start_task(TaskId t, Time now, PeId res) {
  const Time dur = fg_.task(t).duration;
  started_[t] = true;
  sched_.place(t, now, now + dur, res);
  if (record_ckpts_) {
    req_.history->log.push_back(StartEvent{t, now, now + dur, res});
  }
  if (dur == 0) {
    complete_task(t, now);
    return;
  }
  if (seq_[res]) {
    busy_until_[res] = now + dur;
  }
  running_.push_back(t);
}

// Knowledge updates. With exact masks the per-resource words are the
// whole knowledge state (the known_ time matrix is not even allocated);
// otherwise the time matrix drives the known_context fallbacks.
void Engine::learn(PeId res, CondId c, Time when) {
  if (recording_ && cond_known_[c] > when) cond_known_[c] = when;
  if (use_masks_) {
    if (const auto value = label_.value_of(c)) {
      (*value ? known_pos_ : known_neg_)[res] |= std::uint64_t{1} << c;
    }
    return;
  }
  known_[res][c] = std::min(known_[res][c], when);
}

void Engine::complete_task(TaskId t, Time now) {
  finished_[t] = true;
  CPS_ASSERT(remaining_ > 0, "completion bookkeeping underflow");
  --remaining_;
  const Task& task = fg_.task(t);
  const bool heap = heap_mode();
  for (EdgeId e : fg_.deps().out_edges(t)) {
    const TaskId succ = fg_.deps().edge(e).dst;
    if (!active(succ)) continue;
    CPS_ASSERT(pending_[succ] > 0, "predecessor bookkeeping underflow");
    --pending_[succ];
    dep_ready_[succ] = std::max(dep_ready_[succ], now);
    if (pending_[succ] == 0) {
      act_[succ] = now;
      if (heap) enqueue_ready(succ);
    }
  }
  if (task.computes) {
    const CondId c = *task.computes;
    const PeId res = sched_.slot(t).resource;
    learn(res, c, now);
    if (!fg_.broadcasts_enabled()) {
      // Single-resource models: the value is immediately visible (there is
      // nobody else to inform).
      for (PeId r = 0; r < fg_.arch().pe_count(); ++r) learn(r, c, now);
    }
  }
  if (task.broadcasts) {
    const CondId c = *task.broadcasts;
    for (PeId r = 0; r < fg_.arch().pe_count(); ++r) learn(r, c, now);
  }
}

EngineResult Engine::infeasible(TaskId t, const std::string& reason) {
  EngineResult out;
  out.feasible = false;
  out.code = ErrorCode::kUnschedulable;
  out.offending_lock = t;
  out.reason = reason;
  return out;
}

EngineResult Engine::interrupted(ErrorCode code) {
  if (recording_) req_.history->invalidate();
  EngineResult out;
  out.feasible = false;
  out.code = code;
  out.reason = std::string("engine run interrupted: ") + to_string(code);
  return out;
}

EngineResult Engine::run() {
  const std::size_t n = fg_.task_count();
  CPS_REQUIRE(req_.active.size() == n, "active vector size mismatch");
  CPS_REQUIRE(req_.priority.size() == n, "priority vector size mismatch");
  CPS_REQUIRE(req_.locks.empty() || req_.locks.size() == n,
              "locks vector size mismatch");
  CPS_FAULT_POINT("engine.run");

  // Bind the workspace to this graph: the private cover cache memoizes
  // guard addresses of exactly one FlatGraph.
  if (ws_.bound_graph_uid != fg_.uid()) {
    ws_.private_cache.clear();
    ws_.bound_graph_uid = fg_.uid();
  }
  ++ws_.stats.runs;
  if (ws_.warm) ++ws_.stats.reuse_hits;
  ws_.warm = true;

  // Snapshot the request into workspace-owned storage (capacity-reusing
  // assignments; see the member comment for why the hot loops must not
  // touch caller storage).
  label_ = req_.label;
  active_ = req_.active;
  priority_ = req_.priority;
  locks_ = req_.locks;
  cache_ = req_.cover_cache ? req_.cover_cache : &ws_.private_cache;

  // Checkpoint resume: only the heap engine records/resumes (the
  // linear-scan reference always runs from scratch). A valid history is
  // usable either on exact identity up to the lock set (merge
  // adjustments) or, lock-free, on a divergent guard assignment (tree
  // driver chaining leaves of the guard trie).
  recording_ = req_.history != nullptr &&
               req_.resume == EngineResume::kCheckpoint && heap_mode();
  const bool history_usable =
      recording_ && req_.history->valid && history_matches(*req_.history);
  const bool guard_usable = recording_ && req_.history->valid &&
                            !history_usable &&
                            history_guard_matches(*req_.history);
  if (history_usable) {
    EngineHistory& h = *req_.history;
    if (lock_set_fingerprint(locks_) == h.lock_fingerprint &&
        lock_sets_equal(h.locks, locks_, n)) {
      // The whole recorded run applies: return its outcome unchanged,
      // without initializing (let alone stepping) any engine state.
      ++ws_.stats.full_reuses;
      EngineResult out;
      out.feasible = h.feasible;
      out.code = h.feasible ? ErrorCode::kOk : ErrorCode::kUnschedulable;
      if (h.feasible) out.schedule = h.final_schedule;
      out.offending_lock = h.offending_lock;
      out.reason = h.reason;
      out.full_reuse = true;
      return out;
    }
  }

  sched_.reset(n);
  pending_.assign(n, 0);
  dep_ready_.assign(n, 0);
  started_.assign(n, false);
  finished_.assign(n, false);
  busy_until_.assign(fg_.arch().pe_count(), -1);
  seq_.resize(fg_.arch().pe_count());
  for (PeId r = 0; r < fg_.arch().pe_count(); ++r) {
    seq_[r] = fg_.arch().pe(r).sequential() ? 1 : 0;
  }
  use_masks_ = heap_mode() && fg_.masks_enabled();
  if (!use_masks_) {
    known_.assign(fg_.arch().pe_count(),
                  std::vector<Time>(fg_.cpg().conditions().size(), kInf));
  }
  running_.clear();
  act_.assign(n, kInf);
  max_duration_ = 1;
  remaining_ = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!active(t)) continue;
    ++remaining_;
    max_duration_ = std::max(max_duration_, fg_.task(t).duration);
    for (EdgeId e : fg_.deps().in_edges(t)) {
      if (active(fg_.deps().edge(e).src)) ++pending_[t];
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    if (active(t) && pending_[t] == 0) act_[t] = 0;
  }

  if (heap_mode()) {
    known_pos_.assign(fg_.arch().pe_count(), 0);
    known_neg_.assign(fg_.arch().pe_count(), 0);
    ready_.assign(fg_.arch().pe_count(), ReadyHeap());
    locks_on_res_.assign(fg_.arch().pe_count(), {});
    locked_tasks_.clear();
    bcast_pending_.clear();
    hw_ready_.clear();
    for (TaskId t = 0; t < n; ++t) {
      if (!active(t)) continue;
      if (locked(t)) {
        locked_tasks_.push_back(t);
        locks_on_res_[lock(t).resource].push_back(t);
        continue;
      }
      if (fg_.task(t).is_broadcast()) {
        bcast_pending_.push_back(t);
        continue;
      }
      if (pending_[t] == 0) enqueue_ready(t);
    }
  }

  Time now = 0;
  std::size_t steps = 0;
  bool resumed = false;
  bool resumed_step_pending = false;
  std::size_t resumed_steps = 0;
  if (recording_) {
    EngineHistory& h = *req_.history;
    cond_known_.assign(fg_.cpg().conditions().size(), kInf);
    Time limit = 0;
    if (history_usable || guard_usable) {
      limit =
          history_usable ? divergence_limit(h) : guard_divergence_limit(h);
      const EngineCheckpoint* best = nullptr;
      std::size_t best_idx = 0;
      for (std::size_t i = 0; i < h.ckpt_count; ++i) {
        if (h.ckpts[i].now < limit) {
          best = &h.ckpts[i];
          best_idx = i;
        }
      }
      if (best != nullptr) {
        restore_checkpoint(h, *best);
        now = best->now;
        steps = best->steps;
        resumed = true;
        resumed_step_pending = true;  // the step at `now` is already done
        resumed_steps = best->steps;
        // The suffix belongs to the old run; the continuation re-appends.
        h.ckpt_count = best_idx + 1;
        h.log.resize(best->log_pos);
        ++ws_.stats.resumes;
        ws_.stats.resumed_steps += resumed_steps;
      }
    }
    if (!resumed) {
      h.invalidate();
      ++ws_.stats.from_scratch;
    } else {
      h.since_record = 0;
      h.valid = false;  // consistent again once finalize_history runs
    }
    // Demand-driven recording: this run is worth checkpointing if the
    // caller said so up front (eager) or a usable-history rerun has been
    // observed — which includes this very run: history_usable means the
    // identity matched but the locks did not (the full-reuse test above
    // already failed), guard_usable means a sibling guard assignment
    // arrived; either way, reruns demonstrably happen on this history.
    // Guard-divergence chains additionally require a resume to be
    // plausible (limit > 0): when sibling priorities diverge right at
    // t=0 — unbalanced arm durations shift every shared critical-path
    // priority — no checkpoint can ever be restored, and per-step
    // recording would be pure overhead on every leaf of the trie.
    h.record =
        history_usable || (guard_usable && (resumed || limit > 0));
    record_ckpts_ = h.eager || h.record;
  }

  // Bounded-interval budget polling: the cancel token every step, the
  // wall clock every BudgetPoll::kStride steps (see support/cancel.hpp).
  BudgetPoll budget_poll(req_.budget);
  while (remaining_ > 0) {
    {
      const ErrorCode trip = budget_poll.poll();
      if (trip != ErrorCode::kOk) return interrupted(trip);
    }
    // Start everything that can start at `now` (repeat until fixpoint:
    // zero-duration completions can enable further starts at this time).
    // A resumed run's first step was already committed by the recorded
    // prefix — its fixpoint is part of the restored state.
    if (!resumed_step_pending) {
      while (try_starts(now)) {
      }
    }

    if (remaining_ == 0) break;

    // A locked task whose start time has arrived but which could not be
    // started is a hard failure: the reservation cannot be honored. Heap
    // mode walks its locked-task list (same tasks, same id order) instead
    // of scanning the whole task vector every step.
    const bool heap = heap_mode();
    const std::size_t locked_n = heap ? locked_tasks_.size() : n;
    for (std::size_t i = 0; i < locked_n; ++i) {
      const TaskId t = heap ? locked_tasks_[i] : static_cast<TaskId>(i);
      if (active(t) && locked(t) && !started_[t] && lock(t).start <= now) {
        EngineResult out = infeasible(
            t, "locked task " + fg_.task(t).name +
                   " cannot start at its reserved time " +
                   std::to_string(lock(t).start));
        out.resumed = resumed;
        out.resumed_steps = resumed_steps;
        if (recording_) finalize_history(out, steps);
        return out;
      }
    }

    if (!resumed_step_pending) {
      CPS_FAULT_POINT("engine.step");
      ++steps;
      if (req_.budget != nullptr &&
          req_.budget->charge_steps(1) != ErrorCode::kOk) {
        return interrupted(ErrorCode::kStepBudgetExceeded);
      }
      if (record_ckpts_) maybe_record(now, steps);
    }
    resumed_step_pending = false;

    // Advance to the next event: a completion or a future lock start.
    Time next = kInf;
    for (TaskId t : running_) {
      if (!finished_[t]) next = std::min(next, sched_.slot(t).end);
    }
    for (std::size_t i = 0; i < locked_n; ++i) {
      const TaskId t = heap ? locked_tasks_[i] : static_cast<TaskId>(i);
      if (active(t) && locked(t) && !started_[t]) {
        next = std::min(next, lock(t).start);
      }
    }
    if (next == kInf || next <= now) {
      EngineResult out;
      out.feasible = false;
      out.code = ErrorCode::kUnschedulable;
      out.reason = "scheduling deadlock (no startable task and no pending "
                   "event)";
      out.resumed = resumed;
      out.resumed_steps = resumed_steps;
      if (recording_) finalize_history(out, steps);
      return out;
    }
    now = next;
    // Process completions at `now`.
    std::vector<TaskId>& still_running = ws_.scratch_running;
    still_running.clear();
    for (TaskId t : running_) {
      if (finished_[t]) continue;
      if (sched_.slot(t).end == now) {
        complete_task(t, now);
      } else {
        still_running.push_back(t);
      }
    }
    running_.swap(still_running);
  }

  EngineResult out;
  out.feasible = true;
  out.resumed = resumed;
  out.resumed_steps = resumed_steps;
  if (recording_) finalize_history(out, steps);
  out.schedule = sched_;  // copy: the workspace keeps its capacity warm
  return out;
}

}  // namespace

EngineResult run_list_scheduler(const FlatGraph& fg,
                                const EngineRequest& request,
                                EngineWorkspace& workspace) {
  Engine engine(fg, request, workspace);
  return engine.run();
}

EngineResult run_list_scheduler(const FlatGraph& fg,
                                const EngineRequest& request) {
  EngineWorkspace workspace;
  return run_list_scheduler(fg, request, workspace);
}

EngineRequest make_path_request(const FlatGraph& fg, const AltPath& path,
                                PriorityPolicy policy, Rng* rng,
                                ReadySelection selection,
                                CoverCache* cover_cache) {
  EngineRequest req;
  req.label = path.label;
  req.active = fg.active_tasks(path.label, cover_cache);
  req.priority = compute_priorities(fg, req.active, policy, rng);
  req.selection = selection;
  req.cover_cache = cover_cache;
  return req;
}

PathSchedule schedule_path(const FlatGraph& fg, const AltPath& path,
                           PriorityPolicy policy, Rng* rng,
                           ReadySelection selection, CoverCache* cover_cache,
                           EngineWorkspace* workspace) {
  const EngineRequest req =
      make_path_request(fg, path, policy, rng, selection, cover_cache);
  EngineResult res = workspace ? run_list_scheduler(fg, req, *workspace)
                               : run_list_scheduler(fg, req);
  CPS_ASSERT(res.feasible,
             "validated CPG path must be schedulable: " + res.reason);
  return std::move(res.schedule);
}

}  // namespace cps
