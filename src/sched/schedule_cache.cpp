#include "sched/schedule_cache.hpp"

#include "io/store.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace cps {
namespace {

// Persistent entries prepend the full key encoding so a reader can verify
// content identity (not just the digest-derived filename):
//   key_len(u64 LE) | key_encoding | payload.
std::string frame_store_payload(std::string_view key, std::string_view payload) {
  std::string out;
  out.reserve(8 + key.size() + payload.size());
  const std::uint64_t len = key.size();
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  out.append(key);
  out.append(payload);
  return out;
}

/// Split a framed store payload; false when structurally malformed.
bool parse_store_payload(std::string_view blob, std::string_view* key,
                         std::string_view* payload) {
  if (blob.size() < 8) return false;
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(static_cast<unsigned char>(blob[i]))
           << (8 * i);
  }
  if (blob.size() - 8 < len) return false;
  *key = blob.substr(8, len);
  *payload = blob.substr(8 + len);
  return true;
}

}  // namespace

void write_cache_stats_json(JsonWriter& w, const ScheduleCacheStats& s) {
  w.field("hits", s.hits);
  w.field("misses", s.misses);
  w.field("store_hits", s.store_hits);
  w.field("store_errors", s.store_errors);
  w.field("prefix_hits", s.prefix_hits);
  w.field("prefix_misses", s.prefix_misses);
  w.field("insertions", s.insertions);
  w.field("evictions", s.evictions);
  w.field("entries", s.entries);
  w.field("prefix_entries", s.prefix_entries);
  w.field("bytes", s.bytes);
}

ScheduleCache::ScheduleCache(ScheduleCacheOptions options)
    : options_(std::move(options)) {
  if (!options_.store_dir.empty()) {
    KeyStoreOptions store_options;
    store_options.root = options_.store_dir;
    store_options.max_entries = options_.store_max_entries;
    store_ = std::make_unique<KeyStore>(std::move(store_options));
  }
}

ScheduleCache::~ScheduleCache() = default;

bool ScheduleCache::lookup(const Digest128& digest,
                           std::string_view key_encoding,
                           std::string* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = exact_.find(digest);
  if (it != exact_.end() && it->second.key == key_encoding) {
    ++counters_.hits;
    *payload = it->second.payload;
    return true;
  }
  if (store_ != nullptr) {
    try {
      if (auto blob = store_->get(digest.hex())) {
        std::string_view stored_key, stored_payload;
        if (!parse_store_payload(*blob, &stored_key, &stored_payload)) {
          throw StoreCorruptError("schedule-cache entry frame malformed: " +
                                  digest.hex());
        }
        if (stored_key == key_encoding) {
          ++counters_.hits;
          ++counters_.store_hits;
          payload->assign(stored_payload);
          // Promote so the next repeat skips the disk round-trip.
          insert_memory(digest, stored_key, stored_payload);
          return true;
        }
        // Digest collision against a valid entry: impossible to act on —
        // fall through to a miss (and do not overwrite the entry here;
        // insert() after recompute makes the last writer win).
      }
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kStoreCorrupt) throw;
      ++counters_.store_errors;  // degrade to a miss, recompute
    }
  }
  ++counters_.misses;
  return false;
}

void ScheduleCache::insert_memory(const Digest128& digest,
                                  std::string_view key_encoding,
                                  std::string_view payload) {
  auto [it, inserted] = exact_.try_emplace(digest);
  if (!inserted) exact_bytes_ -= it->second.key.size() + it->second.payload.size();
  it->second.key.assign(key_encoding);
  it->second.payload.assign(payload);
  exact_bytes_ += key_encoding.size() + payload.size();
  if ((options_.max_entries != 0 && exact_.size() > options_.max_entries) ||
      (options_.max_bytes != 0 && exact_bytes_ > options_.max_bytes)) {
    // CoverCache's policy: drop the whole tier, deterministically.
    exact_.clear();
    exact_bytes_ = 0;
    ++counters_.evictions;
  }
}

void ScheduleCache::insert(const Digest128& digest,
                           std::string_view key_encoding,
                           std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.insertions;
  insert_memory(digest, key_encoding, payload);
  if (store_ != nullptr) {
    counters_.evictions +=
        store_->put(digest.hex(), frame_store_payload(key_encoding, payload));
  }
}

bool ScheduleCache::lookup_prefix(const Digest128& digest,
                                  std::string_view key_encoding,
                                  EngineHistory* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = prefix_.find(digest);
  if (it == prefix_.end() || it->second.key != key_encoding) {
    ++counters_.prefix_misses;
    return false;
  }
  ++counters_.prefix_hits;
  *out = it->second.history;
  return true;
}

void ScheduleCache::donate_prefix(const Digest128& digest,
                                  std::string_view key_encoding,
                                  const EngineHistory& history) {
  if (!history.valid) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = prefix_.try_emplace(digest);
  it->second.key.assign(key_encoding);
  it->second.history = history;
  if (options_.max_prefix_entries != 0 &&
      prefix_.size() > options_.max_prefix_entries) {
    prefix_.clear();
    ++counters_.evictions;
  }
}

ScheduleCacheStats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ScheduleCacheStats s = counters_;
  s.entries = exact_.size();
  s.prefix_entries = prefix_.size();
  s.bytes = exact_bytes_;
  return s;
}

}  // namespace cps
