#include "sched/table_validate.hpp"

#include <sstream>

#include "sched/table_sim.hpp"

namespace cps {

TableValidation validate_table(const FlatGraph& fg,
                               const ScheduleTable& table,
                               const std::vector<AltPath>& paths,
                               bool complete_coverage) {
  TableValidation out;
  auto complain = [&out](const std::string& msg) {
    out.violations.push_back(msg);
  };

  for (TaskId t = 0; t < fg.task_count(); ++t) {
    const Task& task = fg.task(t);
    const auto& row = table.row(t);

    // Requirement 1: column implies guard.
    for (const TableEntry& e : row) {
      if (!task.guard.covered_by_context(e.column)) {
        complain("req1: column " + e.column.to_string() + " of task " +
                 task.name + " does not imply its guard " +
                 task.guard.to_string());
      }
    }

    // Requirement 2: different activation decisions have incompatible
    // columns.
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        const bool same_decision = row[i].start == row[j].start &&
                                   row[i].resource == row[j].resource;
        if (same_decision) continue;
        if (row[i].column.compatible(row[j].column)) {
          std::ostringstream os;
          os << "req2: task " << task.name << " has compatible columns "
             << row[i].column.to_string() << " (t=" << row[i].start
             << ") and " << row[j].column.to_string()
             << " (t=" << row[j].start << ")";
          complain(os.str());
        }
      }
    }

    // Requirement 3: the columns cover the guard exactly. A truncated
    // path set cannot (and need not) reach equivalence — req1 above
    // already pinned the containment direction per entry.
    if (complete_coverage) {
      Dnf cover = Dnf::false_();
      for (const TableEntry& e : row) cover = cover.or_cube(e.column);
      if (!cover.equivalent(task.guard)) {
        complain("req3: activation columns of task " + task.name +
                 " cover " + cover.to_string() + " but the guard is " +
                 task.guard.to_string());
      }
    }
  }

  // Requirement 4 + physical realizability, per alternative path.
  for (const AltPath& path : paths) {
    const TableExecution exec = execute_table(fg, table, path);
    for (const std::string& v : exec.violations) {
      complain("path " + path.label.to_string() + ": " + v);
    }
  }

  out.ok = out.violations.empty();
  return out;
}

}  // namespace cps
