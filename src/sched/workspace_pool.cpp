#include "sched/workspace_pool.hpp"

namespace cps {

WorkspaceLease::~WorkspaceLease() {
  if (pool_ != nullptr && ws_ != nullptr) pool_->give_back(std::move(ws_));
}

WorkspaceLease& WorkspaceLease::operator=(WorkspaceLease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && ws_ != nullptr) pool_->give_back(std::move(ws_));
    pool_ = other.pool_;
    ws_ = std::move(other.ws_);
    other.pool_ = nullptr;
  }
  return *this;
}

WorkspaceLease WorkspacePool::acquire() {
  std::unique_ptr<EngineWorkspace> ws;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    if (!free_.empty()) {
      ++stats_.warm_hits;
      ws = std::move(free_.back());
      free_.pop_back();
    } else {
      ++stats_.created;
    }
  }
  if (ws == nullptr) ws = std::make_unique<EngineWorkspace>();
  return WorkspaceLease(this, std::move(ws));
}

std::size_t WorkspacePool::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

WorkspacePool::Stats WorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void WorkspacePool::give_back(std::unique_ptr<EngineWorkspace> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(ws));
}

}  // namespace cps
