#include "sched/baseline.hpp"

#include "support/error.hpp"

namespace cps {

ObliviousResult oblivious_schedule(const FlatGraph& fg,
                                   PriorityPolicy policy) {
  EngineRequest req;
  req.label = Cube::top();
  req.active.assign(fg.task_count(), true);
  for (TaskId t = 0; t < fg.task_count(); ++t) {
    if (fg.task(t).is_broadcast()) req.active[t] = false;
  }
  req.priority = compute_priorities(fg, req.active, policy);
  req.enforce_knowledge = false;

  EngineResult res = run_list_scheduler(fg, req);
  CPS_ASSERT(res.feasible,
             "oblivious schedule must be feasible: " + res.reason);
  ObliviousResult out;
  out.delay = res.schedule.slot(fg.sink_task()).end;
  out.schedule = std::move(res.schedule);
  return out;
}

}  // namespace cps
