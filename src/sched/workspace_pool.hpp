// Thread-safe pool of warm EngineWorkspaces.
//
// An EngineWorkspace amortizes every engine-side buffer across runs, but
// it is single-threaded: one workspace serves one run at a time. The
// decomposed tree walk therefore used to construct a *fresh* workspace
// per subtree job — correct, deterministic, and wasteful for a long-lived
// service where the same connection co-synthesizes thousands of graphs:
// every request re-paid the cold-buffer allocations.
//
// WorkspacePool closes that gap: jobs acquire() a workspace (popping a
// warm one when available, creating one only when the pool is empty) and
// the RAII lease returns it on scope exit. The co-synthesis daemon keys
// one pool per connection ("session"), so a session's steady-state
// requests run entirely on warm buffers while sessions stay isolated
// from each other.
//
// Determinism: workspace identity never influences results — resumed and
// from-scratch runs are byte-identical by construction and the existing
// equivalence suites pin that. What DOES change with a warm workspace is
// the WorkspaceStats reuse counters (a leased warm workspace reports
// reuse_hits where a cold one reports an initial allocation), which is
// why the service's response payloads exclude the reuse-counter block
// (BatchJsonOptions::include_reuse_counters) when comparing against a
// cold-start oracle.
//
// Lifetime: the pool must outlive every lease and every co-synthesis
// call it was handed to (CoSynthesisOptions::workspace_pool is
// non-owning). The server keeps each session pool alive via shared_ptr
// until its in-flight requests completed.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/engine_workspace.hpp"

namespace cps {

class WorkspacePool;

/// RAII lease of one workspace (move-only; returns it on destruction).
class WorkspaceLease {
 public:
  WorkspaceLease() = default;
  WorkspaceLease(WorkspacePool* pool, std::unique_ptr<EngineWorkspace> ws)
      : pool_(pool), ws_(std::move(ws)) {}
  ~WorkspaceLease();

  WorkspaceLease(WorkspaceLease&& other) noexcept
      : pool_(other.pool_), ws_(std::move(other.ws_)) {
    other.pool_ = nullptr;
  }
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  EngineWorkspace& operator*() { return *ws_; }
  EngineWorkspace* get() { return ws_.get(); }

 private:
  WorkspacePool* pool_ = nullptr;
  std::unique_ptr<EngineWorkspace> ws_;
};

class WorkspacePool {
 public:
  /// Counters (monotonic; snapshot under the pool mutex).
  struct Stats {
    std::size_t created = 0;    ///< workspaces constructed cold
    std::size_t leases = 0;     ///< acquire() calls
    std::size_t warm_hits = 0;  ///< leases served from the free list
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Lease a workspace: a warm one when the free list is non-empty, a
  /// fresh one otherwise (the pool never blocks — concurrent demand just
  /// grows it to the concurrency high-water mark).
  WorkspaceLease acquire();

  /// Workspaces currently parked on the free list.
  std::size_t idle() const;

  Stats stats() const;

 private:
  friend class WorkspaceLease;
  void give_back(std::unique_ptr<EngineWorkspace> ws);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<EngineWorkspace>> free_;
  Stats stats_;
};

}  // namespace cps
