#include "sched/schedule.hpp"

#include <algorithm>

namespace cps {

Time PathSchedule::makespan() const {
  Time m = 0;
  for (const Slot& s : slots_) {
    if (s.scheduled()) m = std::max(m, s.end);
  }
  return m;
}

Time PathSchedule::delay(const FlatGraph& fg) const {
  const Slot& s = slot(fg.sink_task());
  CPS_REQUIRE(s.scheduled(), "sink task is not scheduled");
  return s.end;
}

std::vector<TaskId> PathSchedule::tasks_by_start() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < slots_.size(); ++t) {
    if (slots_[t].scheduled()) out.push_back(t);
  }
  std::sort(out.begin(), out.end(), [this](TaskId a, TaskId b) {
    if (slots_[a].start != slots_[b].start) {
      return slots_[a].start < slots_[b].start;
    }
    return a < b;
  });
  return out;
}

}  // namespace cps
