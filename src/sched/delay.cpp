#include "sched/delay.hpp"

#include <algorithm>

#include "sched/table_sim.hpp"
#include "support/error.hpp"

namespace cps {

DelayReport delay_report(const FlatGraph& fg,
                         const std::vector<AltPath>& paths,
                         const std::vector<PathSchedule>& schedules,
                         const ScheduleTable& table) {
  CPS_REQUIRE(paths.size() == schedules.size(),
              "paths/schedules size mismatch");
  DelayReport out;
  out.path_optimal.reserve(paths.size());
  out.path_actual.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Time optimal = schedules[i].delay(fg);
    const TableExecution exec = execute_table(fg, table, paths[i]);
    CPS_ASSERT(exec.schedule.scheduled(fg.sink_task()),
               "table does not activate the sink on path " +
                   paths[i].label.to_string());
    out.path_optimal.push_back(optimal);
    out.path_actual.push_back(exec.delay);
    out.delta_m = std::max(out.delta_m, optimal);
    out.delta_max = std::max(out.delta_max, exec.delay);
  }
  if (out.delta_m > 0) {
    out.increase_percent = 100.0 *
                           static_cast<double>(out.delta_max - out.delta_m) /
                           static_cast<double>(out.delta_m);
  }
  return out;
}

}  // namespace cps
