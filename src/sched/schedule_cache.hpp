// ScheduleCache: a content-addressed, two-tier cross-request memo.
//
// Real request streams repeat graphs and share subgraphs; this cache turns
// repeat traffic into O(lookup) and prefix-shared traffic into checkpoint
// resumes (ROADMAP: "content-addressed schedule cache with a persistent
// tier"). Two tiers, both keyed by Digest128 over a caller-supplied *key
// encoding* (the canonical graph encoding plus whatever result-affecting
// context the caller appends — see batch_driver's exact-key builder):
//
//  * The EXACT tier maps a full request key to the recorded result bytes
//    (the batch driver's serialized item + CSV). A hit replays the stored
//    bytes without touching the engine. Backed, when `store_dir` is set,
//    by a persistent io/store KeyStore so entries survive restarts and
//    are shared across processes; corrupt/mismatched store entries are
//    counted and degrade to misses.
//
//  * The PREFIX tier (in-memory only) maps a graph + walk-shape key to
//    the EngineHistory a previous co-synthesis of the same graph left
//    behind. A hit seeds the driver's resume chain, so the first leaf of
//    the new run resumes from the deepest shared-guard-prefix checkpoint
//    instead of scheduling from t=0 — the cross-request generalization of
//    the PR 4/5 within-run resume machinery. The engine re-validates the
//    history against the live graph and request before trusting it, so a
//    stale or foreign donation silently degrades to a from-scratch run.
//
// Collision safety: the digest is only an index. Every entry stores its
// full key encoding and every hit compares it byte-for-byte against the
// caller's; a digest collision therefore degrades to a miss — it is
// impossible to act on.
//
// Eviction mirrors CoverCache: when an in-memory tier crosses its bound
// the whole tier is dropped (one "reset", no LRU luck); the persistent
// tier keeps the lexicographically smallest keys (KeyStore's bound).
// Thread safety: one mutex serializes all operations (the WorkspacePool
// idiom) — a daemon shares one instance across every worker.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "cpg/canonical.hpp"
#include "sched/engine_workspace.hpp"

namespace cps {

class JsonWriter;
class KeyStore;

struct ScheduleCacheOptions {
  /// Exact-tier in-memory entry bound; crossing it drops the tier.
  std::size_t max_entries = 4096;
  /// Exact-tier in-memory byte bound (keys + payloads); same policy.
  std::size_t max_bytes = std::size_t{64} << 20;
  /// Prefix-tier entry bound; same whole-tier-drop policy.
  std::size_t max_prefix_entries = 1024;
  /// Directory of the persistent exact tier; empty = in-memory only.
  std::string store_dir;
  /// Entry bound of the persistent tier (KeyStoreOptions::max_entries).
  std::size_t store_max_entries = 4096;
};

struct ScheduleCacheStats {
  std::size_t hits = 0;          ///< exact hits (memory or store)
  std::size_t misses = 0;        ///< exact lookups that found nothing
  std::size_t store_hits = 0;    ///< subset of `hits` served from disk
  std::size_t store_errors = 0;  ///< corrupt store entries (degraded to miss)
  std::size_t prefix_hits = 0;
  std::size_t prefix_misses = 0;
  std::size_t insertions = 0;  ///< exact-tier inserts (incl. write-through)
  std::size_t evictions = 0;   ///< tier resets + persistent-tier evictions
  std::size_t entries = 0;         ///< snapshot: exact entries in memory
  std::size_t prefix_entries = 0;  ///< snapshot: prefix entries in memory
  std::size_t bytes = 0;  ///< snapshot: in-memory exact bytes (keys+payloads)

  ScheduleCacheStats& operator+=(const ScheduleCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    store_hits += o.store_hits;
    store_errors += o.store_errors;
    prefix_hits += o.prefix_hits;
    prefix_misses += o.prefix_misses;
    insertions += o.insertions;
    evictions += o.evictions;
    entries += o.entries;
    prefix_entries += o.prefix_entries;
    bytes += o.bytes;
    return *this;
  }
};

/// Serialize cache stats as a JSON object body ({hits, misses, ...}) —
/// shared by the batch summary block and the serve stats op so both emit
/// identical schemas.
void write_cache_stats_json(JsonWriter& w, const ScheduleCacheStats& s);

class ScheduleCache {
 public:
  explicit ScheduleCache(ScheduleCacheOptions options = {});
  ~ScheduleCache();

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Exact tier. `digest` must be digest_of(key_encoding); the split
  /// spares hot paths recomputing it. On hit, copies the recorded payload
  /// into *payload and returns true.
  bool lookup(const Digest128& digest, std::string_view key_encoding,
              std::string* payload);

  /// Record (or overwrite) the payload for a key; writes through to the
  /// persistent tier when one is configured.
  void insert(const Digest128& digest, std::string_view key_encoding,
              std::string_view payload);

  /// Prefix tier: copy the recorded resume history for a graph+walk key
  /// into *out. The caller hands the history to the engine, which
  /// re-validates it — a hit is a hint, never a trusted result.
  bool lookup_prefix(const Digest128& digest, std::string_view key_encoding,
                     EngineHistory* out);

  /// Donate the end-of-run resume chain for a graph+walk key (latest
  /// donation wins). Invalid histories are ignored.
  void donate_prefix(const Digest128& digest, std::string_view key_encoding,
                     const EngineHistory& history);

  /// Monotonic counters + current-size snapshot.
  ScheduleCacheStats stats() const;

  bool has_store() const { return store_ != nullptr; }
  const ScheduleCacheOptions& options() const { return options_; }

 private:
  struct ExactEntry {
    std::string key;  ///< full key encoding, verified on every hit
    std::string payload;
  };
  struct PrefixEntry {
    std::string key;
    EngineHistory history;
  };

  /// Unlocked helpers (callers hold mu_).
  void insert_memory(const Digest128& digest, std::string_view key_encoding,
                     std::string_view payload);

  ScheduleCacheOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<KeyStore> store_;
  std::map<Digest128, ExactEntry> exact_;
  std::map<Digest128, PrefixEntry> prefix_;
  std::size_t exact_bytes_ = 0;
  ScheduleCacheStats counters_;  ///< monotonic part only
};

}  // namespace cps
