#include "sched/driver.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>

#include "sched/workspace_pool.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace cps {

const char* to_string(PathScheduling s) {
  switch (s) {
    case PathScheduling::kList: return "list";
    case PathScheduling::kTree: return "tree";
  }
  return "?";
}

std::size_t effective_max_paths(const CoSynthesisOptions& options) {
  std::size_t max = options.max_paths;
  if (options.budget != nullptr && options.budget->max_paths != 0 &&
      (max == 0 || options.budget->max_paths < max)) {
    max = options.budget->max_paths;
  }
  return max;
}

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

[[noreturn]] void throw_path_budget(std::size_t max_paths) {
  // InvalidArgument-compatible for historical callers, but carries the
  // typed kPathBudgetExceeded code for the batch driver's JSON.
  throw BudgetExceededError(
      ErrorCode::kPathBudgetExceeded,
      "graph exceeds the alternative-path budget of " +
          std::to_string(max_paths) + " paths");
}

/// Everything the per-path scheduling stage produces, whichever walk ran.
struct ScheduleStage {
  std::vector<AltPath> paths;
  std::vector<PathSchedule> schedules;
  PathTreeStats tree;
  WorkspaceStats workspace;
  CoverCacheStats cover_cache;
  ScheduleCacheStats cache;
  double enumerate_ms = 0.0;
  double schedule_ms = 0.0;
  /// The path budget tripped under BudgetAction::kBound: `paths` holds
  /// the first max_paths leaves of the enumeration order only.
  bool truncated = false;
};

/// Does this walk use the schedule cache's prefix tier? Tree mode only
/// (kList runs from scratch by definition) and never under kRandom (the
/// per-path priority draws consume the flow RNG in enumeration order — a
/// cross-call history cannot replay them).
bool prefix_cache_usable(const CoSynthesisOptions& options) {
  return options.schedule_cache != nullptr &&
         options.path_scheduling == PathScheduling::kTree &&
         options.path_priority != PriorityPolicy::kRandom;
}

/// Prefix-tier key: canonical graph encoding (verified byte-for-byte by
/// the cache) plus the walk shape — stage kind, subtree job, decomposition
/// target — and the two options that shape what a history records
/// (priority policy, engine). Everything else the engine re-validates
/// against the live request before resuming, so a stale entry degrades to
/// a from-scratch run, never to a wrong result.
std::string prefix_key_encoding(const Cpg& g, const CoSynthesisOptions& options,
                                std::uint8_t stage, std::uint64_t job,
                                std::uint64_t target) {
  std::string key = canonical_encoding(g);
  key.append("PFX1");
  key.push_back(static_cast<char>(stage));
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((job >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((target >> (8 * i)) & 0xff));
  }
  key.push_back(static_cast<char>(options.path_priority));
  key.push_back(static_cast<char>(options.merge.ready));
  return key;
}

/// Engine results from per-path scheduling: interrupts (budget trips
/// inside the engine) become typed exceptions; anything else infeasible
/// on a validated CPG is a library bug.
void check_path_result(const EngineResult& res) {
  if (res.feasible) return;
  if (is_interrupt(res.code)) {
    throw_interrupt(res.code, "per-path scheduling interrupted: " +
                                  res.reason);
  }
  CPS_ASSERT(false, "validated CPG path must be schedulable: " + res.reason);
}

/// Serial walk: the retained path-list reference (one from-scratch engine
/// run per path) or the serial tree chain (every leaf resumes from the
/// previous leaf's checkpoints at their shared guard prefix — consecutive
/// DFS leaves share the longest prefix, so one rolling EngineHistory is
/// the optimal donor chain).
ScheduleStage run_serial_stage(const Cpg& g, const FlatGraph& flat,
                               const CoSynthesisOptions& options, Rng& rng,
                               bool tree) {
  ScheduleStage out;
  CoverCache cover_cache;
  // Workspace resolution: an explicit external workspace wins, then a
  // warm lease from the pool, then a call-local one. All three are
  // result-equivalent; the stats delta below keeps the serialized
  // counters scoped to this call either way.
  WorkspaceLease lease;
  std::optional<EngineWorkspace> owned_workspace;
  EngineWorkspace* workspace = options.workspace;
  if (workspace == nullptr && options.workspace_pool != nullptr) {
    lease = options.workspace_pool->acquire();
    workspace = lease.get();
  }
  if (workspace == nullptr) {
    owned_workspace.emplace();
    workspace = &*owned_workspace;
  }
  const WorkspaceStats workspace_before = workspace->stats;
  const std::size_t max_paths = effective_max_paths(options);
  // Stage-level budget poll between paths (belt to the engine's per-step
  // polling: enumeration itself is engine-free work).
  BudgetPoll poll(options.budget);
  // Demand-driven recording (eager off): the engine starts per-step
  // checkpointing only once a sibling leaf demonstrates that resuming is
  // plausible, so tries whose sibling priorities always diverge at t=0
  // pay no recording overhead at all. A schedule cache seeds the chain
  // with the history a previous co-synthesis of the same graph donated:
  // the first leaf then resumes from the deepest shared-guard-prefix
  // checkpoint instead of scheduling from t=0 (the engine re-validates
  // the donation, so a mismatch just runs from scratch).
  EngineHistory chain;
  std::string prefix_key;
  Digest128 prefix_digest;
  const bool use_prefix = tree && prefix_cache_usable(options);
  if (use_prefix) {
    prefix_key = prefix_key_encoding(g, options, /*stage=*/0, /*job=*/0,
                                     /*target=*/0);
    prefix_digest = digest_of(prefix_key);
    if (options.schedule_cache->lookup_prefix(prefix_digest, prefix_key,
                                              &chain)) {
      ++out.cache.prefix_hits;
      chain.eager = true;  // reruns are the expected case on cached graphs
    } else {
      ++out.cache.prefix_misses;
    }
  }
  PathEnumerator enumerator(g);
  while (true) {
    {
      const ErrorCode trip = poll.poll();
      if (trip != ErrorCode::kOk) {
        throw_interrupt(trip, std::string("per-path scheduling interrupted: ") +
                                  to_string(trip));
      }
    }
    const auto e0 = clock_type::now();
    auto path = enumerator.next();
    out.enumerate_ms += ms_between(e0, clock_type::now());
    if (!path) break;
    if (max_paths != 0 && enumerator.produced() > max_paths) {
      if (options.on_budget == BudgetAction::kThrow) {
        throw_path_budget(max_paths);
      }
      // Bounded coverage: drop the over-budget path and stop — the kept
      // prefix is a pure function of the enumeration order, so bounded
      // results stay byte-identical at every thread count.
      out.truncated = true;
      break;
    }
    out.paths.push_back(std::move(*path));
    const auto s0 = clock_type::now();
    EngineRequest req =
        make_path_request(flat, out.paths.back(), options.path_priority,
                          &rng, options.merge.ready, &cover_cache);
    if (tree) {
      req.resume = EngineResume::kCheckpoint;
      req.history = &chain;
    }
    req.budget = options.budget;
    EngineResult res = run_list_scheduler(flat, req, *workspace);
    check_path_result(res);
    if (res.resumed) {
      ++out.tree.prefix_resumes;
      out.tree.resumed_steps += res.resumed_steps;
    }
    out.schedules.push_back(std::move(res.schedule));
    out.schedule_ms += ms_between(s0, clock_type::now());
  }
  out.cover_cache = cover_cache.stats();
  out.workspace = workspace->stats;
  out.workspace -= workspace_before;
  // Donate the end-of-walk chain (latest wins): the next request for this
  // graph resumes from it. Only reached on success — failed walks threw.
  if (use_prefix) {
    options.schedule_cache->donate_prefix(prefix_digest, prefix_key, chain);
  }
  return out;
}

/// Decomposed tree walk: split the guard trie into a depth-first frontier
/// of independent subtrees, chain-schedule each subtree's leaves as one
/// job (private EngineWorkspace, history and cover cache per job), and
/// commit the results in deterministic frontier order — the concatenation
/// is exactly the serial enumeration order, so every downstream consumer
/// sees byte-identical inputs. The jobs run on the work-stealing runtime
/// when one is available and inline otherwise; because every piece of
/// per-job state is private to the job, all serialized counters are pure
/// functions of the decomposition, not of who ran what where.
std::optional<ScheduleStage> run_decomposed_stage(
    const Cpg& g, const FlatGraph& flat, const CoSynthesisOptions& options,
    std::size_t target, ThreadPool* pool) {
  ScheduleStage out;
  const auto e0 = clock_type::now();
  // The budget check pre-counts with one cheap enumeration pass (jobs
  // cannot share the serial walk's streaming counter without racing).
  // Deliberate tradeoff: an over-budget graph trips here before any
  // engine run is dispatched — cheaper than the list walk, which
  // schedules every leaf up to the budget first. Under
  // BudgetAction::kBound an over-budget graph falls back to the serial
  // walk instead, whose streaming counter truncates deterministically —
  // so bounded results are identical at every thread count.
  const std::size_t max_paths = effective_max_paths(options);
  if (max_paths != 0 && !count_paths(g, max_paths).has_value()) {
    if (options.on_budget == BudgetAction::kThrow) {
      throw_path_budget(max_paths);
    }
    return std::nullopt;
  }
  const PathTree tree(g);
  const std::vector<PathTree::Node> jobs = tree.frontier(target);
  if (jobs.size() <= 1) return std::nullopt;  // nothing to split
  out.enumerate_ms = ms_between(e0, clock_type::now());

  struct JobResult {
    std::vector<AltPath> paths;
    std::vector<PathSchedule> schedules;
    PathTreeStats tree;
    WorkspaceStats workspace;
    CoverCacheStats cover_cache;
    ScheduleCacheStats cache;
    std::exception_ptr error;
  };
  std::vector<JobResult> results(jobs.size());
  const bool use_prefix = prefix_cache_usable(options);

  const auto s0 = clock_type::now();
  const auto run_job = [&](std::size_t i) {
    JobResult& r = results[i];
    try {
      CPS_FAULT_POINT("trie.subtree");
      // Private workspace per job (not a per-worker slot): the
      // warm-buffer reuse counters become part of the job, so the
      // aggregated WorkspaceStats cannot depend on work-stealing luck. A
      // pool lease keeps the privacy (one workspace per concurrent job)
      // while letting repeated calls start warm.
      WorkspaceLease lease;
      std::optional<EngineWorkspace> owned_ws;
      EngineWorkspace* ws;
      if (options.workspace_pool != nullptr) {
        lease = options.workspace_pool->acquire();
        ws = lease.get();
      } else {
        owned_ws.emplace();
        ws = &*owned_ws;
      }
      const WorkspaceStats ws_before = ws->stats;
      CoverCache cover_cache;  // per job: keeps the counters deterministic
      EngineHistory chain;     // demand-driven recording, like the serial walk
      // Cross-request seeding, keyed per (job, decomposition target) so a
      // repeat of the same graph with the same split resumes every
      // subtree job from its own donated chain.
      std::string prefix_key;
      Digest128 prefix_digest;
      if (use_prefix) {
        prefix_key = prefix_key_encoding(g, options, /*stage=*/1, i, target);
        prefix_digest = digest_of(prefix_key);
        if (options.schedule_cache->lookup_prefix(prefix_digest, prefix_key,
                                                  &chain)) {
          ++r.cache.prefix_hits;
          chain.eager = true;
        } else {
          ++r.cache.prefix_misses;
        }
      }
      BudgetPoll poll(options.budget);  // per-leaf poll, clock amortized
      PathEnumerator en = tree.leaves(jobs[i].context);
      while (auto path = en.next()) {
        {
          const ErrorCode trip = poll.poll();
          if (trip != ErrorCode::kOk) {
            throw_interrupt(
                trip, std::string("subtree scheduling interrupted: ") +
                          to_string(trip));
          }
        }
        r.paths.push_back(std::move(*path));
        EngineRequest req = make_path_request(
            flat, r.paths.back(), options.path_priority, nullptr,
            options.merge.ready, &cover_cache);
        req.resume = EngineResume::kCheckpoint;
        req.history = &chain;
        req.budget = options.budget;
        EngineResult res = run_list_scheduler(flat, req, *ws);
        check_path_result(res);
        if (res.resumed) {
          ++r.tree.prefix_resumes;
          r.tree.resumed_steps += res.resumed_steps;
        }
        r.schedules.push_back(std::move(res.schedule));
      }
      r.cover_cache = cover_cache.stats();
      r.workspace = ws->stats;
      r.workspace -= ws_before;
      if (use_prefix) {
        options.schedule_cache->donate_prefix(prefix_digest, prefix_key,
                                              chain);
      }
    } catch (...) {
      r.error = std::current_exception();
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(jobs.size(), run_job);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
  }
  out.schedule_ms = ms_between(s0, clock_type::now());

  // Commit in frontier (= depth-first) order; the first failure in that
  // order is the one a serial walk would have hit — cancellation racing
  // the commit loop resolves the same way: parallel_for already joined
  // every job, so the DFS-first error wins deterministically.
  out.tree.subtrees_parallel = jobs.size();
  for (JobResult& r : results) {
    CPS_FAULT_POINT("trie.commit");
    if (r.error) std::rethrow_exception(r.error);
    for (auto& p : r.paths) out.paths.push_back(std::move(p));
    for (auto& s : r.schedules) out.schedules.push_back(std::move(s));
    out.tree += r.tree;
    out.workspace += r.workspace;
    out.cover_cache += r.cover_cache;
    out.cache += r.cache;
  }
  return out;
}

}  // namespace

CoSynthesisResult schedule_cpg(const Cpg& g,
                               const CoSynthesisOptions& options) {
  if (options.budget != nullptr) {
    // Check once up-front (token AND clock): an already-cancelled or
    // already-expired budget must not start expanding the graph at all.
    const ErrorCode trip = options.budget->check_now();
    if (trip != ErrorCode::kOk) {
      throw_interrupt(trip, std::string("co-synthesis interrupted: ") +
                                to_string(trip));
    }
  }
  const auto t0 = clock_type::now();
  auto flat = std::make_unique<FlatGraph>(FlatGraph::expand(g));
  const auto t1 = clock_type::now();

  // Per-path scheduling. The serial walks stream enumeration and
  // scheduling (each alternative path is scheduled as soon as its label
  // is produced, and the max_paths budget trips before an exponential
  // label set is materialized); the parallel tree walk splits the guard
  // trie into independent subtrees first. Either way one engine
  // workspace serves a whole chain, so only its first path pays the
  // engine-buffer allocations.
  Rng rng(options.merge.random_seed);
  const bool tree = options.path_scheduling == PathScheduling::kTree;
  // An external pool overrides schedule_threads for sizing: its workers
  // plus the participating calling thread are the parallelism.
  std::size_t threads = 1;
  if (tree) {
    threads = options.schedule_pool != nullptr
                  ? options.schedule_pool->thread_count() + 1
                  : ThreadPool::resolve_threads(options.schedule_threads);
  }
  // The trie is decomposed when parallelism asks for it OR when a fixed
  // frontier pins the split (the batch driver's byte-identical contract:
  // the same decomposition must run at every thread count, pool or not).
  bool decompose = tree && (threads > 1 || options.subtree_frontier != 0);
  if (options.path_priority == PriorityPolicy::kRandom) {
    // The per-path priority draws consume the flow RNG in enumeration
    // order; that order is part of the reproducible serial behavior and
    // cannot be split across jobs.
    threads = 1;
    decompose = false;
  }

  // One work-stealing runtime for the whole call: subtree jobs, and —
  // unless the caller pinned merge.pool/merge.threads — the merge's
  // speculative workers ride the same pool, whether it came from the
  // caller (batch driver) or is owned here.
  ThreadPool* runtime = options.schedule_pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (runtime == nullptr && decompose && threads > 1) {
    // The calling thread participates in parallel_for, so threads - 1
    // workers reach the requested parallelism.
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    runtime = owned_pool.get();
  }
  PoolStats pool_before;
  if (runtime != nullptr) pool_before = runtime->stats();

  std::optional<ScheduleStage> stage_opt;
  if (decompose) {
    const std::size_t target = options.subtree_frontier != 0
                                   ? options.subtree_frontier
                                   : threads * 4;
    stage_opt = run_decomposed_stage(g, *flat, options, target, runtime);
  }
  ScheduleStage stage = stage_opt
                            ? std::move(*stage_opt)
                            : run_serial_stage(g, *flat, options, rng, tree);

  const auto t3 = clock_type::now();
  MergeOptions merge_opts = options.merge;
  if (merge_opts.pool == nullptr && merge_opts.threads == 0 &&
      runtime != nullptr) {
    merge_opts.pool = runtime;
  }
  MergeResult merged =
      merge_schedules(*flat, stage.paths, stage.schedules, merge_opts);
  const auto t4 = clock_type::now();
  if (!merged.ok) {
    if (is_interrupt(merged.code)) {
      throw_interrupt(merged.code,
                      "schedule merging interrupted: " + merged.error);
    }
    throw ValidationError("schedule merging failed: " + merged.error);
  }

  if (options.validate) {
    const TableValidation validation =
        validate_table(*flat, merged.table, stage.paths,
                       /*complete_coverage=*/!stage.truncated);
    if (!validation.ok) {
      throw ValidationError("generated schedule table is incoherent:\n  " +
                            join(validation.violations, "\n  "));
    }
  }
  const auto t5 = clock_type::now();

  DelayReport delays =
      delay_report(*flat, stage.paths, stage.schedules, merged.table);

  StageTimings timings;
  timings.expand_ms = ms_between(t0, t1);
  timings.enumerate_ms = stage.enumerate_ms;
  timings.schedule_ms = stage.schedule_ms;
  timings.merge_ms = ms_between(t3, t4);
  timings.validate_ms = ms_between(t4, t5);

  const std::size_t path_count = stage.paths.size();

  // Coverage accounting. Complete results cover every leaf by
  // construction; a bounded-coverage result (kBound trip) reports the
  // covered fraction, probing the true leaf count with a capped
  // enumeration so a super-exponential graph cannot stall the report.
  ErrorCode status = ErrorCode::kOk;
  std::size_t total_leaves = path_count;
  double coverage = 1.0;
  if (stage.truncated) {
    status = ErrorCode::kPathBudgetExceeded;
    const std::size_t probe_cap = std::max<std::size_t>(
        effective_max_paths(options) * 64, std::size_t{65536});
    const auto probed = count_paths(g, probe_cap);
    total_leaves = probed.has_value() ? *probed : 0;  // 0 = unknown
    coverage = total_leaves != 0
                   ? static_cast<double>(path_count) /
                         static_cast<double>(total_leaves)
                   : 0.0;
  }

  if (!options.keep_paths) {
    // Shrink, not just clear: the point is dropping the O(paths × depth)
    // payload, and the result outlives this call.
    stage.paths = {};
    stage.schedules = {};
  }

  PoolStats pool_delta;
  if (runtime != nullptr) {
    pool_delta = runtime->stats().delta_since(pool_before);
  }

  return CoSynthesisResult{std::move(flat),
                           std::move(stage.paths),
                           std::move(stage.schedules),
                           path_count,
                           std::move(merged.table),
                           merged.stats,
                           stage.cover_cache,
                           stage.workspace,
                           merged.workspace,
                           stage.tree,
                           pool_delta,
                           stage.cache,
                           std::move(delays),
                           timings,
                           status,
                           total_leaves,
                           coverage};
}

}  // namespace cps
