#include "sched/driver.hpp"

#include <chrono>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

CoSynthesisResult schedule_cpg(const Cpg& g,
                               const CoSynthesisOptions& options) {
  const auto t0 = clock_type::now();
  auto flat = std::make_unique<FlatGraph>(FlatGraph::expand(g));
  const auto t1 = clock_type::now();

  // Stream enumeration and per-path scheduling: each alternative path is
  // scheduled as soon as its label is produced, and the max_paths budget
  // trips before an exponential label set is ever materialized. One
  // engine workspace serves the whole loop, so only the first path pays
  // the engine-buffer allocations.
  Rng rng(options.merge.random_seed);
  CoverCache cover_cache;
  EngineWorkspace owned_workspace;
  EngineWorkspace& workspace =
      options.workspace != nullptr ? *options.workspace : owned_workspace;
  const WorkspaceStats workspace_before = workspace.stats;
  std::vector<AltPath> paths;
  std::vector<PathSchedule> schedules;
  double enumerate_ms = 0.0;
  double schedule_ms = 0.0;
  PathEnumerator enumerator(g);
  while (true) {
    const auto e0 = clock_type::now();
    auto path = enumerator.next();
    enumerate_ms += ms_between(e0, clock_type::now());
    if (!path) break;
    if (options.max_paths != 0 && enumerator.produced() > options.max_paths) {
      throw InvalidArgument(
          "graph exceeds the alternative-path budget of " +
          std::to_string(options.max_paths) + " paths");
    }
    paths.push_back(std::move(*path));
    const auto s0 = clock_type::now();
    schedules.push_back(schedule_path(*flat, paths.back(),
                                      options.path_priority, &rng,
                                      options.merge.ready, &cover_cache,
                                      &workspace));
    schedule_ms += ms_between(s0, clock_type::now());
  }
  WorkspaceStats workspace_stats = workspace.stats;
  workspace_stats -= workspace_before;

  const auto t3 = clock_type::now();
  MergeResult merged =
      merge_schedules(*flat, paths, schedules, options.merge);
  const auto t4 = clock_type::now();
  if (!merged.ok) {
    throw ValidationError("schedule merging failed: " + merged.error);
  }

  if (options.validate) {
    const TableValidation validation =
        validate_table(*flat, merged.table, paths);
    if (!validation.ok) {
      throw ValidationError("generated schedule table is incoherent:\n  " +
                            join(validation.violations, "\n  "));
    }
  }
  const auto t5 = clock_type::now();

  DelayReport delays = delay_report(*flat, paths, schedules, merged.table);

  StageTimings timings;
  timings.expand_ms = ms_between(t0, t1);
  timings.enumerate_ms = enumerate_ms;
  timings.schedule_ms = schedule_ms;
  timings.merge_ms = ms_between(t3, t4);
  timings.validate_ms = ms_between(t4, t5);

  return CoSynthesisResult{std::move(flat),
                           std::move(paths),
                           std::move(schedules),
                           std::move(merged.table),
                           merged.stats,
                           cover_cache.stats(),
                           workspace_stats,
                           merged.workspace,
                           std::move(delays),
                           timings};
}

}  // namespace cps
