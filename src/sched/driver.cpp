#include "sched/driver.hpp"

#include "support/strings.hpp"

namespace cps {

CoSynthesisResult schedule_cpg(const Cpg& g,
                               const CoSynthesisOptions& options) {
  auto flat = std::make_unique<FlatGraph>(FlatGraph::expand(g));
  std::vector<AltPath> paths = enumerate_paths(g);

  Rng rng(options.merge.random_seed);
  std::vector<PathSchedule> schedules;
  schedules.reserve(paths.size());
  for (const AltPath& path : paths) {
    schedules.push_back(
        schedule_path(*flat, path, options.path_priority, &rng));
  }

  MergeResult merged =
      merge_schedules(*flat, paths, schedules, options.merge);

  if (options.validate) {
    const TableValidation validation =
        validate_table(*flat, merged.table, paths);
    if (!validation.ok) {
      throw ValidationError("generated schedule table is incoherent:\n  " +
                            join(validation.violations, "\n  "));
    }
  }

  DelayReport delays = delay_report(*flat, paths, schedules, merged.table);

  return CoSynthesisResult{std::move(flat),
                           std::move(paths),
                           std::move(schedules),
                           std::move(merged.table),
                           merged.stats,
                           std::move(delays)};
}

}  // namespace cps
