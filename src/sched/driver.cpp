#include "sched/driver.hpp"

#include <chrono>

#include "support/strings.hpp"

namespace cps {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

CoSynthesisResult schedule_cpg(const Cpg& g,
                               const CoSynthesisOptions& options) {
  const auto t0 = clock_type::now();
  auto flat = std::make_unique<FlatGraph>(FlatGraph::expand(g));
  const auto t1 = clock_type::now();
  std::vector<AltPath> paths = enumerate_paths(g);
  const auto t2 = clock_type::now();

  Rng rng(options.merge.random_seed);
  CoverCache cover_cache;
  std::vector<PathSchedule> schedules;
  schedules.reserve(paths.size());
  for (const AltPath& path : paths) {
    schedules.push_back(schedule_path(*flat, path, options.path_priority,
                                      &rng, options.merge.ready,
                                      &cover_cache));
  }
  const auto t3 = clock_type::now();

  MergeResult merged =
      merge_schedules(*flat, paths, schedules, options.merge);
  const auto t4 = clock_type::now();

  if (options.validate) {
    const TableValidation validation =
        validate_table(*flat, merged.table, paths);
    if (!validation.ok) {
      throw ValidationError("generated schedule table is incoherent:\n  " +
                            join(validation.violations, "\n  "));
    }
  }
  const auto t5 = clock_type::now();

  DelayReport delays = delay_report(*flat, paths, schedules, merged.table);

  StageTimings timings;
  timings.expand_ms = ms_between(t0, t1);
  timings.enumerate_ms = ms_between(t1, t2);
  timings.schedule_ms = ms_between(t2, t3);
  timings.merge_ms = ms_between(t3, t4);
  timings.validate_ms = ms_between(t4, t5);

  return CoSynthesisResult{std::move(flat),
                           std::move(paths),
                           std::move(schedules),
                           std::move(merged.table),
                           merged.stats,
                           std::move(delays),
                           timings};
}

}  // namespace cps
