// Run-time execution of a schedule table (the distributed non-preemptive
// scheduler of paper §3, as a simulator).
//
// Given a complete path, the table determines the start time of every
// active task; the simulator extracts that execution and checks that it is
// physically realizable: dependencies respected, sequential resources
// exclusive, and every activation decision based only on condition values
// already known on the deciding resource.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule_table.hpp"
#include "sched/schedule.hpp"

namespace cps {

struct TableExecution {
  bool ok = false;
  /// Human-readable violations (empty iff ok).
  std::vector<std::string> violations;
  /// Extracted execution (slots of active tasks).
  PathSchedule schedule;
  /// Activation time of the sink = the delay of this execution.
  Time delay = 0;
};

/// Execute the table under one alternative path.
TableExecution execute_table(const FlatGraph& fg, const ScheduleTable& table,
                             const AltPath& path);

}  // namespace cps
